//! # tako — a polymorphic cache hierarchy, reproduced in Rust
//!
//! This crate is the facade of the täkō reproduction workspace
//! (Schwedock et al., *täkō: A Polymorphic Cache Hierarchy for
//! General-Purpose Optimization of Data Movement*, ISCA 2022). It
//! re-exports the public API of every member crate:
//!
//! * [`core`] (`tako-core`) — the täkō architecture: [`core::Morph`],
//!   [`core::TakoSystem`], callbacks, engines.
//! * [`sim`] (`tako-sim`) — configuration, statistics, energy, RNG.
//! * [`mem`], [`noc`], [`cache`], [`dataflow`], [`cpu`] — the simulated
//!   substrates (memory, mesh, caches, engine fabric, cores).
//! * [`graph`] — graph data structures and generators.
//! * [`workloads`] — the paper's five case studies with all baselines.
//!
//! # Quickstart
//!
//! ```
//! use tako::core::{EngineCtx, Morph, MorphLevel, TakoSystem};
//! use tako::sim::config::SystemConfig;
//!
//! /// Phantom lines materialize as their own word indices.
//! struct Iota;
//! impl Morph for Iota {
//!     fn name(&self) -> &str { "iota" }
//!     fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
//!         let base = ctx.offset() / 8;
//!         let dep = ctx.arg();
//!         for i in 0..8 {
//!             ctx.line_write_u64(i as usize * 8, base + i, &[dep]);
//!         }
//!     }
//! }
//!
//! let mut sys = TakoSystem::new(SystemConfig::default_16core());
//! let h = sys.register_phantom(MorphLevel::Private, 4096, Box::new(Iota))?;
//! let (value, _done) = sys.debug_read_u64(0, h.range().base + 8 * 7, 0);
//! assert_eq!(value, 7);
//! # Ok::<(), tako::core::TakoError>(())
//! ```
//!
//! See `examples/` for runnable programs and `crates/bench` for the
//! harnesses that regenerate every figure and table of the paper.

pub use tako_cache as cache;
pub use tako_core as core;
pub use tako_cpu as cpu;
pub use tako_dataflow as dataflow;
pub use tako_graph as graph;
pub use tako_mem as mem;
pub use tako_noc as noc;
pub use tako_sim as sim;
pub use tako_workloads as workloads;
