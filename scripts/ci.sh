#!/usr/bin/env bash
# Local CI gate: build, tests, lints, and a fault-injection smoke run.
# Run from the repository root. Everything here is offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc"
cargo doc --workspace --no-deps -q

# Smoke the robustness contract: a small seeded campaign (6 scenarios
# per case study) must complete with zero invariant violations, every
# injected stall detected, and noninterference intact. Takes ~2s.
echo "==> fault_campaign smoke"
./target/release/fault_campaign --scale 0.25 --scenarios 6

echo "ci: all green"
