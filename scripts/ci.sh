#!/usr/bin/env bash
# Local CI gate: build, tests, lints, and a fault-injection smoke run.
# Run from the repository root. Everything here is offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

# heavy-bench is outside the workspace (criterion comes from crates.io,
# which the offline tier-1 build cannot reach). Lint it when the deps
# are resolvable; otherwise say so and move on.
echo "==> cargo clippy (heavy-bench)"
if cargo clippy --manifest-path heavy-bench/Cargo.toml --benches \
    -- -D warnings 2> /dev/null; then
  echo "    heavy-bench clean"
else
  echo "    skipped: criterion unresolvable offline"
fi

echo "==> cargo doc"
cargo doc --workspace --no-deps -q

# Smoke the robustness contract: a small seeded campaign (6 scenarios
# per case study) must complete with zero invariant violations, every
# injected stall detected, and noninterference intact. Takes ~2s.
echo "==> fault_campaign smoke"
./target/release/fault_campaign --scale 0.25 --scenarios 6

# Protocol model-checker smoke: exhaust the tiny 2-tile bounded state
# space to depth 2 for all four Morph families (must be clean), replay
# every committed counterexample in crates/bench/regressions/ (each
# recorded violation must still reproduce), and arm the illegal-action
# mutant, which every family must catch and shrink to <= 8 steps.
# Takes ~5s with 4 workers; the report is byte-identical at any
# --jobs count.
echo "==> protocol_check smoke"
./target/release/protocol_check --depth 2 --jobs 4
for cex in crates/bench/regressions/*.takocex; do
  ./target/release/protocol_check --replay "$cex"
done
MUTDIR=$(mktemp -d)
./target/release/protocol_check --mutant --depth 2 --jobs 4 \
    --write-cex "$MUTDIR/mutant.takocex"
./target/release/protocol_check --replay "$MUTDIR/mutant.takocex"
rm -rf "$MUTDIR"

# Interrupt/resume smoke: journal a campaign, crash every experiment
# after two checkpointed units, resume it, and require the resumed
# output byte-identical to a clean (unjournaled) run. Timing lines
# ("[name took ...]") are stripped before the diff.
echo "==> campaign interrupt/resume smoke"
JDIR=$(mktemp -d)
trap 'rm -rf "$JDIR"' EXIT
if ./target/release/all_experiments --scale 0.01 --jobs 2 \
    --journal "$JDIR/journal" --crash-after-units 2 \
    > /dev/null 2> "$JDIR/crash.log"; then
  echo "error: crashed campaign should exit nonzero" >&2
  exit 1
fi
./target/release/all_experiments --scale 0.01 --jobs 2 \
    --journal "$JDIR/journal" --resume > "$JDIR/resumed.txt"
./target/release/all_experiments --scale 0.01 --jobs 2 > "$JDIR/clean.txt"
diff <(grep -v 'took' "$JDIR/clean.txt") \
     <(grep -v 'took' "$JDIR/resumed.txt")
echo "    resumed campaign output matches clean run"

# Crash-point sweep smoke: every I/O site of a small journaled
# campaign, for every deterministic fault kind, must resume to the
# uninterrupted run's golden digest (DESIGN.md §7d). Takes ~1s.
echo "==> crash-point sweep smoke"
./target/release/crash_campaign --root "$JDIR/sweep"

# Journal doctor smoke: --verify must flag exactly the committed
# corrupt fixtures (and exit nonzero doing so), and a repaired copy
# must come back clean.
echo "==> tako_fsck smoke"
if ./target/release/tako_fsck --verify crates/bench/regressions/fsck \
    > "$JDIR/fsck.txt"; then
  echo "error: verify should flag the corrupt fixtures" >&2
  exit 1
fi
grep -q '4 flagged' "$JDIR/fsck.txt"
cp -r crates/bench/regressions/fsck "$JDIR/fsck-repair"
./target/release/tako_fsck --repair "$JDIR/fsck-repair" > /dev/null
./target/release/tako_fsck --verify "$JDIR/fsck-repair" > /dev/null
echo "    fixtures flagged; repaired copy verifies clean"

# Observability smoke: a traced run must produce parseable Chrome
# trace JSON with real events, a profile table, and output that is
# byte-identical to the untraced clean run above (tracing is strictly
# observational).
echo "==> trace smoke"
./target/release/all_experiments --scale 0.01 --jobs 2 \
    --trace-out "$JDIR/trace.json" --profile > "$JDIR/traced.txt"
grep -q '^PROFILE:' "$JDIR/traced.txt"
diff <(grep -v 'took' "$JDIR/clean.txt") \
     <(grep -v 'took' "$JDIR/traced.txt" | sed '/^PROFILE:/,$d')
python3 - "$JDIR/trace.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
evs = d["traceEvents"]
inst = [e for e in evs if e.get("ph") == "i"]
assert inst, "trace has no instant events"
assert all(e["ts"] >= 0 for e in inst), "negative timestamp"
print(f"    trace JSON valid: {len(evs)} events ({len(inst)} instants)")
EOF
echo "    traced output matches clean run"

# Throughput smoke: a short run must not fall more than 15% below the
# committed BENCH_sim.json figure. The committed report carries this
# machine's absolute accesses/s; on a different host, set REF_APS to a
# locally captured reference instead.
echo "==> throughput smoke"
./target/release/all_experiments --scale 0.02 --jobs 1 \
    --bench-json "$JDIR/bench.json" > /dev/null
python3 - "$JDIR/bench.json" BENCH_sim.json <<'PYCHECK'
import json, os, sys
fresh = json.load(open(sys.argv[1]))
aps = fresh["accesses_per_sec"]
ref = float(os.environ.get("REF_APS", 0)) or None
if ref is None:
    committed = json.load(open(sys.argv[2]))
    ref = committed["accesses_per_sec"]
floor = 0.85 * ref
status = "ok" if aps >= floor else "REGRESSED"
print(f"    {aps:,.0f} accesses/s vs committed {ref:,.0f} (floor {floor:,.0f}): {status}")
if aps < floor:
    sys.exit(1)
PYCHECK

echo "ci: all green"
