//! Replayable counterexamples: serialization, replay, and shrinking.
//!
//! A counterexample is a step sequence (action + schedule script per
//! step) plus the fault plan that was armed, in a line-oriented text
//! format stable enough to commit under `crates/bench/regressions/`.
//! Replay rebuilds the family's system from scratch and re-executes the
//! steps at the same logical clocks the explorer used, so a committed
//! file reproduces its violation deterministically on any host. The
//! fault plan string is in [`FaultPlan::parse`] format, so the same
//! failure can also be re-armed under `fault_campaign --faults`.

use std::cell::RefCell;
use std::rc::Rc;

use tako_sim::fault::FaultPlan;

use crate::explore::{check_state, run_step, PropertyKind, Step};
use crate::families::{self, Family};
use crate::sched::{ScriptScheduler, ScriptState};

/// A shrunk, replayable protocol-violation witness.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Family whose probe Morph was registered.
    pub family: Family,
    /// Tiles in the system under check.
    pub tiles: usize,
    /// Fault plan armed during the run, in [`FaultPlan::parse`] format
    /// (`seed:kind[:count]`), or `None` for an unfaulted run.
    pub faults: Option<String>,
    /// Property class the witness violates.
    pub kind: PropertyKind,
    /// Description of the violated property (from the replay).
    pub message: String,
    /// The step sequence, executed in order from the initial state.
    pub steps: Vec<Step>,
}

impl Counterexample {
    /// Serialize to the committed text format.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("takocex v1\n");
        s.push_str(&format!("family: {}\n", self.family.name()));
        s.push_str(&format!("tiles: {}\n", self.tiles));
        s.push_str(&format!(
            "faults: {}\n",
            self.faults.as_deref().unwrap_or("none")
        ));
        s.push_str(&format!("kind: {}\n", self.kind));
        s.push_str(&format!("message: {}\n", self.message));
        for st in &self.steps {
            let op = if st.write { 'W' } else { 'R' };
            let script = st
                .script
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            s.push_str(&format!(
                "step: t{} {} {} ; {}\n",
                st.tile, op, st.line, script
            ));
        }
        s.push_str("end\n");
        s
    }

    /// Parse a [`Counterexample::render`] document.
    pub fn parse(text: &str) -> Result<Counterexample, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("takocex v1") => {}
            other => return Err(format!("bad header {other:?} (want \"takocex v1\")")),
        }
        let mut family = None;
        let mut tiles = 2usize;
        let mut faults = None;
        let mut kind = None;
        let mut message = String::new();
        let mut steps = Vec::new();
        let mut ended = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "end" {
                ended = true;
                break;
            }
            let (key, val) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed line {line:?}"))?;
            let val = val.trim();
            match key {
                "family" => {
                    family =
                        Some(Family::parse(val).ok_or_else(|| format!("unknown family {val:?}"))?);
                }
                "tiles" => {
                    tiles = val.parse().map_err(|_| format!("bad tile count {val:?}"))?;
                }
                "faults" => {
                    if val != "none" {
                        // Validate eagerly so a bad plan fails at parse
                        // time, not mid-replay.
                        FaultPlan::parse(val).map_err(|e| format!("bad fault plan: {e}"))?;
                        faults = Some(val.to_string());
                    }
                }
                "kind" => {
                    kind = Some(
                        PropertyKind::parse(val)
                            .ok_or_else(|| format!("unknown property kind {val:?}"))?,
                    );
                }
                "message" => message = val.to_string(),
                "step" => steps.push(parse_step(val)?),
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if !ended {
            return Err("missing \"end\" terminator".to_string());
        }
        Ok(Counterexample {
            family: family.ok_or("missing family")?,
            tiles,
            faults,
            kind: kind.ok_or("missing kind")?,
            message,
            steps,
        })
    }

    /// Parsed fault plan, if one is armed.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults
            .as_deref()
            .map(|s| FaultPlan::parse(s).expect("fault plan validated at parse time"))
    }
}

fn parse_step(val: &str) -> Result<Step, String> {
    // "t0 W 3 ; 1 0" — tile, op, line index, then the schedule script.
    let (action, script) = val
        .split_once(';')
        .ok_or_else(|| format!("step missing ';': {val:?}"))?;
    let mut parts = action.split_whitespace();
    let tile = parts
        .next()
        .and_then(|t| t.strip_prefix('t'))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad step tile in {val:?}"))?;
    let write = match parts.next() {
        Some("R") => false,
        Some("W") => true,
        other => return Err(format!("bad step op {other:?} in {val:?}")),
    };
    let line = parts
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or_else(|| format!("bad step line in {val:?}"))?;
    if parts.next().is_some() {
        return Err(format!("trailing tokens in step {val:?}"));
    }
    let script = script
        .split_whitespace()
        .map(|c| {
            c.parse()
                .map_err(|_| format!("bad script choice in {val:?}"))
        })
        .collect::<Result<Vec<usize>, String>>()?;
    Ok(Step {
        tile,
        write,
        line,
        script,
    })
}

/// Re-execute `steps` from a fresh system and return the first
/// violation hit, if any. Sequential replay reproduces the explorer's
/// states exactly: each explored node's snapshot was itself produced by
/// running this step prefix at these clocks.
pub fn replay(
    family: Family,
    tiles: usize,
    faults: Option<&FaultPlan>,
    steps: &[Step],
) -> Option<(PropertyKind, String)> {
    let mut cs = families::build(family, tiles, faults);
    let shared = Rc::new(RefCell::new(ScriptState::default()));
    cs.sys
        .hierarchy_mut()
        .install_scheduler(Some(Box::new(ScriptScheduler(Rc::clone(&shared)))));
    for (depth, step) in steps.iter().enumerate() {
        if step.line >= cs.lines.len() {
            return Some((
                PropertyKind::Safety,
                format!("step line index {} out of range", step.line),
            ));
        }
        run_step(&mut cs, &shared, step, depth);
        let st = shared.borrow();
        if let Some(found) = check_state(&cs.sys, &st) {
            return Some(found);
        }
    }
    None
}

/// Replay a parsed counterexample document.
pub fn replay_cex(cex: &Counterexample) -> Option<(PropertyKind, String)> {
    replay(cex.family, cex.tiles, cex.fault_plan().as_ref(), &cex.steps)
}

/// Shrink a violating step sequence: greedily drop whole steps, then
/// trim surviving schedule scripts back toward the hardware schedule,
/// re-replaying after every candidate edit. The result still violates
/// the same property class; the final message is taken from the last
/// successful replay.
pub fn shrink(
    family: Family,
    tiles: usize,
    faults: Option<&FaultPlan>,
    kind: PropertyKind,
    steps: &[Step],
) -> (Vec<Step>, String) {
    let reproduces = |cand: &[Step]| -> Option<String> {
        match replay(family, tiles, faults, cand) {
            Some((k, m)) if k == kind => Some(m),
            _ => None,
        }
    };
    let mut cur = steps.to_vec();
    let mut message = reproduces(&cur)
        .unwrap_or_else(|| panic!("shrink input does not reproduce its {kind} violation"));
    let mut i = 0;
    while i < cur.len() {
        let mut cand = cur.clone();
        cand.remove(i);
        match reproduces(&cand) {
            Some(m) => {
                cur = cand;
                message = m;
            }
            None => i += 1,
        }
    }
    for i in 0..cur.len() {
        while !cur[i].script.is_empty() {
            let mut cand = cur.clone();
            cand[i].script.pop();
            match reproduces(&cand) {
                Some(m) => {
                    cur = cand;
                    message = m;
                }
                None => break,
            }
        }
    }
    (cur, message)
}
