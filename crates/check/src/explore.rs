//! Bounded exhaustive exploration of the callback protocol layer.
//!
//! The explorer drives the *real* staged pipeline — [`TakoSystem`] with
//! the tiny geometry from [`crate::families`] — through every
//! interleaving the [`tako_core::StageScheduler`] seam can reach, to a
//! bounded number of architectural actions. Search is breadth-first
//! over snapshot bytes: each node restores its parent's snapshot, runs
//! one action under one schedule script, asserts the safety and
//! liveness properties, and fingerprints the resulting protocol state
//! to close the visited set. Alternative schedules are enumerated by
//! replaying the recorded consultation trace with one choice flipped,
//! so exactly the reachable schedule tree is explored (capped per
//! action, with overflow counted — never silently dropped).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use tako_core::TakoSystem;
use tako_cpu::{AccessKind, MemSystem};
use tako_mem::addr::is_phantom;
use tako_sim::fault::FaultPlan;
use tako_sim::Cycle;

use crate::families::{self, CheckSystem, Family};
use crate::fingerprint::fingerprint;
use crate::sched::{ScriptScheduler, ScriptState, LIVELOCK_CAP, MAX_SCRIPT};

/// Logical cycles between successive architectural actions: generous
/// enough that every callback chain from one action quiesces before
/// the next action's clock.
pub const STEP_CYCLES: Cycle = 100_000;

/// One architectural action plus the schedule script it ran under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Issuing tile.
    pub tile: usize,
    /// Store (`true`) or load (`false`).
    pub write: bool,
    /// Index into the family's line alphabet ([`families::CheckSystem::lines`]).
    pub line: usize,
    /// Scheduler choices forced at the first consultations; hardware
    /// defaults beyond the end.
    pub script: Vec<usize>,
}

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Maximum architectural actions along any path.
    pub depth: usize,
    /// Tiles in the system under check.
    pub tiles: usize,
    /// Schedule scripts explored per `(state, action)` pair; overflow
    /// beyond the cap is counted in the report.
    pub max_scripts: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            depth: 6,
            tiles: 2,
            max_scripts: 64,
        }
    }
}

/// Which property class a violation falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyKind {
    /// An invariant broken in a reachable state.
    Safety,
    /// Progress lost: a parked callback, a checked-out engine, or a
    /// stage walk that never stops consulting the scheduler.
    Liveness,
}

impl PropertyKind {
    /// Stable lowercase name (report + counterexample files).
    pub fn name(self) -> &'static str {
        match self {
            PropertyKind::Safety => "safety",
            PropertyKind::Liveness => "liveness",
        }
    }

    /// Parse a [`PropertyKind::name`] back.
    pub fn parse(s: &str) -> Option<PropertyKind> {
        match s {
            "safety" => Some(PropertyKind::Safety),
            "liveness" => Some(PropertyKind::Liveness),
            _ => None,
        }
    }
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A property violation plus the step sequence that reached it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Safety or liveness.
    pub kind: PropertyKind,
    /// Human-readable description of the broken property.
    pub message: String,
    /// Path from the initial state (unshrunk; see [`crate::cex`]).
    pub steps: Vec<Step>,
}

/// Result of exhausting (or aborting) one family's state space.
#[derive(Debug)]
pub struct FamilyReport {
    /// The family explored.
    pub family: Family,
    /// Distinct protocol states reached (including the initial state).
    pub states: usize,
    /// `(state, action, script)` edges executed.
    pub edges: usize,
    /// States first reached at each depth; `frontier[0] == 1`.
    pub frontier: Vec<usize>,
    /// Schedule scripts dropped by the per-action cap.
    pub script_overflows: usize,
    /// First violation found in BFS order (shortest path), if any.
    pub violation: Option<Violation>,
}

impl FamilyReport {
    /// Render the deterministic report block (no wall-clock content, so
    /// equal explorations render byte-identically).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let frontier = self
            .frontier
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("/");
        s.push_str(&format!(
            "[{}] states {}, edges {}, frontier {}, script overflows {}\n",
            self.family.name(),
            self.states,
            self.edges,
            frontier,
            self.script_overflows,
        ));
        match &self.violation {
            None => s.push_str(&format!("[{}] clean\n", self.family.name())),
            Some(v) => {
                s.push_str(&format!(
                    "[{}] {} VIOLATION after {} steps: {}\n",
                    self.family.name(),
                    v.kind,
                    v.steps.len(),
                    v.message,
                ));
            }
        }
        s
    }
}

/// Execute `step` on `cs` (restored beforehand by the caller), with the
/// step's script armed in `shared`, at the logical clock for `depth`.
pub fn run_step(
    cs: &mut CheckSystem,
    shared: &Rc<RefCell<ScriptState>>,
    step: &Step,
    depth: usize,
) {
    shared.borrow_mut().arm(step.script.clone());
    let now = (depth as Cycle + 1) * STEP_CYCLES;
    let kind = if step.write {
        AccessKind::Write
    } else {
        AccessKind::Read
    };
    let addr = cs.lines[step.line];
    cs.sys.timed_access(step.tile, kind, addr, now);
}

/// Check every safety property in a quiesced state. Returns the first
/// broken property's description.
pub fn safety_check(sys: &TakoSystem) -> Option<String> {
    let h = sys.hierarchy();
    // A quarantined Morph means the restriction checker (Sec 4.3) or
    // the fault layer caught an illegal action; in an unfaulted run the
    // probe Morphs are legal, so reaching quarantine is a finding.
    if let Some((id, reason)) = h.registry.quarantined_morphs().next() {
        return Some(format!("morph {id} quarantined: {reason}"));
    }
    // trrîp's one-callback-free-line-per-set rule in every
    // morph-capable array (Sec 5.2's deadlock-freedom precondition).
    for (i, t) in h.tiles.iter().enumerate() {
        if !t.l2.morph_invariant_holds() {
            return Some(format!("tile {i} L2 breaks the free-line-per-set rule"));
        }
    }
    for (b, bank) in h.llc.iter().enumerate() {
        if !bank.morph_invariant_holds() {
            return Some(format!("LLC bank {b} breaks the free-line-per-set rule"));
        }
    }
    // MSHR occupancy and the Sec 5.2 callback reservation: callback
    // misses must never hold every entry of a file.
    for (b, m) in h.mshrs.iter().enumerate() {
        if m.len() > m.capacity() {
            return Some(format!(
                "LLC bank {b} MSHR file oversubscribed ({} of {})",
                m.len(),
                m.capacity()
            ));
        }
        if m.capacity() > 0 && m.callback_entries() >= m.capacity() {
            return Some(format!(
                "callback misses hold all {} MSHRs of LLC bank {b}",
                m.capacity()
            ));
        }
    }
    // Coherence SWMR: a line held exclusive by one tile's private
    // caches must not be valid anywhere else. PRIVATE-Morph phantom
    // lines are exempt: each tile's callbacks materialize a tile-local
    // view with no directory entry, so per-tile copies are by design.
    let mut holders: HashMap<u64, (u64, u64)> = HashMap::new();
    for (i, t) in h.tiles.iter().enumerate() {
        for e in t.l1d.iter().chain(t.l2.iter()) {
            let (held, excl) = holders.entry(e.line).or_insert((0, 0));
            *held |= 1 << i;
            if e.exclusive {
                *excl |= 1 << i;
            }
        }
    }
    let mut lines: Vec<_> = holders.into_iter().collect();
    lines.sort_unstable_by_key(|&(line, _)| line);
    for (line, (held, excl)) in lines {
        if is_phantom(line)
            && matches!(
                h.registry.lookup(line),
                Some((_, tako_core::MorphLevel::Private))
            )
        {
            continue;
        }
        if excl != 0 && (excl.count_ones() > 1 || held != excl) {
            return Some(format!(
                "line {line:#x} exclusive in tiles {excl:#b} but held in tiles {held:#b}"
            ));
        }
    }
    None
}

/// Check the liveness properties after an action's walk returned.
pub fn liveness_check(sys: &TakoSystem, st: &ScriptState) -> Option<String> {
    if st.livelock {
        return Some(format!(
            "stage walk consulted the scheduler {LIVELOCK_CAP} times in one action (livelock)"
        ));
    }
    let h = sys.hierarchy();
    if let Some((tile, morph, kind, line, _)) = h.pending_callbacks().first() {
        return Some(format!(
            "{kind:?} callback for morph {morph} line {line:#x} (tile {tile}) left parked after the walk quiesced"
        ));
    }
    for (i, e) in h.engines.iter().enumerate() {
        if e.is_none() {
            return Some(format!("tile {i} engine never checked back in"));
        }
    }
    None
}

/// Run [`safety_check`] then [`liveness_check`].
pub fn check_state(sys: &TakoSystem, st: &ScriptState) -> Option<(PropertyKind, String)> {
    if let Some(m) = safety_check(sys) {
        return Some((PropertyKind::Safety, m));
    }
    if let Some(m) = liveness_check(sys, st) {
        return Some((PropertyKind::Liveness, m));
    }
    None
}

struct Node {
    bytes: Vec<u8>,
    depth: usize,
    steps: Vec<Step>,
}

/// Exhaustively explore one family's bounded state space. Exploration
/// stops at the first violation (BFS order, so the returned path is
/// depth-minimal).
pub fn check_family(family: Family, bounds: &Bounds, faults: Option<&FaultPlan>) -> FamilyReport {
    let mut cs = families::build(family, bounds.tiles, faults);
    let shared = Rc::new(RefCell::new(ScriptState::default()));
    cs.sys
        .hierarchy_mut()
        .install_scheduler(Some(Box::new(ScriptScheduler(Rc::clone(&shared)))));

    // tile × {load, store} × line, in fixed order for determinism.
    let mut actions = Vec::new();
    for tile in 0..bounds.tiles {
        for write in [false, true] {
            for line in 0..cs.lines.len() {
                actions.push((tile, write, line));
            }
        }
    }

    let init_bytes = cs.sys.snapshot_bytes();
    let mut visited = HashSet::new();
    visited.insert(fingerprint(&cs.sys));
    let mut frontier = vec![1usize];
    let mut queue = VecDeque::new();
    queue.push_back(Node {
        bytes: init_bytes,
        depth: 0,
        steps: Vec::new(),
    });

    let mut states = 1usize;
    let mut edges = 0usize;
    let mut script_overflows = 0usize;
    let mut violation = None;

    'search: while let Some(node) = queue.pop_front() {
        if node.depth >= bounds.depth {
            continue;
        }
        for &(tile, write, line) in &actions {
            // Enumerate the schedule tree for this (state, action):
            // start from the all-defaults script, and for every
            // consultation the walk recorded, branch on the choices not
            // taken. `scripts` grows as alternatives are discovered.
            let mut scripts: Vec<Vec<usize>> = vec![Vec::new()];
            let mut si = 0;
            while si < scripts.len() {
                if si >= bounds.max_scripts {
                    script_overflows += scripts.len() - si;
                    break;
                }
                let step = Step {
                    tile,
                    write,
                    line,
                    script: scripts[si].clone(),
                };
                si += 1;
                edges += 1;

                cs.sys
                    .restore_bytes(&node.bytes)
                    .expect("restore of a snapshot this exploration took");
                run_step(&mut cs, &shared, &step, node.depth);

                let st = shared.borrow();
                for i in step.script.len()..st.trace.len().min(MAX_SCRIPT) {
                    let (_, n, chosen) = st.trace[i];
                    for alt in 0..n {
                        if alt != chosen {
                            let mut s: Vec<usize> =
                                st.trace[..i].iter().map(|&(_, _, c)| c).collect();
                            s.push(alt);
                            scripts.push(s);
                        }
                    }
                }

                if let Some((kind, message)) = check_state(&cs.sys, &st) {
                    let mut steps = node.steps.clone();
                    steps.push(step);
                    violation = Some(Violation {
                        kind,
                        message,
                        steps,
                    });
                    break 'search;
                }
                drop(st);

                let fp = fingerprint(&cs.sys);
                if visited.insert(fp) {
                    states += 1;
                    let depth = node.depth + 1;
                    if frontier.len() <= depth {
                        frontier.resize(depth + 1, 0);
                    }
                    frontier[depth] += 1;
                    let mut steps = node.steps.clone();
                    steps.push(step);
                    queue.push_back(Node {
                        bytes: cs.sys.snapshot_bytes(),
                        depth,
                        steps,
                    });
                }
            }
        }
    }

    FamilyReport {
        family,
        states,
        edges,
        frontier,
        script_overflows,
        violation,
    }
}
