//! `tako-check`: an exhaustive small-config model checker for the täkō
//! callback protocol layer.
//!
//! The checker enumerates every interleaving of misses, evictions,
//! writebacks, callback actions, coherence transitions, and MSHR
//! admit/drain decisions that a tiny bounded hierarchy (2 tiles, 2
//! sets, 2 ways, 2-entry MSHR files) can reach within a step bound —
//! and it does so against the *real* staged [`tako_core::TakoSystem`]
//! pipeline, not a re-model. Nondeterminism is injected through the
//! [`tako_core::StageScheduler`] seam in the transaction stage walk;
//! state is captured with the checkpoint layer's snapshot bytes and
//! deduplicated by a protocol-only fingerprint.
//!
//! Properties checked on every reachable state:
//!
//! - **Safety** — the Sec 4.3 restriction rules never trip (no Morph
//!   quarantines in an unfaulted run), the Sec 5.2 MSHR callback
//!   reservation is never oversubscribed, trrîp's
//!   one-callback-free-line-per-set rule holds in every morph-capable
//!   array, and coherence keeps single-writer/multiple-reader.
//! - **Liveness** — every stage walk terminates (no unbounded
//!   scheduler consultation), no callback is left parked in the
//!   writeback buffer after the walk quiesces, and every engine checks
//!   back in.
//!
//! Violations shrink ([`cex::shrink`]) to a minimal replayable
//! [`cex::Counterexample`] whose fault plan string `fault_campaign`
//! can re-arm. The `protocol_check` binary in `tako-bench` drives the
//! per-family sweeps; see EXPERIMENTS.md.

pub mod cex;
pub mod explore;
pub mod families;
pub mod fingerprint;
pub mod sched;

pub use cex::{replay, replay_cex, shrink, Counterexample};
pub use explore::{check_family, Bounds, FamilyReport, PropertyKind, Step, Violation};
pub use families::{Family, FAMILIES};
pub use fingerprint::{fingerprint, Fingerprint};
pub use sched::{ScriptScheduler, ScriptState};
