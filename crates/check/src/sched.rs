//! Schedule scripts: driving the [`StageScheduler`] seam from a
//! recorded/extended choice sequence.
//!
//! An exploration step runs one architectural action under a *script*:
//! a finite list of choice indices consumed positionally, one per
//! scheduler consultation. Consultations past the end of the script
//! take the hardware default, and every consultation is recorded in a
//! trace so the explorer can branch on the alternatives it did not
//! take. The scheduler is handed to the hierarchy as a boxed trait
//! object, so script state lives behind a shared [`Rc`] handle the
//! explorer keeps.

use std::cell::RefCell;
use std::rc::Rc;

use tako_core::{SchedPoint, StageScheduler};

/// Hardware's default choice at a consultation point (what an
/// uninstrumented walk does).
pub fn hw_default(point: SchedPoint, n: usize) -> usize {
    match point {
        // The writeback buffer drains LIFO.
        SchedPoint::DrainPick => n.saturating_sub(1),
        // Callbacks run when triggered; MSHRs drain on bank entry.
        SchedPoint::DeferCallback | SchedPoint::MshrDrain => 0,
    }
}

/// Consultations beyond this many per action stop branching (the
/// script can no longer be extended), bounding the per-action schedule
/// tree: a defer choice re-queues the callback and consults again, so
/// without this cap the tree would be infinite.
pub const MAX_SCRIPT: usize = 12;

/// One action's worth of scheduler consultations is far below this; an
/// action that consults this many times is livelocked in the stage walk.
pub const LIVELOCK_CAP: usize = 10_000;

/// Shared state between the explorer and the installed scheduler.
#[derive(Default)]
pub struct ScriptState {
    /// Choice indices to force, consumed positionally.
    pub script: Vec<usize>,
    /// Consultation cursor (equals `trace.len()`).
    pub pos: usize,
    /// Every consultation this action: `(point, n, chosen)`.
    pub trace: Vec<(SchedPoint, usize, usize)>,
    /// Set when the consultation count blew past [`LIVELOCK_CAP`].
    pub livelock: bool,
}

impl ScriptState {
    /// Reset for a fresh action under `script`.
    pub fn arm(&mut self, script: Vec<usize>) {
        self.script = script;
        self.pos = 0;
        self.trace.clear();
        self.livelock = false;
    }
}

/// The [`StageScheduler`] installed into the hierarchy under check.
pub struct ScriptScheduler(pub Rc<RefCell<ScriptState>>);

impl StageScheduler for ScriptScheduler {
    fn choose(&mut self, point: SchedPoint, n: usize) -> usize {
        let mut st = self.0.borrow_mut();
        if st.trace.len() >= LIVELOCK_CAP {
            // Stop recording and take hardware defaults so the walk can
            // terminate; the explorer reports the livelock.
            st.livelock = true;
            return hw_default(point, n);
        }
        let choice = if st.pos < st.script.len() {
            st.script[st.pos].min(n.saturating_sub(1))
        } else {
            hw_default(point, n)
        };
        st.pos += 1;
        st.trace.push((point, n, choice));
        choice
    }
}
