//! Protocol-state fingerprints for the visited set.
//!
//! The full [`TakoSystem`] snapshot carries timing (ready cycles, LRU
//! stamps, engine clocks) that grows monotonically with the logical
//! clock, so raw snapshot bytes would never collide and the search
//! would never close. The fingerprint instead serializes only the
//! *protocol* state — tag-array occupancy and coherence bits, MSHR and
//! callback-buffer occupancy, deferred callbacks, quarantine — through
//! the same [`SnapWriter`] framing the checkpoint layer uses, and
//! hashes it. Two states with equal fingerprints are
//! protocol-equivalent: every enabled action and every restriction or
//! invariant check behaves identically from either.

use tako_core::TakoSystem;
use tako_sim::checkpoint::SnapWriter;
use tako_sim::digest::Sha256;

/// A 256-bit protocol-state fingerprint.
pub type Fingerprint = [u8; 32];

/// Fingerprint the protocol-visible state of `sys`.
pub fn fingerprint(sys: &TakoSystem) -> Fingerprint {
    let mut w = SnapWriter::new();
    let h = sys.hierarchy();

    w.section("check.tags");
    let arrays = h
        .tiles
        .iter()
        .flat_map(|t| [&t.l1d, &t.l2])
        .chain(h.llc.iter())
        .chain(h.engines.iter().flatten().map(|e| &e.l1d));
    for array in arrays {
        // `iter()` walks sets and ways in storage order, so equal
        // occupancy always serializes identically.
        w.put_len(array.iter().count());
        for e in array.iter() {
            w.put_u64(e.line);
            w.put_bool(e.dirty);
            w.put_bool(e.morph);
            w.put_bool(e.prefetched);
            w.put_bool(e.exclusive);
            w.put_u64(e.sharers);
            match e.owner {
                Some(t) => {
                    w.put_bool(true);
                    w.put_u8(t);
                }
                None => w.put_bool(false),
            }
            // rrpv / lru_stamp / ready_at are timing, not protocol.
        }
    }

    w.section("check.mshrs");
    for m in &h.mshrs {
        w.put_usize(m.len());
        w.put_usize(m.callback_entries());
    }

    w.section("check.callbacks");
    w.put_len(h.pending_callbacks().len());
    for (tile, morph, kind, line, _arrival) in h.pending_callbacks() {
        w.put_usize(*tile);
        w.put_usize(*morph);
        w.put_u8(*kind as u8);
        w.put_u64(*line);
    }

    w.section("check.quarantine");
    for (id, reason) in h.registry.quarantined_morphs() {
        w.put_usize(id);
        w.put_str(reason);
    }

    let mut d = Sha256::new();
    d.update(w.as_bytes());
    d.finish()
}
