//! The bounded systems under check: a tiny two-tile hierarchy plus one
//! probe Morph per case-study family.
//!
//! Each family registers a single, deliberately well-behaved probe
//! Morph whose callbacks exercise that family's characteristic protocol
//! traffic — decompress-style phantom fills from a backing buffer,
//! SoA-style gathers and scatters, NVM-style writeback logging, and
//! trrîp-style engine fills issued *during evictions* (the deadlock
//! scenario the one-callback-free-line-per-set rule exists for). The
//! probes are stateless so snapshot restore never has Morph state to
//! disagree about.

use tako_core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako_mem::addr::Addr;
use tako_sim::config::{SystemConfig, LINE_BYTES};
use tako_sim::fault::FaultPlan;

/// All checkable Morph families, in the canonical report order.
pub const FAMILIES: [Family; 4] = [Family::Decompress, Family::Soa, Family::Nvm, Family::Trrip];

/// One per-family probe workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Phantom SHARED range materialized from a backing buffer.
    Decompress,
    /// Phantom PRIVATE range gathered/scattered against real data.
    Soa,
    /// Real SHARED range whose writebacks append to a redo log.
    Nvm,
    /// Phantom SHARED range whose evictions issue engine fills.
    Trrip,
}

impl Family {
    /// Stable lowercase name (CLI + report + counterexample files).
    pub fn name(self) -> &'static str {
        match self {
            Family::Decompress => "decompress",
            Family::Soa => "soa",
            Family::Nvm => "nvm",
            Family::Trrip => "trrip",
        }
    }

    /// Parse a [`Family::name`] back.
    pub fn parse(s: &str) -> Option<Family> {
        FAMILIES.into_iter().find(|f| f.name() == s)
    }
}

/// The bounded geometry every exploration runs on: `tiles` tiles, and
/// every cache level squeezed to 2 sets × 2 ways (256 B) with the
/// minimum legal 2 MSHRs — so the Sec 5.2 callback reservation leaves
/// exactly one entry — and a 2-deep callback buffer. The watchdog is
/// disabled: the checker asserts the same invariants itself after every
/// action, over every interleaving, rather than sampling them at epoch
/// cadence.
pub fn tiny_config(tiles: usize) -> SystemConfig {
    let mut cfg = SystemConfig::with_tiles(tiles);
    for c in [
        &mut cfg.l1d,
        &mut cfg.l2,
        &mut cfg.llc_bank,
        &mut cfg.engine.l1d,
    ] {
        c.size_bytes = 2 * 2 * LINE_BYTES;
        c.ways = 2;
        c.mshrs = 2;
    }
    cfg.engine.callback_buffer = 2;
    cfg.engine.max_concurrent_callbacks = 2;
    cfg.prefetch.enabled = false;
    cfg.watchdog.enabled = false;
    cfg.checkpoint = None;
    cfg
}

/// A built system under check plus its action-alphabet lines.
pub struct CheckSystem {
    /// The real täkō system (full staged pipeline, tiny geometry).
    pub sys: TakoSystem,
    /// The line addresses actions may touch: six lines of the Morph's
    /// range (covering every `(bank, set)` pair twice over, so two-way
    /// sets conflict) followed by two unmanaged DRAM-backed lines.
    pub lines: Vec<Addr>,
}

/// Build the family's system: tiny config, optional fault plan, the
/// probe Morph registered, and the action alphabet chosen to cover
/// both banks and both sets with conflicts.
pub fn build(family: Family, tiles: usize, faults: Option<&FaultPlan>) -> CheckSystem {
    let mut cfg = tiny_config(tiles);
    cfg.faults = faults.cloned();
    let mut sys = TakoSystem::new(cfg);
    // Unmanaged DRAM-backed scratch every probe may legally touch from
    // a callback (Sec 4.3 allows unmanaged data from any level).
    let data = sys.alloc_real(16 * LINE_BYTES);
    let morph_size = 8 * LINE_BYTES;
    let range = match family {
        Family::Decompress => sys
            .register_phantom(
                MorphLevel::Shared,
                morph_size,
                Box::new(DecompressProbe { src: data.base }),
            )
            .expect("register decompress probe")
            .range(),
        Family::Soa => sys
            .register_phantom(
                MorphLevel::Private,
                morph_size,
                Box::new(SoaProbe { data: data.base }),
            )
            .expect("register soa probe")
            .range(),
        Family::Nvm => {
            let r = sys.alloc_real(morph_size);
            sys.register_real(MorphLevel::Shared, r, Box::new(NvmProbe { log: data.base }))
                .expect("register nvm probe")
                .range()
        }
        Family::Trrip => sys
            .register_phantom(
                MorphLevel::Shared,
                morph_size,
                Box::new(TrripProbe { aux: data.base }),
            )
            .expect("register trrip probe")
            .range(),
    };
    let mut lines: Vec<Addr> = (0..6).map(|i| range.base + i * LINE_BYTES).collect();
    lines.push(data.base);
    lines.push(data.base + LINE_BYTES);
    CheckSystem { sys, lines }
}

/// Phantom lines decompressed out of a packed backing buffer: `onMiss`
/// loads the packed word coherently, "expands" it through the fabric,
/// and fills the line.
struct DecompressProbe {
    src: Addr,
}

impl Morph for DecompressProbe {
    fn name(&self) -> &str {
        "check-decompress"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let off = ctx.offset();
        let (packed, v) = ctx.load_u64(self.src + off % (2 * LINE_BYTES), &[]);
        let v2 = ctx.alu(&[v]);
        ctx.line_fill_u64(packed.wrapping_add(off), &[v2]);
    }
}

/// SoA view: `onMiss` gathers two fields from the real array into the
/// phantom line; `onWriteback` scatters the line's first word back.
struct SoaProbe {
    data: Addr,
}

impl Morph for SoaProbe {
    fn name(&self) -> &str {
        "check-soa"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let off = ctx.offset();
        let (a, va) = ctx.load_u64(self.data + off % (4 * LINE_BYTES), &[]);
        let (b, vb) = ctx.load_u64(self.data + (off + 2 * LINE_BYTES) % (4 * LINE_BYTES), &[]);
        ctx.line_write_u64(0, a, &[va]);
        ctx.line_write_u64(8, b, &[vb]);
    }
    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        let off = ctx.offset();
        let (w, v) = ctx.line_read_u64(0, &[]);
        ctx.store_u64(self.data + off % (4 * LINE_BYTES), w, &[v]);
    }
}

/// NVM transactions: `onWriteback` appends the dirty line's head word
/// to a redo log with a streaming store before the writeback proceeds.
struct NvmProbe {
    log: Addr,
}

impl Morph for NvmProbe {
    fn name(&self) -> &str {
        "check-nvm"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        ctx.alu(&[]);
    }
    fn on_eviction(&mut self, ctx: &mut EngineCtx<'_>) {
        ctx.alu(&[]);
    }
    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        let off = ctx.offset();
        let (w, v) = ctx.line_read_u64(0, &[]);
        ctx.store_stream_u64(self.log + off % (4 * LINE_BYTES), w, &[v]);
    }
}

/// trrîp stressor: `onEviction` issues a coherent engine fill, so
/// engine traffic lands in the very sets being evicted — exactly the
/// churn the one-callback-free-line-per-set rule must survive.
struct TrripProbe {
    aux: Addr,
}

impl Morph for TrripProbe {
    fn name(&self) -> &str {
        "check-trrip"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let off = ctx.offset();
        ctx.line_fill_u64(off, &[]);
    }
    fn on_eviction(&mut self, ctx: &mut EngineCtx<'_>) {
        let off = ctx.offset();
        let (_, v) = ctx.load_u64(self.aux + off % (2 * LINE_BYTES), &[]);
        ctx.alu(&[v]);
    }
}
