//! Integration tests of the protocol model checker: bounded
//! exploration stays clean on every family, reports are deterministic,
//! counterexample documents round-trip, and a seeded illegal-action
//! mutant is caught and shrinks to a short replayable witness.

use tako_check::{
    cex, check_family, families, Bounds, Counterexample, Family, PropertyKind, FAMILIES,
};
use tako_sim::fault::FaultPlan;

fn bounds(depth: usize) -> Bounds {
    Bounds {
        depth,
        tiles: 2,
        max_scripts: 64,
    }
}

#[test]
fn tiny_config_validates() {
    families::tiny_config(2).validate().expect("tiny config");
}

#[test]
fn every_family_builds_and_quiesces() {
    for family in FAMILIES {
        let report = check_family(family, &bounds(1), None);
        assert!(
            report.violation.is_none(),
            "{}: {:?}",
            family.name(),
            report.violation
        );
        assert!(report.states > 1, "{} explored nothing", family.name());
        assert_eq!(report.frontier[0], 1);
    }
}

#[test]
fn exploration_is_deterministic() {
    let a = check_family(Family::Trrip, &bounds(2), None);
    let b = check_family(Family::Trrip, &bounds(2), None);
    assert_eq!(a.render(), b.render());
    assert_eq!(a.states, b.states);
    assert_eq!(a.edges, b.edges);
}

#[test]
fn schedule_scripts_reach_new_states() {
    // With the seam branching on defer/drain choices, depth-2
    // exploration of the trrîp stressor must see schedule-dependent
    // states: strictly more than the 1 + |actions| a depth-1
    // hardware-only walk could ever produce.
    let report = check_family(Family::Trrip, &bounds(2), None);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.frontier.len() > 2 && report.frontier[2] > 0,
        "no depth-2 states: {:?}",
        report.frontier
    );
}

#[test]
fn counterexample_roundtrip() {
    let cex = Counterexample {
        family: Family::Soa,
        tiles: 2,
        faults: Some("7:illegal:1".to_string()),
        kind: PropertyKind::Safety,
        message: "morph 0 quarantined: injected illegal action".to_string(),
        steps: vec![
            tako_check::Step {
                tile: 0,
                write: true,
                line: 3,
                script: vec![1, 0, 2],
            },
            tako_check::Step {
                tile: 1,
                write: false,
                line: 0,
                script: vec![],
            },
        ],
    };
    let text = cex.render();
    let back = Counterexample::parse(&text).expect("parse rendered cex");
    assert_eq!(back.family, cex.family);
    assert_eq!(back.tiles, cex.tiles);
    assert_eq!(back.faults, cex.faults);
    assert_eq!(back.kind, cex.kind);
    assert_eq!(back.message, cex.message);
    assert_eq!(back.steps, cex.steps);
    assert_eq!(back.render(), text);
}

#[test]
fn counterexample_parse_rejects_nonsense() {
    assert!(Counterexample::parse("not a cex").is_err());
    assert!(Counterexample::parse("takocex v1\nfamily: nope\nend\n").is_err());
    // Missing the end terminator.
    assert!(Counterexample::parse("takocex v1\nfamily: soa\nkind: safety\n").is_err());
}

#[test]
fn illegal_action_mutant_is_caught_and_shrinks() {
    // Seed 9 injects the illegal action before the first action's
    // logical clock, so every family trips it on its first callback.
    let plan = FaultPlan::parse("9:illegal:1").expect("mutant plan");
    for family in FAMILIES {
        let report = check_family(family, &bounds(2), Some(&plan));
        let v = report
            .violation
            .unwrap_or_else(|| panic!("{} missed the illegal-action mutant", family.name()));
        assert_eq!(v.kind, PropertyKind::Safety, "{}", v.message);
        assert!(
            v.message.contains("quarantined"),
            "{}: unexpected violation: {}",
            family.name(),
            v.message
        );

        let (steps, message) = cex::shrink(family, 2, Some(&plan), v.kind, &v.steps);
        assert!(
            steps.len() <= 8,
            "{}: shrunk witness still {} steps",
            family.name(),
            steps.len()
        );
        let cex = Counterexample {
            family,
            tiles: 2,
            faults: Some("9:illegal:1".to_string()),
            kind: v.kind,
            message,
            steps,
        };
        // The rendered document must replay to the same violation class.
        let back = Counterexample::parse(&cex.render()).expect("parse shrunk cex");
        let replayed = cex::replay_cex(&back).expect("shrunk cex no longer reproduces");
        assert_eq!(replayed.0, PropertyKind::Safety);
    }
}
