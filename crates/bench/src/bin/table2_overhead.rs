//! Regenerates the paper's table2 overhead experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::table2_overhead(opts));
}
