//! Regenerates the paper's fig06 decompress experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig06_decompress(opts));
}
