//! Regenerates the paper's fig13 phi experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig13_phi(opts));
}
