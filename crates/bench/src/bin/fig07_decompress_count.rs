//! Regenerates the paper's fig07 decompress count experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig07_decompress_count(opts));
}
