//! Regenerates the paper's fig20 nvm instrs experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig20_nvm_instrs(opts));
}
