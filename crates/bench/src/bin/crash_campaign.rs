//! `crash_campaign` — the systematic crash-point sweep behind the
//! recovery-equivalence property.
//!
//! The claim: resume after a crash at *any* I/O site of a journaled
//! campaign either reproduces the uninterrupted run's output
//! byte-for-byte, or quarantines the damaged piece (via `tako_fsck
//! --repair`) and *then* reproduces it — never panics, never resumes
//! wrong.
//!
//! The proof is by exhaustion:
//!
//! 1. **Counting pass** — run the campaign uninterrupted on a counting
//!    [`FaultStorage`], recording the golden output digest and the
//!    number of I/O sites `M`.
//! 2. **Sweep** — for every fault kind and every site `k < M`, run a
//!    fresh campaign with that fault scheduled at site `k` (the run
//!    dies mid-flight), then resume it on clean storage. If the resume
//!    refuses (corrupt manifest), repair with the journal doctor and
//!    resume again. The resumed output digest must equal the golden
//!    digest.
//!
//! The campaign under the sweep is a trio of small synthetic
//! experiments (the same shape as `tests/campaign.rs` uses) so the
//! sweep exhausts in seconds; the I/O path it exercises — manifest,
//! unit journals, `.done` envelopes — is byte-identical to what the
//! full `all_experiments --journal` run uses.
//!
//! ```text
//! crash_campaign [--root <dir>] [--kinds a,b,c] [--seed n] [--verbose]
//! ```
//!
//! Default kinds: `crash,crash-after,torn,drop-rename,flip,dup-append`
//! (every deterministic corruption the backend can inject). Exits
//! nonzero if any site fails to recover.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tako_bench::campaign::{run_campaign, CampaignOpts, CampaignOutcome};
use tako_bench::{doctor, run_variants, Experiment, Opts};
use tako_sim::digest::Sha256;
use tako_sim::storage::CRASH_MARKER;
use tako_sim::storage::{DiskStorage, FaultStorage, IoFault, IoFaultKind, IoFaultPlan, Storage};

// --- the synthetic campaign under test -------------------------------

fn exp_squares(o: Opts) -> String {
    let out = run_variants(o, &[1u64, 2, 3, 4], |v| v * v + o.seed);
    format!("squares {out:?}\n")
}

fn exp_fib(o: Opts) -> String {
    let out = run_variants(o, &[5u64, 8, 13], |v| {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..v {
            (a, b) = (b, a.wrapping_add(b));
        }
        a ^ o.seed
    });
    format!("fib {out:?}\n")
}

fn exp_twophase(o: Opts) -> String {
    let first = run_variants(o, &[2u64, 3], |v| v << 4);
    let second = run_variants(o, &[7u64], |v| v * o.seed);
    format!("twophase {first:?} {second:?}\n")
}

const SWEEP_EXPS: &[(&str, Experiment)] = &[
    ("squares", exp_squares as Experiment),
    ("fib", exp_fib as Experiment),
    ("twophase", exp_twophase as Experiment),
];

fn sweep_opts(seed: u64) -> Opts {
    Opts {
        scale: 1.0,
        paper: false,
        seed,
        // Single worker: the sequence of I/O sites must be identical
        // across the counting pass and every sweep run, and thread
        // interleaving would perturb the numbering.
        jobs: 1,
        lanes: 0,
    }
}

/// Digest of a campaign's observable output: every experiment name and
/// its full printed output, in table order. Timing never enters.
fn outcome_digest(outcome: &CampaignOutcome) -> Result<String, String> {
    let mut h = Sha256::new();
    for (name, r) in &outcome.results {
        match r {
            Ok(res) => {
                h.update(name.as_bytes());
                h.update(&[0]);
                h.update(res.output.as_bytes());
                h.update(&[0]);
            }
            Err(e) => return Err(format!("{name} failed: {e}")),
        }
    }
    Ok(h.finish_hex())
}

fn campaign_opts(dir: &Path, resume: bool, storage: Arc<dyn Storage>) -> CampaignOpts {
    let mut c = CampaignOpts::fresh(dir);
    c.resume = resume;
    c.storage = storage;
    c
}

/// Run one campaign, turning an injected-crash panic into `Err(msg)`.
/// Any *other* panic is a sweep failure and propagates.
fn run_guarded(opts: Opts, c: &CampaignOpts) -> Result<std::io::Result<CampaignOutcome>, String> {
    let prior = std::panic::take_hook();
    // The sweep injects hundreds of crashes on purpose; keep the
    // default hook from spraying a backtrace for each while letting
    // genuine panics through untouched.
    std::panic::set_hook(Box::new(|info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str);
        let msg = msg.or_else(|| info.payload().downcast_ref::<&str>().copied());
        if !msg.unwrap_or("").contains(CRASH_MARKER) {
            eprintln!("panic: {info}");
        }
    }));
    let r = catch_unwind(AssertUnwindSafe(|| run_campaign(opts, c, SWEEP_EXPS)));
    std::panic::set_hook(prior);
    match r {
        Ok(io) => Ok(io),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(msg)
        }
    }
}

struct KindTally {
    kind: IoFaultKind,
    sites: u64,
    survived_run: u64,
    repairs: u64,
    failures: Vec<String>,
}

fn sweep_kind(
    root: &Path,
    seed: u64,
    kind: IoFaultKind,
    sites: u64,
    golden: &str,
    verbose: bool,
) -> KindTally {
    let mut tally = KindTally {
        kind,
        sites,
        survived_run: 0,
        repairs: 0,
        failures: Vec::new(),
    };
    for k in 0..sites {
        let dir = root.join(format!("{}-{k}", kind.name()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = IoFaultPlan {
            seed,
            faults: vec![IoFault { at_op: k, kind }],
        };
        let faulty: Arc<dyn Storage> =
            Arc::new(FaultStorage::new(Arc::new(DiskStorage::new()), plan));
        let first = run_guarded(seed_opts(seed), &campaign_opts(&dir, false, faulty));
        match &first {
            Err(msg) if msg.contains(CRASH_MARKER) => {} // died as planned
            Err(msg) => {
                tally
                    .failures
                    .push(format!("site {k}: unexpected panic in faulted run: {msg}"));
                continue;
            }
            // Silent-corruption kinds (flip, dup-append) and I/O-error
            // kinds let the run finish or fail tidily; both are fine —
            // the property under test is what resume does next.
            Ok(_) => tally.survived_run += 1,
        }

        // Recovery: resume on clean storage. A refusal (corrupt
        // manifest) is repaired by the journal doctor and retried; a
        // panic at any point is an immediate sweep failure.
        let clean: Arc<dyn Storage> = Arc::new(DiskStorage::new());
        let resumed = match run_guarded(seed_opts(seed), &campaign_opts(&dir, true, clean)) {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(_refusal)) => {
                tally.repairs += 1;
                match doctor::repair(&dir) {
                    Ok(_) => {}
                    Err(e) => {
                        tally.failures.push(format!("site {k}: repair failed: {e}"));
                        continue;
                    }
                }
                let clean: Arc<dyn Storage> = Arc::new(DiskStorage::new());
                match run_guarded(seed_opts(seed), &campaign_opts(&dir, true, clean)) {
                    Ok(Ok(outcome)) => outcome,
                    Ok(Err(e)) => {
                        tally
                            .failures
                            .push(format!("site {k}: resume refused even after repair: {e}"));
                        continue;
                    }
                    Err(msg) => {
                        tally
                            .failures
                            .push(format!("site {k}: resume panicked after repair: {msg}"));
                        continue;
                    }
                }
            }
            Err(msg) => {
                tally
                    .failures
                    .push(format!("site {k}: resume panicked: {msg}"));
                continue;
            }
        };
        match outcome_digest(&resumed) {
            Ok(d) if d == golden => {}
            Ok(d) => tally
                .failures
                .push(format!("site {k}: resumed digest {d} != golden {golden}")),
            Err(e) => tally
                .failures
                .push(format!("site {k}: resumed campaign not fully ok: {e}")),
        }
        if verbose {
            eprintln!("  {} site {k}: recovered", kind.name());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    tally
}

fn seed_opts(seed: u64) -> Opts {
    sweep_opts(seed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut seed = 42u64;
    let mut verbose = false;
    let mut kinds: Vec<IoFaultKind> = vec![
        IoFaultKind::Crash,
        IoFaultKind::CrashAfter,
        IoFaultKind::TornWrite { keep: 7 },
        IoFaultKind::DropRename,
        IoFaultKind::BitFlip { offset: 5, bit: 3 },
        IoFaultKind::DuplicateAppend,
    ];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                root = args.get(i + 1).map(PathBuf::from);
                i += 1;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(42);
                i += 1;
            }
            "--kinds" => {
                let spec = args.get(i + 1).cloned().unwrap_or_default();
                kinds = spec
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| match IoFaultKind::from_name(s) {
                        Some(k) => k,
                        None => {
                            eprintln!("crash_campaign: unknown fault kind `{s}`");
                            std::process::exit(2);
                        }
                    })
                    .collect();
                i += 1;
            }
            "--verbose" => verbose = true,
            other => {
                eprintln!("crash_campaign: unknown flag `{other}`");
                eprintln!(
                    "usage: crash_campaign [--root dir] [--seed n] [--kinds a,b,c] [--verbose]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let root = root.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("tako-crash-sweep-{}", std::process::id()))
    });
    let _ = std::fs::create_dir_all(&root);

    // Counting pass: golden digest + I/O-site count.
    let golden_dir = root.join("golden");
    let _ = std::fs::remove_dir_all(&golden_dir);
    let counter = Arc::new(FaultStorage::counting());
    let storage: Arc<dyn Storage> = Arc::clone(&counter) as Arc<dyn Storage>;
    let outcome = match run_campaign(
        seed_opts(seed),
        &campaign_opts(&golden_dir, false, storage),
        SWEEP_EXPS,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("crash_campaign: golden run failed: {e}");
            std::process::exit(2);
        }
    };
    let golden = match outcome_digest(&outcome) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("crash_campaign: golden run not fully ok: {e}");
            std::process::exit(2);
        }
    };
    let sites = counter.ops_performed();
    let _ = std::fs::remove_dir_all(&golden_dir);
    println!("golden digest {golden} over {sites} I/O sites, seed {seed}");

    let mut failed = false;
    for kind in kinds {
        let t = sweep_kind(&root, seed, kind, sites, &golden, verbose);
        let verdict = if t.failures.is_empty() {
            "ok"
        } else {
            "FAILED"
        };
        println!(
            "{:<12} {} sites swept, {} runs survived injection, {} repairs, {} failures: {verdict}",
            t.kind.name(),
            t.sites,
            t.survived_run,
            t.repairs,
            t.failures.len()
        );
        for f in &t.failures {
            println!("    {f}");
            failed = true;
        }
    }
    let _ = std::fs::remove_dir_all(&root);
    if failed {
        println!("crash sweep: recovery-equivalence VIOLATED");
        std::process::exit(1);
    }
    println!("crash sweep: every site recovered to the golden digest");
}
