//! Ablations of täkō's design choices (trrîp, prefetch decoupling).
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::ablations(opts));
}
