//! Regenerates the paper's fig19 nvm experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig19_nvm(opts));
}
