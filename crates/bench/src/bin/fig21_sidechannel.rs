//! Regenerates the paper's fig21 sidechannel experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig21_sidechannel(opts));
}
