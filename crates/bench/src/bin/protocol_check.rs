//! Exhaustive small-config model checking of the callback protocol.
//!
//! Drives `tako-check` over the four case-study Morph families on the
//! tiny bounded hierarchy (2 tiles, 2 sets, 2 ways, 2-entry MSHR
//! files), exhausting every architectural action and every scheduler
//! interleaving to the depth bound, and reporting state counts and the
//! per-depth frontier. Safety (Sec 4.3 restrictions, the Sec 5.2 MSHR
//! callback reservation, trrîp's free-line rule, coherence SWMR) and
//! liveness (no parked callbacks, no checked-out engines, no stage-walk
//! livelock) are asserted on every reachable state.
//!
//! Flags beyond the shared [`Opts`] set (`--jobs` parallelizes across
//! families; output is byte-identical at any job count):
//!
//! ```text
//! --depth <n>        action bound along any path (default 3)
//! --tiles <n>        tiles in the system under check (default 2)
//! --morphs a,b,c     families to sweep (default decompress,soa,nvm,trrip)
//! --max-scripts <n>  schedule scripts per (state, action) (default 64)
//! --faults seed:kind[:count]  arm a deterministic fault plan
//! --mutant           arm the canonical illegal-action mutant and
//!                    require every family to catch and shrink it
//! --write-cex <file> where to write the shrunk counterexample
//! --replay <file>    replay a committed counterexample; exit 0 iff it
//!                    still reproduces its recorded violation
//! ```
//!
//! Exit codes: 0 clean (or mutant caught / replay reproduced), 1 a
//! violation was found (or mutant missed / replay stale), 2 usage.

use std::process::ExitCode;

use tako_bench::Opts;
use tako_check::{cex, check_family, Bounds, Counterexample, Family, FAMILIES};
use tako_sim::fault::FaultPlan;
use tako_sim::parallel::parallel_map;

/// The canonical illegal-action mutant: seed 9 injects before the first
/// action's logical clock, so every family trips it on its first
/// callback. Committed counterexamples in `crates/bench/regressions/`
/// replay this plan string through `FaultPlan::parse`, and
/// `fault_campaign --faults` accepts it unchanged.
const MUTANT_PLAN: &str = "9:illegal:1";

struct Flags {
    depth: usize,
    tiles: usize,
    max_scripts: usize,
    families: Vec<Family>,
    faults: Option<String>,
    mutant: bool,
    write_cex: Option<String>,
    replay: Option<String>,
}

fn parse_flags(unknown: Vec<String>) -> Result<Flags, String> {
    let mut f = Flags {
        depth: 3,
        tiles: 2,
        max_scripts: 64,
        families: FAMILIES.to_vec(),
        faults: None,
        mutant: false,
        write_cex: None,
        replay: None,
    };
    let mut i = 0;
    while i < unknown.len() {
        let arg = unknown[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            unknown
                .get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg {
            "--depth" => {
                f.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--tiles" => {
                f.tiles = value("--tiles")?
                    .parse()
                    .map_err(|e| format!("--tiles: {e}"))?
            }
            "--max-scripts" => {
                f.max_scripts = value("--max-scripts")?
                    .parse()
                    .map_err(|e| format!("--max-scripts: {e}"))?;
            }
            "--morphs" => {
                let list = value("--morphs")?;
                f.families = list
                    .split(',')
                    .map(|s| Family::parse(s.trim()).ok_or_else(|| format!("unknown family {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--faults" => {
                let plan = value("--faults")?;
                FaultPlan::parse(&plan).map_err(|e| format!("--faults: {e}"))?;
                f.faults = Some(plan);
            }
            "--mutant" => f.mutant = true,
            "--write-cex" => f.write_cex = Some(value("--write-cex")?),
            "--replay" => f.replay = Some(value("--replay")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if f.tiles < 2 || !f.tiles.is_power_of_two() {
        return Err(format!("--tiles {} must be a power of two >= 2", f.tiles));
    }
    if f.mutant && f.faults.is_some() {
        return Err("--mutant and --faults are mutually exclusive".to_string());
    }
    if f.mutant {
        f.faults = Some(MUTANT_PLAN.to_string());
    }
    Ok(f)
}

fn replay_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("protocol_check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let cex = match Counterexample::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("protocol_check: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match cex::replay_cex(&cex) {
        Some((kind, message)) if kind == cex.kind => {
            println!(
                "replay {path}: {} violation reproduced in {} steps: {message}",
                kind,
                cex.steps.len()
            );
            ExitCode::SUCCESS
        }
        Some((kind, message)) => {
            println!(
                "replay {path}: reproduced a {kind} violation but the file records {}: {message}",
                cex.kind
            );
            ExitCode::FAILURE
        }
        None => {
            println!(
                "replay {path}: recorded {} violation no longer reproduces",
                cex.kind
            );
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    tako_bench::validate_base_config();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, unknown) = Opts::parse(&args);
    let flags = match parse_flags(unknown) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("protocol_check: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &flags.replay {
        return replay_file(path);
    }

    let bounds = Bounds {
        depth: flags.depth,
        tiles: flags.tiles,
        max_scripts: flags.max_scripts,
    };
    let plan = flags
        .faults
        .as_deref()
        .map(|s| FaultPlan::parse(s).expect("plan validated at flag parse"));
    let family_names = flags
        .families
        .iter()
        .map(|f| f.name())
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "protocol_check: tiles {}, depth {}, max-scripts {}, faults {}, families {}",
        flags.tiles,
        flags.depth,
        flags.max_scripts,
        flags.faults.as_deref().unwrap_or("none"),
        family_names,
    );

    // One exploration per family; `--jobs` fans the families out and
    // results come back in family order, so the report is byte-identical
    // at any job count.
    let reports = parallel_map(opts.jobs, flags.families.clone(), |_, family| {
        check_family(family, &bounds, plan.as_ref())
    });

    let mut total_states = 0usize;
    let mut total_edges = 0usize;
    let mut first_violation = None;
    let mut caught = 0usize;
    for report in &reports {
        print!("{}", report.render());
        total_states += report.states;
        total_edges += report.edges;
        if let Some(v) = &report.violation {
            caught += 1;
            if first_violation.is_none() {
                first_violation = Some((report.family, v.clone()));
            }
        }
    }
    println!(
        "protocol_check: {} families, {} states, {} edges",
        reports.len(),
        total_states,
        total_edges,
    );

    if flags.mutant {
        if caught != reports.len() {
            println!(
                "MUTANT MISSED: only {caught} of {} families caught the armed illegal action",
                reports.len()
            );
            return ExitCode::FAILURE;
        }
        let (family, v) = first_violation.expect("caught > 0");
        let (steps, message) = cex::shrink(family, flags.tiles, plan.as_ref(), v.kind, &v.steps);
        if steps.len() > 8 {
            println!(
                "MUTANT CAUGHT but the witness only shrank to {} steps",
                steps.len()
            );
            return ExitCode::FAILURE;
        }
        let cex = Counterexample {
            family,
            tiles: flags.tiles,
            faults: flags.faults.clone(),
            kind: v.kind,
            message,
            steps,
        };
        println!(
            "mutant caught by every family; shrunk witness: {} steps on {}",
            cex.steps.len(),
            family.name()
        );
        return emit_cex(&cex, flags.write_cex.as_deref());
    }

    match first_violation {
        None => {
            println!("protocol_check: all clean");
            ExitCode::SUCCESS
        }
        Some((family, v)) => {
            let (steps, message) =
                cex::shrink(family, flags.tiles, plan.as_ref(), v.kind, &v.steps);
            let cex = Counterexample {
                family,
                tiles: flags.tiles,
                faults: flags.faults.clone(),
                kind: v.kind,
                message,
                steps,
            };
            println!(
                "protocol_check: VIOLATION on {} (shrunk to {} steps)",
                family.name(),
                cex.steps.len()
            );
            let _ = emit_cex(&cex, flags.write_cex.as_deref());
            ExitCode::FAILURE
        }
    }
}

/// Write (or print) the counterexample document.
fn emit_cex(cex: &Counterexample, path: Option<&str>) -> ExitCode {
    let text = cex.render();
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &text) {
                eprintln!("protocol_check: cannot write {p}: {e}");
                return ExitCode::from(2);
            }
            println!("counterexample written to {p}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{text}");
            ExitCode::SUCCESS
        }
    }
}
