//! Regenerates the paper's fig25 scalability experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig25_scalability(opts));
}
