//! Regenerates the paper's sens callback buffer experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::sens_callback_buffer(opts));
}
