//! Regenerates the paper's fig23 pe latency experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig23_pe_latency(opts));
}
