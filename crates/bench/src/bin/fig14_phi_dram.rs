//! Regenerates the paper's fig14 phi dram experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig14_phi_dram(opts));
}
