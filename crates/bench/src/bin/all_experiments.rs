//! Runs every figure/table harness in sequence (use `--scale` to shrink).
use tako_bench::{experiments as e, Opts};

type Experiment = fn(Opts) -> String;

fn main() {
    let opts = Opts::from_args();
    let experiments: &[(&str, Experiment)] = &[
        ("fig06", e::fig06_decompress),
        ("fig07", e::fig07_decompress_count),
        ("fig13", e::fig13_phi),
        ("fig14", e::fig14_phi_dram),
        ("fig16", e::fig16_hats),
        ("fig17", e::fig17_hats_breakdown),
        ("fig19", e::fig19_nvm),
        ("fig20", e::fig20_nvm_instrs),
        ("fig21", e::fig21_sidechannel),
        ("fig22", e::fig22_fabric_size),
        ("fig23", e::fig23_pe_latency),
        ("fig24", e::fig24_core_uarch),
        ("fig25", e::fig25_scalability),
        ("table2", e::table2_overhead),
        ("sens_cb", e::sens_callback_buffer),
        ("sens_rtlb", e::sens_rtlb),
        ("ablations", e::ablations),
    ];
    for (name, f) in experiments {
        let t0 = std::time::Instant::now();
        let out = f(opts);
        println!("{out}  [{name} took {:.1?}]\n", t0.elapsed());
    }
}
