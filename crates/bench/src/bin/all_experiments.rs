//! Runs every figure/table harness, fanned out across `--jobs` worker
//! threads, printing each harness's output in the fixed table order
//! (use `--scale` to shrink workloads).
//!
//! Extra flags beyond the shared [`Opts`] set:
//!
//! ```text
//! --bench-json <path>   also write a BENCH_sim.json throughput report
//! --bench               shorthand for --bench-json BENCH_sim.json
//! ```
//!
//! The printed experiment output is byte-identical for every `--jobs`
//! value; only the timing annotations and the JSON report vary.

use std::time::Instant;

use tako_bench::{run_all, warn_unknown, Opts};

/// Flags specific to this binary, parsed from the leftovers of
/// [`Opts::parse`].
fn parse_bench_flags(unknown: Vec<String>) -> Option<String> {
    let mut json_path = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < unknown.len() {
        match unknown[i].as_str() {
            "--bench" => {
                json_path.get_or_insert_with(|| "BENCH_sim.json".to_string());
            }
            "--bench-json" => {
                if let Some(p) = unknown.get(i + 1) {
                    json_path = Some(p.clone());
                    i += 1;
                } else {
                    eprintln!("warning: --bench-json needs a path");
                }
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    warn_unknown(&rest);
    json_path
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, unknown) = Opts::parse(&args);
    let json_path = parse_bench_flags(unknown);

    let t0 = Instant::now();
    let results = run_all(opts);
    let total_wall = t0.elapsed();

    for r in &results {
        println!("{}  [{} took {:.1?}]\n", r.output, r.name, r.wall);
    }

    let accesses = tako_sim::stats::simulated_accesses();
    let total_s = total_wall.as_secs_f64();
    eprintln!(
        "all experiments: {total_s:.1}s wall on {} jobs, \
         {accesses} simulated accesses ({:.0}/s)",
        opts.jobs,
        accesses as f64 / total_s.max(1e-9),
    );

    if let Some(path) = json_path {
        let json = bench_json(opts, total_s, accesses, &results);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("error: writing {path}: {e}"),
        }
    }
}

/// Hand-rolled JSON (the workspace carries no serde): the throughput
/// report consumed by EXPERIMENTS.md's benchmarking section.
fn bench_json(
    opts: Opts,
    total_wall_s: f64,
    accesses: u64,
    results: &[tako_bench::ExperimentResult],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
    s.push_str(&format!("  \"scale\": {},\n", opts.scale));
    s.push_str(&format!("  \"seed\": {},\n", opts.seed));
    s.push_str(&format!("  \"total_wall_s\": {total_wall_s:.3},\n"));
    s.push_str(&format!("  \"simulated_accesses\": {accesses},\n"));
    s.push_str(&format!(
        "  \"accesses_per_sec\": {:.0},\n",
        accesses as f64 / total_wall_s.max(1e-9)
    ));
    s.push_str("  \"experiments\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        s.push_str(&format!(
            "    \"{}\": {{\"wall_s\": {:.3}}}{comma}\n",
            r.name,
            r.wall.as_secs_f64()
        ));
    }
    s.push_str("  }\n}\n");
    s
}
