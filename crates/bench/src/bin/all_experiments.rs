//! Runs every figure/table harness, fanned out across `--jobs` worker
//! threads, printing each harness's output in the fixed table order
//! (use `--scale` to shrink workloads).
//!
//! Extra flags beyond the shared [`Opts`] set:
//!
//! ```text
//! --bench-json <path>   also write a BENCH_sim.json throughput report
//! --bench               shorthand for --bench-json BENCH_sim.json
//! --keep-going          isolate harness panics: finish the others,
//!                       print a FAILURES section, exit nonzero
//! --force-panic <name>  panic inside the named harness (tests the
//!                       --keep-going contract)
//! ```
//!
//! The printed experiment output is byte-identical for every `--jobs`
//! value; only the timing annotations and the JSON report vary.

use std::time::Instant;

use tako_bench::{
    run_all, run_all_catch, validate_base_config, warn_unknown, ExperimentResult, Opts,
};

/// Flags specific to this binary, parsed from the leftovers of
/// [`Opts::parse`].
struct BenchFlags {
    json_path: Option<String>,
    keep_going: bool,
    force_panic: Option<String>,
}

fn parse_bench_flags(unknown: Vec<String>) -> BenchFlags {
    let mut flags = BenchFlags {
        json_path: None,
        keep_going: false,
        force_panic: None,
    };
    let mut rest = Vec::new();
    let mut i = 0;
    while i < unknown.len() {
        match unknown[i].as_str() {
            "--bench" => {
                flags
                    .json_path
                    .get_or_insert_with(|| "BENCH_sim.json".to_string());
            }
            "--bench-json" => {
                if let Some(p) = unknown.get(i + 1) {
                    flags.json_path = Some(p.clone());
                    i += 1;
                } else {
                    eprintln!("warning: --bench-json needs a path");
                }
            }
            "--keep-going" => flags.keep_going = true,
            "--force-panic" => {
                if let Some(n) = unknown.get(i + 1) {
                    flags.force_panic = Some(n.clone());
                    i += 1;
                } else {
                    eprintln!("warning: --force-panic needs a harness name");
                }
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    warn_unknown(&rest);
    flags
}

fn main() {
    validate_base_config();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, unknown) = Opts::parse(&args);
    let flags = parse_bench_flags(unknown);
    if flags.force_panic.is_some() && !flags.keep_going {
        eprintln!("warning: --force-panic without --keep-going aborts the run");
    }

    let t0 = Instant::now();
    let results: Vec<(&str, Result<ExperimentResult, String>)> = if flags.keep_going {
        run_all_catch(opts, flags.force_panic.as_deref())
    } else {
        run_all(opts).into_iter().map(|r| (r.name, Ok(r))).collect()
    };
    let total_wall = t0.elapsed();

    let mut failures: Vec<(&str, &str)> = Vec::new();
    let mut succeeded: Vec<&ExperimentResult> = Vec::new();
    for (name, r) in &results {
        match r {
            Ok(res) => {
                println!("{}  [{} took {:.1?}]\n", res.output, res.name, res.wall);
                succeeded.push(res);
            }
            Err(msg) => failures.push((name, msg)),
        }
    }
    if !failures.is_empty() {
        println!("FAILURES:");
        for (name, msg) in &failures {
            println!("  {name}: {msg}");
        }
    }

    let accesses = tako_sim::stats::simulated_accesses();
    let total_s = total_wall.as_secs_f64();
    eprintln!(
        "all experiments: {}/{} ok in {total_s:.1}s wall on {} jobs, \
         {accesses} simulated accesses ({:.0}/s)",
        succeeded.len(),
        results.len(),
        opts.jobs,
        accesses as f64 / total_s.max(1e-9),
    );

    if let Some(path) = flags.json_path {
        let json = bench_json(opts, total_s, accesses, &succeeded);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("error: writing {path}: {e}"),
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (the workspace carries no serde): the throughput
/// report consumed by EXPERIMENTS.md's benchmarking section.
fn bench_json(
    opts: Opts,
    total_wall_s: f64,
    accesses: u64,
    results: &[&ExperimentResult],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
    s.push_str(&format!("  \"scale\": {},\n", opts.scale));
    s.push_str(&format!("  \"seed\": {},\n", opts.seed));
    s.push_str(&format!("  \"total_wall_s\": {total_wall_s:.3},\n"));
    s.push_str(&format!("  \"simulated_accesses\": {accesses},\n"));
    s.push_str(&format!(
        "  \"accesses_per_sec\": {:.0},\n",
        accesses as f64 / total_wall_s.max(1e-9)
    ));
    s.push_str("  \"experiments\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        s.push_str(&format!(
            "    \"{}\": {{\"wall_s\": {:.3}}}{comma}\n",
            r.name,
            r.wall.as_secs_f64()
        ));
    }
    s.push_str("  }\n}\n");
    s
}
