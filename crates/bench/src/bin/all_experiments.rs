//! Runs every figure/table harness, fanned out across `--jobs` worker
//! threads, printing each harness's output in the fixed table order
//! (use `--scale` to shrink workloads).
//!
//! Extra flags beyond the shared [`Opts`] set:
//!
//! ```text
//! --bench-json <path>   also write a BENCH_sim.json throughput report
//! --bench               shorthand for --bench-json BENCH_sim.json
//! --keep-going          isolate harness panics: finish the others,
//!                       print a FAILURES section, exit nonzero
//! --force-panic <name>  panic inside the named harness (tests the
//!                       --keep-going contract)
//! --trace-out <path>    arm the observability layer and write the
//!                       merged event trace as Chrome trace_event JSON
//!                       (load in chrome://tracing or Perfetto)
//! --profile             arm the observability layer and print the
//!                       per-stage cycle-attribution table
//! ```
//!
//! Supervised-campaign flags (see `tako_bench::campaign`):
//!
//! ```text
//! --journal <dir>           journal the run: per-experiment .done
//!                           records and in-experiment unit checkpoints
//! --resume                  resume an interrupted campaign from the
//!                           journal instead of starting fresh
//! --deadline <secs>         wall-clock budget per experiment attempt;
//!                           exceeded -> triage bundle + retry
//! --retries <n>             retries per failed experiment, with a
//!                           seeded deterministic backoff schedule
//! --checkpoint-every <n>    sync the unit journal every n units
//! --crash-after-units <n>   die after n journaled units (the
//!                           interrupt/resume smoke's crash hook)
//! --io-faults <plan>        run the journal on the fault-injecting
//!                           storage backend; plan is
//!                           `seed:kind[:count]` with kind one of
//!                           crash, crash-after, torn, drop-rename,
//!                           dup-append, flip, transient, permanent
//! ```
//!
//! The printed experiment output is byte-identical for every `--jobs`
//! value — and for a journaled run whether it completed in one go or
//! was interrupted and resumed; only the timing annotations and the
//! JSON report vary.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tako_bench::campaign::{run_campaign, CampaignOpts};
use tako_bench::{
    run_all, run_all_catch, validate_base_config, warn_unknown, ExperimentResult, Opts, EXPERIMENTS,
};
use tako_sim::storage::{DiskStorage, FaultStorage, IoFaultPlan, Storage};

/// Flags specific to this binary, parsed from the leftovers of
/// [`Opts::parse`].
struct BenchFlags {
    json_path: Option<String>,
    keep_going: bool,
    force_panic: Option<String>,
    trace_out: Option<String>,
    profile: bool,
    journal: Option<String>,
    resume: bool,
    deadline: Option<f64>,
    retries: u32,
    checkpoint_every: u64,
    crash_after_units: Option<u64>,
    io_faults: Option<IoFaultPlan>,
}

fn parse_bench_flags(unknown: Vec<String>) -> BenchFlags {
    let mut flags = BenchFlags {
        json_path: None,
        keep_going: false,
        force_panic: None,
        trace_out: None,
        profile: false,
        journal: None,
        resume: false,
        deadline: None,
        retries: 0,
        checkpoint_every: 1,
        crash_after_units: None,
        io_faults: None,
    };
    let mut rest = Vec::new();
    let mut i = 0;
    while i < unknown.len() {
        match unknown[i].as_str() {
            "--bench" => {
                flags
                    .json_path
                    .get_or_insert_with(|| "BENCH_sim.json".to_string());
            }
            "--bench-json" => {
                if let Some(p) = unknown.get(i + 1) {
                    flags.json_path = Some(p.clone());
                    i += 1;
                } else {
                    eprintln!("warning: --bench-json needs a path");
                }
            }
            "--keep-going" => flags.keep_going = true,
            "--trace-out" => {
                if let Some(p) = unknown.get(i + 1) {
                    flags.trace_out = Some(p.clone());
                    i += 1;
                } else {
                    eprintln!("warning: --trace-out needs a path");
                }
            }
            "--profile" => flags.profile = true,
            "--force-panic" => {
                if let Some(n) = unknown.get(i + 1) {
                    flags.force_panic = Some(n.clone());
                    i += 1;
                } else {
                    eprintln!("warning: --force-panic needs a harness name");
                }
            }
            "--journal" => {
                if let Some(p) = unknown.get(i + 1) {
                    flags.journal = Some(p.clone());
                    i += 1;
                } else {
                    eprintln!("warning: --journal needs a directory");
                }
            }
            "--resume" => flags.resume = true,
            "--deadline" => {
                if let Some(v) = unknown.get(i + 1) {
                    flags.deadline = v.parse().ok();
                    i += 1;
                } else {
                    eprintln!("warning: --deadline needs seconds");
                }
            }
            "--retries" => {
                if let Some(v) = unknown.get(i + 1) {
                    flags.retries = v.parse().unwrap_or(0);
                    i += 1;
                } else {
                    eprintln!("warning: --retries needs a count");
                }
            }
            "--checkpoint-every" => {
                if let Some(v) = unknown.get(i + 1) {
                    flags.checkpoint_every = v.parse::<u64>().unwrap_or(1).max(1);
                    i += 1;
                } else {
                    eprintln!("warning: --checkpoint-every needs a count");
                }
            }
            "--crash-after-units" => {
                if let Some(v) = unknown.get(i + 1) {
                    flags.crash_after_units = v.parse().ok();
                    i += 1;
                } else {
                    eprintln!("warning: --crash-after-units needs a count");
                }
            }
            "--io-faults" => {
                if let Some(v) = unknown.get(i + 1) {
                    match IoFaultPlan::parse(v) {
                        Ok(plan) => flags.io_faults = Some(plan),
                        Err(e) => {
                            eprintln!("error: --io-faults {v}: {e}");
                            std::process::exit(2);
                        }
                    }
                    i += 1;
                } else {
                    eprintln!("warning: --io-faults needs seed:kind[:count]");
                }
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    warn_unknown(&rest);
    flags
}

fn main() {
    validate_base_config();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, unknown) = Opts::parse(&args);
    let flags = parse_bench_flags(unknown);
    if flags.force_panic.is_some() && !flags.keep_going && flags.journal.is_none() {
        eprintln!("warning: --force-panic without --keep-going aborts the run");
    }

    // Arm observability before any system is built: hierarchies attach
    // their observer at construction.
    let tracing = flags.trace_out.is_some() || flags.profile;
    if tracing {
        tako_sim::trace::arm();
    }

    let t0 = Instant::now();
    let results: Vec<(&str, Result<ExperimentResult, String>)> = if let Some(dir) = &flags.journal {
        let storage: Arc<dyn Storage> = match flags.io_faults.clone() {
            Some(plan) => Arc::new(FaultStorage::new(Arc::new(DiskStorage::new()), plan)),
            None => Arc::new(DiskStorage::new()),
        };
        let c = CampaignOpts {
            dir: dir.into(),
            resume: flags.resume,
            deadline: flags.deadline.map(Duration::from_secs_f64),
            retries: flags.retries,
            checkpoint_every: flags.checkpoint_every,
            force_panic: flags.force_panic.clone(),
            crash_after_units: flags.crash_after_units,
            storage,
        };
        match run_campaign(opts, &c, EXPERIMENTS) {
            Ok(outcome) => {
                eprintln!(
                    "campaign: {} replayed from journal, {} attempts executed",
                    outcome.replayed, outcome.attempts
                );
                if !outcome.io.is_clean() {
                    eprintln!("campaign: storage degraded: {}", outcome.io);
                }
                outcome.results
            }
            Err(e) => {
                eprintln!("error: campaign journal: {e}");
                std::process::exit(2);
            }
        }
    } else if flags.keep_going {
        run_all_catch(opts, flags.force_panic.as_deref())
    } else {
        run_all(opts).into_iter().map(|r| (r.name, Ok(r))).collect()
    };
    let total_wall = t0.elapsed();

    let mut failures: Vec<(&str, &str)> = Vec::new();
    let mut succeeded: Vec<&ExperimentResult> = Vec::new();
    for (name, r) in &results {
        match r {
            Ok(res) => {
                println!("{}  [{} took {:.1?}]\n", res.output, res.name, res.wall);
                succeeded.push(res);
            }
            Err(msg) => failures.push((name, msg)),
        }
    }
    if !failures.is_empty() {
        println!("FAILURES:");
        for (name, msg) in &failures {
            println!("  {name}: {msg}");
        }
    }

    // Disarm and drain *before* bench_json: its checkpoint-overhead
    // probe builds a throwaway system that must run untraced.
    let trace_report = if tracing {
        tako_sim::trace::disarm();
        Some(tako_sim::trace::drain())
    } else {
        None
    };
    // Reports are evidence: write them atomically so a crash mid-write
    // can't leave a half-formed file masquerading as a real one.
    let report_store = DiskStorage::new();
    if let Some(report) = &trace_report {
        if let Some(path) = &flags.trace_out {
            match report_store.write_atomic(
                std::path::Path::new(path),
                report.chrome_trace_json().as_bytes(),
            ) {
                Ok(()) => eprintln!(
                    "wrote {path} ({} trace events, {} interval samples, {} systems)",
                    report.events.len(),
                    report.samples.len(),
                    report.systems
                ),
                Err(e) => eprintln!("error: writing {path}: {e}"),
            }
        }
        if flags.profile {
            println!("PROFILE:\n{}", report.profile_table());
        }
        if let Some(dir) = &flags.journal {
            let path = std::path::Path::new(dir).join("metrics.json");
            match report_store.write_atomic(&path, report.metrics_json().as_bytes()) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("error: writing {}: {e}", path.display()),
            }
        }
    }

    let accesses = tako_sim::stats::simulated_accesses();
    let total_s = total_wall.as_secs_f64();
    eprintln!(
        "all experiments: {}/{} ok in {total_s:.1}s wall on {} jobs, \
         {accesses} simulated accesses ({:.0}/s)",
        succeeded.len(),
        results.len(),
        opts.jobs,
        accesses as f64 / total_s.max(1e-9),
    );

    if let Some(path) = flags.json_path {
        let baseline = committed_accesses_per_sec(&path);
        let json = bench_json(
            opts,
            total_s,
            accesses,
            baseline,
            &succeeded,
            trace_report.as_ref(),
        );
        match report_store.write_atomic(std::path::Path::new(&path), json.as_bytes()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("error: writing {path}: {e}"),
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// Measure snapshot encode/restore cost on a warmed default 16-core
/// system, so BENCH_sim.json records what an epoch-boundary checkpoint
/// actually costs relative to simulation throughput.
fn checkpoint_overhead() -> (usize, f64, f64) {
    use tako_core::TakoSystem;
    use tako_cpu::{AccessKind, MemSystem};
    let mut cfg = tako_sim::config::SystemConfig::default_16core();
    cfg.watchdog.enabled = true;
    let mut sys = TakoSystem::new(cfg);
    let _ = sys.alloc_real(1 << 20);
    let mut t = 0u64;
    for k in 0..50_000u64 {
        let addr = 0x1000_0000 + (k % (1 << 14)) * 64;
        t = sys.timed_access((k % 16) as usize, AccessKind::Read, addr, t);
    }
    const REPS: u32 = 10;
    let t0 = Instant::now();
    let mut snap = Vec::new();
    for _ in 0..REPS {
        snap = sys.snapshot_bytes();
    }
    let snapshot_ms = t0.elapsed().as_secs_f64() * 1000.0 / f64::from(REPS);
    let t1 = Instant::now();
    for _ in 0..REPS {
        sys.restore_bytes(&snap).expect("self-restore");
    }
    let restore_ms = t1.elapsed().as_secs_f64() * 1000.0 / f64::from(REPS);
    (snap.len(), snapshot_ms, restore_ms)
}

/// Pull `accesses_per_sec` out of the previously committed report at
/// `path`, so the fresh report can state its own delta against what the
/// repo last recorded. Naive line scan — the report is hand-rolled JSON
/// with one key per line.
fn committed_accesses_per_sec(path: &str) -> Option<f64> {
    let prev = std::fs::read_to_string(path).ok()?;
    for line in prev.lines() {
        if let Some(rest) = line.trim().strip_prefix("\"accesses_per_sec\":") {
            return rest.trim().trim_end_matches(',').parse().ok();
        }
    }
    None
}

/// Hand-rolled JSON (the workspace carries no serde): the throughput
/// report consumed by EXPERIMENTS.md's benchmarking section.
fn bench_json(
    opts: Opts,
    total_wall_s: f64,
    accesses: u64,
    baseline_accesses_per_sec: Option<f64>,
    results: &[&ExperimentResult],
    trace: Option<&tako_sim::trace::TraceReport>,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
    s.push_str(&format!("  \"lanes\": {},\n", opts.lanes));
    s.push_str(&format!(
        "  \"host_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str(&format!("  \"scale\": {},\n", opts.scale));
    s.push_str(&format!("  \"seed\": {},\n", opts.seed));
    s.push_str(&format!("  \"total_wall_s\": {total_wall_s:.3},\n"));
    s.push_str(&format!("  \"simulated_accesses\": {accesses},\n"));
    let aps = accesses as f64 / total_wall_s.max(1e-9);
    s.push_str(&format!("  \"accesses_per_sec\": {aps:.0},\n"));
    if let Some(base) = baseline_accesses_per_sec {
        s.push_str(&format!("  \"baseline_accesses_per_sec\": {base:.0},\n"));
        s.push_str(&format!(
            "  \"accesses_per_sec_delta\": {:.3},\n",
            aps / base.max(1e-9) - 1.0
        ));
    }
    let (snap_bytes, snap_ms, restore_ms) = checkpoint_overhead();
    s.push_str(&format!(
        "  \"checkpoint\": {{\"snapshot_bytes\": {snap_bytes}, \
         \"snapshot_ms\": {snap_ms:.3}, \"restore_ms\": {restore_ms:.3}}},\n"
    ));
    if let Some(report) = trace {
        s.push_str(&format!("  \"metrics\": {},\n", report.metrics_json()));
    }
    s.push_str("  \"experiments\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        s.push_str(&format!(
            "    \"{}\": {{\"wall_s\": {:.3}}}{comma}\n",
            r.name,
            r.wall.as_secs_f64()
        ));
    }
    s.push_str("  }\n}\n");
    s
}
