//! Seeded fault-injection campaigns over three case studies.
//!
//! Each campaign takes a täkō case study (decompression, SoA layout,
//! NVM transactions), measures a clean run, then replays it under a
//! deterministic [`FaultPlan`] — callback overruns, illegal callback
//! actions, fabric exhaustion, MSHR pressure, delayed DRAM responses —
//! and asserts the robustness contract:
//!
//! * the run completes with **zero invariant violations**,
//! * misbehaving callbacks are quarantined (their range degrades to
//!   baseline behavior instead of wedging the machine),
//! * every injected stall is detected by the watchdog within
//!   `magnitude + stall bound` cycles, with a diagnostic snapshot
//!   instead of a hang,
//! * with injection disabled, output is byte-identical to a run without
//!   the robustness machinery (noninterference).
//!
//! Flags beyond the shared [`Opts`] set:
//!
//! ```text
//! --scenarios <n>        seeded scenarios per case study (default 8)
//! --watchdog-cycles <n>  forward-progress stall bound (default 200000)
//! --faults seed:kind[:count]  replace the seeded set with one ad-hoc
//!                        plan (kinds: overrun illegal fabric mshr dram mix)
//! ```

use tako_bench::{run_variants, warn_unknown, Opts};
use tako_core::{run_multicore_lanes, TakoSystem};
use tako_cpu::{
    AccessKind, BranchPredictor, CoreEnv, CoreTiming, LaneProgram, MemSystem, StepResult,
    ThreadProgram,
};
use tako_sim::checkpoint::encode;
use tako_sim::config::{CheckpointConfig, SystemConfig, WatchdogConfig};
use tako_sim::fault::{FaultKind, FaultPlan};
use tako_sim::rng::Rng;
use tako_sim::stats::Counter;
use tako_workloads::common::RunResult;
use tako_workloads::{decompress, nvm, soa};

/// One case study: a name and a runner producing timing + stats for the
/// täkō variant under an arbitrary system configuration.
struct CaseStudy {
    name: &'static str,
    run: fn(&SystemConfig, &Opts) -> RunResult,
}

fn run_decompress(cfg: &SystemConfig, opts: &Opts) -> RunResult {
    let p = decompress::Params {
        values: opts.sized(4096) as u64,
        accesses: opts.sized(8192) as u64,
        seed: opts.seed,
        ..Default::default()
    };
    decompress::run(decompress::Variant::Tako, p, cfg).run
}

fn run_soa(cfg: &SystemConfig, opts: &Opts) -> RunResult {
    let p = soa::Params {
        elements: opts.sized(16 * 1024) as u64,
        passes: 2,
        seed: opts.seed,
        ..Default::default()
    };
    soa::run(soa::Variant::Tako, p, cfg).run
}

fn run_nvm(cfg: &SystemConfig, opts: &Opts) -> RunResult {
    let p = nvm::Params {
        txn_bytes: 4096,
        txns: opts.sized(8) as u64,
        seed: opts.seed,
    };
    nvm::run(nvm::Variant::Tako, p, cfg).run
}

const CASE_STUDIES: &[CaseStudy] = &[
    CaseStudy {
        name: "decompress",
        run: run_decompress,
    },
    CaseStudy {
        name: "soa",
        run: run_soa,
    },
    CaseStudy {
        name: "nvm",
        run: run_nvm,
    },
];

/// Scenario rotation: each single kind, then a mixed plan.
const ROTATION: &[Option<FaultKind>] = &[
    Some(FaultKind::CallbackOverrun),
    Some(FaultKind::IllegalAction),
    Some(FaultKind::FabricExhaustion),
    Some(FaultKind::MshrPressure),
    Some(FaultKind::DelayedDram),
    None, // mix of all kinds
];

struct CampaignFlags {
    scenarios: usize,
    watchdog_cycles: u64,
    adhoc: Option<FaultPlan>,
}

fn parse_campaign_flags(unknown: Vec<String>) -> CampaignFlags {
    let mut flags = CampaignFlags {
        scenarios: 8,
        watchdog_cycles: WatchdogConfig::default().stall_cycles,
        adhoc: None,
    };
    let mut rest = Vec::new();
    let mut i = 0;
    while i < unknown.len() {
        match unknown[i].as_str() {
            "--scenarios" => {
                if let Some(v) = unknown.get(i + 1) {
                    flags.scenarios = v.parse().unwrap_or(flags.scenarios);
                    i += 1;
                }
            }
            "--watchdog-cycles" => {
                if let Some(v) = unknown.get(i + 1) {
                    flags.watchdog_cycles = v.parse().unwrap_or(flags.watchdog_cycles).max(1);
                    i += 1;
                }
            }
            "--faults" => {
                if let Some(v) = unknown.get(i + 1) {
                    match FaultPlan::parse(v) {
                        Ok(p) => flags.adhoc = Some(p),
                        Err(e) => {
                            eprintln!("error: {e}");
                            std::process::exit(2);
                        }
                    }
                    i += 1;
                } else {
                    eprintln!("warning: --faults needs seed:kind[:count]");
                }
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    warn_unknown(&rest);
    flags
}

/// The base configuration for campaign runs.
fn base_cfg(watchdog_cycles: u64) -> SystemConfig {
    let mut cfg = SystemConfig::default_16core();
    cfg.watchdog.enabled = true;
    cfg.watchdog.stall_cycles = watchdog_cycles;
    cfg
}

/// Force magnitudes that make the contract checkable regardless of the
/// configured bound: DRAM delays must exceed the stall bound to be
/// detectable, and MSHR spikes must overflow a 16-entry file to force
/// the stall path. Then anchor the earliest event of each kind at
/// cycle 1: the case studies cache their working sets within a few
/// hundred cycles, so a point drawn deep in the window can land after
/// the last pollable miss and never fire. A poll fires the first due
/// event *at or after* its cycle, so the anchor guarantees every plan
/// fires while the remaining events exercise mid-run cycle points.
fn arm(plan: &mut FaultPlan, watchdog_cycles: u64) {
    for e in &mut plan.events {
        match e.kind {
            FaultKind::DelayedDram => e.magnitude = 2 * watchdog_cycles,
            FaultKind::MshrPressure => e.magnitude = 64,
            _ => {}
        }
    }
    for kind in FaultKind::ALL {
        if let Some(e) = plan
            .events
            .iter_mut()
            .filter(|e| e.kind == kind)
            .min_by_key(|e| e.at)
        {
            e.at = 1;
        }
    }
}

/// The outcome of one faulted scenario, with its contract verdicts.
struct Verdict {
    label: String,
    problems: Vec<String>,
}

impl tako_sim::checkpoint::Record for Verdict {
    fn record(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        self.label.record(w);
        self.problems.record(w);
    }
    fn replay(
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<Self, tako_sim::checkpoint::SnapError> {
        Ok(Verdict {
            label: String::replay(r)?,
            problems: Vec::replay(r)?,
        })
    }
}

fn check_scenario(
    case: &CaseStudy,
    idx: usize,
    kind: Option<FaultKind>,
    plan: &FaultPlan,
    clean: &RunResult,
    r: &RunResult,
    watchdog_cycles: u64,
) -> Verdict {
    let kind_name = kind.map_or("mix", |k| k.name());
    let mut problems = Vec::new();
    let fired = r.get(Counter::FaultInjected);
    let viol = r.get(Counter::InvariantViolation);
    let quarantined = r.get(Counter::MorphQuarantined);
    let stalls = r.get(Counter::WatchdogStallEvents);
    if viol != 0 {
        problems.push(format!("{viol} invariant violations"));
    }
    if fired == 0 {
        problems.push("no fault fired (window missed the run)".into());
    }
    match kind {
        Some(FaultKind::CallbackOverrun)
        | Some(FaultKind::IllegalAction)
        | Some(FaultKind::FabricExhaustion) => {
            if fired > 0 && quarantined == 0 {
                problems.push("callback fault not quarantined".into());
            }
            if kind == Some(FaultKind::IllegalAction)
                && fired > 0
                && r.get(Counter::CbIllegalOp) == 0
            {
                problems.push("illegal op not recorded".into());
            }
        }
        Some(FaultKind::MshrPressure) if fired > 0 && r.get(Counter::MshrStall) == 0 => {
            problems.push("pressure spike caused no MSHR stall".into());
        }
        Some(FaultKind::DelayedDram) if fired > 0 => {
            if stalls == 0 {
                problems.push("injected stall not detected".into());
            } else {
                // Detection bound: observed latency is the delay on
                // top of a base latency that is itself under the
                // bound (the clean run has no stalls).
                let max = r.stats.stall_detection.max();
                let magnitude = 2 * watchdog_cycles;
                if max > magnitude + watchdog_cycles {
                    problems.push(format!(
                        "stall detected at latency {max}, past the \
                         {magnitude}+{watchdog_cycles} bound"
                    ));
                }
            }
        }
        _ => {}
    }
    let label = format!(
        "{:<11} s{idx:02} kind={kind_name:<7} events={} fired={fired} \
         quarantined={quarantined} mshr_stalls={} wd_stalls={stalls} \
         violations={viol} cycles={} (clean {})",
        case.name,
        plan.events.len(),
        r.get(Counter::MshrStall),
        r.cycles,
        clean.cycles,
    );
    Verdict { label, problems }
}

/// Checkpoint-under-fault: snapshot a seeded run while `kind`'s fault
/// plan is live (one event consumed, one pending), resume it in a fresh
/// system, and require the final canonical snapshot bytes to match the
/// uninterrupted run exactly — the injector cursor, the degraded state
/// the fault left behind, and every counter must survive the round
/// trip.
fn checkpoint_under_fault(kind: FaultKind, opts: &Opts, watchdog_cycles: u64) -> bool {
    let mut cfg = base_cfg(watchdog_cycles);
    cfg.watchdog.epoch_cycles = 5_000;
    cfg.checkpoint = Some(CheckpointConfig { every_epochs: 2 });
    let mut plan = FaultPlan::seeded(opts.seed ^ kind as u64, &[kind], 2, 1, 20_000);
    arm(&mut plan, watchdog_cycles);
    cfg.faults = Some(plan);

    fn drive(sys: &mut TakoSystem, rng: &mut Rng, t: u64) -> u64 {
        let tile = rng.below(16) as usize;
        let off = rng.below(1 << 12) * 8;
        let ak = if rng.below(4) == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        sys.timed_access(tile, ak, 0x1000_0000 + off, t)
    }

    let (total, split) = (800, 400);
    let mut sys = TakoSystem::new(cfg.clone());
    let _ = sys.alloc_real(1 << 18);
    let mut rng = Rng::new(opts.seed ^ 0xCC);
    let (mut t, mut mid, mut mid_rng, mut mid_t) = (0u64, Vec::new(), rng.clone(), 0u64);
    for i in 0..total {
        if i == split {
            mid = sys.snapshot_bytes();
            mid_rng = rng.clone();
            mid_t = t;
        }
        t = drive(&mut sys, &mut rng, t);
    }
    let reference = encode(&sys);

    let mut sys2 = TakoSystem::new(cfg);
    let _ = sys2.alloc_real(1 << 18);
    if sys2.restore_bytes(&mid).is_err() {
        return false;
    }
    let (mut rng2, mut t2) = (mid_rng, mid_t);
    for _ in split..total {
        t2 = drive(&mut sys2, &mut rng2, t2);
    }
    t2 == t && encode(&sys2) == reference
}

/// A minimal lane-runnable program: a read-modify-write stride walk
/// over a private slice of a real range. The whole point is to drive
/// the *lane engine* (speculative per-tile windows, journal replay,
/// epoch-cadence checkpoints) rather than the serial interleaver.
struct LaneWalker {
    base: u64,
    i: u64,
    n: u64,
}

impl ThreadProgram for LaneWalker {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        if self.i >= self.n {
            return StepResult::Done;
        }
        let a = self.base + (self.i % (1 << 9)) * 8;
        let v = env.load_u64(a);
        env.store_u64(a, v.wrapping_add(1));
        env.compute(2);
        self.i += 1;
        if self.i >= self.n {
            StepResult::Done
        } else {
            StepResult::Running
        }
    }
}

impl LaneProgram for LaneWalker {
    fn lane_save(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.i)
    }
    fn lane_restore(&mut self, saved: Box<dyn std::any::Any + Send>) {
        self.i = *saved.downcast::<u64>().unwrap();
    }
}

/// Checkpoint-under-lanes: snapshot a system between two *lane-engine*
/// runs (speculative per-tile windows live on the fork-join pool, the
/// epoch watchdog's checkpoint cadence armed), resume in a fresh
/// system, replay the second run, and require byte-identical final
/// snapshots plus identical finish cycles. Pins that the SoA tag-array
/// state the lanes mutate round-trips exactly.
fn checkpoint_under_lanes(opts: &Opts, watchdog_cycles: u64) -> bool {
    let mut cfg = base_cfg(watchdog_cycles);
    cfg.watchdog.epoch_cycles = 5_000;
    cfg.checkpoint = Some(CheckpointConfig { every_epochs: 2 });

    fn lane_run(sys: &mut TakoSystem, base: u64, work: u64, phase: u64) -> u64 {
        let tiles = 16usize;
        let mut programs: Vec<LaneWalker> = (0..tiles as u64)
            .map(|k| LaneWalker {
                base: base + k * (1 << 14),
                i: phase * work,
                n: (phase + 1) * work,
            })
            .collect();
        let mut cores: Vec<CoreTiming> = (0..tiles)
            .map(|_| CoreTiming::new(tako_sim::config::SystemConfig::default_16core().core))
            .collect();
        let mut preds: Vec<BranchPredictor> = (0..tiles).map(|_| BranchPredictor::new()).collect();
        let mut progs: Vec<(usize, &mut dyn LaneProgram)> = programs
            .iter_mut()
            .enumerate()
            .map(|(k, p)| (k, p as &mut dyn LaneProgram))
            .collect();
        run_multicore_lanes(&mut progs, &mut cores, &mut preds, sys, 1 << 20, 2)
    }

    let work = opts.sized(2048) as u64;
    let mut sys = TakoSystem::new(cfg.clone());
    let base = 0x1000_0000;
    let _ = sys.alloc_real(1 << 20);
    lane_run(&mut sys, base, work, 0);
    let mid = sys.snapshot_bytes();
    let t_ref = lane_run(&mut sys, base, work, 1);
    let reference = encode(&sys);

    let mut sys2 = TakoSystem::new(cfg);
    let _ = sys2.alloc_real(1 << 20);
    if sys2.restore_bytes(&mid).is_err() {
        return false;
    }
    let t2 = lane_run(&mut sys2, base, work, 1);
    t2 == t_ref && encode(&sys2) == reference
}

/// Noninterference: with faults disabled, the robustness machinery must
/// not change a single counter or cycle.
fn check_noninterference(case: &CaseStudy, opts: &Opts, bound: u64) -> bool {
    let mut plain = SystemConfig::default_16core();
    plain.watchdog.enabled = false;
    plain.faults = None;
    let mut armed = base_cfg(bound);
    armed.faults = Some(FaultPlan::empty());
    let a = (case.run)(&plain, opts);
    let b = (case.run)(&armed, opts);
    let mut same = a.cycles == b.cycles && a.energy_uj.to_bits() == b.energy_uj.to_bits();
    for c in Counter::ALL {
        same &= a.get(c) == b.get(c);
    }
    same
}

fn main() {
    tako_bench::validate_base_config();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, unknown) = Opts::parse(&args);
    let flags = parse_campaign_flags(unknown);

    let mut total = 0usize;
    let mut failed = 0usize;
    let mut total_violations = 0u64;

    for case in CASE_STUDIES {
        let clean_cfg = base_cfg(flags.watchdog_cycles);
        let clean = (case.run)(&clean_cfg, &opts);
        let horizon = clean.cycles.max(1000);
        assert_eq!(
            clean.get(Counter::InvariantViolation),
            0,
            "{}: clean run violated invariants",
            case.name
        );
        assert_eq!(
            clean.get(Counter::WatchdogStallEvents),
            0,
            "{}: clean run tripped the watchdog (bound too tight?)",
            case.name
        );
        let noninterference = check_noninterference(case, &opts, flags.watchdog_cycles);
        println!(
            "{:<11} clean: {} cycles, watchdog noninterference {}",
            case.name,
            clean.cycles,
            if noninterference { "ok" } else { "FAILED" }
        );
        if !noninterference {
            failed += 1;
        }

        // The scenario set: the ad-hoc plan, or `--scenarios` seeded
        // plans rotating through every fault kind. Points are drawn
        // from the early third of the measured clean horizon (misses
        // and callbacks are densest there); `arm` then anchors one
        // event per kind at the very start so every plan fires.
        let (lo, hi) = (1, (horizon / 3).max(3));
        let scenarios: Vec<(usize, Option<FaultKind>, FaultPlan)> = match &flags.adhoc {
            Some(p) => {
                let mut p = p.clone();
                arm(&mut p, flags.watchdog_cycles);
                vec![(0, None, p)]
            }
            None => (0..flags.scenarios)
                .map(|s| {
                    let kind = ROTATION[s % ROTATION.len()];
                    let kinds: Vec<FaultKind> = match kind {
                        Some(k) => vec![k],
                        None => FaultKind::ALL.to_vec(),
                    };
                    let count = kinds.len().max(1 + s / ROTATION.len());
                    let mut plan =
                        FaultPlan::seeded(opts.seed ^ (s as u64) << 8, &kinds, count, lo, hi);
                    arm(&mut plan, flags.watchdog_cycles);
                    (s, kind, plan)
                })
                .collect(),
        };

        let verdicts = run_variants(opts, &scenarios, |(idx, kind, plan)| {
            let mut cfg = base_cfg(flags.watchdog_cycles);
            cfg.faults = Some(plan.clone());
            let r = (case.run)(&cfg, &opts);
            let v = check_scenario(case, idx, kind, &plan, &clean, &r, flags.watchdog_cycles);
            (v, r.get(Counter::InvariantViolation))
        });
        for (v, viol) in verdicts {
            total += 1;
            total_violations += viol;
            if v.problems.is_empty() {
                println!("{}  ok", v.label);
            } else {
                failed += 1;
                println!("{}  FAILED: {}", v.label, v.problems.join("; "));
            }
        }
    }

    // Checkpoint-under-fault: every fault kind's window must survive a
    // snapshot/resume round trip byte-identically.
    for kind in FaultKind::ALL {
        total += 1;
        let ok = checkpoint_under_fault(kind, &opts, flags.watchdog_cycles);
        println!(
            "checkpoint  kind={:<7} mid-window resume {}",
            kind.name(),
            if ok { "byte-identical" } else { "DIVERGED" }
        );
        if !ok {
            failed += 1;
        }
    }

    // Checkpoint-under-lanes: the lane engine's speculative windows and
    // the SoA tag arrays they mutate must survive the same round trip.
    {
        total += 1;
        let ok = checkpoint_under_lanes(&opts, flags.watchdog_cycles);
        println!(
            "checkpoint  lanes=2   mid-run resume {}",
            if ok { "byte-identical" } else { "DIVERGED" }
        );
        if !ok {
            failed += 1;
        }
    }

    println!(
        "fault campaign: {total} scenarios across {} case studies, \
         {total_violations} invariant violations, {failed} failed",
        CASE_STUDIES.len()
    );
    assert_eq!(total_violations, 0, "invariant violations under fault");
    if failed > 0 {
        std::process::exit(1);
    }
}
