//! Regenerates the paper's fig17 hats breakdown experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig17_hats_breakdown(opts));
}
