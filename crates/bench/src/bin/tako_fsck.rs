//! `tako_fsck` — the campaign-journal doctor.
//!
//! ```text
//! tako_fsck --scan <dir>     classify every file, print verdicts
//! tako_fsck --verify <dir>   scan; exit 1 if anything is flagged
//! tako_fsck --repair <dir>   truncate torn unit journals to their
//!                            longest valid prefix, quarantine corrupt
//!                            envelopes/manifest into <dir>/quarantine/
//!                            (with a report.txt), delete .tmp debris
//! ```
//!
//! See `tako_bench::doctor` for what each verdict means. Repair is
//! idempotent and never destroys payload bytes: everything it cannot
//! keep in place lands in the quarantine directory.

use std::path::Path;
use std::process::ExitCode;

use tako_bench::doctor;

fn usage() -> ExitCode {
    eprintln!("usage: tako_fsck --scan|--verify|--repair <journal-dir>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [mode, dir] = args.as_slice() else {
        return usage();
    };
    let dir = Path::new(dir);
    if !dir.is_dir() {
        eprintln!("tako_fsck: {} is not a directory", dir.display());
        return ExitCode::from(2);
    }
    match mode.as_str() {
        "--scan" => match doctor::scan(dir) {
            Ok(report) => {
                print!("{}", report.render());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tako_fsck: scan {}: {e}", dir.display());
                ExitCode::from(2)
            }
        },
        "--verify" => match doctor::scan(dir) {
            Ok(report) => {
                print!("{}", report.render());
                if report.flagged() == 0 {
                    println!("verify: journal clean");
                    ExitCode::SUCCESS
                } else {
                    println!("verify: {} files flagged", report.flagged());
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("tako_fsck: verify {}: {e}", dir.display());
                ExitCode::from(2)
            }
        },
        "--repair" => match doctor::repair(dir) {
            Ok(summary) => {
                if summary.untouched() {
                    println!("repair: journal clean, nothing to do");
                } else {
                    for p in &summary.quarantined {
                        println!("repair: quarantined {}", p.display());
                    }
                    for (p, len) in &summary.truncated {
                        println!("repair: truncated {} to {len} bytes", p.display());
                    }
                    for p in &summary.removed {
                        println!("repair: removed debris {}", p.display());
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tako_fsck: repair {}: {e}", dir.display());
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}
