//! Regenerates the paper's fig24 core uarch experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig24_core_uarch(opts));
}
