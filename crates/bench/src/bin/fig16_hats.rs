//! Regenerates the paper's fig16 hats experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig16_hats(opts));
}
