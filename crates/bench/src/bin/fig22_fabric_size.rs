//! Regenerates the paper's fig22 fabric size experiment. See DESIGN.md §4.
fn main() {
    let opts = tako_bench::Opts::from_args();
    print!("{}", tako_bench::experiments::fig22_fabric_size(opts));
}
