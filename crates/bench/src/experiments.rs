//! The per-figure/table experiment harnesses.
//!
//! Each function regenerates one figure or table of the paper's
//! evaluation section, printing the same rows/series the paper reports.
//! DESIGN.md §4 maps experiments to modules; EXPERIMENTS.md records
//! paper-vs-measured outcomes.
//!
//! Variant sweeps fan out across `opts.jobs` workers via
//! [`run_variants`]: every simulation is an independent, seeded,
//! single-threaded `TakoSystem`, and results are collected in input
//! order, so the printed output does not depend on the job count.

use tako_sim::config::{CoreConfig, EngineConfig, SystemConfig};
use tako_sim::stats::Counter;
use tako_workloads::{decompress, hats, nvm, phi, sidechannel, soa};

use crate::{fx, pct, row, run_variants, Opts};

fn baseline_relative(
    out: &mut String,
    label: &str,
    cycles: u64,
    energy: f64,
    base_cycles: u64,
    base_energy: f64,
) {
    out.push_str(&row(
        label,
        &[
            ("speedup", fx(base_cycles as f64 / cycles as f64)),
            ("energy", pct(energy / base_energy)),
            ("cycles", cycles.to_string()),
        ],
    ));
}

// ----------------------------------------------------------------------
// Fig 6 / Fig 7 — decompression
// ----------------------------------------------------------------------

/// Workload sizes shared by the two decompression figures, so Fig 7
/// counts decompressions on exactly the run Fig 6 times (`--paper`
/// included — Fig 7 used to ignore it).
fn decompress_params(opts: Opts) -> decompress::Params {
    decompress::Params {
        values: if opts.paper {
            16 * 1024
        } else {
            opts.sized(16 * 1024) as u64
        },
        accesses: if opts.paper {
            32 * 1024
        } else {
            opts.sized(32 * 1024) as u64
        },
        theta: 0.99,
        seed: opts.seed,
    }
}

/// Fig 6: speedup and relative dynamic energy for the decompression
/// example, per variant. The paper reports täkō at 2.2x speedup / 61%
/// energy savings vs software, with NDC *hurting*.
pub fn fig06_decompress(opts: Opts) -> String {
    let params = decompress_params(opts);
    let cfg = SystemConfig::default_16core();
    let mut out = String::from("# Fig 6: decompression — speedup & energy vs software baseline\n");
    let results = run_variants(opts, &decompress::Variant::ALL, |v| {
        decompress::run(v, params, &cfg)
    });
    let (base_cycles, base_energy) = (results[0].run.cycles, results[0].run.energy_uj); // ALL[0] = Software
    for (v, r) in decompress::Variant::ALL.iter().zip(&results) {
        assert!((r.average - r.expected).abs() < 1e-9, "functional check");
        baseline_relative(
            &mut out,
            v.label(),
            r.run.cycles,
            r.run.energy_uj,
            base_cycles,
            base_energy,
        );
    }
    out
}

/// Fig 7: number of decompressions per variant (same sizes as Fig 6).
pub fn fig07_decompress_count(opts: Opts) -> String {
    let params = decompress_params(opts);
    let cfg = SystemConfig::default_16core();
    let mut out = String::from("# Fig 7: number of decompressions\n");
    let results = run_variants(opts, &decompress::Variant::ALL, |v| {
        decompress::run(v, params, &cfg)
    });
    for (v, r) in decompress::Variant::ALL.iter().zip(&results) {
        out.push_str(&row(
            v.label(),
            &[("decompressions", r.decompressions.to_string())],
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Fig 13 / Fig 14 — PHI
// ----------------------------------------------------------------------

fn phi_params(opts: Opts) -> phi::Params {
    if opts.paper {
        phi::Params {
            vertices: 16 << 20,
            edges: 160 << 20,
            theta: 0.6,
            threads: 16,
            threshold: 3,
            seed: opts.seed,
            lanes: opts.lanes,
        }
    } else {
        phi::Params {
            vertices: opts.sized(1 << 20),
            edges: opts.sized(4 << 20),
            theta: 0.6,
            threads: 16,
            threshold: 3,
            seed: opts.seed,
            lanes: opts.lanes,
        }
    }
}

/// The PHI harnesses preserve the paper's vertex-data : LLC capacity
/// ratio when running scaled-down: at `--paper` sizes (128 MB vertex
/// data vs the 8 MB LLC) the default system is used; at bench sizes
/// (8 MB vertex data) the LLC is scaled to 2 MB.
fn phi_cfg_for(opts: Opts, vertices: usize, tiles: usize) -> SystemConfig {
    let mut cfg = SystemConfig::with_tiles(tiles);
    if !opts.paper {
        // Keep ~4:1 vertex-data : LLC capacity (the paper runs 16:1).
        let bank = (vertices as u64 * 8 / 4 / tiles as u64)
            .next_power_of_two()
            .clamp(16 * 1024, 512 * 1024);
        cfg.llc_bank.size_bytes = bank;
    }
    cfg
}

fn phi_cfg(opts: Opts) -> SystemConfig {
    phi_cfg_for(opts, phi_params(opts).vertices, 16)
}

/// Fig 13: PHI PageRank speedup & energy (paper: täkō 4.2x, UB 3.2x).
pub fn fig13_phi(opts: Opts) -> String {
    let params = phi_params(opts);
    let cfg = phi_cfg(opts);
    let mut out = String::from("# Fig 13: PHI PageRank — speedup & energy vs software baseline\n");
    let results = run_variants(opts, &phi::Variant::ALL, |v| phi::run(v, &params, &cfg));
    let (base_cycles, base_energy) = (results[0].run.cycles, results[0].run.energy_uj); // ALL[0] = Software
    for (v, r) in phi::Variant::ALL.iter().zip(&results) {
        baseline_relative(
            &mut out,
            v.label(),
            r.run.cycles,
            r.run.energy_uj,
            base_cycles,
            base_energy,
        );
    }
    out
}

/// Fig 14: DRAM accesses per PageRank phase (edge/bin/vertex).
pub fn fig14_phi_dram(opts: Opts) -> String {
    let params = phi_params(opts);
    let cfg = phi_cfg(opts);
    let mut out = String::from("# Fig 14: DRAM accesses per phase (edge/bin/vertex)\n");
    let results = run_variants(opts, &phi::Variant::ALL, |v| phi::run(v, &params, &cfg));
    for (v, r) in phi::Variant::ALL.iter().zip(&results) {
        let ph = r.run.stats.phases();
        out.push_str(&row(
            v.label(),
            &[
                ("edge", ph[0].dram_accesses.to_string()),
                ("bin", ph[1].dram_accesses.to_string()),
                ("vertex", ph[2].dram_accesses.to_string()),
                ("total", r.run.dram_accesses().to_string()),
            ],
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Fig 16 / Fig 17 — HATS
// ----------------------------------------------------------------------

fn hats_params(opts: Opts) -> hats::Params {
    if opts.paper {
        // uk-2002 scale: 18.5 M vertices / 298 M edges (substituted by
        // the community generator; DESIGN.md §5).
        hats::Params {
            vertices: 18 << 20,
            edges: 256 << 20,
            communities: 16 * 1024,
            p_intra: 0.95,
            block: 16,
            depth_bound: 32,
            seed: opts.seed,
        }
    } else {
        hats::Params {
            vertices: opts.sized(512 * 1024),
            edges: opts.sized(4 << 20),
            communities: opts.sized(2048),
            p_intra: 0.95,
            block: 16,
            depth_bound: 32,
            seed: opts.seed,
        }
    }
}

/// The HATS sweeps run on a capacity-scaled system so the single-thread
/// working set exceeds the LLC as it does at paper scale.
fn hats_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::default_16core();
    cfg.llc_bank.size_bytes = 64 * 1024; // 1 MB LLC vs ~12 MB arrays
    cfg.l2.size_bytes = 64 * 1024;
    cfg
}

/// Fig 16: HATS speedup & energy (paper: täkō +43%, ideal +46%,
/// software BDFS ≈ baseline).
pub fn fig16_hats(opts: Opts) -> String {
    let params = hats_params(opts);
    let cfg = hats_cfg();
    let mut out = String::from("# Fig 16: HATS PageRank — speedup & energy vs vertex-ordered\n");
    let results = run_variants(opts, &hats::Variant::ALL, |v| hats::run(v, &params, &cfg));
    let (base_cycles, base_energy) = (results[0].run.cycles, results[0].run.energy_uj); // ALL[0] = VertexOrdered
    for (v, r) in hats::Variant::ALL.iter().zip(&results) {
        baseline_relative(
            &mut out,
            v.label(),
            r.run.cycles,
            r.run.energy_uj,
            base_cycles,
            base_energy,
        );
    }
    out
}

/// Fig 17: HATS breakdown — DRAM accesses, branch mispredictions per
/// edge, mean load latency.
pub fn fig17_hats_breakdown(opts: Opts) -> String {
    let params = hats_params(opts);
    let cfg = hats_cfg();
    let mut out =
        String::from("# Fig 17: HATS breakdown (DRAM / mispredicts per edge / load latency)\n");
    let results = run_variants(opts, &hats::Variant::ALL, |v| hats::run(v, &params, &cfg));
    for (v, r) in hats::Variant::ALL.iter().zip(&results) {
        out.push_str(&row(
            v.label(),
            &[
                ("dram", r.run.dram_accesses().to_string()),
                (
                    "mispredicts_per_edge",
                    format!("{:.3}", r.mispredicts_per_edge),
                ),
                ("mean_load_lat", format!("{:.1}", r.mean_load_latency)),
            ],
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Fig 19 / Fig 20 — NVM transactions
// ----------------------------------------------------------------------

/// Fig 19: NVM transaction speedup & energy vs transaction size
/// (paper: up to 2.1x under the L2 capacity, falling back beyond).
pub fn fig19_nvm(opts: Opts) -> String {
    let cfg = SystemConfig::default_16core();
    let sizes: [u64; 6] = [1, 4, 16, 32, 64, 128];
    let mut out =
        String::from("# Fig 19: NVM transactions — speedup & energy vs journaling, by txn size\n");
    // One worker item per transaction size (each runs its own baseline).
    let results = run_variants(opts, &sizes, |kb| {
        let params = nvm::Params {
            txn_bytes: kb * 1024,
            txns: (opts.sized(4 << 20) as u64 / (kb * 1024)).clamp(4, 256),
            seed: opts.seed,
        };
        let base = nvm::run(nvm::Variant::Journaling, params, &cfg);
        let tako = nvm::run(nvm::Variant::Tako, params, &cfg);
        (base, tako)
    });
    for (kb, (base, tako)) in sizes.iter().zip(&results) {
        assert!(base.data_correct && tako.data_correct);
        out.push_str(&row(
            &format!("{kb}KB"),
            &[
                (
                    "speedup",
                    fx(base.run.cycles as f64 / tako.run.cycles as f64),
                ),
                ("energy", pct(tako.run.energy_uj / base.run.energy_uj)),
                ("journal_writes", tako.journal_writes.to_string()),
            ],
        ));
    }
    out
}

/// Fig 20: instructions executed per 8 B written (core vs engine).
pub fn fig20_nvm_instrs(opts: Opts) -> String {
    let cfg = SystemConfig::default_16core();
    let params = nvm::Params {
        txn_bytes: 16 * 1024,
        txns: opts.sized(64) as u64,
        seed: opts.seed,
    };
    let mut out = String::from("# Fig 20: instructions per 8 B written (16 KB txns)\n");
    let results = run_variants(opts, &nvm::Variant::ALL, |v| nvm::run(v, params, &cfg));
    for (v, r) in nvm::Variant::ALL.iter().zip(&results) {
        out.push_str(&row(
            v.label(),
            &[
                ("core", format!("{:.2}", r.core_instrs_per_word)),
                ("engine", format!("{:.2}", r.engine_instrs_per_word)),
                (
                    "total",
                    format!("{:.2}", r.core_instrs_per_word + r.engine_instrs_per_word),
                ),
            ],
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Fig 21 — side channel
// ----------------------------------------------------------------------

/// Fig 21: prime+probe trace — the attack succeeds on the baseline and
/// is detected immediately with täkō.
pub fn fig21_sidechannel(opts: Opts) -> String {
    let cfg = SystemConfig::default_16core();
    let params = sidechannel::Params {
        rounds: opts.sized(64),
        ..sidechannel::Params::default()
    };
    let mut out = String::from("# Fig 21: prime+probe attack trace\n");
    let variants = [
        ("baseline", sidechannel::Variant::Baseline),
        ("tako", sidechannel::Variant::Tako),
    ];
    let results = run_variants(opts, &variants, |(_, v)| sidechannel::run(v, params, &cfg));
    for ((label, _), r) in variants.iter().zip(&results) {
        let trace: String = r
            .touched
            .iter()
            .zip(&r.inferred)
            .take(48)
            .map(|(&t, &i)| match (t, i) {
                (true, true) => 'X',   // access leaked
                (true, false) => 'o',  // access missed by attacker
                (false, true) => '!',  // false positive
                (false, false) => '.', // quiet
            })
            .collect();
        out.push_str(&row(
            label,
            &[
                ("accuracy", pct(r.attacker_accuracy())),
                (
                    "detected_at",
                    r.detected_at
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "-".into()),
                ),
                ("interrupts", r.interrupts.to_string()),
                ("trace", trace),
            ],
        ));
    }
    out.push_str("(X = secret access leaked, o = missed, ! = false positive, . = quiet)\n");
    out
}

// ----------------------------------------------------------------------
// Fig 22 / Fig 23 — engine microarchitecture sensitivity
// ----------------------------------------------------------------------

fn hats_speedup_with_engine(opts: Opts, engine: EngineConfig) -> (u64, u64) {
    let mut params = hats_params(opts);
    params.vertices = opts.sized(128 * 1024);
    params.edges = opts.sized(1 << 20);
    params.communities = opts.sized(512);
    let mut cfg = hats_cfg();
    let base = hats::run(hats::Variant::VertexOrdered, &params, &cfg);
    cfg.engine = engine;
    let tako = hats::run(hats::Variant::Tako, &params, &cfg);
    (base.run.cycles, tako.run.cycles)
}

/// Fig 22: HATS sensitivity to the fabric size (3x3 … 7x7, in-order
/// core, ideal). Paper: dataflow vastly outperforms in-order; 5x5 is
/// within 1.8% of ideal.
pub fn fig22_fabric_size(opts: Opts) -> String {
    let mut out = String::from("# Fig 22: HATS speedup vs engine fabric size\n");
    let mut configs: Vec<(String, EngineConfig)> =
        vec![("in-order".into(), EngineConfig::in_order_core())];
    for dim in [3u32, 4, 5, 6, 7] {
        configs.push((format!("{dim}x{dim}"), EngineConfig::square(dim)));
    }
    configs.push(("ideal".into(), EngineConfig::ideal()));
    let results = run_variants(opts, &configs, |(_, engine)| {
        hats_speedup_with_engine(opts, engine)
    });
    for ((label, _), (base, tako)) in configs.iter().zip(&results) {
        out.push_str(&row(label, &[("speedup", fx(*base as f64 / *tako as f64))]));
    }
    out
}

/// Fig 23: HATS sensitivity to PE latency (1–8 cycles). Paper: even at
/// 8 cycles, speedup only drops ~30% — MLP, not arithmetic, dominates.
pub fn fig23_pe_latency(opts: Opts) -> String {
    let mut out = String::from("# Fig 23: HATS speedup vs PE latency\n");
    let lats: [u64; 4] = [1, 2, 4, 8];
    let results = run_variants(opts, &lats, |lat| {
        let mut engine = EngineConfig::default_5x5();
        engine.pe_latency = lat;
        hats_speedup_with_engine(opts, engine)
    });
    for (lat, (base, tako)) in lats.iter().zip(&results) {
        out.push_str(&row(
            &format!("{lat}-cycle"),
            &[("speedup", fx(*base as f64 / *tako as f64))],
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Fig 24 / Fig 25 — core microarchitecture & scalability
// ----------------------------------------------------------------------

/// Fig 24: PHI speedup across core microarchitectures (paper: memory-
/// bound PageRank is insensitive to the core).
pub fn fig24_core_uarch(opts: Opts) -> String {
    let mut params = phi_params(opts);
    params.vertices = opts.sized(512 * 1024);
    params.edges = opts.sized(2 << 20);
    let mut out = String::from("# Fig 24: PHI speedup across core microarchitectures\n");
    let uarchs = [
        ("in-order", CoreConfig::in_order()),
        ("2-wide-ooo", CoreConfig::small_ooo()),
        ("3-wide-ooo", CoreConfig::goldmont()),
    ];
    let results = run_variants(opts, &uarchs, |(_, core)| {
        let mut cfg = SystemConfig::default_16core();
        cfg.core = core;
        let base = phi::run(phi::Variant::Software, &params, &cfg);
        let tako = phi::run(phi::Variant::Tako, &params, &cfg);
        (base.run.cycles, tako.run.cycles)
    });
    for ((label, _), (base, tako)) in uarchs.iter().zip(&results) {
        out.push_str(&row(
            label,
            &[
                ("speedup", fx(*base as f64 / *tako as f64)),
                ("base_cycles", base.to_string()),
                ("tako_cycles", tako.to_string()),
            ],
        ));
    }
    out
}

/// Fig 25: PHI scalability across core counts and graph sizes (paper:
/// täkō outperforms update batching by ~34%/32%/21% at 8/16/36 cores).
pub fn fig25_scalability(opts: Opts) -> String {
    let mut out =
        String::from("# Fig 25: PHI speedup vs update batching across cores & graph sizes\n");
    let mut points: Vec<(usize, usize)> = Vec::new();
    for &tiles in &[8usize, 16, 36] {
        for &scale in &[1usize, 2] {
            points.push((tiles, scale));
        }
    }
    let results = run_variants(opts, &points, |(tiles, scale)| {
        let params = phi::Params {
            vertices: opts.sized(256 * 1024 * scale),
            edges: opts.sized((1 << 20) * scale),
            theta: 0.6,
            threads: tiles,
            threshold: 3,
            seed: opts.seed,
            lanes: opts.lanes,
        };
        let cfg = SystemConfig::with_tiles(tiles);
        let sw = phi::run(phi::Variant::Software, &params, &cfg);
        let ub = phi::run(phi::Variant::UpdateBatching, &params, &cfg);
        let tako = phi::run(phi::Variant::Tako, &params, &cfg);
        (
            params.edges,
            sw.run.cycles as f64 / tako.run.cycles as f64,
            ub.run.cycles as f64 / tako.run.cycles as f64,
        )
    });
    for ((tiles, _), (edges, vs_sw, vs_ub)) in points.iter().zip(&results) {
        out.push_str(&row(
            &format!("{tiles}c/{}Ke", edges >> 10),
            &[("tako_vs_sw", fx(*vs_sw)), ("tako_vs_ub", fx(*vs_ub))],
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Table 2 and Sec 9 sweeps
// ----------------------------------------------------------------------

/// Table 2: hardware overhead per LLC bank.
pub fn table2_overhead(_opts: Opts) -> String {
    let report = tako_core::overhead::OverheadReport::for_config(&SystemConfig::default_16core());
    format!(
        "# Table 2: hardware overhead per LLC bank\n{}",
        report.table()
    )
}

/// Sec 9: callback-buffer size sweep on the NVM flush storm (paper:
/// plateaus at 4 entries; 8 used).
pub fn sens_callback_buffer(opts: Opts) -> String {
    let mut out = String::from("# Sec 9: NVM speedup vs callback-buffer size\n");
    let params = nvm::Params {
        txn_bytes: 16 * 1024,
        txns: opts.sized(32) as u64,
        seed: opts.seed,
    };
    let base = nvm::run(
        nvm::Variant::Journaling,
        params,
        &SystemConfig::default_16core(),
    );
    let entries: [u32; 6] = [1, 2, 4, 8, 16, 64];
    let results = run_variants(opts, &entries, |n| {
        let mut cfg = SystemConfig::default_16core();
        cfg.engine.callback_buffer = n;
        nvm::run(nvm::Variant::Tako, params, &cfg)
    });
    for (n, r) in entries.iter().zip(&results) {
        out.push_str(&row(
            &format!("{n}-entry"),
            &[("speedup", fx(base.run.cycles as f64 / r.run.cycles as f64))],
        ));
    }
    out
}

/// Sec 9: rTLB size sweep on HATS (paper: ≤2.1% variation).
pub fn sens_rtlb(opts: Opts) -> String {
    let mut out = String::from("# Sec 9: HATS cycles vs rTLB entries\n");
    let mut params = hats_params(opts);
    params.vertices = opts.sized(128 * 1024);
    params.edges = opts.sized(1 << 20);
    params.communities = opts.sized(512);
    let entries: [u32; 3] = [64, 256, 1024];
    let results = run_variants(opts, &entries, |n| {
        let mut cfg = hats_cfg();
        cfg.engine.rtlb_entries = n;
        hats::run(hats::Variant::Tako, &params, &cfg)
    });
    let reference = results[0].run.cycles;
    for (n, r) in entries.iter().zip(&results) {
        out.push_str(&row(
            &format!("{n}-entry"),
            &[
                ("cycles", r.run.cycles.to_string()),
                ("vs_64", pct(r.run.cycles as f64 / reference as f64 - 1.0)),
                (
                    "rtlb_miss_rate",
                    pct(r.run.get(Counter::RtlbMiss) as f64
                        / (r.run.get(Counter::RtlbMiss) + r.run.get(Counter::RtlbHit)).max(1)
                            as f64),
                ),
            ],
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Ablations of design choices (DESIGN.md §7)
// ----------------------------------------------------------------------

/// Ablations: (1) trrîp's distant-priority engine accesses on the
/// AoS→SoA Morph (Sec 5.2 claims >4x from pollution avoidance);
/// (2) HATS without the stride prefetcher (no decoupling — the core
/// waits for every onMiss).
pub fn ablations(opts: Opts) -> String {
    let mut out = String::from("# Ablations\n");

    // --- trrîp on AoS -> SoA ---
    out.push_str("## trrîp distant-priority engine accesses (AoS->SoA)\n");
    let sp = soa::Params {
        elements: opts.sized(256 * 1024) as u64, // AoS 16 MB vs 8 MB LLC
        field: 2,
        passes: 8,
        seed: opts.seed,
    };
    let cfg = SystemConfig::default_16core();
    let mut no_trrip_cfg = cfg.clone();
    no_trrip_cfg.engine.trrip = false;
    let soa_points = [
        ("aos-baseline", soa::Variant::Aos, false),
        ("tako-trrip", soa::Variant::Tako, false),
        ("tako-no-trrip", soa::Variant::Tako, true),
    ];
    let soa_results = run_variants(opts, &soa_points, |(_, v, no_trrip)| {
        let c = if no_trrip { &no_trrip_cfg } else { &cfg };
        soa::run(v, sp, c)
    });
    let aos_cycles = soa_results[0].run.cycles;
    for ((label, _, _), r) in soa_points.iter().zip(&soa_results) {
        assert_eq!(r.sum, r.expected);
        out.push_str(&row(
            label,
            &[
                ("speedup", fx(aos_cycles as f64 / r.run.cycles as f64)),
                ("dram", r.run.dram_accesses().to_string()),
            ],
        ));
    }

    // --- HATS decoupling via the prefetcher ---
    out.push_str("## HATS decoupling (prefetch-triggered onMiss)\n");
    let mut hp = hats_params(opts);
    hp.vertices = opts.sized(128 * 1024);
    hp.edges = opts.sized(1 << 20);
    hp.communities = opts.sized(512);
    let cfg = hats_cfg();
    let coupled_cfg = {
        let mut c = cfg.clone();
        c.prefetch.enabled = false;
        c
    };
    let hats_results = run_variants(opts, &[false, true], |coupled| {
        let c = if coupled { &coupled_cfg } else { &cfg };
        hats::run(hats::Variant::Tako, &hp, c)
    });
    let (tako, coupled) = (&hats_results[0], &hats_results[1]);
    out.push_str(&row(
        "with-prefetch",
        &[("cycles", tako.run.cycles.to_string())],
    ));
    out.push_str(&row(
        "no-prefetch",
        &[
            ("cycles", coupled.run.cycles.to_string()),
            (
                "slowdown",
                fx(coupled.run.cycles as f64 / tako.run.cycles as f64),
            ),
        ],
    ));
    out
}
