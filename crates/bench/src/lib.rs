//! # tako-bench — the benchmark harness
//!
//! One experiment module per figure/table in the paper's evaluation; the
//! binaries in `src/bin/` are thin wrappers. Every experiment prints the
//! rows/series the paper plots (speedup and relative energy per variant,
//! per-phase access breakdowns, sweeps).
//!
//! All experiments accept a [`Opts`] parsed from the command line:
//!
//! ```text
//! --scale <f>   scale workload sizes by f (default 1.0 — minutes-scale)
//! --paper       use the paper's full sizes (much slower)
//! --seed <n>    override the RNG seed
//! ```
//!
//! Absolute cycle counts differ from the paper's testbed (see
//! EXPERIMENTS.md); the *shape* — who wins, by roughly what factor —
//! is what these harnesses regenerate.

pub mod experiments;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Workload-size multiplier.
    pub scale: f64,
    /// Use the paper's full workload sizes.
    pub paper: bool,
    /// RNG seed override.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 1.0,
            paper: false,
            seed: 0x7AC0,
        }
    }
}

impl Opts {
    /// Parse from `std::env::args` (ignores unknown arguments).
    pub fn from_args() -> Self {
        let mut opts = Opts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.scale = v.parse().unwrap_or(opts.scale);
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.seed = v.parse().unwrap_or(opts.seed);
                        i += 1;
                    }
                }
                "--paper" => opts.paper = true,
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Scale an integer size.
    pub fn sized(&self, base: usize) -> usize {
        ((base as f64) * self.scale).max(1.0) as usize
    }
}

/// Render one labelled row of `(label, value)` pairs.
pub fn row(label: &str, cols: &[(&str, String)]) -> String {
    let mut s = format!("{label:<16}");
    for (name, v) in cols {
        s.push_str(&format!(" {name}={v}"));
    }
    s.push('\n');
    s
}

/// Format a ratio as `x.xx×`.
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}
