//! # tako-bench — the benchmark harness
//!
//! One experiment module per figure/table in the paper's evaluation; the
//! binaries in `src/bin/` are thin wrappers. Every experiment prints the
//! rows/series the paper plots (speedup and relative energy per variant,
//! per-phase access breakdowns, sweeps).
//!
//! All experiments accept a [`Opts`] parsed from the command line:
//!
//! ```text
//! --scale <f>   scale workload sizes by f (default 1.0 — minutes-scale)
//! --paper       use the paper's full sizes (much slower)
//! --seed <n>    override the RNG seed
//! --jobs <n>    worker threads for the per-variant / per-experiment
//!               fan-out (default: available parallelism)
//! --lanes <n>   per-tile parallel lanes *inside* each phi simulation
//!               (default 0 = the serial interleaver). Lane runs are
//!               deterministic — identical for every n >= 1 — but use
//!               unit-step granularity, a different (equally valid)
//!               schedule than the serial chunked interleave, so their
//!               digests form their own golden family.
//! ```
//!
//! Output is **deterministic and independent of `--jobs`**: every
//! simulation is seeded, single-threaded, and isolated in its own
//! `TakoSystem`, and [`run_variants`] / [`run_all`] collect results in
//! input order, so `--jobs 1` and `--jobs 8` produce byte-identical
//! experiment output (a test asserts this).
//!
//! Absolute cycle counts differ from the paper's testbed (see
//! EXPERIMENTS.md); the *shape* — who wins, by roughly what factor —
//! is what these harnesses regenerate.

use std::time::{Duration, Instant};

use tako_sim::checkpoint::Record;
use tako_sim::config::SystemConfig;
use tako_sim::parallel::{default_jobs, parallel_map, parallel_map_catch};

pub mod campaign;
pub mod doctor;
pub mod experiments;

/// Validate the base system configuration every harness builds from,
/// exiting with a diagnostic when it cannot describe real hardware.
/// Every bench binary calls this at startup (via [`Opts::from_args`]).
pub fn validate_base_config() {
    if let Err(e) = SystemConfig::default_16core().validate() {
        eprintln!("error: invalid base configuration: {e}");
        std::process::exit(2);
    }
}

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Workload-size multiplier.
    pub scale: f64,
    /// Use the paper's full workload sizes.
    pub paper: bool,
    /// RNG seed override.
    pub seed: u64,
    /// Worker threads for fan-out (variants within a figure, or
    /// experiments within `all_experiments`).
    pub jobs: usize,
    /// Per-tile parallel lanes inside each phi simulation (0 = serial).
    pub lanes: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 1.0,
            paper: false,
            seed: 0x7AC0,
            jobs: default_jobs(),
            lanes: 0,
        }
    }
}

impl Opts {
    /// Parse `args` (without the program name). Returns the options and
    /// any arguments that were not recognized, so binaries with extra
    /// flags can consume the leftovers before warning.
    pub fn parse(args: &[String]) -> (Self, Vec<String>) {
        let mut opts = Opts::default();
        let mut unknown = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.scale = v.parse().unwrap_or(opts.scale);
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.seed = v.parse().unwrap_or(opts.seed);
                        i += 1;
                    }
                }
                "--jobs" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.jobs = v.parse().unwrap_or(opts.jobs).max(1);
                        i += 1;
                    }
                }
                "--lanes" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.lanes = v.parse().unwrap_or(opts.lanes);
                        i += 1;
                    }
                }
                "--paper" => opts.paper = true,
                other => unknown.push(other.to_string()),
            }
            i += 1;
        }
        (opts, unknown)
    }

    /// Parse from `std::env::args`, warning on stderr about any
    /// unrecognized argument. Also validates the base system
    /// configuration, so a broken config fails fast in every binary.
    pub fn from_args() -> Self {
        validate_base_config();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let (opts, unknown) = Self::parse(&args);
        warn_unknown(&unknown);
        opts
    }

    /// Scale an integer size.
    pub fn sized(&self, base: usize) -> usize {
        ((base as f64) * self.scale).max(1.0) as usize
    }

    /// These options with the fan-out disabled; handed to experiments
    /// that run *inside* an outer fan-out so the machine is not
    /// oversubscribed.
    pub fn serial(&self) -> Self {
        Opts { jobs: 1, ..*self }
    }
}

/// Print a warning for each unrecognized command-line argument.
pub fn warn_unknown(unknown: &[String]) {
    for u in unknown {
        eprintln!(
            "warning: unknown argument `{u}` \
             (known: --scale <f>, --paper, --seed <n>, --jobs <n>, --lanes <n>)"
        );
    }
}

/// Run `f` over each variant on `opts.jobs` workers, returning results
/// in `variants` order. Each simulation owns its `TakoSystem`, so runs
/// are independent and the output is identical to the serial loop.
///
/// Under a supervised campaign (a [`campaign`] unit journal armed on
/// this thread), every completed variant is journaled as a checkpoint
/// unit and the loop runs serially: a crashed experiment resumes here
/// by replaying already-journaled units bit-exactly and simulating only
/// the remainder. Experiments run `opts.serial()` inside the campaign
/// fan-out anyway, so the serial journaled loop changes nothing else.
pub fn run_variants<V, R, F>(opts: Opts, variants: &[V], f: F) -> Vec<R>
where
    V: Clone + Send,
    R: Record + Send,
    F: Fn(V) -> R + Sync,
{
    if let Some(call) = campaign::next_call_id() {
        return variants
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| match campaign::replay_unit::<R>(call, i as u64) {
                Some(r) => r,
                None => {
                    let r = f(v);
                    campaign::record_unit(call, i as u64, &r);
                    r
                }
            })
            .collect();
    }
    parallel_map(opts.jobs, variants.to_vec(), |_, v| f(v))
}

/// One experiment harness: regenerates a figure/table as printable text.
pub type Experiment = fn(Opts) -> String;

/// Every figure/table harness, in the order `all_experiments` prints.
pub const EXPERIMENTS: &[(&str, Experiment)] = &[
    ("fig06", experiments::fig06_decompress),
    ("fig07", experiments::fig07_decompress_count),
    ("fig13", experiments::fig13_phi),
    ("fig14", experiments::fig14_phi_dram),
    ("fig16", experiments::fig16_hats),
    ("fig17", experiments::fig17_hats_breakdown),
    ("fig19", experiments::fig19_nvm),
    ("fig20", experiments::fig20_nvm_instrs),
    ("fig21", experiments::fig21_sidechannel),
    ("fig22", experiments::fig22_fabric_size),
    ("fig23", experiments::fig23_pe_latency),
    ("fig24", experiments::fig24_core_uarch),
    ("fig25", experiments::fig25_scalability),
    ("table2", experiments::table2_overhead),
    ("sens_cb", experiments::sens_callback_buffer),
    ("sens_rtlb", experiments::sens_rtlb),
    ("ablations", experiments::ablations),
];

/// The outcome of one experiment under [`run_all`].
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Harness name (`fig06` … `ablations`).
    pub name: &'static str,
    /// The experiment's printable output.
    pub output: String,
    /// Wall-clock time the harness took on its worker.
    pub wall: Duration,
}

/// Run every harness in [`EXPERIMENTS`] across `opts.jobs` workers and
/// return the results in table order. The machine is reserved for the
/// experiment-level fan-out: each harness runs with `jobs = 1` inside.
pub fn run_all(opts: Opts) -> Vec<ExperimentResult> {
    let inner = opts.serial();
    parallel_map(opts.jobs, EXPERIMENTS.to_vec(), move |_, (name, f)| {
        let t0 = Instant::now();
        let output = f(inner);
        ExperimentResult {
            name,
            output,
            wall: t0.elapsed(),
        }
    })
}

/// Like [`run_all`], but each harness runs behind a panic guard: a
/// panicking experiment becomes `Err(panic payload)` while every other
/// harness still runs to completion — the `--keep-going` contract of
/// `all_experiments`. When `force_panic` names a harness it panics on
/// entry (the hook the keep-going integration test drives).
pub fn run_all_catch(
    opts: Opts,
    force_panic: Option<&str>,
) -> Vec<(&'static str, Result<ExperimentResult, String>)> {
    let inner = opts.serial();
    let results = parallel_map_catch(opts.jobs, EXPERIMENTS.to_vec(), move |_, (name, f)| {
        if Some(name) == force_panic {
            panic!("forced panic in {name} (--force-panic)");
        }
        let t0 = Instant::now();
        let output = f(inner);
        ExperimentResult {
            name,
            output,
            wall: t0.elapsed(),
        }
    });
    EXPERIMENTS
        .iter()
        .zip(results)
        .map(|((name, _), r)| (*name, r))
        .collect()
}

/// Render one labelled row of `(label, value)` pairs.
pub fn row(label: &str, cols: &[(&str, String)]) -> String {
    let mut s = format!("{label:<16}");
    for (name, v) in cols {
        s.push_str(&format!(" {name}={v}"));
    }
    s.push('\n');
    s
}

/// Format a ratio as `x.xx×`.
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_known_flags() {
        let (o, unknown) = Opts::parse(&s(&[
            "--scale", "0.5", "--paper", "--seed", "7", "--jobs", "3",
        ]));
        assert!(unknown.is_empty());
        assert_eq!(o.scale, 0.5);
        assert!(o.paper);
        assert_eq!(o.seed, 7);
        assert_eq!(o.jobs, 3);
        assert_eq!(o.lanes, 0);
    }

    #[test]
    fn parse_lanes() {
        let (o, unknown) = Opts::parse(&s(&["--lanes", "4"]));
        assert!(unknown.is_empty());
        assert_eq!(o.lanes, 4);
    }

    #[test]
    fn parse_collects_unknown() {
        let (o, unknown) = Opts::parse(&s(&["--wat", "--seed", "9"]));
        assert_eq!(unknown, vec!["--wat".to_string()]);
        assert_eq!(o.seed, 9);
    }

    #[test]
    fn jobs_zero_clamps_to_one() {
        let (o, _) = Opts::parse(&s(&["--jobs", "0"]));
        assert_eq!(o.jobs, 1);
    }

    #[test]
    fn run_variants_preserves_order() {
        let opts = Opts {
            jobs: 4,
            ..Opts::default()
        };
        let out = run_variants(opts, &[3u64, 1, 4, 1, 5], |v| v * 10);
        assert_eq!(out, vec![30, 10, 40, 10, 50]);
    }
}
