//! Supervised campaign runner: persistent journal, resume, deadlines,
//! bounded deterministic retries, and crash triage.
//!
//! A *campaign* is one `all_experiments` invocation with `--journal`.
//! The journal directory holds:
//!
//! * `manifest.txt` — the campaign parameters (scale/paper/seed and the
//!   experiment list). A resume into a differently parameterized
//!   campaign is rejected before anything runs.
//! * `<name>.done` — one versioned, checksummed record per completed
//!   experiment: its full printed output and wall time. Resume replays
//!   these verbatim instead of re-running (the output contract is
//!   byte-identical either way).
//! * `<name>.units` — in-experiment checkpoints: every completed
//!   [`run_variants`](crate::run_variants) unit (one simulated variant)
//!   is appended as a self-checking record. An interrupted experiment
//!   resumes *mid-run*: completed units replay bit-exactly, only the
//!   remainder simulates.
//! * `<name>.triage.txt` — written when an attempt dies (panic or
//!   deadline kill): the panic payload — which for a deadline kill is
//!   the hierarchy's triage bundle (diagnostic snapshot, fault-plan
//!   cursor, event-trace tail, last checkpoint id) — plus the unit
//!   cursor and the exact command line that resumes the campaign.
//! * `attempts.log` — one line per attempt with its outcome and the
//!   deterministic backoff that preceded it.
//!
//! Failed experiments are retried up to `--retries` times with bounded
//! exponential backoff. The schedule is *seeded and deterministic*:
//! derived from the campaign seed, the experiment name, and the attempt
//! number, never from wall-clock state, so a re-run of the same failing
//! campaign produces the same journaled schedule.
//!
//! Deadlines ride the watchdog: the worker arms
//! [`tako_sim::supervise`] before entering the experiment, and the
//! hierarchy's epoch sweep probes it at every quiescent point — a
//! stalled simulation is killed from *inside* (a panic carrying the
//! triage bundle) at its next epoch boundary, without any second
//! thread or signal machinery.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use tako_sim::checkpoint::{decode, encode, Record, SnapError, SnapReader, SnapWriter, Snapshot};
use tako_sim::digest::Sha256;
use tako_sim::parallel::parallel_map_catch;
use tako_sim::rng::Rng;
use tako_sim::supervise;

use crate::{Experiment, ExperimentResult, Opts};

// ---------------------------------------------------------------------
// In-experiment unit journal
// ---------------------------------------------------------------------

/// Per-record magic for the append-only unit file ("UNT1").
const UNIT_MAGIC: [u8; 4] = *b"UNT1";

struct UnitJournal {
    /// Completed units from a previous attempt, keyed by
    /// (run_variants call sequence within the experiment, variant index).
    replay: HashMap<(u64, u64), Vec<u8>>,
    file: Option<File>,
    path: PathBuf,
    next_call: u64,
    pending: u64,
    flush_every: u64,
    crash_after: Option<u64>,
}

thread_local! {
    static JOURNAL: RefCell<Option<UnitJournal>> = const { RefCell::new(None) };
}

/// RAII scope for armed supervision; dropping disarms (including
/// during a panic unwind, so a dead attempt's deadline never bleeds
/// into the next experiment scheduled on the same worker thread).
struct SuperviseScope(());

impl SuperviseScope {
    fn arm(deadline: Option<Duration>) -> Self {
        supervise::arm(deadline);
        SuperviseScope(())
    }
}

impl Drop for SuperviseScope {
    fn drop(&mut self) {
        supervise::disarm();
    }
}

/// RAII scope for an armed unit journal; dropping disarms (including
/// during a panic unwind, so a dead attempt never leaks its journal
/// into the next experiment scheduled on the same worker thread).
pub struct UnitScope(());

impl Drop for UnitScope {
    fn drop(&mut self) {
        JOURNAL.with(|j| *j.borrow_mut() = None);
    }
}

/// Arm the calling thread's unit journal on `path`, replaying any
/// complete records a previous attempt left there. `flush_every` is the
/// `--checkpoint-every` cadence: how many fresh units may sit in OS
/// buffers before the file is synced.
///
/// # Errors
///
/// Propagates I/O errors opening or reading the journal file. A
/// *corrupt or truncated tail* is not an error: it is the expected
/// debris of a crash and is discarded (the file is truncated to the
/// last intact record).
pub fn unit_journal(path: &Path, flush_every: u64) -> std::io::Result<UnitScope> {
    let mut replay = HashMap::new();
    let mut intact = 0u64;
    if let Ok(mut f) = File::open(path) {
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        let mut at = 0usize;
        while let Some((call, idx, payload, next)) = read_unit(&buf, at) {
            replay.insert((call, idx), payload);
            at = next;
        }
        intact = at as u64;
    }
    if path.exists() {
        // Drop the crash tail so appends start at a record boundary.
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(intact)?;
    }
    JOURNAL.with(|j| {
        *j.borrow_mut() = Some(UnitJournal {
            replay,
            file: None,
            path: path.to_path_buf(),
            next_call: 0,
            pending: 0,
            flush_every: flush_every.max(1),
            crash_after: None,
        })
    });
    Ok(UnitScope(()))
}

/// Parse one unit record at `at`; `None` on truncation or corruption
/// (the reader stops there and the tail is discarded).
fn read_unit(buf: &[u8], at: usize) -> Option<(u64, u64, Vec<u8>, usize)> {
    let hdr = 4 + 8 + 8 + 8;
    if buf.len() < at + hdr {
        return None;
    }
    if buf[at..at + 4] != UNIT_MAGIC {
        return None;
    }
    let g = |o: usize| u64::from_le_bytes(buf[at + o..at + o + 8].try_into().unwrap());
    let (call, idx, len) = (g(4), g(12), g(20) as usize);
    let start = at + hdr;
    if buf.len() < start + len + 8 {
        return None;
    }
    let payload = &buf[start..start + len];
    let want = u64::from_le_bytes(buf[start + len..start + len + 8].try_into().unwrap());
    if unit_checksum(payload) != want {
        return None;
    }
    Some((call, idx, payload.to_vec(), start + len + 8))
}

/// First 8 bytes of the payload's SHA-256, as the per-record checksum.
fn unit_checksum(payload: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(payload);
    u64::from_le_bytes(h.finish()[..8].try_into().unwrap())
}

/// Hand out the next `run_variants` call id, or `None` when no journal
/// is armed on this thread (the common, non-campaign path).
pub(crate) fn next_call_id() -> Option<u64> {
    JOURNAL.with(|j| {
        j.borrow_mut().as_mut().map(|j| {
            let c = j.next_call;
            j.next_call += 1;
            c
        })
    })
}

/// Replay unit `(call, idx)` from a previous attempt, if it completed.
pub(crate) fn replay_unit<R: Record>(call: u64, idx: u64) -> Option<R> {
    let bytes = JOURNAL.with(|j| {
        j.borrow()
            .as_ref()
            .and_then(|j| j.replay.get(&(call, idx)).cloned())
    })?;
    let mut r = SnapReader::new(&bytes);
    // A record that decodes wrong is treated as absent: the unit
    // recomputes, which is always correct (just slower).
    R::replay(&mut r).and_then(|v| r.finish().map(|()| v)).ok()
}

/// Append a completed unit to the journal and note it as the
/// experiment's most recent checkpoint (named in deadline triage).
pub(crate) fn record_unit<R: Record>(call: u64, idx: u64, value: &R) {
    let mut w = SnapWriter::new();
    value.record(&mut w);
    let payload = w.into_bytes();
    let crash = JOURNAL.with(|j| {
        let mut j = j.borrow_mut();
        let Some(j) = j.as_mut() else { return false };
        let mut rec = Vec::with_capacity(payload.len() + 36);
        rec.extend_from_slice(&UNIT_MAGIC);
        rec.extend_from_slice(&call.to_le_bytes());
        rec.extend_from_slice(&idx.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rec.extend_from_slice(&payload);
        rec.extend_from_slice(&unit_checksum(&payload).to_le_bytes());
        if j.file.is_none() {
            j.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&j.path)
                .ok();
        }
        if let Some(f) = &mut j.file {
            let _ = f.write_all(&rec);
            j.pending += 1;
            if j.pending >= j.flush_every {
                let _ = f.sync_data();
                j.pending = 0;
            }
        }
        match &mut j.crash_after {
            Some(0) => true,
            Some(n) => {
                *n -= 1;
                *n == 0
            }
            None => false,
        }
    });
    supervise::note_checkpoint(&format!("unit {call}.{idx}"));
    if crash {
        // The deterministic interrupt hook (--crash-after-units): dies
        // *after* the unit is journaled, like a machine losing power
        // between a checkpoint and the next one.
        panic!("crashed by --crash-after-units (unit {call}.{idx} journaled)");
    }
}

/// Arrange for the current journal scope to panic after `n` more units
/// are recorded — the deterministic stand-in for yanking the process
/// mid-experiment (used by the interrupt/resume smoke and tests).
pub fn crash_after_units(n: u64) {
    JOURNAL.with(|j| {
        if let Some(j) = j.borrow_mut().as_mut() {
            j.crash_after = Some(n);
        }
    });
}

// ---------------------------------------------------------------------
// Campaign journal (experiment granularity)
// ---------------------------------------------------------------------

/// Options for a supervised, journaled campaign.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Journal directory.
    pub dir: PathBuf,
    /// Resume: keep completed experiments and in-experiment units from
    /// a previous run of the same campaign.
    pub resume: bool,
    /// Wall-clock budget per experiment attempt; exceeded → the
    /// hierarchy kills the run at its next epoch with a triage panic.
    pub deadline: Option<Duration>,
    /// Retries after the first failed attempt.
    pub retries: u32,
    /// Sync the unit journal every this many units.
    pub checkpoint_every: u64,
    /// Panic on entry of the named experiment (test hook, mirrors
    /// `--force-panic`). Only the first attempt panics, so a retry
    /// succeeds — which is exactly what the retry test wants.
    pub force_panic: Option<String>,
    /// Die after this many journaled units in each experiment that
    /// runs (test hook behind `--crash-after-units`).
    pub crash_after_units: Option<u64>,
}

impl CampaignOpts {
    /// A campaign journaling into `dir` with everything else default:
    /// fresh (no resume), no deadline, no retries, sync every unit.
    pub fn fresh(dir: impl Into<PathBuf>) -> Self {
        CampaignOpts {
            dir: dir.into(),
            resume: false,
            deadline: None,
            retries: 0,
            checkpoint_every: 1,
            force_panic: None,
            crash_after_units: None,
        }
    }
}

/// What [`run_campaign`] hands back, beyond the per-experiment results.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-experiment outcomes in table order. `Err` carries the final
    /// failure message after all retries were exhausted.
    pub results: Vec<(&'static str, Result<ExperimentResult, String>)>,
    /// Experiments replayed from `.done` records without re-running.
    pub replayed: usize,
    /// Attempts actually executed (first tries + retries).
    pub attempts: u64,
}

/// One completed experiment, journaled as a `.done` envelope.
#[derive(Default)]
struct DoneRecord {
    name: String,
    output: String,
    wall_nanos: u64,
    attempt: u32,
}

impl Snapshot for DoneRecord {
    fn save(&self, w: &mut SnapWriter) {
        w.section("done");
        w.put_str(&self.name);
        w.put_str(&self.output);
        w.put_u64(self.wall_nanos);
        w.put_u32(self.attempt);
    }
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("done")?;
        self.name = r.get_str()?;
        self.output = r.get_str()?;
        self.wall_nanos = r.get_u64()?;
        self.attempt = r.get_u32()?;
        Ok(())
    }
}

fn manifest_text(opts: Opts, experiments: &[(&'static str, Experiment)]) -> String {
    let names: Vec<&str> = experiments.iter().map(|(n, _)| *n).collect();
    format!(
        "scale={}\npaper={}\nseed={}\nexperiments={}\n",
        opts.scale,
        opts.paper,
        opts.seed,
        names.join(",")
    )
}

/// FNV-1a of an experiment name, for the per-experiment backoff seed.
fn name_hash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |a, b| {
        (a ^ b as u64).wrapping_mul(0x1_0000_0000_01b3)
    })
}

/// The deterministic backoff (ms) that precedes `attempt` (1-based) of
/// `name`: bounded exponential plus seeded jitter. Pure function of its
/// arguments — a re-run journals the identical schedule.
pub fn backoff_ms(seed: u64, name: &str, attempt: u32) -> u64 {
    let base = (25u64 << (attempt - 1).min(6)).min(800);
    base + Rng::new(seed ^ name_hash(name) ^ attempt as u64).below(25)
}

/// The command line that resumes this campaign, embedded in every
/// triage bundle.
fn resume_cmdline(opts: Opts, c: &CampaignOpts) -> String {
    let mut s = format!(
        "all_experiments --journal {} --resume --scale {} --seed {} --jobs {}",
        c.dir.display(),
        opts.scale,
        opts.seed,
        opts.jobs
    );
    if opts.paper {
        s.push_str(" --paper");
    }
    if let Some(d) = c.deadline {
        s.push_str(&format!(" --deadline {}", d.as_secs_f64()));
    }
    if c.retries > 0 {
        s.push_str(&format!(" --retries {}", c.retries));
    }
    if c.checkpoint_every != 1 {
        s.push_str(&format!(" --checkpoint-every {}", c.checkpoint_every));
    }
    s
}

fn append_line(path: &Path, line: &str) {
    if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{line}");
    }
}

/// Atomically (tmp + rename) write `bytes` to `path`, so a crash during
/// the write can never leave a half-record that later reads as done.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Run `experiments` as a supervised, journaled campaign.
///
/// # Errors
///
/// I/O errors on the journal directory, and a manifest mismatch when
/// resuming into a campaign run with different parameters. Individual
/// experiment failures are *not* errors: they are journaled, retried,
/// and reported per-experiment in the outcome.
pub fn run_campaign(
    opts: Opts,
    c: &CampaignOpts,
    experiments: &[(&'static str, Experiment)],
) -> std::io::Result<CampaignOutcome> {
    std::fs::create_dir_all(&c.dir)?;
    let manifest_path = c.dir.join("manifest.txt");
    let manifest = manifest_text(opts, experiments);
    if c.resume && manifest_path.exists() {
        let prior = std::fs::read_to_string(&manifest_path)?;
        if prior != manifest {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "--resume into a different campaign: journal has\n{prior}\
                     but this invocation is\n{manifest}"
                ),
            ));
        }
    } else {
        // Fresh campaign: clear any stale records so nothing replays.
        for (name, _) in experiments {
            for ext in ["done", "units", "triage.txt"] {
                let _ = std::fs::remove_file(c.dir.join(format!("{name}.{ext}")));
            }
        }
        let _ = std::fs::remove_file(c.dir.join("attempts.log"));
        write_atomic(&manifest_path, manifest.as_bytes())?;
    }

    let mut results: Vec<(&'static str, Result<ExperimentResult, String>)> = Vec::new();
    let mut todo: Vec<(&'static str, Experiment)> = Vec::new();
    let mut replayed = 0usize;
    for &(name, f) in experiments {
        let done_path = c.dir.join(format!("{name}.done"));
        let rec = std::fs::read(&done_path).ok().and_then(|bytes| {
            let mut rec = DoneRecord::default();
            decode(&bytes, &mut rec).ok().map(|()| rec)
        });
        match rec {
            Some(rec) if rec.name == name => {
                replayed += 1;
                results.push((
                    name,
                    Ok(ExperimentResult {
                        name,
                        output: rec.output,
                        wall: Duration::from_nanos(rec.wall_nanos),
                    }),
                ));
            }
            _ => {
                // Placeholder keeps table order; filled below.
                results.push((name, Err(String::from("never attempted"))));
                todo.push((name, f));
            }
        }
    }

    let inner = opts.serial();
    let log = c.dir.join("attempts.log");
    let mut attempts = 0u64;
    for attempt in 1..=(1 + c.retries) {
        if todo.is_empty() {
            break;
        }
        if attempt > 1 {
            // Deterministic, bounded exponential backoff before each
            // retry wave; the schedule is journaled so a post-mortem
            // can see exactly when each attempt was eligible to run.
            let mut wait = 0u64;
            for (name, _) in &todo {
                let b = backoff_ms(opts.seed, name, attempt);
                append_line(&log, &format!("{name} attempt={attempt} backoff_ms={b}"));
                wait = wait.max(b);
            }
            std::thread::sleep(Duration::from_millis(wait));
        }
        attempts += todo.len() as u64;
        let force = if attempt == 1 {
            c.force_panic.clone()
        } else {
            None
        };
        let dir = c.dir.clone();
        let deadline = c.deadline;
        let every = c.checkpoint_every;
        let crash = if attempt == 1 {
            c.crash_after_units
        } else {
            None
        };
        let batch = parallel_map_catch(opts.jobs, todo.clone(), move |_, (name, f)| {
            let _units =
                unit_journal(&dir.join(format!("{name}.units")), every).expect("unit journal");
            if let Some(n) = crash {
                crash_after_units(n);
            }
            let _sup = SuperviseScope::arm(deadline);
            if Some(name) == force.as_deref() {
                panic!("forced panic in {name} (--force-panic)");
            }
            let t0 = Instant::now();
            let output = f(inner);
            ExperimentResult {
                name,
                output,
                wall: t0.elapsed(),
            }
        });

        let mut still_failing = Vec::new();
        for ((name, f), r) in todo.into_iter().zip(batch) {
            match r {
                Ok(res) => {
                    let rec = DoneRecord {
                        name: name.to_string(),
                        output: res.output.clone(),
                        wall_nanos: res.wall.as_nanos() as u64,
                        attempt,
                    };
                    write_atomic(&c.dir.join(format!("{name}.done")), &encode(&rec))?;
                    append_line(&log, &format!("{name} attempt={attempt} outcome=ok"));
                    let slot = results.iter_mut().find(|(n, _)| *n == name).unwrap();
                    slot.1 = Ok(res);
                }
                Err(msg) => {
                    let units = units_on_disk(&c.dir.join(format!("{name}.units")));
                    let triage = format!(
                        "experiment: {name}\nattempt: {attempt} of {}\n\
                         journaled units: {units}\n--- failure ---\n{msg}\n\
                         --- resume ---\n{}\n",
                        1 + c.retries,
                        resume_cmdline(opts, c),
                    );
                    write_atomic(&c.dir.join(format!("{name}.triage.txt")), triage.as_bytes())?;
                    append_line(&log, &format!("{name} attempt={attempt} outcome=failed"));
                    let slot = results.iter_mut().find(|(n, _)| *n == name).unwrap();
                    slot.1 = Err(msg);
                    still_failing.push((name, f));
                }
            }
        }
        todo = still_failing;
    }

    Ok(CampaignOutcome {
        results,
        replayed,
        attempts,
    })
}

/// Count the intact unit records in a journal file (for triage).
fn units_on_disk(path: &Path) -> u64 {
    let Ok(buf) = std::fs::read(path) else {
        return 0;
    };
    let mut n = 0u64;
    let mut at = 0usize;
    while let Some((_, _, _, next)) = read_unit(&buf, at) {
        n += 1;
        at = next;
    }
    n
}
