//! Supervised campaign runner: persistent journal, resume, deadlines,
//! bounded deterministic retries, and crash triage.
//!
//! A *campaign* is one `all_experiments` invocation with `--journal`.
//! The journal directory holds:
//!
//! * `manifest.txt` — the campaign parameters (scale/paper/seed and the
//!   experiment list), a generation number bumped by every invocation
//!   that touches the journal, and a trailing content checksum. A
//!   resume into a differently parameterized campaign is rejected
//!   before anything runs; a corrupt manifest is refused with a
//!   pointer at `tako_fsck --repair`.
//! * `<name>.done` — one versioned, checksummed record per completed
//!   experiment: its full printed output, wall time, and the campaign
//!   fingerprint it belongs to. Resume replays these verbatim instead
//!   of re-running (the output contract is byte-identical either way);
//!   a record that fails its checksum or names a different campaign is
//!   ignored and the experiment re-runs.
//! * `<name>.units` — in-experiment checkpoints: a fingerprinted
//!   header followed by one self-checking record per completed
//!   [`run_variants`](crate::run_variants) unit. An interrupted
//!   experiment resumes *mid-run*: completed units replay bit-exactly,
//!   only the remainder simulates.
//! * `<name>.triage.txt` — written when an attempt dies (panic or
//!   deadline kill): the panic payload — which for a deadline kill is
//!   the hierarchy's triage bundle (diagnostic snapshot, fault-plan
//!   cursor, event-trace tail, last checkpoint id) — plus the unit
//!   cursor and the exact command line that resumes the campaign.
//! * `attempts.log` — one line per attempt with its outcome and the
//!   deterministic backoff that preceded it.
//!
//! **Every durable write goes through [`tako_sim::storage`]**: whole
//! files are written atomically (temp + sync + rename), appends carry
//! per-record checksums, and the fault-injecting backend can crash the
//! campaign at any I/O site — the crash-point sweep (`crash_campaign`)
//! proves that resume from *every* such crash reproduces the
//! uninterrupted run's output byte-for-byte. Failures that classify as
//! *transient* (interrupted syscall, timeout, resource pressure) are
//! retried in place at every campaign-level I/O site; only failures
//! that outlive the retry budget surface.
//!
//! Failed experiments are retried up to `--retries` times with bounded
//! exponential backoff. The schedule is *seeded and deterministic*:
//! derived from the campaign seed, the experiment name, and the attempt
//! number, never from wall-clock state, so a re-run of the same failing
//! campaign produces the same journaled schedule. Retries apply only to
//! failures that might go away: an attempt that died on a *permanent*
//! storage error (see [`tako_sim::storage::IoClass`]) is reported
//! immediately instead of burning the backoff schedule.
//!
//! Deadlines ride the watchdog: the worker arms
//! [`tako_sim::supervise`] before entering the experiment, and the
//! hierarchy's epoch sweep probes it at every quiescent point — a
//! stalled simulation is killed from *inside* (a panic carrying the
//! triage bundle) at its next epoch boundary, without any second
//! thread or signal machinery.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tako_sim::checkpoint::{decode, encode, Record, SnapError, SnapReader, SnapWriter, Snapshot};
use tako_sim::digest::Sha256;
use tako_sim::parallel::parallel_map_catch;
use tako_sim::rng::Rng;
use tako_sim::storage::{
    classify, DiskStorage, IoClass, IoHealth, Storage, CRASH_MARKER, PERMANENT_MARKER,
};
use tako_sim::supervise;

use crate::{Experiment, ExperimentResult, Opts};

// ---------------------------------------------------------------------
// In-experiment unit journal
// ---------------------------------------------------------------------

/// Per-record magic for the append-only unit file ("UNT1").
pub(crate) const UNIT_MAGIC: [u8; 4] = *b"UNT1";

/// Header magic of a unit journal ("UJH1"), followed by the campaign
/// fingerprint. A journal whose header names a different campaign is
/// discarded wholesale instead of replaying foreign units.
pub(crate) const UNIT_HEADER_MAGIC: [u8; 4] = *b"UJH1";

/// Size of the unit-journal header: magic + fingerprint.
pub(crate) const UNIT_HEADER_LEN: usize = 4 + 8;

struct UnitJournal {
    /// Completed units from a previous attempt, keyed by
    /// (run_variants call sequence within the experiment, variant index).
    replay: HashMap<(u64, u64), Vec<u8>>,
    storage: Arc<dyn Storage>,
    path: PathBuf,
    next_call: u64,
    pending: u64,
    flush_every: u64,
    crash_after: Option<u64>,
}

thread_local! {
    static JOURNAL: RefCell<Option<UnitJournal>> = const { RefCell::new(None) };
}

/// RAII scope for armed supervision; dropping disarms (including
/// during a panic unwind, so a dead attempt's deadline never bleeds
/// into the next experiment scheduled on the same worker thread).
struct SuperviseScope(());

impl SuperviseScope {
    fn arm(deadline: Option<Duration>) -> Self {
        supervise::arm(deadline);
        SuperviseScope(())
    }
}

impl Drop for SuperviseScope {
    fn drop(&mut self) {
        supervise::disarm();
    }
}

/// RAII scope for an armed unit journal; dropping disarms (including
/// during a panic unwind, so a dead attempt never leaks its journal
/// into the next experiment scheduled on the same worker thread).
pub struct UnitScope(());

impl Drop for UnitScope {
    fn drop(&mut self) {
        JOURNAL.with(|j| *j.borrow_mut() = None);
    }
}

/// Arm the calling thread's unit journal on `path` under `storage`,
/// replaying any complete records a previous attempt left there.
/// `flush_every` is the `--checkpoint-every` cadence: how many fresh
/// units may sit in OS buffers before the file is synced.
/// `fingerprint` identifies the campaign; a journal written by a
/// different campaign (or with no header at all) is discarded instead
/// of replayed.
///
/// # Errors
///
/// Propagates I/O errors opening or reading the journal file. A
/// *corrupt or truncated tail* is not an error: it is the expected
/// debris of a crash and is discarded (the file is truncated to the
/// last intact record).
pub fn unit_journal(
    storage: Arc<dyn Storage>,
    path: &Path,
    flush_every: u64,
    fingerprint: u64,
) -> std::io::Result<UnitScope> {
    let mut replay = HashMap::new();
    if storage.exists(path) {
        let buf = retrying(|| storage.read(path))?;
        let mut intact = 0u64;
        if let Some(rest) = unit_header_matches(&buf, fingerprint) {
            let mut at = 0usize;
            while let Some((call, idx, payload, next)) = read_unit(rest, at) {
                replay.insert((call, idx), payload);
                at = next;
            }
            intact = (UNIT_HEADER_LEN + at) as u64;
        }
        // Drop the crash tail (or an entire foreign/headerless journal)
        // so appends start at a record boundary.
        retrying(|| storage.truncate(path, intact))?;
        if intact == 0 {
            retrying(|| storage.append(path, &unit_header(fingerprint)))?;
        }
    } else {
        retrying(|| storage.append(path, &unit_header(fingerprint)))?;
    }
    JOURNAL.with(|j| {
        *j.borrow_mut() = Some(UnitJournal {
            replay,
            storage,
            path: path.to_path_buf(),
            next_call: 0,
            pending: 0,
            flush_every: flush_every.max(1),
            crash_after: None,
        })
    });
    Ok(UnitScope(()))
}

/// Render a unit-journal header for `fingerprint`.
fn unit_header(fingerprint: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(UNIT_HEADER_LEN);
    h.extend_from_slice(&UNIT_HEADER_MAGIC);
    h.extend_from_slice(&fingerprint.to_le_bytes());
    h
}

/// If `buf` starts with a valid header for `fingerprint`, return the
/// record bytes after it.
pub(crate) fn unit_header_matches(buf: &[u8], fingerprint: u64) -> Option<&[u8]> {
    if buf.len() < UNIT_HEADER_LEN || buf[..4] != UNIT_HEADER_MAGIC {
        return None;
    }
    let fp = u64::from_le_bytes(buf[4..12].try_into().ok()?);
    if fp != fingerprint {
        return None;
    }
    Some(&buf[UNIT_HEADER_LEN..])
}

/// Parse one unit record at `at`; `None` on truncation or corruption
/// (the reader stops there and the tail is discarded).
pub(crate) fn read_unit(buf: &[u8], at: usize) -> Option<(u64, u64, Vec<u8>, usize)> {
    let hdr = 4 + 8 + 8 + 8;
    if buf.len() < at + hdr {
        return None;
    }
    if buf[at..at + 4] != UNIT_MAGIC {
        return None;
    }
    let g = |o: usize| u64::from_le_bytes(buf[at + o..at + o + 8].try_into().unwrap());
    let (call, idx, len) = (g(4), g(12), g(20) as usize);
    let start = at + hdr;
    if buf.len() < start + len || buf.len() - start - len < 8 {
        return None;
    }
    let payload = &buf[start..start + len];
    let want = u64::from_le_bytes(buf[start + len..start + len + 8].try_into().unwrap());
    if unit_checksum(payload) != want {
        return None;
    }
    Some((call, idx, payload.to_vec(), start + len + 8))
}

/// First 8 bytes of the payload's SHA-256, as the per-record checksum.
fn unit_checksum(payload: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(payload);
    u64::from_le_bytes(h.finish()[..8].try_into().unwrap())
}

/// Hand out the next `run_variants` call id, or `None` when no journal
/// is armed on this thread (the common, non-campaign path).
pub(crate) fn next_call_id() -> Option<u64> {
    JOURNAL.with(|j| {
        j.borrow_mut().as_mut().map(|j| {
            let c = j.next_call;
            j.next_call += 1;
            c
        })
    })
}

/// Replay unit `(call, idx)` from a previous attempt, if it completed.
pub(crate) fn replay_unit<R: Record>(call: u64, idx: u64) -> Option<R> {
    let bytes = JOURNAL.with(|j| {
        j.borrow()
            .as_ref()
            .and_then(|j| j.replay.get(&(call, idx)).cloned())
    })?;
    let mut r = SnapReader::new(&bytes);
    // A record that decodes wrong is treated as absent: the unit
    // recomputes, which is always correct (just slower).
    R::replay(&mut r).and_then(|v| r.finish().map(|()| v)).ok()
}

/// Append a completed unit to the journal and note it as the
/// experiment's most recent checkpoint (named in deadline triage).
///
/// A *transient* append failure is retried in place; if it persists,
/// checkpointing degrades (the unit will recompute on resume) but the
/// simulation continues. A *permanent* failure aborts the attempt with
/// a [`PERMANENT_MARKER`] panic, which the campaign runner reports
/// without retrying.
pub(crate) fn record_unit<R: Record>(call: u64, idx: u64, value: &R) {
    let mut w = SnapWriter::new();
    value.record(&mut w);
    let payload = w.into_bytes();
    let crash = JOURNAL.with(|j| {
        let mut j = j.borrow_mut();
        let Some(j) = j.as_mut() else { return false };
        let mut rec = Vec::with_capacity(payload.len() + 36);
        rec.extend_from_slice(&UNIT_MAGIC);
        rec.extend_from_slice(&call.to_le_bytes());
        rec.extend_from_slice(&idx.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rec.extend_from_slice(&payload);
        rec.extend_from_slice(&unit_checksum(&payload).to_le_bytes());
        match retrying(|| j.storage.append(&j.path, &rec)) {
            Ok(()) => {
                j.pending += 1;
                if j.pending >= j.flush_every {
                    // A failed sync is at worst a lost checkpoint; the
                    // backend has already classified and counted it.
                    let _ = j.storage.sync(&j.path);
                    j.pending = 0;
                }
            }
            Err(e) => {
                if classify(&e) == IoClass::Permanent {
                    panic!(
                        "{PERMANENT_MARKER} unit journal append to {}: {e}",
                        j.path.display()
                    );
                }
                // Transient: checkpointing degraded, simulation goes on.
            }
        }
        match &mut j.crash_after {
            Some(0) => true,
            Some(n) => {
                *n -= 1;
                *n == 0
            }
            None => false,
        }
    });
    supervise::note_checkpoint(&format!("unit {call}.{idx}"));
    if crash {
        // The deterministic interrupt hook (--crash-after-units): dies
        // *after* the unit is journaled, like a machine losing power
        // between a checkpoint and the next one.
        panic!("crashed by --crash-after-units (unit {call}.{idx} journaled)");
    }
}

/// Arrange for the current journal scope to panic after `n` more units
/// are recorded — the deterministic stand-in for yanking the process
/// mid-experiment (used by the interrupt/resume smoke and tests).
pub fn crash_after_units(n: u64) {
    JOURNAL.with(|j| {
        if let Some(j) = j.borrow_mut().as_mut() {
            j.crash_after = Some(n);
        }
    });
}

// ---------------------------------------------------------------------
// Campaign journal (experiment granularity)
// ---------------------------------------------------------------------

/// Options for a supervised, journaled campaign.
#[derive(Clone)]
pub struct CampaignOpts {
    /// Journal directory.
    pub dir: PathBuf,
    /// Resume: keep completed experiments and in-experiment units from
    /// a previous run of the same campaign.
    pub resume: bool,
    /// Wall-clock budget per experiment attempt; exceeded → the
    /// hierarchy kills the run at its next epoch with a triage panic.
    pub deadline: Option<Duration>,
    /// Retries after the first failed attempt.
    pub retries: u32,
    /// Sync the unit journal every this many units.
    pub checkpoint_every: u64,
    /// Panic on entry of the named experiment (test hook, mirrors
    /// `--force-panic`). Only the first attempt panics, so a retry
    /// succeeds — which is exactly what the retry test wants.
    pub force_panic: Option<String>,
    /// Die after this many journaled units in each experiment that
    /// runs (test hook behind `--crash-after-units`).
    pub crash_after_units: Option<u64>,
    /// The persistence backend every journal byte flows through. The
    /// default is the real filesystem; the crash-point sweep passes a
    /// [`tako_sim::storage::FaultStorage`].
    pub storage: Arc<dyn Storage>,
}

impl fmt::Debug for CampaignOpts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignOpts")
            .field("dir", &self.dir)
            .field("resume", &self.resume)
            .field("deadline", &self.deadline)
            .field("retries", &self.retries)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("force_panic", &self.force_panic)
            .field("crash_after_units", &self.crash_after_units)
            .finish_non_exhaustive()
    }
}

impl CampaignOpts {
    /// A campaign journaling into `dir` with everything else default:
    /// fresh (no resume), no deadline, no retries, sync every unit,
    /// real-filesystem storage.
    pub fn fresh(dir: impl Into<PathBuf>) -> Self {
        CampaignOpts {
            dir: dir.into(),
            resume: false,
            deadline: None,
            retries: 0,
            checkpoint_every: 1,
            force_panic: None,
            crash_after_units: None,
            storage: Arc::new(DiskStorage::new()),
        }
    }
}

/// What [`run_campaign`] hands back, beyond the per-experiment results.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-experiment outcomes in table order. `Err` carries the final
    /// failure message after all retries were exhausted.
    pub results: Vec<(&'static str, Result<ExperimentResult, String>)>,
    /// Experiments replayed from `.done` records without re-running.
    pub replayed: usize,
    /// Attempts actually executed (first tries + retries).
    pub attempts: u64,
    /// The storage backend's failure tally for this run —
    /// transient-vs-permanent I/O degradation, surfaced in the
    /// campaign status line.
    pub io: IoHealth,
}

/// One completed experiment, journaled as a `.done` envelope.
#[derive(Default)]
pub(crate) struct DoneRecord {
    pub(crate) name: String,
    pub(crate) output: String,
    pub(crate) wall_nanos: u64,
    pub(crate) attempt: u32,
    /// The campaign this record belongs to; a mismatch (stale journal
    /// dir, skewed manifest) means the record is ignored and the
    /// experiment re-runs rather than replaying foreign output.
    pub(crate) fingerprint: u64,
}

impl Snapshot for DoneRecord {
    fn save(&self, w: &mut SnapWriter) {
        w.section("done");
        w.put_str(&self.name);
        w.put_str(&self.output);
        w.put_u64(self.wall_nanos);
        w.put_u32(self.attempt);
        w.put_u64(self.fingerprint);
    }
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("done")?;
        self.name = r.get_str()?;
        self.output = r.get_str()?;
        self.wall_nanos = r.get_u64()?;
        self.attempt = r.get_u32()?;
        self.fingerprint = r.get_u64()?;
        Ok(())
    }
}

fn manifest_params(opts: Opts, experiments: &[(&'static str, Experiment)]) -> String {
    let names: Vec<&str> = experiments.iter().map(|(n, _)| *n).collect();
    format!(
        "scale={}\npaper={}\nseed={}\nexperiments={}\n",
        opts.scale,
        opts.paper,
        opts.seed,
        names.join(",")
    )
}

/// The campaign fingerprint: FNV-1a of the manifest parameter block.
/// Stamped into every `.done` record and unit-journal header so the
/// records are self-describing even if the manifest is lost.
pub fn campaign_fingerprint(params: &str) -> u64 {
    name_hash(params)
}

/// Render a full manifest: parameters, generation, content checksum.
fn render_manifest(params: &str, generation: u64) -> String {
    let body = format!("{params}generation={generation}\n");
    let mut h = Sha256::new();
    h.update(body.as_bytes());
    let sum = &h.finish_hex()[..16];
    format!("{body}checksum={sum}\n")
}

/// What a manifest on disk turned out to be.
pub(crate) enum ManifestState {
    /// Valid, with its parameter block and generation.
    Valid { params: String, generation: u64 },
    /// Present but failing its checksum or structurally unparseable.
    Corrupt(String),
}

/// Parse and verify a manifest file's content.
pub(crate) fn parse_manifest(text: &str) -> ManifestState {
    let Some((body, tail)) = text.rsplit_once("checksum=") else {
        return ManifestState::Corrupt("missing checksum line".into());
    };
    let mut h = Sha256::new();
    h.update(body.as_bytes());
    let want = &h.finish_hex()[..16];
    if tail.trim() != want {
        return ManifestState::Corrupt(format!(
            "checksum mismatch: recorded {}, content hashes to {want}",
            tail.trim()
        ));
    }
    let Some((params, gen_line)) = body.rsplit_once("generation=") else {
        return ManifestState::Corrupt("missing generation line".into());
    };
    match gen_line.trim().parse::<u64>() {
        Ok(generation) => ManifestState::Valid {
            params: params.to_string(),
            generation,
        },
        Err(_) => ManifestState::Corrupt(format!("bad generation `{}`", gen_line.trim())),
    }
}

/// FNV-1a of an experiment name, for the per-experiment backoff seed.
fn name_hash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |a, b| {
        (a ^ b as u64).wrapping_mul(0x1_0000_0000_01b3)
    })
}

/// The deterministic backoff (ms) that precedes `attempt` (1-based) of
/// `name`: bounded exponential plus seeded jitter. Pure function of its
/// arguments — a re-run journals the identical schedule.
pub fn backoff_ms(seed: u64, name: &str, attempt: u32) -> u64 {
    let base = (25u64 << (attempt - 1).min(6)).min(800);
    base + Rng::new(seed ^ name_hash(name) ^ attempt as u64).below(25)
}

/// The command line that resumes this campaign, embedded in every
/// triage bundle.
fn resume_cmdline(opts: Opts, c: &CampaignOpts) -> String {
    let mut s = format!(
        "all_experiments --journal {} --resume --scale {} --seed {} --jobs {}",
        c.dir.display(),
        opts.scale,
        opts.seed,
        opts.jobs
    );
    if opts.paper {
        s.push_str(" --paper");
    }
    if let Some(d) = c.deadline {
        s.push_str(&format!(" --deadline {}", d.as_secs_f64()));
    }
    if c.retries > 0 {
        s.push_str(&format!(" --retries {}", c.retries));
    }
    if c.checkpoint_every != 1 {
        s.push_str(&format!(" --checkpoint-every {}", c.checkpoint_every));
    }
    s
}

fn append_line(storage: &dyn Storage, path: &Path, line: &str) {
    let _ = retrying(|| storage.append(path, format!("{line}\n").as_bytes()));
}

/// Retry budget for transient I/O failures at campaign-level sites.
const TRANSIENT_IO_RETRIES: u32 = 3;

/// Run `op`, retrying immediately on failures that classify as
/// *transient* (interrupted syscall, timeout, resource pressure).
/// Permanent failures propagate on first sight — retrying corrupt data
/// or a missing file only burns time. No sleep is needed: a transient
/// condition is one that clears on re-issue, and the fault-injecting
/// backend models exactly that (its op cursor has moved past the
/// injected site by the time the retry runs).
fn retrying<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < TRANSIENT_IO_RETRIES && classify(&e) == IoClass::Transient => {
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Prepare the manifest for this invocation and return the campaign
/// fingerprint. Fresh campaigns clear stale records; resumes verify
/// the parameters and bump the generation. A resume whose manifest
/// vanished (e.g. quarantined by `tako_fsck`) proceeds on the strength
/// of the per-record fingerprints and rewrites the manifest.
fn prepare_manifest(
    opts: Opts,
    c: &CampaignOpts,
    experiments: &[(&'static str, Experiment)],
) -> std::io::Result<u64> {
    let manifest_path = c.dir.join("manifest.txt");
    let params = manifest_params(opts, experiments);
    let fingerprint = campaign_fingerprint(&params);
    if c.resume {
        let generation = if c.storage.exists(&manifest_path) {
            let text =
                String::from_utf8_lossy(&retrying(|| c.storage.read(&manifest_path))?).into_owned();
            match parse_manifest(&text) {
                ManifestState::Valid {
                    params: prior,
                    generation,
                } => {
                    if prior != params {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!(
                                "--resume into a different campaign: journal has\n{prior}\
                                 but this invocation is\n{params}"
                            ),
                        ));
                    }
                    generation
                }
                ManifestState::Corrupt(why) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "campaign manifest {} is corrupt ({why}); \
                             run `tako_fsck --repair {}` to quarantine it, then resume",
                            manifest_path.display(),
                            c.dir.display()
                        ),
                    ));
                }
            }
        } else {
            // Manifest lost (crash before it landed, or quarantined).
            // The .done/.units records carry the fingerprint, so resume
            // is still safe; restore the manifest for the next reader.
            0
        };
        retrying(|| {
            c.storage.write_atomic(
                &manifest_path,
                render_manifest(&params, generation + 1).as_bytes(),
            )
        })?;
    } else {
        // Fresh campaign: clear any stale records so nothing replays.
        for (name, _) in experiments {
            for ext in ["done", "units", "triage.txt"] {
                let stale = c.dir.join(format!("{name}.{ext}"));
                retrying(|| c.storage.remove(&stale))?;
            }
        }
        retrying(|| c.storage.remove(&c.dir.join("attempts.log")))?;
        retrying(|| {
            c.storage
                .write_atomic(&manifest_path, render_manifest(&params, 1).as_bytes())
        })?;
    }
    Ok(fingerprint)
}

/// Run `experiments` as a supervised, journaled campaign.
///
/// # Errors
///
/// I/O errors on the journal directory, a manifest mismatch when
/// resuming into a campaign run with different parameters, and a
/// corrupt manifest (pointer at `tako_fsck --repair`). Individual
/// experiment failures are *not* errors: they are journaled, retried,
/// and reported per-experiment in the outcome.
///
/// # Panics
///
/// Re-raises an injected storage crash ([`CRASH_MARKER`]) so a
/// simulated power loss behaves like one: nothing after the crashed
/// I/O site executes. The crash-point sweep catches it and resumes.
pub fn run_campaign(
    opts: Opts,
    c: &CampaignOpts,
    experiments: &[(&'static str, Experiment)],
) -> std::io::Result<CampaignOutcome> {
    std::fs::create_dir_all(&c.dir)?;
    let fingerprint = prepare_manifest(opts, c, experiments)?;

    let mut results: Vec<(&'static str, Result<ExperimentResult, String>)> = Vec::new();
    let mut todo: Vec<(&'static str, Experiment)> = Vec::new();
    let mut replayed = 0usize;
    for &(name, f) in experiments {
        let done_path = c.dir.join(format!("{name}.done"));
        let rec = if c.storage.exists(&done_path) {
            retrying(|| c.storage.read(&done_path))
                .ok()
                .and_then(|bytes| {
                    let mut rec = DoneRecord::default();
                    decode(&bytes, &mut rec).ok().map(|()| rec)
                })
        } else {
            None
        };
        match rec {
            Some(rec) if rec.name == name && rec.fingerprint == fingerprint => {
                replayed += 1;
                results.push((
                    name,
                    Ok(ExperimentResult {
                        name,
                        output: rec.output,
                        wall: Duration::from_nanos(rec.wall_nanos),
                    }),
                ));
            }
            _ => {
                // Placeholder keeps table order; filled below.
                results.push((name, Err(String::from("never attempted"))));
                todo.push((name, f));
            }
        }
    }

    let inner = opts.serial();
    let log = c.dir.join("attempts.log");
    let mut attempts = 0u64;
    for attempt in 1..=(1 + c.retries) {
        if todo.is_empty() {
            break;
        }
        if attempt > 1 {
            // Deterministic, bounded exponential backoff before each
            // retry wave; the schedule is journaled so a post-mortem
            // can see exactly when each attempt was eligible to run.
            let mut wait = 0u64;
            for (name, _) in &todo {
                let b = backoff_ms(opts.seed, name, attempt);
                append_line(
                    c.storage.as_ref(),
                    &log,
                    &format!("{name} attempt={attempt} backoff_ms={b}"),
                );
                wait = wait.max(b);
            }
            std::thread::sleep(Duration::from_millis(wait));
        }
        attempts += todo.len() as u64;
        let force = if attempt == 1 {
            c.force_panic.clone()
        } else {
            None
        };
        let dir = c.dir.clone();
        let deadline = c.deadline;
        let every = c.checkpoint_every;
        let storage = Arc::clone(&c.storage);
        let crash = if attempt == 1 {
            c.crash_after_units
        } else {
            None
        };
        let batch = parallel_map_catch(opts.jobs, todo.clone(), move |_, (name, f)| {
            let units_path = dir.join(format!("{name}.units"));
            let _units = unit_journal(Arc::clone(&storage), &units_path, every, fingerprint)
                .unwrap_or_else(|e| {
                    // Carry the classification into the panic payload so
                    // the runner suppresses retries iff the failure is
                    // permanent (transient ones already got their
                    // in-place retries and may clear by the next wave).
                    if classify(&e) == IoClass::Permanent {
                        panic!(
                            "{PERMANENT_MARKER} unit journal open {}: {e}",
                            units_path.display()
                        );
                    }
                    panic!("unit journal open {}: {e}", units_path.display());
                });
            if let Some(n) = crash {
                crash_after_units(n);
            }
            let _sup = SuperviseScope::arm(deadline);
            if Some(name) == force.as_deref() {
                panic!("forced panic in {name} (--force-panic)");
            }
            let t0 = Instant::now();
            let output = f(inner);
            ExperimentResult {
                name,
                output,
                wall: t0.elapsed(),
            }
        });

        let mut still_failing = Vec::new();
        for ((name, f), r) in todo.into_iter().zip(batch) {
            match r {
                Ok(res) => {
                    let rec = DoneRecord {
                        name: name.to_string(),
                        output: res.output.clone(),
                        wall_nanos: res.wall.as_nanos() as u64,
                        attempt,
                        fingerprint,
                    };
                    let done_path = c.dir.join(format!("{name}.done"));
                    retrying(|| c.storage.write_atomic(&done_path, &encode(&rec)))?;
                    append_line(
                        c.storage.as_ref(),
                        &log,
                        &format!("{name} attempt={attempt} outcome=ok"),
                    );
                    let slot = results.iter_mut().find(|(n, _)| *n == name).unwrap();
                    slot.1 = Ok(res);
                }
                Err(msg) if msg.contains(CRASH_MARKER) => {
                    // An injected storage crash is a simulated power
                    // loss: the process is gone, nothing else runs.
                    // Re-raise so the sweep harness sees a dead
                    // campaign, not a tidy failure report.
                    std::panic::panic_any(msg);
                }
                Err(msg) => {
                    let permanent = msg.contains(PERMANENT_MARKER);
                    let units = units_on_disk(
                        c.storage.as_ref(),
                        &c.dir.join(format!("{name}.units")),
                        fingerprint,
                    );
                    let triage = format!(
                        "experiment: {name}\nattempt: {attempt} of {}\n\
                         journaled units: {units}\n--- failure ---\n{msg}\n\
                         --- resume ---\n{}\n",
                        1 + c.retries,
                        resume_cmdline(opts, c),
                    );
                    let triage_path = c.dir.join(format!("{name}.triage.txt"));
                    retrying(|| c.storage.write_atomic(&triage_path, triage.as_bytes()))?;
                    append_line(
                        c.storage.as_ref(),
                        &log,
                        &format!(
                            "{name} attempt={attempt} outcome=failed class={}",
                            if permanent {
                                "permanent-io"
                            } else {
                                "retryable"
                            }
                        ),
                    );
                    let slot = results.iter_mut().find(|(n, _)| *n == name).unwrap();
                    slot.1 = Err(msg);
                    if permanent {
                        // Backoff only helps transient faults; a
                        // permanent storage error fails fast.
                        append_line(
                            c.storage.as_ref(),
                            &log,
                            &format!("{name} retries=suppressed (permanent storage error)"),
                        );
                    } else {
                        still_failing.push((name, f));
                    }
                }
            }
        }
        todo = still_failing;
    }

    Ok(CampaignOutcome {
        results,
        replayed,
        attempts,
        io: c.storage.health(),
    })
}

/// Count the intact unit records in a journal file (for triage).
fn units_on_disk(storage: &dyn Storage, path: &Path, fingerprint: u64) -> u64 {
    let Ok(buf) = storage.read(path) else {
        return 0;
    };
    let Some(rest) = unit_header_matches(&buf, fingerprint) else {
        return 0;
    };
    let mut n = 0u64;
    let mut at = 0usize;
    while let Some((_, _, _, next)) = read_unit(rest, at) {
        n += 1;
        at = next;
    }
    n
}
