//! The journal doctor behind the `tako_fsck` binary: offline
//! inspection and repair of a campaign journal directory.
//!
//! Three modes, composing into the usual fsck workflow:
//!
//! * **scan** — classify every file in the directory and report its
//!   verdict (clean, salvageable with the documented prefix, corrupt,
//!   tmp debris) without touching anything.
//! * **verify** — scan, then exit nonzero if anything is not clean;
//!   the CI hook over the committed corrupt fixtures.
//! * **repair** — make the journal safe to resume: truncate unit
//!   journals to their longest valid prefix, move corrupt envelopes
//!   and the manifest (if bad) into `quarantine/`, delete `.tmp`
//!   debris, and write a `quarantine/report.txt` describing every
//!   action. Repair never deletes payload bytes: anything it cannot
//!   keep in place is preserved in quarantine.
//!
//! The doctor validates *structure*, not *semantics*: a `.done` record
//! must decode and checksum, a `.units` file must carry its header and
//! a chain of checksummed records, the manifest must hash to its
//! trailing checksum. Whether the surviving records belong to the
//! campaign the user intends to resume is decided at resume time by
//! the fingerprint embedded in each record.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use tako_sim::checkpoint::decode;
use tako_sim::storage::{DiskStorage, Storage};

use crate::campaign::{
    parse_manifest, read_unit, unit_header_matches, DoneRecord, ManifestState, UNIT_HEADER_LEN,
    UNIT_HEADER_MAGIC,
};

/// What the doctor concluded about one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Structurally valid end to end.
    Clean,
    /// A valid prefix followed by a torn/corrupt tail; repair keeps
    /// the prefix.
    Salvageable {
        /// Intact unit records in the prefix.
        intact: u64,
        /// Bytes of the file that survive repair.
        keep_bytes: u64,
        /// Bytes currently on disk.
        total_bytes: u64,
    },
    /// Structurally invalid; repair quarantines the whole file.
    Corrupt(String),
    /// A stranded `.tmp` staging file from an interrupted atomic
    /// write; repair deletes it (the rename never happened, so the
    /// final file was never at risk).
    Debris,
    /// Free-form evidence (triage bundles, attempt logs) the doctor
    /// has no structure to check.
    Unchecked,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Clean => write!(f, "clean"),
            Verdict::Salvageable {
                intact,
                keep_bytes,
                total_bytes,
            } => write!(
                f,
                "salvageable: {intact} intact units, keep {keep_bytes} of {total_bytes} bytes"
            ),
            Verdict::Corrupt(why) => write!(f, "CORRUPT: {why}"),
            Verdict::Debris => write!(f, "tmp debris (stranded atomic-write staging file)"),
            Verdict::Unchecked => write!(f, "unchecked (free-form)"),
        }
    }
}

/// One scanned file.
#[derive(Debug)]
pub struct Entry {
    /// The file.
    pub path: PathBuf,
    /// What kind of journal artifact it is.
    pub kind: &'static str,
    /// The verdict.
    pub verdict: Verdict,
}

/// The scan result for a journal directory.
#[derive(Debug, Default)]
pub struct Report {
    /// Per-file verdicts, sorted by path for deterministic output.
    pub entries: Vec<Entry>,
}

impl Report {
    /// Files that verify would flag (corrupt, salvageable, or debris).
    pub fn flagged(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e.verdict, Verdict::Clean | Verdict::Unchecked))
            .count()
    }

    /// Human-readable listing, one line per file.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&format!(
                "{:<12} {}  {}\n",
                e.kind,
                e.path.display(),
                e.verdict
            ));
        }
        s.push_str(&format!(
            "{} files scanned, {} flagged\n",
            self.entries.len(),
            self.flagged()
        ));
        s
    }
}

/// Classify one `.done` envelope.
fn check_done(bytes: &[u8]) -> Verdict {
    let mut rec = DoneRecord::default();
    match decode(bytes, &mut rec) {
        Ok(()) => Verdict::Clean,
        Err(e) => Verdict::Corrupt(format!("done record: {e}")),
    }
}

/// Classify one `.units` journal.
fn check_units(bytes: &[u8]) -> Verdict {
    if bytes.len() < UNIT_HEADER_LEN || bytes[..4] != UNIT_HEADER_MAGIC {
        return Verdict::Corrupt("missing or mangled UJH1 header".into());
    }
    let fp = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let rest = unit_header_matches(bytes, fp).unwrap();
    let mut intact = 0u64;
    let mut at = 0usize;
    while let Some((_, _, _, next)) = read_unit(rest, at) {
        intact += 1;
        at = next;
    }
    let keep = (UNIT_HEADER_LEN + at) as u64;
    if keep == bytes.len() as u64 {
        Verdict::Clean
    } else {
        Verdict::Salvageable {
            intact,
            keep_bytes: keep,
            total_bytes: bytes.len() as u64,
        }
    }
}

/// Classify the manifest.
fn check_manifest(bytes: &[u8]) -> Verdict {
    match parse_manifest(&String::from_utf8_lossy(bytes)) {
        ManifestState::Valid { .. } => Verdict::Clean,
        ManifestState::Corrupt(why) => Verdict::Corrupt(why),
    }
}

/// Scan `dir` and classify every file (non-recursive; the quarantine
/// subdirectory is deliberately not rescanned).
///
/// # Errors
///
/// I/O errors listing the directory or reading a file. A *corrupt*
/// file is a verdict, not an error.
pub fn scan(dir: &Path) -> io::Result<Report> {
    let storage = DiskStorage::new();
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    names.sort();
    let mut report = Report::default();
    for path in names {
        let fname = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let (kind, verdict) = if fname.ends_with(".tmp") {
            ("tmp", Verdict::Debris)
        } else if fname == "manifest.txt" {
            ("manifest", check_manifest(&storage.read(&path)?))
        } else if fname.ends_with(".done") {
            ("done", check_done(&storage.read(&path)?))
        } else if fname.ends_with(".units") {
            ("units", check_units(&storage.read(&path)?))
        } else {
            ("other", Verdict::Unchecked)
        };
        report.entries.push(Entry {
            path,
            kind,
            verdict,
        });
    }
    Ok(report)
}

/// What [`repair`] did.
#[derive(Debug, Default)]
pub struct RepairSummary {
    /// Files moved into `quarantine/`.
    pub quarantined: Vec<PathBuf>,
    /// Unit journals truncated to their longest valid prefix, with the
    /// byte length kept.
    pub truncated: Vec<(PathBuf, u64)>,
    /// `.tmp` staging debris deleted.
    pub removed: Vec<PathBuf>,
}

impl RepairSummary {
    /// Whether repair changed anything at all.
    pub fn untouched(&self) -> bool {
        self.quarantined.is_empty() && self.truncated.is_empty() && self.removed.is_empty()
    }
}

/// Repair `dir` in place: truncate salvageable unit journals, move
/// corrupt files to `dir/quarantine/`, delete `.tmp` debris, and write
/// `dir/quarantine/report.txt` describing every action. Idempotent: a
/// second run finds a clean journal and does nothing.
///
/// # Errors
///
/// I/O errors performing the repairs.
pub fn repair(dir: &Path) -> io::Result<RepairSummary> {
    let report = scan(dir)?;
    let storage = DiskStorage::new();
    let quarantine = dir.join("quarantine");
    let mut summary = RepairSummary::default();
    let mut log = String::from("tako_fsck repair report\n");
    for e in &report.entries {
        match &e.verdict {
            Verdict::Clean | Verdict::Unchecked => {}
            Verdict::Debris => {
                storage.remove(&e.path)?;
                log.push_str(&format!("removed debris {}\n", e.path.display()));
                summary.removed.push(e.path.clone());
            }
            Verdict::Salvageable {
                intact, keep_bytes, ..
            } => {
                storage.truncate(&e.path, *keep_bytes)?;
                log.push_str(&format!(
                    "truncated {} to {keep_bytes} bytes ({intact} intact units)\n",
                    e.path.display()
                ));
                summary.truncated.push((e.path.clone(), *keep_bytes));
            }
            Verdict::Corrupt(why) => {
                std::fs::create_dir_all(&quarantine)?;
                let dst = quarantine.join(e.path.file_name().unwrap_or_default());
                std::fs::rename(&e.path, &dst)?;
                log.push_str(&format!(
                    "quarantined {} -> {} ({why})\n",
                    e.path.display(),
                    dst.display()
                ));
                summary.quarantined.push(dst);
            }
        }
    }
    if !summary.untouched() {
        std::fs::create_dir_all(&quarantine)?;
        storage.write_atomic(&quarantine.join("report.txt"), log.as_bytes())?;
    }
    Ok(summary)
}
