//! Integration tests of the `protocol_check` binary: the sweep report
//! is byte-identical at any `--jobs` count, the shrunk mutant
//! counterexample is identical too, and the committed regression
//! counterexamples still reproduce their violations.

use std::path::Path;
use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_protocol_check"))
        .args(args)
        .output()
        .expect("spawn protocol_check")
}

#[test]
fn report_is_byte_identical_across_job_counts() {
    let a = run(&["--depth", "1", "--jobs", "1"]);
    let b = run(&["--depth", "1", "--jobs", "4"]);
    assert!(a.status.success(), "jobs=1 run failed: {a:?}");
    assert!(b.status.success(), "jobs=4 run failed: {b:?}");
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "report must not depend on worker count"
    );
}

#[test]
fn depth_one_sweep_is_clean_for_every_family() {
    let out = run(&["--depth", "1", "--jobs", "4"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "sweep failed:\n{stdout}");
    assert!(stdout.contains("protocol_check: all clean"), "{stdout}");
    for family in ["decompress", "soa", "nvm", "trrip"] {
        assert!(
            stdout.contains(&format!("[{family}] clean")),
            "missing {family}:\n{stdout}"
        );
    }
}

#[test]
fn mutant_counterexample_is_deterministic_across_job_counts() {
    let dir = std::env::temp_dir().join(format!("tako-protocol-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cex_a = dir.join("a.takocex");
    let cex_b = dir.join("b.takocex");
    let a = run(&[
        "--mutant",
        "--depth",
        "2",
        "--jobs",
        "1",
        "--write-cex",
        cex_a.to_str().expect("utf8 path"),
    ]);
    let b = run(&[
        "--mutant",
        "--depth",
        "2",
        "--jobs",
        "4",
        "--write-cex",
        cex_b.to_str().expect("utf8 path"),
    ]);
    assert!(a.status.success(), "mutant jobs=1 not caught: {a:?}");
    assert!(b.status.success(), "mutant jobs=4 not caught: {b:?}");
    let text_a = std::fs::read_to_string(&cex_a).expect("cex a");
    let text_b = std::fs::read_to_string(&cex_b).expect("cex b");
    assert_eq!(
        text_a, text_b,
        "shrunk witness must not depend on worker count"
    );
    assert!(text_a.starts_with("takocex v1\n"), "{text_a}");
    // Shrunk to at most 8 steps (the acceptance bound; in practice 1).
    let steps = text_a.lines().filter(|l| l.starts_with("step:")).count();
    assert!((1..=8).contains(&steps), "unexpected witness size {steps}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_regressions_still_reproduce() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("regressions");
    let mut found = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("regressions directory")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("takocex") {
            continue;
        }
        found += 1;
        let out = run(&["--replay", path.to_str().expect("utf8 path")]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{} no longer reproduces:\n{stdout}",
            path.display()
        );
        assert!(stdout.contains("violation reproduced"), "{stdout}");
    }
    assert!(
        found >= 2,
        "expected committed counterexamples, found {found}"
    );
}

#[test]
fn replay_of_a_clean_trace_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("tako-protocol-stale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    // A recorded violation with no fault plan armed: nothing illegal
    // happens on replay, so the file must be reported as stale.
    let stale = dir.join("stale.takocex");
    std::fs::write(
        &stale,
        "takocex v1\nfamily: trrip\ntiles: 2\nfaults: none\nkind: safety\n\
         message: fabricated\nstep: t0 R 0 ;\nend\n",
    )
    .expect("write stale cex");
    let out = run(&["--replay", stale.to_str().expect("utf8 path")]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale replay must fail: {out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
