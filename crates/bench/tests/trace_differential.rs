//! Differential pin: observability is *strictly observational*.
//!
//! Runs the decompress, soa-ablation, and nvm harnesses with tracing
//! OFF and then ON (observer taps attached to every hierarchy, spans
//! recorded, epochs sampled) and requires the outputs byte-identical —
//! the SHA-256 of the concatenated outputs must not move by a single
//! byte when the observability layer is armed. The armed run must also
//! actually observe something, or the pin would pass vacuously.
//!
//! Runs as one `#[test]` because arming is process-global; the golden
//! digest suite lives in a separate test binary (its own process), so
//! arming here cannot leak into it.

use tako_bench::{experiments, Opts};
use tako_sim::digest::Sha256;
use tako_sim::trace::Stage;

type Harness = fn(Opts) -> String;

const HARNESSES: &[(&str, Harness)] = &[
    ("decompress", experiments::fig06_decompress),
    ("soa", experiments::ablations),
    ("nvm", experiments::fig19_nvm),
];

fn digest_all(opts: Opts) -> String {
    let mut h = Sha256::new();
    for (name, f) in HARNESSES {
        h.update(name.as_bytes());
        h.update(b"\n");
        h.update(f(opts).as_bytes());
        h.update(b"\n");
    }
    h.finish_hex()
}

#[test]
fn tracing_on_and_off_produce_identical_output() {
    let opts = Opts {
        scale: 0.02,
        paper: false,
        seed: 0x7AC0,
        jobs: 1,
        lanes: 0,
    };

    let off = digest_all(opts);

    tako_sim::trace::arm();
    let on = digest_all(opts);
    tako_sim::trace::disarm();
    let report = tako_sim::trace::drain();

    assert_eq!(
        off, on,
        "simulation output changed when the observability layer was \
         armed; tracing must be strictly observational"
    );

    // The armed run must have genuinely traced, profiled, and sampled —
    // otherwise the byte-identity above proves nothing.
    assert!(report.systems > 0, "no system flushed an observer");
    assert!(!report.events.is_empty(), "no trace events collected");
    assert!(
        report.profile.txns() > 0,
        "no transactions profiled through StageStamps"
    );
    assert!(
        report.profile.cycles(Stage::L1) > 0,
        "no cycles attributed to the L1 stage"
    );
    assert!(
        report.miss_latency.count() > 0,
        "no miss latencies recorded"
    );
    let json = report.chrome_trace_json();
    assert!(json.contains("\"ph\":\"i\""), "chrome export has no events");
}
