//! Golden-output regression pin for the full experiment suite.
//!
//! The staged transaction pipeline (and any future hierarchy work) is
//! required to be *byte-identical* to the pre-refactor simulator: the
//! walks were restructured, not retimed. This test runs every harness at
//! the same tiny scale the determinism suite uses and pins the SHA-256
//! of the concatenated outputs to the digest captured on the monolithic
//! hierarchy. Any change to any byte of any experiment's output — a
//! counter, a latency, a formatting tweak — fails here loudly.
//!
//! If a *deliberate* behavior or format change invalidates the digest,
//! re-capture it by running this test and copying the "actual" digest
//! from the failure message into `GOLDEN_SHA256`, and say why in the
//! commit message.

use tako_bench::campaign::{run_campaign, CampaignOpts};
use tako_bench::{run_all, Opts, EXPERIMENTS};
use tako_sim::digest::Sha256;

/// SHA-256 of the concatenated `name` + `output` of every experiment at
/// scale 0.01, seed 0x7AC0. Re-captured after the protocol checker
/// exposed two coherence holes whose fixes deliberately change timing:
/// a second sharer now downgrades a clean-exclusive private copy
/// (E -> S), and SHARED-Morph phantom lines lost their
/// always-exclusive exception, so writes to shared phantom lines pay
/// the same upgrade traffic as real lines.
const GOLDEN_SHA256: &str = "5f9a31a9fd7285b413baa361af5bf035a5a50ffb336fa77b3f545bb03cf61b65";

#[test]
fn all_experiments_match_golden_digest() {
    let results = run_all(Opts {
        scale: 0.01,
        paper: false,
        seed: 0x7AC0,
        jobs: 1,
        lanes: 0,
    });
    assert!(!results.is_empty(), "experiment table is empty");
    let mut h = Sha256::new();
    for r in &results {
        h.update(r.name.as_bytes());
        h.update(b"\n");
        h.update(r.output.as_bytes());
        h.update(b"\n");
    }
    let actual = h.finish_hex();
    assert_eq!(
        actual, GOLDEN_SHA256,
        "experiment output diverged from the golden capture \
         (actual digest: {actual})"
    );
}

/// The resume contract, pinned against the same digest: a campaign
/// whose every experiment is crashed mid-run (after two journaled
/// units) and then resumed must reproduce the golden output *exactly* —
/// replayed units, recomputed tails, and replayed `.done` records are
/// all byte-identical to an uninterrupted run.
#[test]
fn interrupted_and_resumed_campaign_matches_golden_digest() {
    let dir = std::env::temp_dir().join(format!("tako-golden-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = Opts {
        scale: 0.01,
        paper: false,
        seed: 0x7AC0,
        jobs: 2,
        lanes: 0,
    };
    let mut c = CampaignOpts::fresh(&dir);
    c.crash_after_units = Some(2);
    c.retries = 1;
    let out = run_campaign(opts, &c, EXPERIMENTS).expect("campaign");
    let mut h = Sha256::new();
    for (name, r) in &out.results {
        let r = r
            .as_ref()
            .unwrap_or_else(|e| panic!("{name} failed after retry: {e}"));
        h.update(name.as_bytes());
        h.update(b"\n");
        h.update(r.output.as_bytes());
        h.update(b"\n");
    }
    let actual = h.finish_hex();
    assert_eq!(
        actual, GOLDEN_SHA256,
        "resumed campaign output diverged from the golden capture \
         (actual digest: {actual})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The lane-engine golden family: `--lanes n` switches the phi
/// harnesses to the deterministic per-tile lane runner, whose schedule
/// is unit-step (a different, equally valid interleave than the serial
/// CHUNK=16 runs pinned above) but must be *identical for every lane
/// count*. This pins that contract over the experiments lanes affect.
#[test]
fn lane_digests_identical_across_lane_counts() {
    let phi_experiments: Vec<_> = EXPERIMENTS
        .iter()
        .filter(|(name, _)| matches!(*name, "fig13" | "fig14" | "fig25"))
        .collect();
    assert_eq!(phi_experiments.len(), 3);
    let digest_at = |jobs: usize, lanes: usize| {
        let opts = Opts {
            scale: 0.01,
            paper: false,
            seed: 0x7AC0,
            jobs,
            lanes,
        };
        let mut h = Sha256::new();
        for (name, f) in &phi_experiments {
            h.update(name.as_bytes());
            h.update(b"\n");
            h.update(f(opts).as_bytes());
            h.update(b"\n");
        }
        h.finish_hex()
    };
    let one = digest_at(1, 1);
    assert_eq!(one, digest_at(1, 2), "lanes=1 vs lanes=2 diverged");
    assert_eq!(one, digest_at(1, 4), "lanes=1 vs lanes=4 diverged");
    // The fan-out and lane axes compose: outer worker count never
    // bleeds into lane-engine output.
    assert_eq!(one, digest_at(2, 2), "jobs=2/lanes=2 diverged");
    assert_eq!(one, digest_at(4, 4), "jobs=4/lanes=4 diverged");
}
