//! Golden-output regression pin for the full experiment suite.
//!
//! The staged transaction pipeline (and any future hierarchy work) is
//! required to be *byte-identical* to the pre-refactor simulator: the
//! walks were restructured, not retimed. This test runs every harness at
//! the same tiny scale the determinism suite uses and pins the SHA-256
//! of the concatenated outputs to the digest captured on the monolithic
//! hierarchy. Any change to any byte of any experiment's output — a
//! counter, a latency, a formatting tweak — fails here loudly.
//!
//! If a *deliberate* behavior or format change invalidates the digest,
//! re-capture it by running this test and copying the "actual" digest
//! from the failure message into `GOLDEN_SHA256`, and say why in the
//! commit message.

use tako_bench::{run_all, Opts};
use tako_sim::digest::Sha256;

/// SHA-256 of the concatenated `name` + `output` of every experiment at
/// scale 0.01, seed 0x7AC0, captured on the pre-pipeline hierarchy.
const GOLDEN_SHA256: &str = "21d30f2b56237fb17cbf02ef3b0815fab1ca15ea175e7acd2e123cf9fd685b27";

#[test]
fn all_experiments_match_golden_digest() {
    let results = run_all(Opts {
        scale: 0.01,
        paper: false,
        seed: 0x7AC0,
        jobs: 1,
    });
    assert!(!results.is_empty(), "experiment table is empty");
    let mut h = Sha256::new();
    for r in &results {
        h.update(r.name.as_bytes());
        h.update(b"\n");
        h.update(r.output.as_bytes());
        h.update(b"\n");
    }
    let actual = h.finish_hex();
    assert_eq!(
        actual, GOLDEN_SHA256,
        "experiment output diverged from the golden capture \
         (actual digest: {actual})"
    );
}
