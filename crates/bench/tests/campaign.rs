//! End-to-end tests for the supervised campaign runner: journaled
//! resume at experiment and unit granularity, deadline kills with
//! triage bundles, deterministic retry schedules, and manifest guards.
//!
//! The experiments here are synthetic `fn(Opts) -> String` harnesses
//! with observable side effects (atomic counters), so the tests can
//! prove the resume contract — *completed work is replayed, never
//! recomputed* — rather than just eyeballing output equality. One test
//! drives a real `TakoSystem` so the deadline kill exercises the
//! hierarchy's watchdog-epoch probe and its triage bundle.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tako_bench::campaign::{backoff_ms, run_campaign, CampaignOpts};
use tako_bench::{run_variants, Experiment, Opts};
use tako_core::TakoSystem;
use tako_cpu::{AccessKind, MemSystem};
use tako_sim::config::SystemConfig;
use tako_sim::rng::Rng;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tako-campaign-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> Opts {
    Opts {
        scale: 1.0,
        paper: false,
        seed: 42,
        jobs: 2,
        lanes: 0,
    }
}

// --- experiment-granularity resume ----------------------------------

static ALPHA_RUNS: AtomicU64 = AtomicU64::new(0);

fn exp_alpha(o: Opts) -> String {
    ALPHA_RUNS.fetch_add(1, Ordering::SeqCst);
    let out = run_variants(o, &[1u64, 2, 3], |v| v * v);
    format!("alpha {out:?}\n")
}

fn exp_beta(o: Opts) -> String {
    let out = run_variants(o, &[10u64, 20], |v| v + o.seed);
    format!("beta {out:?}\n")
}

const RESUME_EXPS: &[(&str, Experiment)] = &[
    ("alpha", exp_alpha as Experiment),
    ("beta", exp_beta as Experiment),
];

#[test]
fn failed_experiment_is_triaged_and_resume_skips_completed_work() {
    let dir = tmp("resume");
    // First invocation: beta dies (forced), alpha completes.
    let mut c = CampaignOpts::fresh(&dir);
    c.force_panic = Some("beta".into());
    let first = run_campaign(opts(), &c, RESUME_EXPS).expect("campaign");
    let alpha_out = first.results[0]
        .1
        .as_ref()
        .expect("alpha ok")
        .output
        .clone();
    assert_eq!(alpha_out, "alpha [1, 4, 9]\n");
    let beta_err = first.results[1].1.as_ref().expect_err("beta failed");
    assert!(
        beta_err.contains("forced panic"),
        "unexpected error: {beta_err}"
    );

    // The dead experiment left a triage bundle with the resume line.
    let triage = std::fs::read_to_string(dir.join("beta.triage.txt")).expect("triage file");
    assert!(triage.contains("forced panic in beta"), "triage: {triage}");
    assert!(triage.contains("--resume"), "no resume line: {triage}");
    assert!(triage.contains("--journal"), "no journal path: {triage}");

    // Resume: alpha replays from its .done record (no re-run), beta
    // executes and the campaign completes with byte-identical output.
    let alpha_runs_before = ALPHA_RUNS.load(Ordering::SeqCst);
    let mut c2 = CampaignOpts::fresh(&dir);
    c2.resume = true;
    let second = run_campaign(opts(), &c2, RESUME_EXPS).expect("resume");
    assert_eq!(second.replayed, 1, "alpha should replay from the journal");
    assert_eq!(
        ALPHA_RUNS.load(Ordering::SeqCst),
        alpha_runs_before,
        "completed experiment was re-run on resume"
    );
    assert_eq!(
        second.results[0].1.as_ref().expect("alpha").output,
        alpha_out
    );
    assert_eq!(
        second.results[1].1.as_ref().expect("beta").output,
        format!("beta [{}, {}]\n", 10 + 42, 20 + 42)
    );
}

// --- unit-granularity resume ----------------------------------------

static GAMMA_UNITS: AtomicU64 = AtomicU64::new(0);

fn exp_gamma(o: Opts) -> String {
    let out = run_variants(o, &[0u64, 1, 2, 3, 4, 5], |v| {
        GAMMA_UNITS.fetch_add(1, Ordering::SeqCst);
        v * 7
    });
    format!("gamma {out:?}\n")
}

#[test]
fn crash_mid_experiment_resumes_from_journaled_units() {
    let dir = tmp("units");
    let mut c = CampaignOpts::fresh(&dir);
    c.crash_after_units = Some(3); // die with half the units journaled
    c.retries = 1;
    let before = GAMMA_UNITS.load(Ordering::SeqCst);
    let out = run_campaign(opts(), &c, &[("gamma", exp_gamma as Experiment)]).expect("campaign");
    let res = out.results[0].1.as_ref().expect("gamma recovered on retry");
    assert_eq!(res.output, "gamma [0, 7, 14, 21, 28, 35]\n");
    assert_eq!(out.attempts, 2, "one crash + one successful retry");
    // 3 units computed before the crash, 3 after: the journaled ones
    // replayed instead of recomputing (else this would be 9).
    assert_eq!(GAMMA_UNITS.load(Ordering::SeqCst) - before, 6);
    let triage = std::fs::read_to_string(dir.join("gamma.triage.txt")).expect("triage");
    assert!(triage.contains("journaled units: 3"), "triage: {triage}");
}

// --- deadline kill through the hierarchy ----------------------------

/// A real simulation long enough to cross many watchdog epochs; under a
/// zero deadline the hierarchy kills it at the first epoch boundary
/// with a triage panic.
fn exp_slowpoke(_: Opts) -> String {
    let mut cfg = SystemConfig::default_16core();
    cfg.watchdog.epoch_cycles = 2_000;
    let mut sys = TakoSystem::new(cfg);
    let _r = sys.alloc_real(1 << 18);
    let base = 0x1000_0000u64;
    let mut rng = Rng::new(1);
    let mut t = 0u64;
    for _ in 0..5_000 {
        let off = rng.below(1 << 12) * 8;
        t = sys.timed_access(0, AccessKind::Read, base + off, t);
    }
    format!("slowpoke survived to cycle {t}\n")
}

#[test]
fn deadline_kill_leaves_triage_bundle_and_deterministic_backoff() {
    let dir = tmp("deadline");
    let o = opts();
    let mut c = CampaignOpts::fresh(&dir);
    c.deadline = Some(Duration::ZERO);
    c.retries = 1;
    let out = run_campaign(o, &c, &[("slowpoke", exp_slowpoke as Experiment)]).expect("campaign");
    let err = out.results[0].1.as_ref().expect_err("deadline must kill");
    assert!(err.contains("deadline exceeded"), "error: {err}");

    // The triage bundle carries the hierarchy's diagnostics and the
    // exact command line that resumes the campaign.
    let triage = std::fs::read_to_string(dir.join("slowpoke.triage.txt")).expect("triage");
    for needle in [
        "deadline exceeded",
        "machine state",
        "fault plan",
        "--resume",
    ] {
        assert!(
            triage.contains(needle),
            "triage missing {needle:?}: {triage}"
        );
    }

    // The retry schedule is journaled and derivable from the seed: a
    // post-mortem (or a re-run) sees the identical backoff.
    let log = std::fs::read_to_string(dir.join("attempts.log")).expect("attempts log");
    let expect = format!(
        "slowpoke attempt=2 backoff_ms={}",
        backoff_ms(o.seed, "slowpoke", 2)
    );
    assert!(log.contains(&expect), "log missing {expect:?}: {log}");
}

// --- manifest guard and backoff properties --------------------------

fn exp_trivial(_: Opts) -> String {
    "trivial\n".to_string()
}

#[test]
fn resume_into_a_different_campaign_is_rejected() {
    let dir = tmp("manifest");
    let exps = &[("trivial", exp_trivial as Experiment)];
    run_campaign(opts(), &CampaignOpts::fresh(&dir), exps).expect("fresh campaign");
    let mut c = CampaignOpts::fresh(&dir);
    c.resume = true;
    let skewed = Opts { seed: 7, ..opts() };
    let err = run_campaign(skewed, &c, exps).expect_err("manifest mismatch must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn backoff_is_deterministic_bounded_and_growing() {
    for attempt in 1..=8u32 {
        let a = backoff_ms(42, "fig06", attempt);
        let b = backoff_ms(42, "fig06", attempt);
        assert_eq!(a, b, "backoff must be a pure function");
        assert!(a < 1_000, "backoff unbounded: {a}ms at attempt {attempt}");
    }
    assert!(backoff_ms(42, "fig06", 4) > backoff_ms(42, "fig06", 1));
    // Per-experiment jitter decorrelates retry waves: two experiments'
    // full schedules should not be identical (a single attempt may
    // collide — the jitter has only 25 buckets).
    let sched = |name| {
        (1..=6u32)
            .map(|a| backoff_ms(42, name, a))
            .collect::<Vec<_>>()
    };
    assert_ne!(
        sched("fig06"),
        sched("fig07"),
        "per-experiment jitter should decorrelate retry waves"
    );
}

// --- I/O degradation classification ---------------------------------

fn exp_delta(o: Opts) -> String {
    let out = run_variants(o, &[7u64, 8, 9], |v| v * 2);
    format!("delta {out:?}\n")
}

const FAULT_EXPS: &[(&str, Experiment)] = &[("delta", exp_delta as Experiment)];

#[test]
fn transient_faults_are_retried_in_place_and_tallied() {
    use std::sync::Arc;
    use tako_sim::storage::{DiskStorage, FaultStorage, IoFault, IoFaultKind, IoFaultPlan};

    // Counting pass: learn how many I/O sites this campaign performs.
    let dir = tmp("transient");
    let counting = Arc::new(FaultStorage::counting());
    let mut c = CampaignOpts::fresh(&dir);
    c.storage = counting.clone();
    run_campaign(opts(), &c, FAULT_EXPS).expect("counting pass");
    let sites = counting.ops_performed();
    assert!(sites >= 8, "campaign too small to be interesting: {sites}");

    // A transient fault at every fifth site: each one is retried in
    // place (the retry lands on the next, clean op), the campaign
    // completes with exact output, and the health tally reports every
    // hit without a single permanent failure.
    let faults: Vec<IoFault> = (0..sites)
        .step_by(5)
        .map(|at_op| IoFault {
            at_op,
            kind: IoFaultKind::TransientError,
        })
        .collect();
    let injected = faults.len() as u64;
    let _ = std::fs::remove_dir_all(&dir);
    let mut c = CampaignOpts::fresh(&dir);
    c.storage = Arc::new(FaultStorage::new(
        Arc::new(DiskStorage::new()),
        IoFaultPlan { seed: 1, faults },
    ));
    let outcome =
        run_campaign(opts(), &c, FAULT_EXPS).expect("campaign rides out transient faults");
    assert_eq!(
        outcome.results[0].1.as_ref().expect("delta ok").output,
        "delta [14, 16, 18]\n"
    );
    assert_eq!(outcome.io.transient, injected, "every fault tallied");
    assert_eq!(outcome.io.permanent, 0);
}

#[test]
fn permanent_fault_mid_experiment_fails_fast_without_retries() {
    use std::sync::Arc;
    use tako_sim::storage::{DiskStorage, FaultStorage, IoFault, IoFaultKind, IoFaultPlan};

    let dir = tmp("permanent");
    let counting = Arc::new(FaultStorage::counting());
    let mut c = CampaignOpts::fresh(&dir);
    c.storage = counting.clone();
    run_campaign(opts(), &c, FAULT_EXPS).expect("counting pass");
    let sites = counting.ops_performed();

    // Walk the sites until the permanent fault lands inside the
    // experiment attempt (a unit-journal op): the attempt must die
    // classified `permanent-io` with retries suppressed — exactly one
    // attempt despite the retry budget. Sites in campaign bookkeeping
    // (manifest prep, done-record write) surface as a structured error
    // instead; both shapes are fail-fast, only the first is in-attempt.
    let mut classified = false;
    for at_op in 0..sites {
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = CampaignOpts::fresh(&dir);
        c.retries = 2;
        c.storage = Arc::new(FaultStorage::new(
            Arc::new(DiskStorage::new()),
            IoFaultPlan {
                seed: 1,
                faults: vec![IoFault {
                    at_op,
                    kind: IoFaultKind::PermanentError,
                }],
            },
        ));
        let Ok(outcome) = run_campaign(opts(), &c, FAULT_EXPS) else {
            continue;
        };
        let log = std::fs::read_to_string(dir.join("attempts.log")).unwrap_or_default();
        if !log.contains("class=permanent-io") {
            continue;
        }
        assert!(log.contains("retries=suppressed"), "log:\n{log}");
        assert_eq!(
            log.matches("delta attempt=").count(),
            1,
            "a permanent failure must burn no retries:\n{log}"
        );
        let err = outcome.results[0].1.as_ref().expect_err("delta failed");
        assert!(err.contains("injected permanent"), "payload: {err}");
        classified = true;
        break;
    }
    assert!(
        classified,
        "no site landed a permanent fault inside an attempt ({sites} sites swept)"
    );
}
