//! Integration tests for the journal doctor (`tako_fsck`) over the
//! committed corrupt fixtures in `regressions/fsck/`.
//!
//! The fixture directory is a real campaign journal (two synthetic
//! experiments, seed 42) that was deliberately damaged after the run:
//!
//! * `manifest.txt` — one checksum hex digit flipped (corrupt);
//! * `alpha.done` — one payload byte flipped, so the envelope digest
//!   fails (corrupt);
//! * `beta.units` — last 10 bytes chopped off, tearing the third unit
//!   record; the documented salvage prefix is **2 intact units**;
//! * `alpha.done.tmp` — stranded atomic-write staging debris;
//! * `beta.triage.txt`, `attempts.log`, `alpha.units` — legitimate
//!   survivors the doctor must leave alone.
//!
//! `--verify` must flag exactly the four damaged files; `--repair`
//! must quarantine the corrupt two, truncate the torn journal to its
//! documented prefix, delete the debris — and leave a journal a
//! `--resume` campaign completes correctly from. The `#[ignore]`d
//! `regenerate_fsck_fixtures` test rebuilds the fixtures after a
//! format change (`cargo test -p tako-bench --test fsck -- --ignored`).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};

use tako_bench::campaign::{run_campaign, CampaignOpts};
use tako_bench::doctor::{self, Verdict};
use tako_bench::{run_variants, Experiment, Opts};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("regressions/fsck")
}

fn opts() -> Opts {
    Opts {
        scale: 1.0,
        paper: false,
        seed: 42,
        jobs: 1,
        lanes: 0,
    }
}

static BETA_PANICS: AtomicBool = AtomicBool::new(false);

fn exp_alpha(o: Opts) -> String {
    let out = run_variants(o, &[1u64, 2, 3], |v| v + o.seed);
    format!("alpha {out:?}\n")
}

fn exp_beta(o: Opts) -> String {
    let out = run_variants(o, &[4u64, 5, 6], |v| v * v);
    if BETA_PANICS.swap(false, Ordering::SeqCst) {
        panic!("beta dies after journaling its units (fixture generator)");
    }
    format!("beta {out:?}\n")
}

const EXPS: &[(&str, Experiment)] = &[
    ("alpha", exp_alpha as Experiment),
    ("beta", exp_beta as Experiment),
];

const ALPHA_OUT: &str = "alpha [43, 44, 45]\n";
const BETA_OUT: &str = "beta [16, 25, 36]\n";

/// Build the damaged fixture journal at `dir` (see module docs).
fn build_fixture(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    BETA_PANICS.store(true, Ordering::SeqCst);
    let outcome = run_campaign(opts(), &CampaignOpts::fresh(dir), EXPS).expect("campaign");
    assert_eq!(
        outcome.results[0].1.as_ref().expect("alpha ok").output,
        ALPHA_OUT
    );
    assert!(outcome.results[1].1.is_err(), "beta must die in generator");

    // manifest: flip the final checksum hex digit.
    let manifest = dir.join("manifest.txt");
    let mut text = std::fs::read_to_string(&manifest).unwrap();
    let last = text.trim_end().len() - 1;
    let c = text.as_bytes()[last];
    text.replace_range(last..=last, if c == b'0' { "1" } else { "0" });
    std::fs::write(&manifest, text).unwrap();

    // alpha.done: flip one payload byte (envelope header is 52 bytes).
    let done = dir.join("alpha.done");
    let mut bytes = std::fs::read(&done).unwrap();
    bytes[60] ^= 0x10;
    std::fs::write(&done, bytes).unwrap();

    // beta.units: tear the third record's tail.
    let units = dir.join("beta.units");
    let bytes = std::fs::read(&units).unwrap();
    std::fs::write(&units, &bytes[..bytes.len() - 10]).unwrap();

    // Stranded staging file from an interrupted atomic write.
    std::fs::write(dir.join("alpha.done.tmp"), b"interrupted staging write").unwrap();
}

#[test]
#[ignore = "regenerates the committed fixtures; run after a format change"]
fn regenerate_fsck_fixtures() {
    build_fixture(&fixture_dir());
}

fn copy_fixture_to_tmp(name: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!("tako-fsck-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    std::fs::create_dir_all(&dst).unwrap();
    for e in std::fs::read_dir(fixture_dir()).unwrap() {
        let p = e.unwrap().path();
        if p.is_file() {
            std::fs::copy(&p, dst.join(p.file_name().unwrap())).unwrap();
        }
    }
    dst
}

fn fsck(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tako_fsck"))
        .args(args)
        .output()
        .expect("run tako_fsck");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn verify_flags_every_committed_corruption() {
    let (ok, stdout) = fsck(&["--verify", fixture_dir().to_str().unwrap()]);
    assert!(!ok, "verify must exit nonzero on the corrupt fixtures");
    assert!(
        stdout.contains("4 flagged"),
        "expected 4 flagged:\n{stdout}"
    );
    for needle in [
        "manifest.txt  CORRUPT: checksum mismatch",
        "alpha.done  CORRUPT: done record",
        "beta.units  salvageable: 2 intact units",
        "alpha.done.tmp  tmp debris",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
    // The survivors stay unflagged.
    assert!(stdout.contains("alpha.units  clean"), "{stdout}");
}

#[test]
fn repair_salvages_documented_prefix_and_campaign_resumes() {
    let dir = copy_fixture_to_tmp("repair");
    let summary = doctor::repair(&dir).expect("repair");
    assert_eq!(summary.quarantined.len(), 2, "{summary:?}");
    assert_eq!(summary.truncated.len(), 1, "{summary:?}");
    assert_eq!(summary.removed.len(), 1, "{summary:?}");
    let report = std::fs::read_to_string(dir.join("quarantine/report.txt")).unwrap();
    for needle in ["manifest.txt", "alpha.done", "beta.units", "alpha.done.tmp"] {
        assert!(report.contains(needle), "report misses {needle}:\n{report}");
    }

    // The repaired journal is clean (quarantine/ is not rescanned)...
    let rescanned = doctor::scan(&dir).expect("scan");
    assert_eq!(rescanned.flagged(), 0, "{}", rescanned.render());
    assert!(rescanned
        .entries
        .iter()
        .any(|e| e.path.ends_with("beta.units") && e.verdict == Verdict::Clean));
    let (ok, _) = fsck(&["--verify", dir.to_str().unwrap()]);
    assert!(ok, "verify must pass after repair");

    // ...and resumable: alpha re-runs (its .done was quarantined),
    // beta resumes from the 2 salvaged units, the manifest is rebuilt,
    // and the outputs match the uninterrupted run exactly.
    let mut c = CampaignOpts::fresh(&dir);
    c.resume = true;
    let outcome = run_campaign(opts(), &c, EXPS).expect("resume after repair");
    assert_eq!(
        outcome.results[0].1.as_ref().expect("alpha").output,
        ALPHA_OUT
    );
    assert_eq!(
        outcome.results[1].1.as_ref().expect("beta").output,
        BETA_OUT
    );
    assert!(dir.join("manifest.txt").exists(), "manifest rebuilt");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repair_is_idempotent() {
    let dir = copy_fixture_to_tmp("idem");
    doctor::repair(&dir).expect("first repair");
    let second = doctor::repair(&dir).expect("second repair");
    assert!(second.untouched(), "{second:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unit_journal_byte_fuzz_never_panics_the_doctor() {
    // Flip every bit of the torn fixture journal one at a time; the
    // doctor must classify each mutant (any verdict) without panicking.
    let bytes = std::fs::read(fixture_dir().join("beta.units")).unwrap();
    let dir = std::env::temp_dir().join(format!("tako-fsck-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("mutant.units");
    for off in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[off] ^= 1 << bit;
            std::fs::write(&target, &bad).unwrap();
            let report = doctor::scan(&dir).expect("scan");
            assert_eq!(report.entries.len(), 1);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
