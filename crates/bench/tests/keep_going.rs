//! Integration test for the `all_experiments --keep-going` contract:
//! a panicking harness must not take down the run — every other
//! harness completes, the failure is reported in a FAILURES section,
//! and the process exits nonzero.

use std::process::Command;

const SCALE: &str = "0.02";

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_all_experiments"))
        .args(["--scale", SCALE, "--jobs", "2"])
        .args(args)
        .output()
        .expect("spawn all_experiments")
}

#[test]
fn forced_panic_is_isolated_and_reported() {
    let out = run(&["--keep-going", "--force-panic", "fig14"]);
    let stdout = String::from_utf8_lossy(&out.stdout);

    assert_eq!(
        out.status.code(),
        Some(1),
        "a failed harness must give a nonzero exit"
    );
    assert!(
        stdout.contains("FAILURES:"),
        "missing FAILURES section:\n{stdout}"
    );
    assert!(
        stdout.contains("fig14: forced panic in fig14"),
        "failure line must carry the panic payload:\n{stdout}"
    );
    // Every other harness still ran to completion and printed its
    // timing annotation.
    let completed = stdout.matches(" took ").count();
    assert_eq!(completed, 16, "expected 16 surviving harnesses:\n{stdout}");
    assert!(
        !stdout.contains("[fig14 took"),
        "the panicked harness must not report success:\n{stdout}"
    );
}

#[test]
fn keep_going_without_failures_exits_zero() {
    let out = run(&["--keep-going"]);
    let stdout = String::from_utf8_lossy(&out.stdout);

    assert_eq!(out.status.code(), Some(0));
    assert!(!stdout.contains("FAILURES:"));
    assert_eq!(stdout.matches(" took ").count(), 17);
}
