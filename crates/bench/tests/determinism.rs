//! The determinism guarantee behind the `--jobs` fan-out: experiment
//! output must be byte-identical regardless of worker count, because
//! every simulation is seeded and isolated and results are collected in
//! input order.

use tako_bench::{run_all, Opts};

fn tiny_opts(jobs: usize) -> Opts {
    Opts {
        scale: 0.01, // seconds, not minutes
        paper: false,
        seed: 0x7AC0,
        jobs,
        lanes: 0,
    }
}

#[test]
fn output_is_byte_identical_across_job_counts() {
    let serial = run_all(tiny_opts(1));
    let fanned = run_all(tiny_opts(8));
    assert_eq!(serial.len(), fanned.len());
    for (a, b) in serial.iter().zip(&fanned) {
        assert_eq!(a.name, b.name, "experiment order changed");
        assert_eq!(
            a.output, b.output,
            "{} output differs between --jobs 1 and --jobs 8",
            a.name
        );
    }
}

#[test]
fn seed_changes_output() {
    let a = run_all(tiny_opts(4));
    let b = run_all(Opts {
        seed: 0xDEAD,
        ..tiny_opts(4)
    });
    // Sanity check that the comparison above is not vacuous: a
    // different seed really changes at least one experiment's rows.
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.output != y.output),
        "seed had no effect on any experiment"
    );
}
