//! Drives the `crash_campaign` binary — the recovery-equivalence
//! sweep — as an integration test, so `cargo test` proves the
//! property, not just CI.
//!
//! The binary enumerates every I/O site of a small journaled campaign
//! (counting pass), then for each fault kind and each site injects the
//! fault there, resumes on clean storage (repairing with the journal
//! doctor when the manifest is the casualty), and requires the resumed
//! output digest to equal the uninterrupted run's golden digest. Zero
//! panics, zero mismatches, every site.

use std::process::Command;

fn sweep(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_crash_campaign"))
        .args(args)
        .output()
        .expect("run crash_campaign");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn crash_point_sweep_recovers_every_site_for_every_fault_kind() {
    let root = std::env::temp_dir().join(format!("tako-sweep-test-{}", std::process::id()));
    let (ok, stdout, stderr) = sweep(&["--root", root.to_str().unwrap(), "--seed", "7"]);
    assert!(ok, "sweep failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("crash sweep: every site recovered to the golden digest"),
        "{stdout}"
    );
    // All six deterministic fault kinds swept, none with failures.
    for kind in [
        "crash",
        "crash-after",
        "torn",
        "drop-rename",
        "flip",
        "dup-append",
    ] {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(kind))
            .unwrap_or_else(|| panic!("no summary line for {kind}:\n{stdout}"));
        assert!(line.contains("0 failures: ok"), "{line}");
    }
    // The counting pass found a non-trivial number of I/O sites.
    let sites: u64 = stdout
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(4).and_then(|s| s.parse().ok()))
        .expect("site count in header line");
    assert!(sites >= 20, "suspiciously few I/O sites: {sites}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sweep_is_deterministic_across_invocations() {
    let root = std::env::temp_dir().join(format!("tako-sweep-det-{}", std::process::id()));
    let (ok1, out1, _) = sweep(&["--root", root.to_str().unwrap(), "--kinds", "crash"]);
    let (ok2, out2, _) = sweep(&["--root", root.to_str().unwrap(), "--kinds", "crash"]);
    assert!(ok1 && ok2);
    assert_eq!(out1, out2, "sweep output must be invocation-deterministic");
    let _ = std::fs::remove_dir_all(&root);
}
