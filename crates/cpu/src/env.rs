//! The environment a thread program executes in.
//!
//! [`CoreEnv`] couples the *functional* side (reading and writing the
//! simulated memory) with the *timing* side (the core model and the
//! memory hierarchy behind [`MemSystem`]): every access moves data **and**
//! advances the clock, so callbacks triggered by a miss functionally
//! initialize the line before the program reads it — exactly the
//! execution-driven behaviour the paper's simulator has.

use tako_mem::addr::{Addr, AddrRange};
use tako_mem::backing::PhysMem;
use tako_sim::stats::{Counter, Stats};
use tako_sim::{Cycle, TileId};

use crate::predictor::BranchPredictor;
use crate::timing::CoreTiming;

/// Kind of a timed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load.
    Read,
    /// A store (write-allocate).
    Write,
    /// A remote memory operation: a relaxed atomic update executed at the
    /// cache level where the target line lives (Sec 8.1's RMO pushes).
    Rmo,
    /// A non-temporal load: data is streamed once (bin drains, log
    /// replays); fills insert at distant replacement priority and hits do
    /// not promote, so scans do not pollute the caches.
    ReadStream,
    /// A non-temporal store: write-combining without a read-for-ownership
    /// fetch (bin/journal appends).
    WriteStream,
}

/// The memory system a core talks to. `tako-core`'s `TakoSystem`
/// implements this for the full hierarchy; unit tests use flat mocks.
pub trait MemSystem {
    /// Functional access to the backing store.
    fn data(&mut self) -> &mut PhysMem;

    /// Simulate `kind` on `addr` issued by `tile` at `now`; returns the
    /// completion cycle. The access must leave the backing store
    /// up-to-date with any callback side effects before returning.
    fn timed_access(&mut self, tile: TileId, kind: AccessKind, addr: Addr, now: Cycle) -> Cycle;

    /// Flush `range` from the caches (täkō's flushData, Sec 4.4),
    /// blocking until all triggered callbacks complete; returns the
    /// completion cycle.
    fn timed_flush(&mut self, tile: TileId, range: AddrRange, now: Cycle) -> Cycle;

    /// The statistics registry.
    fn stats(&mut self) -> &mut Stats;

    /// Demote `addr`'s line to the preferred-victim position in the
    /// private caches (CLDEMOTE-style hint for consumed streaming data).
    /// Default: no-op.
    fn timed_demote(&mut self, tile: TileId, addr: Addr, now: Cycle) -> Cycle {
        let _ = (tile, addr);
        now
    }

    /// Deliver the earliest pending user-space interrupt for `tile`, if
    /// any (raised by a callback via `EngineCtx::raise_interrupt`).
    /// Default: none.
    fn take_interrupt(&mut self, tile: TileId) -> Option<Cycle> {
        let _ = tile;
        None
    }

    // --- Functional primitives -------------------------------------
    //
    // `CoreEnv` routes every functional read and write through these
    // instead of touching `data()` directly, so a lane view (a per-tile
    // speculative execution context) can interpose a shared read-only
    // backing store plus a per-lane write buffer without ever handing
    // out `&mut PhysMem`. The defaults delegate to `data()` and cost
    // nothing on the serial path.

    /// Functional read of a `u64`.
    fn func_read_u64(&mut self, addr: Addr) -> u64 {
        self.data().read_u64(addr)
    }
    /// Functional read of an `f64`.
    fn func_read_f64(&mut self, addr: Addr) -> f64 {
        self.data().read_f64(addr)
    }
    /// Functional read of a `u32`.
    fn func_read_u32(&mut self, addr: Addr) -> u32 {
        self.data().read_u32(addr)
    }
    /// Functional write of a `u64`.
    fn func_write_u64(&mut self, addr: Addr, val: u64) {
        self.data().write_u64(addr, val)
    }
    /// Functional write of an `f64`.
    fn func_write_f64(&mut self, addr: Addr, val: f64) {
        self.data().write_f64(addr, val)
    }
    /// Functional write of a `u32`.
    fn func_write_u32(&mut self, addr: Addr, val: u32) {
        self.data().write_u32(addr, val)
    }
    /// Functional write of raw bytes.
    fn func_write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        self.data().write_bytes(addr, bytes)
    }
    /// Functional relaxed atomic add on an `f64`.
    fn func_add_f64(&mut self, addr: Addr, val: f64) {
        self.data().add_f64(addr, val)
    }
    /// Functional relaxed fetch-add on a `u64`, returning the old value.
    fn func_fetch_add_u64(&mut self, addr: Addr, val: u64) -> u64 {
        self.data().fetch_add_u64(addr, val)
    }

    // --- Accounting primitives -------------------------------------
    //
    // Same story for the core-side statistics bumps: lane views journal
    // these and replay them into the real registry in canonical order
    // at the epoch barrier, so watchdog sweeps observe byte-identical
    // counter histories.

    /// Add `n` to counter `c`.
    fn acct(&mut self, c: Counter, n: u64) {
        self.stats().add(c, n)
    }
    /// Record an exposed load-to-use latency sample.
    fn acct_load_latency(&mut self, lat: Cycle) {
        self.stats().load_latency.record(lat)
    }
    /// Switch the statistics phase (edge/bin/vertex breakdowns).
    fn set_phase(&mut self, phase: usize) {
        self.stats().set_phase(phase)
    }
}

/// Result of one [`ThreadProgram::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// More work remains.
    Running,
    /// The program finished.
    Done,
}

/// A workload thread. Each `step` performs one small unit of work through
/// the environment; the runner interleaves programs between steps.
pub trait ThreadProgram {
    /// Perform one unit of work.
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult;
}

/// A thread program that can run speculatively on a per-tile lane.
///
/// A lane runner snapshots the program before each speculative step and
/// rolls it back (via [`LaneProgram::lane_restore`]) when the step turns
/// out to be impure — i.e. it touched anything beyond the tile's own
/// private caches. Contract for implementors:
///
/// - `lane_save` must capture **all** state `step` can mutate, cheaply
///   (the save runs before every speculative step).
/// - After the abort point of a poisoned step, loads return zero; the
///   rest of the step must tolerate that without panicking or touching
///   state outside the environment (everything inside it is rolled
///   back, so garbage-driven writes are harmless).
pub trait LaneProgram: ThreadProgram + Send {
    /// Snapshot the program's mutable state.
    fn lane_save(&self) -> Box<dyn std::any::Any + Send>;
    /// Restore a snapshot taken by [`LaneProgram::lane_save`].
    fn lane_restore(&mut self, saved: Box<dyn std::any::Any + Send>);
}

/// The per-step execution environment handed to a [`ThreadProgram`].
pub struct CoreEnv<'a> {
    tile: TileId,
    core: &'a mut CoreTiming,
    predictor: &'a mut BranchPredictor,
    sys: &'a mut dyn MemSystem,
}

impl<'a> CoreEnv<'a> {
    /// Wire a program's environment to a core, predictor, and memory
    /// system.
    pub fn new(
        tile: TileId,
        core: &'a mut CoreTiming,
        predictor: &'a mut BranchPredictor,
        sys: &'a mut dyn MemSystem,
    ) -> Self {
        CoreEnv {
            tile,
            core,
            predictor,
            sys,
        }
    }

    /// The tile this program runs on.
    pub fn tile(&self) -> TileId {
        self.tile
    }

    /// The core-local clock.
    pub fn now(&self) -> Cycle {
        self.core.now()
    }

    fn timed_load(&mut self, addr: Addr, dep: bool) {
        let issue = self.core.load_issue(dep);
        let done = self
            .sys
            .timed_access(self.tile, AccessKind::Read, addr, issue);
        let lat = self.core.load_complete(issue, done);
        self.sys.acct(Counter::CoreLoad, 1);
        self.sys.acct(Counter::CoreInstr, 1);
        self.sys.acct_load_latency(lat);
    }

    /// Load a `u64`, timing the access as independent of prior loads.
    pub fn load_u64(&mut self, addr: Addr) -> u64 {
        self.timed_load(addr, false);
        self.sys.func_read_u64(addr)
    }

    /// Load a `u64` whose address depends on the previous load's value
    /// (pointer chasing — serializes in the core).
    pub fn load_u64_dep(&mut self, addr: Addr) -> u64 {
        self.timed_load(addr, true);
        self.sys.func_read_u64(addr)
    }

    /// Load an `f64` (independent).
    pub fn load_f64(&mut self, addr: Addr) -> f64 {
        self.timed_load(addr, false);
        self.sys.func_read_f64(addr)
    }

    /// Load an `f64` whose address depends on the previous load.
    pub fn load_f64_dep(&mut self, addr: Addr) -> f64 {
        self.timed_load(addr, true);
        self.sys.func_read_f64(addr)
    }

    /// Load a `u32` (independent).
    pub fn load_u32(&mut self, addr: Addr) -> u32 {
        self.timed_load(addr, false);
        self.sys.func_read_u32(addr)
    }

    fn timed_load_stream(&mut self, addr: Addr) {
        let issue = self.core.load_issue(false);
        let done = self
            .sys
            .timed_access(self.tile, AccessKind::ReadStream, addr, issue);
        let lat = self.core.load_complete(issue, done);
        self.sys.acct(Counter::CoreLoad, 1);
        self.sys.acct(Counter::CoreInstr, 1);
        self.sys.acct_load_latency(lat);
    }

    /// Non-temporal load of a `u64` (streaming scans: bin drains, logs).
    pub fn load_stream_u64(&mut self, addr: Addr) -> u64 {
        self.timed_load_stream(addr);
        self.sys.func_read_u64(addr)
    }

    /// Non-temporal load of an `f64`.
    pub fn load_stream_f64(&mut self, addr: Addr) -> f64 {
        self.timed_load_stream(addr);
        self.sys.func_read_f64(addr)
    }

    /// Non-temporal load of a `u32`.
    pub fn load_stream_u32(&mut self, addr: Addr) -> u32 {
        self.timed_load_stream(addr);
        self.sys.func_read_u32(addr)
    }

    /// Poll for a pending user-space interrupt (the handler dispatch
    /// costs a pipeline flush worth of cycles when one is delivered).
    pub fn take_interrupt(&mut self) -> Option<Cycle> {
        let hit = self.sys.take_interrupt(self.tile);
        if hit.is_some() {
            self.core.compute(20); // handler entry/exit
            self.sys.acct(Counter::CoreInstr, 20);
        }
        hit
    }

    /// Demote a consumed line to preferred-victim position (CLDEMOTE).
    pub fn demote_line(&mut self, addr: Addr) {
        let issue = self.core.post_write();
        let _ = self.sys.timed_demote(self.tile, addr, issue);
        self.sys.acct(Counter::CoreInstr, 1);
    }

    /// Software prefetch of a streaming line: starts the fetch without
    /// blocking the core (the demand load later overlaps with it).
    pub fn prefetch_stream(&mut self, addr: Addr) {
        let issue = self.core.post_write();
        let _ = self
            .sys
            .timed_access(self.tile, AccessKind::ReadStream, addr, issue);
        self.sys.acct(Counter::CoreInstr, 1);
    }

    /// Non-temporal store of a `u64` (streaming appends).
    pub fn store_stream_u64(&mut self, addr: Addr, val: u64) {
        let issue = self.core.post_write();
        let _ = self
            .sys
            .timed_access(self.tile, AccessKind::WriteStream, addr, issue);
        self.sys.acct(Counter::CoreStore, 1);
        self.sys.acct(Counter::CoreInstr, 1);
        self.sys.func_write_u64(addr, val);
    }

    /// Non-temporal store of an `f64`.
    pub fn store_stream_f64(&mut self, addr: Addr, val: f64) {
        let issue = self.core.post_write();
        let _ = self
            .sys
            .timed_access(self.tile, AccessKind::WriteStream, addr, issue);
        self.sys.acct(Counter::CoreStore, 1);
        self.sys.acct(Counter::CoreInstr, 1);
        self.sys.func_write_f64(addr, val);
    }

    fn timed_store(&mut self, addr: Addr) {
        let issue = self.core.post_write();
        let _done = self
            .sys
            .timed_access(self.tile, AccessKind::Write, addr, issue);
        self.sys.acct(Counter::CoreStore, 1);
        self.sys.acct(Counter::CoreInstr, 1);
    }

    /// Store a `u64` (posted; does not block the core).
    pub fn store_u64(&mut self, addr: Addr, val: u64) {
        self.timed_store(addr);
        self.sys.func_write_u64(addr, val);
    }

    /// Store an `f64` (posted).
    pub fn store_f64(&mut self, addr: Addr, val: f64) {
        self.timed_store(addr);
        self.sys.func_write_f64(addr, val);
    }

    /// Store a `u32` (posted).
    pub fn store_u32(&mut self, addr: Addr, val: u32) {
        self.timed_store(addr);
        self.sys.func_write_u32(addr, val);
    }

    /// Store raw bytes (one timed store per cache line touched).
    pub fn store_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for line in AddrRange::new(addr, bytes.len() as u64).lines() {
            self.timed_store(line.max(addr));
        }
        self.sys.func_write_bytes(addr, bytes);
    }

    /// Remote atomic add on an `f64` (relaxed; executed at the cache
    /// holding the line, after any onMiss callback initializes it).
    pub fn rmo_add_f64(&mut self, addr: Addr, val: f64) {
        let issue = self.core.post_write();
        let _done = self
            .sys
            .timed_access(self.tile, AccessKind::Rmo, addr, issue);
        self.sys.acct(Counter::CoreRmo, 1);
        self.sys.acct(Counter::CoreInstr, 1);
        self.sys.func_add_f64(addr, val);
    }

    /// Remote atomic add on a `u64` (relaxed).
    pub fn rmo_add_u64(&mut self, addr: Addr, val: u64) {
        let issue = self.core.post_write();
        let _done = self
            .sys
            .timed_access(self.tile, AccessKind::Rmo, addr, issue);
        self.sys.acct(Counter::CoreRmo, 1);
        self.sys.acct(Counter::CoreInstr, 1);
        self.sys.func_fetch_add_u64(addr, val);
    }

    /// Atomic exchange of a `u64`, returning the old value (the LL/SC
    /// exchange HATS uses to mark edges processed). Times as a load.
    pub fn exchange_u64(&mut self, addr: Addr, val: u64) -> u64 {
        self.timed_load(addr, false);
        let old = self.sys.func_read_u64(addr);
        self.sys.func_write_u64(addr, val);
        old
    }

    /// Retire `n` plain compute instructions.
    pub fn compute(&mut self, n: u64) {
        self.core.compute(n);
        self.sys.acct(Counter::CoreInstr, n);
    }

    /// Execute a conditional branch at `pc` with outcome `taken`; the
    /// predictor decides whether the pipeline mispredicts.
    pub fn branch(&mut self, pc: u64, taken: bool) {
        let miss = self.predictor.mispredicts(pc, taken);
        self.core.branch(miss);
        self.sys.acct(Counter::CoreBranch, 1);
        self.sys.acct(Counter::CoreInstr, 1);
        if miss {
            self.sys.acct(Counter::BranchMispredict, 1);
        }
    }

    /// Flush `range` from the caches, blocking until all callbacks
    /// complete (täkō's flushData).
    pub fn flush(&mut self, range: AddrRange) {
        let now = self.core.drain();
        let done = self.sys.timed_flush(self.tile, range, now);
        self.core.stall_until(done);
    }

    /// Wait for all outstanding loads.
    pub fn fence(&mut self) {
        self.core.drain();
    }

    /// Switch the statistics phase (edge/bin/vertex breakdowns).
    pub fn set_phase(&mut self, phase: usize) {
        self.sys.set_phase(phase);
    }

    /// Functional (untimed) view of memory, for setup and verification.
    pub fn data(&mut self) -> &mut PhysMem {
        self.sys.data()
    }

    /// The statistics registry.
    pub fn stats(&mut self) -> &mut Stats {
        self.sys.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::config::CoreConfig;

    /// A flat memory with fixed 50-cycle access latency.
    struct FlatSys {
        mem: PhysMem,
        stats: Stats,
        accesses: u64,
    }

    impl MemSystem for FlatSys {
        fn data(&mut self) -> &mut PhysMem {
            &mut self.mem
        }
        fn timed_access(
            &mut self,
            _tile: TileId,
            _kind: AccessKind,
            _addr: Addr,
            now: Cycle,
        ) -> Cycle {
            self.accesses += 1;
            now + 50
        }
        fn timed_flush(&mut self, _tile: TileId, _range: AddrRange, now: Cycle) -> Cycle {
            now + 500
        }
        fn stats(&mut self) -> &mut Stats {
            &mut self.stats
        }
    }

    fn flat() -> FlatSys {
        FlatSys {
            mem: PhysMem::new(),
            stats: Stats::new(),
            accesses: 0,
        }
    }

    #[test]
    fn load_returns_functional_data() {
        let mut sys = flat();
        sys.mem.write_u64(128, 777);
        let mut core = CoreTiming::new(CoreConfig::goldmont());
        let mut pred = BranchPredictor::new();
        let mut env = CoreEnv::new(0, &mut core, &mut pred, &mut sys);
        assert_eq!(env.load_u64(128), 777);
        assert_eq!(sys.accesses, 1);
        assert_eq!(sys.stats.get(Counter::CoreLoad), 1);
        assert!(sys.stats.load_latency.mean() >= 50.0);
    }

    #[test]
    fn store_visible_to_later_load() {
        let mut sys = flat();
        let mut core = CoreTiming::new(CoreConfig::goldmont());
        let mut pred = BranchPredictor::new();
        let mut env = CoreEnv::new(0, &mut core, &mut pred, &mut sys);
        env.store_f64(64, 2.5);
        assert_eq!(env.load_f64(64), 2.5);
    }

    #[test]
    fn exchange_swaps() {
        let mut sys = flat();
        sys.mem.write_u64(0, 5);
        let mut core = CoreTiming::new(CoreConfig::goldmont());
        let mut pred = BranchPredictor::new();
        let mut env = CoreEnv::new(0, &mut core, &mut pred, &mut sys);
        assert_eq!(env.exchange_u64(0, 9), 5);
        assert_eq!(env.load_u64(0), 9);
    }

    #[test]
    fn flush_blocks_core() {
        let mut sys = flat();
        let mut core = CoreTiming::new(CoreConfig::goldmont());
        let mut pred = BranchPredictor::new();
        let mut env = CoreEnv::new(0, &mut core, &mut pred, &mut sys);
        env.flush(AddrRange::new(0, 4096));
        assert!(env.now() >= 500);
    }

    #[test]
    fn rmo_applies_add() {
        let mut sys = flat();
        let mut core = CoreTiming::new(CoreConfig::goldmont());
        let mut pred = BranchPredictor::new();
        let mut env = CoreEnv::new(0, &mut core, &mut pred, &mut sys);
        env.rmo_add_f64(8, 1.25);
        env.rmo_add_f64(8, 1.25);
        assert_eq!(sys.mem.read_f64(8), 2.5);
        assert_eq!(sys.stats.get(Counter::CoreRmo), 2);
    }

    struct CountDown(u64);
    impl ThreadProgram for CountDown {
        fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
            if self.0 == 0 {
                return StepResult::Done;
            }
            self.0 -= 1;
            env.compute(3);
            env.load_u64(self.0 * 64);
            StepResult::Running
        }
    }

    #[test]
    fn runner_single_program() {
        let mut sys = flat();
        let mut prog = CountDown(10);
        let end = crate::run_single(
            0,
            &mut prog,
            CoreTiming::new(CoreConfig::goldmont()),
            &mut sys,
            1_000,
        );
        assert!(end > 0);
        assert_eq!(sys.accesses, 10);
    }

    #[test]
    fn runner_interleaves_by_time() {
        let mut sys = flat();
        let mut a = CountDown(5);
        let mut b = CountDown(50);
        let mut cores = vec![
            CoreTiming::new(CoreConfig::goldmont()),
            CoreTiming::new(CoreConfig::goldmont()),
        ];
        let mut preds = vec![BranchPredictor::new(), BranchPredictor::new()];
        let mut programs: Vec<(TileId, &mut dyn ThreadProgram)> = vec![(0, &mut a), (1, &mut b)];
        let end = crate::run_multicore(&mut programs, &mut cores, &mut preds, &mut sys, 10_000);
        assert_eq!(sys.accesses, 55);
        assert!(end >= cores[1].now());
    }

    #[test]
    fn stream_and_prefetch_helpers() {
        let mut sys = flat();
        sys.mem.write_u64(64, 9);
        sys.mem.write_f64(128, 2.5);
        sys.mem.write_u32(256, 77);
        let mut core = CoreTiming::new(CoreConfig::goldmont());
        let mut pred = BranchPredictor::new();
        let mut env = CoreEnv::new(0, &mut core, &mut pred, &mut sys);
        assert_eq!(env.load_stream_u64(64), 9);
        assert_eq!(env.load_stream_f64(128), 2.5);
        assert_eq!(env.load_stream_u32(256), 77);
        env.store_stream_u64(512, 5);
        env.store_stream_f64(520, 1.5);
        env.prefetch_stream(1024);
        env.demote_line(64); // default MemSystem impl: no-op
        assert_eq!(sys.mem.read_u64(512), 5);
        assert_eq!(sys.mem.read_f64(520), 1.5);
        // 3 loads + 2 stores + prefetch + demote = 7 instructions.
        assert_eq!(sys.stats.get(Counter::CoreInstr), 7);
    }

    #[test]
    fn interrupt_polling_defaults_to_none() {
        let mut sys = flat();
        let mut core = CoreTiming::new(CoreConfig::goldmont());
        let mut pred = BranchPredictor::new();
        let mut env = CoreEnv::new(0, &mut core, &mut pred, &mut sys);
        assert!(env.take_interrupt().is_none());
    }

    #[test]
    #[should_panic(expected = "runaway")]
    fn runner_step_limit() {
        struct Forever;
        impl ThreadProgram for Forever {
            fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
                env.compute(1);
                StepResult::Running
            }
        }
        let mut sys = flat();
        let mut prog = Forever;
        crate::run_single(
            0,
            &mut prog,
            CoreTiming::new(CoreConfig::goldmont()),
            &mut sys,
            100,
        );
    }
}
