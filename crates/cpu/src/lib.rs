//! # tako-cpu — core models and thread programs
//!
//! Execution-driven simulation needs real programs. A workload implements
//! [`ThreadProgram`]: each call to `step` performs one small unit of work
//! (one edge, one element, one transaction record) through a
//! [`CoreEnv`], which *functionally* reads and writes the simulated
//! memory while *timing* every operation on the core model:
//!
//! * [`timing::CoreTiming`] — the per-core clock: an out-of-order core
//!   overlaps loads through a bounded MLP window and retires compute at
//!   its issue width; an in-order core stalls on every load (Fig 24
//!   sweeps these models).
//! * [`predictor::BranchPredictor`] — a small gshare predictor; workloads
//!   report `(pc, taken)` and the core charges the misprediction penalty.
//!   Irregular traversal (software BDFS) mispredicts heavily, which is
//!   one of the effects HATS removes (Fig 17, middle).
//! * [`run_multicore`] — the interleaving runner: always steps the program
//!   whose core clock is furthest behind, so contention on shared LLC
//!   banks, DRAM controllers, and engines is causally consistent.
//!
//! The memory system itself is abstracted behind [`MemSystem`]; the full
//! täkō hierarchy in `tako-core` implements it.

pub mod env;
pub mod predictor;
pub mod timing;

pub use env::{AccessKind, CoreEnv, LaneProgram, MemSystem, StepResult, ThreadProgram};
pub use predictor::BranchPredictor;
pub use timing::CoreTiming;

use tako_sim::{Cycle, TileId};

/// Drives a set of thread programs to completion on a shared memory
/// system, interleaving them by core-local time.
///
/// Returns the cycle at which the last program finished (including
/// draining its outstanding loads).
///
/// # Panics
///
/// Panics if `programs` is empty or if any program runs for more than
/// `max_steps` steps (runaway-loop protection).
pub fn run_multicore(
    programs: &mut [(TileId, &mut dyn ThreadProgram)],
    cores: &mut [CoreTiming],
    predictors: &mut [BranchPredictor],
    sys: &mut dyn MemSystem,
    max_steps: u64,
) -> Cycle {
    assert!(!programs.is_empty(), "need at least one program");
    assert_eq!(programs.len(), cores.len());
    assert_eq!(programs.len(), predictors.len());
    let n = programs.len();
    let mut done = vec![false; n];
    let mut finish = vec![0 as Cycle; n];
    let mut remaining = n;
    let mut steps = 0u64;
    while remaining > 0 {
        steps += 1;
        assert!(
            steps <= max_steps,
            "program exceeded {max_steps} steps; runaway loop?"
        );
        // Step the laggard: the unfinished program with the earliest clock.
        let i = (0..n)
            .filter(|&i| !done[i])
            .min_by_key(|&i| cores[i].now())
            .expect("some program unfinished");
        let (tile, ref mut prog) = programs[i];
        let mut env = CoreEnv::new(tile, &mut cores[i], &mut predictors[i], sys);
        if prog.step(&mut env) == StepResult::Done {
            done[i] = true;
            finish[i] = cores[i].drain();
            remaining -= 1;
        }
    }
    finish.into_iter().max().unwrap_or(0)
}

/// Convenience wrapper of [`run_multicore`] for a single program.
pub fn run_single(
    tile: TileId,
    prog: &mut dyn ThreadProgram,
    core: CoreTiming,
    sys: &mut dyn MemSystem,
    max_steps: u64,
) -> Cycle {
    let mut cores = [core];
    let mut preds = [BranchPredictor::new()];
    let mut programs: [(TileId, &mut dyn ThreadProgram); 1] = [(tile, prog)];
    run_multicore(&mut programs, &mut cores, &mut preds, sys, max_steps)
}
