//! Per-core clock with memory-level parallelism.
//!
//! [`CoreTiming`] models what the evaluation needs from a core: how much
//! latency loads expose, how compute throughput scales with issue width,
//! and how mispredictions interrupt the pipeline. An out-of-order core
//! keeps up to `mlp_window` loads in flight and only stalls when the
//! window fills or a dependent access needs a previous load's value; an
//! in-order core ([`tako_sim::config::CoreKind::InOrder`]) stalls on
//! every load.

use tako_sim::config::{CoreConfig, CoreKind};
use tako_sim::Cycle;

/// The timing state of one core.
///
/// The in-flight window is an unordered `Vec` rather than a heap: it
/// holds at most `mlp_window` (single-digit) completion cycles, and at
/// that size a linear min/sweep beats heap maintenance on every load —
/// this is the innermost per-access loop of the whole simulator.
#[derive(Debug, Clone)]
pub struct CoreTiming {
    cfg: CoreConfig,
    now: Cycle,
    outstanding: Vec<Cycle>,
    last_load_done: Cycle,
    instr_acc: u64,
    instrs_retired: u64,
}

impl CoreTiming {
    /// A core at cycle 0.
    pub fn new(cfg: CoreConfig) -> Self {
        let window = match cfg.kind {
            CoreKind::InOrder => 1,
            CoreKind::OutOfOrder => cfg.mlp_window.max(1) as usize,
        };
        CoreTiming {
            cfg,
            now: 0,
            outstanding: Vec::with_capacity(window),
            last_load_done: 0,
            instr_acc: 0,
            instrs_retired: 0,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The core-local clock: the cycle the next instruction issues.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Completion cycle of the most recent load (for dependent accesses).
    pub fn last_load_done(&self) -> Cycle {
        self.last_load_done
    }

    /// Instructions retired so far.
    pub fn instrs_retired(&self) -> u64 {
        self.instrs_retired
    }

    fn window(&self) -> usize {
        match self.cfg.kind {
            CoreKind::InOrder => 1,
            CoreKind::OutOfOrder => self.cfg.mlp_window.max(1) as usize,
        }
    }

    #[inline]
    fn pop_completed(&mut self) {
        let now = self.now;
        let mut i = 0;
        while i < self.outstanding.len() {
            if self.outstanding[i] <= now {
                self.outstanding.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Retire `n` non-memory instructions at the core's issue width.
    pub fn compute(&mut self, n: u64) {
        self.instrs_retired += n;
        self.instr_acc += n;
        let width = u64::from(self.cfg.width.max(1));
        self.now += self.instr_acc / width;
        self.instr_acc %= width;
    }

    /// Account for one conditional branch; `mispredicted` charges the
    /// pipeline-flush penalty.
    pub fn branch(&mut self, mispredicted: bool) {
        self.compute(1);
        if mispredicted {
            self.now += self.cfg.mispredict_penalty;
            // A flush also squashes the in-flight window's overlap.
            self.instr_acc = 0;
        }
    }

    /// Begin a load: returns the cycle the access should be presented to
    /// the memory system. `depends_on_last_load` serializes behind the
    /// previous load (pointer chasing / data-dependent addressing).
    pub fn load_issue(&mut self, depends_on_last_load: bool) -> Cycle {
        self.instrs_retired += 1;
        if depends_on_last_load {
            self.now = self.now.max(self.last_load_done);
        }
        self.pop_completed();
        if self.outstanding.len() >= self.window() {
            // Window full: wait for the earliest in-flight load.
            if let Some(i) = self
                .outstanding
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
            {
                let c = self.outstanding.swap_remove(i);
                self.now = self.now.max(c);
            }
            self.pop_completed();
        }
        let issue = self.now;
        self.now += 1;
        issue
    }

    /// Finish a load whose memory access completes at `done`.
    /// Returns the exposed load-to-use latency.
    pub fn load_complete(&mut self, issue: Cycle, done: Cycle) -> Cycle {
        self.last_load_done = done;
        match self.cfg.kind {
            CoreKind::InOrder => {
                // Stall-on-use approximated as stall-on-completion.
                self.now = self.now.max(done);
            }
            CoreKind::OutOfOrder => {
                self.outstanding.push(done);
            }
        }
        done.saturating_sub(issue)
    }

    /// Account for a posted store or remote memory operation: occupies an
    /// issue slot but does not block the core.
    pub fn post_write(&mut self) -> Cycle {
        self.instrs_retired += 1;
        let issue = self.now;
        self.now += 1;
        issue
    }

    /// Wait for all outstanding loads and any external event at `until`.
    pub fn stall_until(&mut self, until: Cycle) {
        self.now = self.now.max(until);
        self.pop_completed();
    }

    /// Drain the window: the cycle at which the core is fully idle.
    pub fn drain(&mut self) -> Cycle {
        let last = self.outstanding.iter().copied().max().unwrap_or(0);
        self.now = self.now.max(last);
        self.outstanding.clear();
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ooo() -> CoreTiming {
        CoreTiming::new(CoreConfig::goldmont())
    }

    fn inorder() -> CoreTiming {
        CoreTiming::new(CoreConfig::in_order())
    }

    #[test]
    fn compute_scales_with_width() {
        let mut c = ooo(); // width 3
        c.compute(9);
        assert_eq!(c.now(), 3);
        c.compute(1);
        assert_eq!(c.now(), 3); // accumulates fractional issue
        c.compute(2);
        assert_eq!(c.now(), 4);
        assert_eq!(c.instrs_retired(), 12);
    }

    #[test]
    fn ooo_overlaps_independent_loads() {
        let mut c = ooo(); // window 8
        let mut dones = Vec::new();
        for _ in 0..8 {
            let issue = c.load_issue(false);
            dones.push(c.load_complete(issue, issue + 100));
        }
        // 8 loads issued back-to-back: clock advanced only 8 cycles.
        assert_eq!(c.now(), 8);
        assert_eq!(c.drain(), 107);
        let _ = dones;
    }

    #[test]
    fn window_fills_and_stalls() {
        let mut c = ooo();
        for _ in 0..9 {
            let issue = c.load_issue(false);
            c.load_complete(issue, issue + 100);
        }
        // 9th load waited for the 1st to complete (cycle 100).
        assert!(c.now() >= 100);
    }

    #[test]
    fn dependent_load_serializes() {
        let mut c = ooo();
        let i1 = c.load_issue(false);
        c.load_complete(i1, i1 + 100);
        let i2 = c.load_issue(true);
        assert!(i2 >= 100, "dependent load issued at {i2}");
    }

    #[test]
    fn in_order_stalls_every_load() {
        let mut c = inorder();
        for k in 0..4u64 {
            let issue = c.load_issue(false);
            assert_eq!(issue, k * 100);
            c.load_complete(issue, issue + 100);
        }
        assert_eq!(c.now(), 400);
    }

    #[test]
    fn mispredict_penalty_charged() {
        let mut c = CoreTiming::new(CoreConfig::in_order()); // width 1
        c.branch(false);
        assert_eq!(c.now(), 1);
        c.branch(true);
        // 1 issue cycle + 8-cycle in-order flush penalty.
        assert_eq!(c.now(), 1 + 1 + 8);
    }

    #[test]
    fn stores_do_not_block() {
        let mut c = ooo();
        for _ in 0..100 {
            c.post_write();
        }
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn load_latency_reported() {
        let mut c = ooo();
        let issue = c.load_issue(false);
        let lat = c.load_complete(issue, issue + 42);
        assert_eq!(lat, 42);
    }

    #[test]
    fn stall_until_and_drain() {
        let mut c = ooo();
        let issue = c.load_issue(false);
        c.load_complete(issue, issue + 10);
        c.stall_until(500);
        assert_eq!(c.now(), 500);
        assert_eq!(c.drain(), 500);
    }
}
