//! A small gshare branch predictor.
//!
//! Workload programs report every conditional branch as `(pc, taken)`;
//! the predictor hashes the pc with a global history register into a
//! table of 2-bit saturating counters. Regular loop branches (vertex-
//! ordered traversal) predict almost perfectly; data-dependent branches
//! (software BDFS deciding whether to push or pop) mispredict often —
//! the contrast Fig 17 (middle) measures.

const TABLE_BITS: u32 = 12;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

/// A gshare predictor with 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    history: u64,
}

impl BranchPredictor {
    /// A predictor with all counters weakly not-taken.
    pub fn new() -> Self {
        BranchPredictor {
            counters: vec![1; TABLE_SIZE],
            history: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & (TABLE_SIZE as u64 - 1)) as usize
    }

    /// Predict and train on one branch; returns true if mispredicted.
    pub fn mispredicts(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = &mut self.counters[idx];
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & (TABLE_SIZE as u64 - 1);
        predicted_taken != taken
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::rng::Rng;

    #[test]
    fn learns_always_taken() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for _ in 0..1000 {
            if p.mispredicts(0x400, true) {
                misses += 1;
            }
        }
        assert!(misses < 20, "too many misses: {misses}");
    }

    #[test]
    fn learns_loop_pattern() {
        // taken x7, not-taken x1 (8-iteration inner loop).
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for trip in 0..500 {
            for i in 0..8 {
                let taken = i != 7;
                if p.mispredicts(0x800, taken) && trip > 10 {
                    misses += 1;
                }
            }
        }
        // gshare captures short loop patterns via history.
        let rate = misses as f64 / (490.0 * 8.0);
        assert!(rate < 0.2, "loop mispredict rate {rate}");
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = BranchPredictor::new();
        let mut rng = Rng::new(1234);
        let mut misses = 0;
        let n = 4000;
        for _ in 0..n {
            if p.mispredicts(0xC00, rng.chance(0.5)) {
                misses += 1;
            }
        }
        let rate = misses as f64 / n as f64;
        assert!(rate > 0.35, "random branches should mispredict: {rate}");
    }

    #[test]
    fn distinct_pcs_distinct_state() {
        let mut p = BranchPredictor::new();
        for _ in 0..100 {
            p.mispredicts(0x1000, true);
        }
        // A different pc starts from its own counter; with history mixing
        // it may alias, but a fresh strongly-biased stream still trains.
        let mut misses = 0;
        for _ in 0..100 {
            if p.mispredicts(0x2004, false) {
                misses += 1;
            }
        }
        assert!(misses < 60);
    }
}
