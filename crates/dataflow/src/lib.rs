//! # tako-dataflow — near-cache engine fabric model
//!
//! täkō executes callbacks on a small spatial dataflow fabric next to each
//! L2/L3 bank (Sec 5.3): an array of simple processing elements (PEs)
//! holding a few static instructions each, firing asynchronously when
//! operands arrive, with dynamic tag matching so several callbacks run
//! concurrently. This crate models that fabric's *timing* with a
//! dependence-driven firing model:
//!
//! * Every operation a callback performs is recorded as a node with
//!   operand [`Val`] handles. A node fires when all operands are ready
//!   **and** a PE of the right class (ALU or memory) is free; it completes
//!   `pe_latency` cycles later (memory nodes complete when the memory
//!   system says so).
//! * PE availability is a rolling multi-server pool shared by all
//!   callbacks on the engine, so concurrent callbacks contend for the
//!   fabric exactly as tag-matched threads would.
//! * The same recorded ops can be replayed under three execution models
//!   ([`tako_sim::config::EngineKind`]): the spatial `Dataflow` fabric, an
//!   `InOrderCore` that serializes every op (the prior-NDC design the
//!   paper shows performs poorly), and an `Ideal` engine with unlimited
//!   zero-latency PEs (the upper bound in every figure).
//!
//! The functional side of callbacks (what values they compute) lives in
//! `tako-core`'s `EngineCtx`, which drives this model while reading and
//! writing the simulated memory.
//!
//! # Example
//!
//! ```
//! use tako_dataflow::Fabric;
//! use tako_sim::config::EngineConfig;
//!
//! let mut fabric = Fabric::new(EngineConfig::default_5x5());
//! let mut t = fabric.begin(100);
//! let a = t.alu(&[]);            // fires at 100, ready at 101
//! let b = t.alu(&[]);            // independent: also ready at 101
//! let c = t.alu(&[a, b]);        // dependent: ready at 102
//! assert_eq!(c.ready(), 102);
//! let result = t.finish();
//! assert_eq!(result.completion, 102);
//! assert_eq!(result.instrs, 3);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tako_sim::config::{EngineConfig, EngineKind};
use tako_sim::stats::LatencyHistogram;
use tako_sim::Cycle;

/// A dataflow value: the handle a recorded operation returns, carrying the
/// cycle at which the value becomes available to consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Val {
    ready: Cycle,
}

impl Val {
    /// A value available at `ready` (e.g., a callback argument).
    pub fn at(ready: Cycle) -> Self {
        Val { ready }
    }

    /// The cycle this value is available.
    pub fn ready(self) -> Cycle {
        self.ready
    }
}

/// A rolling pool of `k` identical servers (PEs of one class).
#[derive(Debug, Clone)]
struct PePool {
    free: BinaryHeap<Reverse<Cycle>>,
    unlimited: bool,
}

impl PePool {
    fn new(k: u32) -> Self {
        if k == u32::MAX {
            return PePool {
                free: BinaryHeap::new(),
                unlimited: true,
            };
        }
        let mut free = BinaryHeap::with_capacity(k as usize);
        for _ in 0..k {
            free.push(Reverse(0));
        }
        PePool {
            free,
            unlimited: false,
        }
    }

    /// Reserve a server at or after `ready`; occupy it for `occupancy`
    /// cycles; return the fire time.
    fn reserve(&mut self, ready: Cycle, occupancy: Cycle) -> Cycle {
        if self.unlimited {
            return ready;
        }
        let Reverse(free_at) = self.free.pop().expect("pool has servers");
        let fire = ready.max(free_at);
        self.free.push(Reverse(fire + occupancy));
        fire
    }
}

/// The per-engine fabric state: PE pools shared by all callbacks that run
/// on this engine.
#[derive(Debug, Clone)]
pub struct Fabric {
    cfg: EngineConfig,
    alu: PePool,
    mem: PePool,
    /// Live-token samples (Sec 5.3 reports ≤19 average live tokens).
    pub token_samples: LatencyHistogram,
}

impl Fabric {
    /// A fabric with `cfg`'s PE counts and latencies.
    pub fn new(cfg: EngineConfig) -> Self {
        let (alu_n, mem_n) = match cfg.kind {
            EngineKind::Ideal => (u32::MAX, u32::MAX),
            EngineKind::InOrderCore => (1, 1),
            EngineKind::Dataflow => (cfg.alu_pes, cfg.mem_pes),
        };
        Fabric {
            alu: PePool::new(alu_n),
            mem: PePool::new(mem_n),
            token_samples: LatencyHistogram::new(),
            cfg,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn save_pool(pool: &PePool, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.put_bool(pool.unlimited);
        // BinaryHeap iteration order is arbitrary; write a sorted copy so
        // identical pools always serialize to identical bytes.
        let mut busy: Vec<Cycle> = pool.free.iter().map(|Reverse(c)| *c).collect();
        busy.sort_unstable();
        w.put_len(busy.len());
        for c in busy {
            w.put_u64(c);
        }
    }

    fn load_pool(
        pool: &mut PePool,
        what: &str,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::SnapError;
        let unlimited = r.get_bool()?;
        if unlimited != pool.unlimited {
            return Err(SnapError::StateMismatch(format!(
                "{what} PE pool: snapshot unlimited={unlimited}, rebuilt unlimited={}",
                pool.unlimited
            )));
        }
        let n = r.get_len_expect(what, pool.free.len())?;
        let mut free = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            free.push(Reverse(r.get_u64()?));
        }
        pool.free = free;
        Ok(())
    }

    /// Begin recording one callback that becomes eligible at `start`.
    pub fn begin(&mut self, start: Cycle) -> Trace<'_> {
        Trace {
            fabric: self,
            start,
            completion: start,
            seq: start,
            instrs: 0,
            mem_ops: 0,
            live_tokens: 0,
        }
    }
}

impl tako_sim::checkpoint::Snapshot for Fabric {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("fabric");
        Fabric::save_pool(&self.alu, w);
        Fabric::save_pool(&self.mem, w);
        self.token_samples.save(w);
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        r.section("fabric")?;
        Fabric::load_pool(&mut self.alu, "ALU PEs", r)?;
        Fabric::load_pool(&mut self.mem, "memory PEs", r)?;
        self.token_samples.load(r)
    }
}

/// Summary of one executed callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceResult {
    /// Cycle the callback became eligible to run.
    pub start: Cycle,
    /// Cycle the last operation completed.
    pub completion: Cycle,
    /// Fabric instructions executed.
    pub instrs: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
}

impl TraceResult {
    /// Callback latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.completion - self.start
    }
}

/// An in-flight callback recording its operations against the fabric.
#[derive(Debug)]
pub struct Trace<'a> {
    fabric: &'a mut Fabric,
    start: Cycle,
    completion: Cycle,
    /// Program-order cursor for the in-order execution model.
    seq: Cycle,
    instrs: u64,
    mem_ops: u64,
    live_tokens: i64,
}

impl Trace<'_> {
    /// The callback's start cycle.
    pub fn start(&self) -> Cycle {
        self.start
    }

    /// A value representing a callback argument, ready at start.
    pub fn arg(&self) -> Val {
        Val::at(self.start)
    }

    fn deps_ready(&self, deps: &[Val]) -> Cycle {
        deps.iter()
            .map(|v| v.ready)
            .max()
            .unwrap_or(self.start)
            .max(self.start)
    }

    fn note_tokens(&mut self, consumed: usize) {
        self.live_tokens += 1 - consumed as i64;
        self.fabric
            .token_samples
            .record(self.live_tokens.max(0) as u64);
    }

    /// Fabric instructions recorded so far. Live progress for watchdog
    /// and violation diagnostics; [`Trace::finish`] reports the final
    /// count.
    pub fn instrs_so_far(&self) -> u64 {
        self.instrs
    }

    /// Memory operations recorded so far.
    pub fn mem_ops_so_far(&self) -> u64 {
        self.mem_ops
    }

    /// Record one ALU (integer/SIMD) operation consuming `deps`.
    /// SIMD ops across a full cache line count as one fabric instruction,
    /// matching the paper's data-parallel callback code.
    pub fn alu(&mut self, deps: &[Val]) -> Val {
        let ready = self.deps_ready(deps);
        let lat = self.fabric.cfg.pe_latency;
        let done = match self.fabric.cfg.kind {
            EngineKind::Ideal => ready,
            EngineKind::Dataflow => {
                let fire = self.fabric.alu.reserve(ready, lat.max(1));
                fire + lat
            }
            EngineKind::InOrderCore => {
                // Scalar pipeline: strictly program-ordered, one op/cycle.
                let fire = ready.max(self.seq);
                self.seq = fire + 1;
                fire + 1
            }
        };
        self.instrs += 1;
        self.note_tokens(deps.len());
        self.completion = self.completion.max(done);
        Val::at(done)
    }

    /// Record a chain of `n` dependent ALU operations (loop bodies whose
    /// iterations depend on each other).
    pub fn alu_chain(&mut self, deps: &[Val], n: u64) -> Val {
        let mut v = self.alu(deps);
        for _ in 1..n.max(1) {
            v = self.alu(&[v]);
        }
        v
    }

    /// Reserve a memory PE for an access whose operands are `deps`;
    /// returns the cycle the access can be presented to the memory system.
    /// Pair with [`Trace::mem_complete`] once the memory system reports
    /// the completion cycle.
    pub fn mem_fire(&mut self, deps: &[Val]) -> Cycle {
        let ready = self.deps_ready(deps);
        match self.fabric.cfg.kind {
            EngineKind::Ideal => ready,
            EngineKind::Dataflow => {
                // The PE is occupied only for issue; the engine L1d and
                // MSHRs hold the outstanding access.
                self.fabric.mem.reserve(ready, 1)
            }
            EngineKind::InOrderCore => {
                let fire = ready.max(self.seq);
                self.seq = fire + 1;
                fire
            }
        }
    }

    /// Record the completion of a memory access started with
    /// [`Trace::mem_fire`].
    pub fn mem_complete(&mut self, done: Cycle) -> Val {
        self.mem_ops += 1;
        self.instrs += 1;
        self.note_tokens(1);
        if self.fabric.cfg.kind == EngineKind::InOrderCore {
            // Stall-on-use scalar core: later ops wait for the load.
            self.seq = self.seq.max(done);
        }
        self.completion = self.completion.max(done);
        Val::at(done)
    }

    /// Finish the callback and return its timing summary.
    pub fn finish(self) -> TraceResult {
        TraceResult {
            start: self.start,
            completion: self.completion,
            instrs: self.instrs,
            mem_ops: self.mem_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(kind: EngineKind) -> Fabric {
        let mut cfg = EngineConfig::default_5x5();
        cfg.kind = kind;
        if kind == EngineKind::Ideal {
            cfg = EngineConfig::ideal();
        }
        Fabric::new(cfg)
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        let mut f = fabric(EngineKind::Dataflow);
        let mut t = f.begin(0);
        let vals: Vec<Val> = (0..10).map(|_| t.alu(&[])).collect();
        // 15 ALU PEs: 10 independent ops all complete at cycle 1.
        assert!(vals.iter().all(|v| v.ready() == 1));
        assert_eq!(t.finish().completion, 1);
    }

    #[test]
    fn dependences_serialize() {
        let mut f = fabric(EngineKind::Dataflow);
        let mut t = f.begin(5);
        let v = t.alu_chain(&[], 4);
        assert_eq!(v.ready(), 9);
        let r = t.finish();
        assert_eq!(r.latency(), 4);
        assert_eq!(r.instrs, 4);
    }

    #[test]
    fn pe_contention_limits_throughput() {
        let mut cfg = EngineConfig::default_5x5();
        cfg.alu_pes = 2;
        let mut f = Fabric::new(cfg);
        let mut t = f.begin(0);
        let vals: Vec<Val> = (0..6).map(|_| t.alu(&[])).collect();
        // 6 independent ops on 2 PEs: completions 1,1,2,2,3,3.
        let mut readies: Vec<Cycle> = vals.iter().map(|v| v.ready()).collect();
        readies.sort_unstable();
        assert_eq!(readies, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn pe_latency_scales_chains() {
        let mut cfg = EngineConfig::default_5x5();
        cfg.pe_latency = 8;
        let mut f = Fabric::new(cfg);
        let mut t = f.begin(0);
        let v = t.alu_chain(&[], 3);
        assert_eq!(v.ready(), 24);
    }

    #[test]
    fn ideal_alu_is_free() {
        let mut f = fabric(EngineKind::Ideal);
        let mut t = f.begin(10);
        let v = t.alu_chain(&[], 100);
        assert_eq!(v.ready(), 10);
        let fire = t.mem_fire(&[v]);
        assert_eq!(fire, 10);
        let m = t.mem_complete(fire + 50);
        assert_eq!(m.ready(), 60);
        assert_eq!(t.finish().latency(), 50);
    }

    #[test]
    fn in_order_serializes_everything() {
        let mut f = fabric(EngineKind::InOrderCore);
        let mut t = f.begin(0);
        let a = t.alu(&[]);
        let b = t.alu(&[]);
        // Even independent ops go one-at-a-time.
        assert_eq!(a.ready(), 1);
        assert_eq!(b.ready(), 2);
        let fire = t.mem_fire(&[]);
        assert_eq!(fire, 2);
        t.mem_complete(fire + 100);
        // Stall-on-use: the next op waits for the load.
        let c = t.alu(&[]);
        assert_eq!(c.ready(), 103);
    }

    #[test]
    fn dataflow_overlaps_memory() {
        let mut f = fabric(EngineKind::Dataflow);
        let mut t = f.begin(0);
        // Two independent loads overlap on different memory PEs.
        let f1 = t.mem_fire(&[]);
        let f2 = t.mem_fire(&[]);
        assert_eq!(f1, 0);
        assert_eq!(f2, 0);
        let a = t.mem_complete(f1 + 100);
        let b = t.mem_complete(f2 + 100);
        assert_eq!(a.ready(), 100);
        assert_eq!(b.ready(), 100);
        assert_eq!(t.finish().latency(), 100);
    }

    #[test]
    fn concurrent_callbacks_share_pes() {
        let mut cfg = EngineConfig::default_5x5();
        cfg.alu_pes = 1;
        let mut f = Fabric::new(cfg);
        let r1 = {
            let mut t = f.begin(0);
            t.alu(&[]);
            t.finish()
        };
        let r2 = {
            let mut t = f.begin(0);
            t.alu(&[]);
            t.finish()
        };
        // The single PE was taken at cycle 0 by the first callback.
        assert_eq!(r1.completion, 1);
        assert_eq!(r2.completion, 2);
    }

    #[test]
    fn snapshot_roundtrip_preserves_pe_occupancy() {
        use tako_sim::checkpoint::{decode, encode};
        let mut cfg = EngineConfig::default_5x5();
        cfg.alu_pes = 2;
        cfg.mem_pes = 2;
        let mut f = Fabric::new(cfg);
        {
            let mut t = f.begin(0);
            for _ in 0..5 {
                t.alu(&[]);
            }
            let fire = t.mem_fire(&[]);
            t.mem_complete(fire + 40);
            t.finish();
        }
        let snap = encode(&f);
        let mut g = Fabric::new(cfg);
        decode(&snap, &mut g).unwrap();
        // Restored fabric schedules the next callback identically: the
        // busy PEs are still busy.
        let rf = {
            let mut t = f.begin(0);
            t.alu(&[]);
            t.finish()
        };
        let rg = {
            let mut t = g.begin(0);
            t.alu(&[]);
            t.finish()
        };
        assert_eq!(rf, rg);
        assert_eq!(encode(&f), encode(&g));
    }

    #[test]
    fn trace_counts() {
        let mut f = fabric(EngineKind::Dataflow);
        let mut t = f.begin(0);
        assert_eq!(t.instrs_so_far(), 0);
        let v = t.alu(&[]);
        assert_eq!(t.instrs_so_far(), 1);
        let fire = t.mem_fire(&[v]);
        t.mem_complete(fire + 10);
        assert_eq!(t.instrs_so_far(), 2);
        assert_eq!(t.mem_ops_so_far(), 1);
        let r = t.finish();
        assert_eq!(r.instrs, 2);
        assert_eq!(r.mem_ops, 1);
        assert!(f.token_samples.count() > 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use tako_sim::config::{EngineConfig, EngineKind};
    use tako_sim::rng::Rng;

    /// A randomized op program: each step either fires an ALU op over a
    /// random subset of previous values or a memory op with a random
    /// latency. Completion times must respect every dependence edge and
    /// the callback's completion must dominate all of them.
    fn run_program(
        kind: EngineKind,
        pe_latency: u64,
        ops: &[(bool, u8, u64)],
    ) -> (Vec<(Val, Vec<usize>)>, TraceResult) {
        let mut cfg = match kind {
            EngineKind::Ideal => EngineConfig::ideal(),
            EngineKind::InOrderCore => EngineConfig::in_order_core(),
            EngineKind::Dataflow => EngineConfig::default_5x5(),
        };
        if kind == EngineKind::Dataflow {
            cfg.pe_latency = pe_latency;
        }
        let mut fabric = Fabric::new(cfg);
        let mut trace = fabric.begin(1000);
        let mut produced: Vec<(Val, Vec<usize>)> = Vec::new();
        for (i, &(is_mem, picks, mem_lat)) in ops.iter().enumerate() {
            // Choose up to 2 dependence edges among earlier values.
            let mut deps_idx = Vec::new();
            if i > 0 {
                deps_idx.push((picks as usize) % i);
                if i > 1 && picks % 3 == 0 {
                    deps_idx.push((picks as usize / 3) % i);
                }
            }
            let deps: Vec<Val> = deps_idx.iter().map(|&j| produced[j].0).collect();
            let v = if is_mem {
                let fire = trace.mem_fire(&deps);
                trace.mem_complete(fire + mem_lat % 200)
            } else {
                trace.alu(&deps)
            };
            produced.push((v, deps_idx));
        }
        (produced, trace.finish())
    }

    // Deterministic randomized tests (the in-tree Rng replaces proptest,
    // which the offline build cannot fetch).

    fn random_ops(rng: &mut Rng, max_len: u64, max_lat: u64) -> Vec<(bool, u8, u64)> {
        let n = 1 + rng.below(max_len) as usize;
        (0..n)
            .map(|_| (rng.chance(0.5), rng.next_u64() as u8, rng.below(max_lat)))
            .collect()
    }

    #[test]
    fn fire_times_respect_dependences() {
        let mut rng = Rng::new(0xF1BE);
        for trial in 0..96 {
            let kind = match trial % 3 {
                0 => EngineKind::Dataflow,
                1 => EngineKind::InOrderCore,
                _ => EngineKind::Ideal,
            };
            let pe_latency = 1 + rng.below(7);
            let ops = random_ops(&mut rng, 39, 200);
            let (produced, result) = run_program(kind, pe_latency, &ops);
            for (v, deps) in &produced {
                for &j in deps {
                    assert!(
                        v.ready() >= produced[j].0.ready(),
                        "value ready before its dependence"
                    );
                }
                assert!(v.ready() >= 1000, "before callback start");
                assert!(result.completion >= v.ready());
            }
            assert_eq!(result.instrs, ops.len() as u64);
            assert_eq!(result.mem_ops, ops.iter().filter(|o| o.0).count() as u64);
        }
    }

    #[test]
    fn in_order_is_never_faster_than_dataflow() {
        let mut rng = Rng::new(0x10DF);
        for _ in 0..64 {
            let ops = random_ops(&mut rng, 29, 100);
            let (_, df) = run_program(EngineKind::Dataflow, 1, &ops);
            let (_, io) = run_program(EngineKind::InOrderCore, 1, &ops);
            let (_, ideal) = run_program(EngineKind::Ideal, 1, &ops);
            assert!(io.completion >= df.completion);
            assert!(df.completion >= ideal.completion);
        }
    }
}
