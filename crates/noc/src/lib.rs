//! # tako-noc — mesh network-on-chip model
//!
//! Table 3's interconnect: tiles arranged in a 2-D mesh with 128-bit flits
//! and links, 2-cycle routers, and 1-cycle links, using dimension-ordered
//! (X-then-Y) routing. The model charges per-hop latency and counts
//! flit-hops for the energy model; it does not simulate per-flit
//! contention (the memory controllers are the bandwidth bottleneck in all
//! of the paper's workloads).
//!
//! Addresses map to LLC banks by line-address interleaving, matching the
//! banked, physically distributed LLC of the baseline CMP.
//!
//! # Example
//!
//! ```
//! use tako_noc::Mesh;
//! use tako_sim::config::NocConfig;
//!
//! let mesh = Mesh::new((4, 4), NocConfig::default());
//! assert_eq!(mesh.hops(0, 15), 6); // corner to corner on a 4x4 mesh
//! ```

use tako_sim::config::{NocConfig, LINE_BYTES};
use tako_sim::event::{TxnEvent, TxnSink};
use tako_sim::{Cycle, TileId};

/// Message payload classes, determining flit counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Payload {
    /// A request/acknowledgement carrying only an address (1 flit header).
    Control,
    /// A full cache-line transfer (header + data flits).
    Line,
}

/// The mesh interconnect.
#[derive(Debug, Clone)]
pub struct Mesh {
    dims: (usize, usize),
    cfg: NocConfig,
}

impl Mesh {
    /// A mesh of `dims.0 × dims.1` tiles.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(dims: (usize, usize), cfg: NocConfig) -> Self {
        assert!(dims.0 > 0 && dims.1 > 0, "mesh dimensions must be positive");
        Mesh { dims, cfg }
    }

    /// Number of tiles in the mesh.
    pub fn tiles(&self) -> usize {
        self.dims.0 * self.dims.1
    }

    /// (row, col) of a tile.
    fn coords(&self, t: TileId) -> (usize, usize) {
        (t / self.dims.1, t % self.dims.1)
    }

    /// Manhattan hop count between two tiles (dimension-ordered routing).
    pub fn hops(&self, from: TileId, to: TileId) -> u64 {
        let (r0, c0) = self.coords(from);
        let (r1, c1) = self.coords(to);
        (r0.abs_diff(r1) + c0.abs_diff(c1)) as u64
    }

    /// Flits needed to carry `payload`.
    pub fn flits(&self, payload: Payload) -> u64 {
        match payload {
            Payload::Control => 1,
            Payload::Line => 1 + LINE_BYTES.div_ceil(self.cfg.flit_bytes),
        }
    }

    /// Latency of sending `payload` from `from` to `to`, charging the
    /// flit-hops as a [`TxnEvent::NocHops`] on `sink` (the stats sink
    /// counts them for the energy model). Zero-hop (same tile) messages
    /// are free.
    pub fn transfer(
        &self,
        from: TileId,
        to: TileId,
        payload: Payload,
        sink: &mut impl TxnSink,
    ) -> Cycle {
        let hops = self.hops(from, to);
        if hops == 0 {
            return 0;
        }
        let flits = self.flits(payload);
        sink.emit(TxnEvent::NocHops { flits, hops });
        // Head-flit latency; body flits pipeline behind it one cycle each.
        hops * (self.cfg.router_latency + self.cfg.link_latency) + (flits - 1)
    }

    /// The LLC bank (tile) holding `line_addr`, by line interleaving.
    pub fn bank_of_line(&self, line_addr: u64) -> TileId {
        ((line_addr / LINE_BYTES) % self.tiles() as u64) as usize
    }

    /// Average hop distance from `from` to all tiles (useful for modeling
    /// traffic to the "average" bank).
    pub fn mean_hops_from(&self, from: TileId) -> f64 {
        let total: u64 = (0..self.tiles()).map(|t| self.hops(from, t)).sum();
        total as f64 / self.tiles() as f64
    }
}

impl tako_sim::checkpoint::Snapshot for Mesh {
    /// The mesh holds no mutable state; the snapshot records its geometry
    /// so a resume into a differently shaped system fails loudly instead
    /// of silently re-routing traffic.
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("mesh");
        w.put_usize(self.dims.0);
        w.put_usize(self.dims.1);
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::SnapError;
        r.section("mesh")?;
        let dims = (r.get_usize()?, r.get_usize()?);
        if dims != self.dims {
            return Err(SnapError::StateMismatch(format!(
                "mesh geometry: snapshot {}x{}, rebuilt {}x{}",
                dims.0, dims.1, self.dims.0, self.dims.1
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::stats::{Counter, Stats};

    fn mesh4() -> Mesh {
        Mesh::new((4, 4), NocConfig::default())
    }

    #[test]
    fn hop_counts() {
        let m = mesh4();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 1), 1);
        assert_eq!(m.hops(0, 4), 1);
        assert_eq!(m.hops(0, 5), 2);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(15, 0), 6);
    }

    #[test]
    fn flit_counts() {
        let m = mesh4();
        assert_eq!(m.flits(Payload::Control), 1);
        assert_eq!(m.flits(Payload::Line), 5); // 1 + 64/16
    }

    #[test]
    fn transfer_latency_and_energy() {
        let m = mesh4();
        let mut s = Stats::new();
        // Same tile: free.
        assert_eq!(m.transfer(3, 3, Payload::Line, &mut s), 0);
        assert_eq!(s.get(Counter::NocFlitHops), 0);
        // One hop control: router + link.
        assert_eq!(m.transfer(0, 1, Payload::Control, &mut s), 3);
        assert_eq!(s.get(Counter::NocFlitHops), 1);
        // Corner-to-corner line: 6 hops * 3 cycles + 4 pipelined flits.
        assert_eq!(m.transfer(0, 15, Payload::Line, &mut s), 22);
        assert_eq!(s.get(Counter::NocFlitHops), 1 + 30);
    }

    #[test]
    fn bank_interleave() {
        let m = mesh4();
        assert_eq!(m.bank_of_line(0), 0);
        assert_eq!(m.bank_of_line(64), 1);
        assert_eq!(m.bank_of_line(64 * 16), 0);
    }

    #[test]
    fn mean_hops_reasonable() {
        let m = mesh4();
        let mean = m.mean_hops_from(0);
        assert!(mean > 2.9 && mean < 3.1); // corner tile on 4x4: 3.0
        let center = m.mean_hops_from(5);
        assert!(center < mean);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mesh_panics() {
        Mesh::new((0, 4), NocConfig::default());
    }
}
