//! Compressed sparse row graphs.

/// A directed graph in CSR form: `offsets[v]..offsets[v+1]` indexes the
/// out-edges of vertex `v` in `targets`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build a CSR from an edge list over `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(s, d) in edges {
            assert!(
                (s as usize) < n && (d as usize) < n,
                "endpoint out of range"
            );
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, d) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = d;
            *c += 1;
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.targets[s..e]
    }

    /// The offsets array (for laying the graph out in simulated memory).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The targets array (for laying the graph out in simulated memory).
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// All edges in vertex order (the baseline "vertex-ordered"
    /// traversal of Fig 16).
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&d| (v, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::rng::Rng;

    #[test]
    fn small_graph_roundtrip() {
        let edges = [(0u32, 1u32), (0, 2), (1, 2), (2, 0)];
        let g = Csr::from_edges(3, &edges);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0]);
        let back: Vec<_> = g.edges().collect();
        assert_eq!(back, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn isolated_vertices() {
        let g = Csr::from_edges(5, &[(4, 0)]);
        assert_eq!(g.out_degree(2), 0);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        Csr::from_edges(2, &[(0, 5)]);
    }

    // Deterministic randomized test (the in-tree Rng replaces proptest,
    // which the offline build cannot fetch).

    #[test]
    fn edge_multiset_preserved() {
        let mut rng = Rng::new(0xC5A);
        for _ in 0..64 {
            let n = 1 + rng.below(49) as usize;
            let m = rng.below(200) as usize;
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
                .collect();
            let g = Csr::from_edges(n, &edges);
            let mut a = edges.clone();
            let mut b: Vec<_> = g.edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert_eq!(
                g.offsets().last().copied().unwrap_or(0) as usize,
                g.num_edges()
            );
        }
    }
}
