//! Reference PageRank (host-side, untimed).
//!
//! Every simulated PageRank implementation — baseline, update batching,
//! PHI-on-täkō, BDFS/HATS — must produce *exactly* these ranks; the
//! integration tests assert it. One iteration follows the push-based
//! formulation the paper's studies use: each vertex pushes
//! `damping * rank[v] / out_degree(v)` to its out-neighbors.

use crate::csr::Csr;

/// The damping factor used throughout the workloads.
pub const DAMPING: f64 = 0.85;

/// One push-based PageRank iteration: returns the new rank vector.
pub fn iteration(g: &Csr, ranks: &[f64]) -> Vec<f64> {
    assert_eq!(ranks.len(), g.num_vertices(), "rank vector size mismatch");
    let n = g.num_vertices();
    let base = (1.0 - DAMPING) / n as f64;
    let mut next = vec![0.0f64; n];
    for v in 0..n as u32 {
        let deg = g.out_degree(v);
        if deg == 0 {
            continue;
        }
        let share = DAMPING * ranks[v as usize] / deg as f64;
        for &d in g.neighbors(v) {
            next[d as usize] += share;
        }
    }
    for x in &mut next {
        *x += base;
    }
    next
}

/// Run `iters` iterations from the uniform initial vector.
pub fn pagerank(g: &Csr, iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut ranks = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        ranks = iteration(g, &ranks);
    }
    ranks
}

/// Maximum absolute elementwise difference between two rank vectors.
pub fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::rng::Rng;

    #[test]
    fn ranks_sum_preserved_modulo_sinks() {
        let mut rng = Rng::new(7);
        let g = crate::gen::uniform(100, 2000, &mut rng);
        let ranks = pagerank(&g, 5);
        let sum: f64 = ranks.iter().sum();
        // With few sinks the sum stays near 1.
        assert!(sum > 0.5 && sum <= 1.0 + 1e-9, "sum {sum}");
    }

    #[test]
    fn star_graph_center_dominates() {
        // All spokes point at vertex 0.
        let edges: Vec<(u32, u32)> = (1..50u32).map(|v| (v, 0)).collect();
        let g = Csr::from_edges(50, &edges);
        let ranks = pagerank(&g, 3);
        let center = ranks[0];
        assert!(ranks[1..].iter().all(|&r| r < center));
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut rng = Rng::new(9);
        let g = crate::gen::power_law(200, 4000, 0.8, &mut rng);
        let a = pagerank(&g, 2);
        let b = pagerank(&g, 2);
        assert_eq!(max_diff(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn iteration_validates_input() {
        let g = Csr::from_edges(3, &[(0, 1)]);
        iteration(&g, &[0.5, 0.5]);
    }
}
