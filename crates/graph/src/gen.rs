//! Synthetic graph generators.
//!
//! The paper evaluates PHI on synthetic graphs (16 M vertices / 160 M
//! edges, Fig 13) and HATS on the uk-2002 web crawl (Fig 16). uk-2002 is
//! not redistributable here, so HATS runs on a planted-partition
//! [`community`] graph: strong community structure is exactly the
//! property BDFS exploits ("many graphs exhibit strong community
//! structure, so it is much better to process graphs one community at a
//! time", Sec 8.2), so the generator exercises the same code path and
//! produces the same locality contrast.

use tako_sim::rng::{Rng, Zipfian};

use crate::csr::Csr;

/// A uniform random directed graph: `m` edges with independently chosen
/// endpoints.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn uniform(n: usize, m: usize, rng: &mut Rng) -> Csr {
    assert!(n > 0, "graph needs vertices");
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
        .collect();
    Csr::from_edges(n, &edges)
}

/// A power-law graph: uniformly random sources, Zipfian-skewed
/// destinations (popular vertices receive many updates — the skew that
/// makes PHI's in-cache update buffering effective).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn power_law(n: usize, m: usize, theta: f64, rng: &mut Rng) -> Csr {
    assert!(n > 0, "graph needs vertices");
    let zipf = Zipfian::new(n as u64, theta);
    // Scatter popular ranks across the vertex id space so hot vertices
    // are not all in the same few cache lines.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            let src = rng.below(n as u64) as u32;
            let dst = perm[zipf.sample(rng) as usize];
            (src, dst)
        })
        .collect();
    Csr::from_edges(n, &edges)
}

/// A planted-partition community graph: `n` vertices split into
/// `communities` equal groups; each of the `m` edges stays inside its
/// source's community with probability `p_intra`, else goes to a uniform
/// random vertex.
///
/// # Panics
///
/// Panics if `n == 0`, `communities == 0`, or `p_intra` is not in
/// `[0, 1]`.
pub fn community(n: usize, m: usize, communities: usize, p_intra: f64, rng: &mut Rng) -> Csr {
    assert!(n > 0 && communities > 0, "need vertices and communities");
    assert!((0.0..=1.0).contains(&p_intra), "p_intra must be in [0,1]");
    let csize = n.div_ceil(communities);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            let src = rng.below(n as u64) as usize;
            let dst = if rng.chance(p_intra) {
                let c = src / csize;
                let lo = c * csize;
                let hi = ((c + 1) * csize).min(n);
                lo + rng.below((hi - lo) as u64) as usize
            } else {
                rng.below(n as u64) as usize
            };
            (src as u32, dst as u32)
        })
        .collect();
    Csr::from_edges(n, &edges)
}

/// A community graph whose community *membership* is scattered across
/// the vertex-id space by a random permutation. This matches real graphs
/// (crawl order does not group communities), and is what makes the HATS
/// contrast visible: a vertex-ordered traversal touches many communities
/// per window (large working set), while BDFS stays inside one
/// (cache-resident working set).
pub fn community_scattered(
    n: usize,
    m: usize,
    communities: usize,
    p_intra: f64,
    rng: &mut Rng,
) -> Csr {
    community_blocked(n, m, communities, p_intra, 1, rng)
}

/// Like [`community_scattered`], but the relabeling permutes *blocks* of
/// `block` consecutive vertices. Real graphs (web crawls) keep community
/// members in short contiguous runs while interleaving communities
/// across the id space; `block` controls that run length. A vertex-
/// ordered traversal then cycles through all communities (large working
/// set) while BDFS stays inside one (compact working set) — the Fig 16
/// contrast.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn community_blocked(
    n: usize,
    m: usize,
    communities: usize,
    p_intra: f64,
    block: usize,
    rng: &mut Rng,
) -> Csr {
    assert!(block > 0, "block must be positive");
    let grouped = community(n, m, communities, p_intra, rng);
    let nblocks = n.div_ceil(block);
    let mut bperm: Vec<u64> = (0..nblocks as u64).collect();
    rng.shuffle(&mut bperm);
    // Explicit injective relabeling: blocks laid out in permuted order.
    let mut perm = vec![0u32; n];
    let mut next_id = 0u32;
    for &b in &bperm {
        let lo = b as usize * block;
        let hi = (lo + block).min(n);
        for slot in perm.iter_mut().take(hi).skip(lo) {
            *slot = next_id;
            next_id += 1;
        }
    }
    let edges: Vec<(u32, u32)> = grouped
        .edges()
        .map(|(s, d)| (perm[s as usize], perm[d as usize]))
        .collect();
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let mut rng = Rng::new(1);
        let g = uniform(100, 1000, &mut rng);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 1000);
    }

    #[test]
    fn power_law_is_skewed() {
        let mut rng = Rng::new(2);
        let g = power_law(1000, 20_000, 0.9, &mut rng);
        // In-degree skew: the max in-degree should far exceed the mean.
        let mut indeg = vec![0u32; 1000];
        for (_, d) in g.edges() {
            indeg[d as usize] += 1;
        }
        let max = *indeg.iter().max().expect("nonempty");
        assert!(max > 200, "power-law graph not skewed (max={max})");
    }

    #[test]
    fn community_locality() {
        let mut rng = Rng::new(3);
        let n = 1000;
        let comms = 10;
        let g = community(n, 20_000, comms, 0.9, &mut rng);
        let csize = n / comms;
        let intra = g
            .edges()
            .filter(|(s, d)| (*s as usize) / csize == (*d as usize) / csize)
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.8, "intra-community fraction {frac}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = uniform(50, 500, &mut Rng::new(42));
        let b = uniform(50, 500, &mut Rng::new(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "p_intra")]
    fn community_rejects_bad_probability() {
        community(10, 10, 2, 1.5, &mut Rng::new(0));
    }
}
