//! Bounded depth-first traversal scheduling (HATS, Sec 8.2).
//!
//! HATS observed that processing edges in memory-layout order wastes
//! locality on community-structured graphs; a bounded depth-first search
//! visits communities together. [`BdfsOrder`] produces the edge order a
//! HATS engine would emit: a DFS over unvisited vertices whose stack
//! depth and per-vertex fanout are bounded, falling back to the next
//! unvisited vertex in id order when the stack empties.

use crate::csr::Csr;

/// Maximum stack depth of the bounded DFS (HATS uses a small stack).
pub const DEFAULT_DEPTH_BOUND: usize = 32;

/// An iterator over `(src, dst)` edges in bounded-DFS order. Every edge
/// of the graph is produced exactly once.
#[derive(Debug, Clone)]
pub struct BdfsOrder<'g> {
    graph: &'g Csr,
    /// Per-vertex cursor into its neighbor list.
    cursor: Vec<u32>,
    /// Whether a vertex has been pushed on the stack yet.
    discovered: Vec<bool>,
    /// DFS stack of vertices with possibly-unvisited edges.
    stack: Vec<u32>,
    depth_bound: usize,
    /// Next vertex id to seed the DFS from when the stack empties.
    seed: u32,
}

impl<'g> BdfsOrder<'g> {
    /// A bounded-DFS edge order over `graph` with the default bound.
    pub fn new(graph: &'g Csr) -> Self {
        Self::with_bound(graph, DEFAULT_DEPTH_BOUND)
    }

    /// A bounded-DFS edge order with an explicit stack bound.
    ///
    /// # Panics
    ///
    /// Panics if `depth_bound == 0`.
    pub fn with_bound(graph: &'g Csr, depth_bound: usize) -> Self {
        assert!(depth_bound > 0, "depth bound must be positive");
        BdfsOrder {
            cursor: vec![0; graph.num_vertices()],
            discovered: vec![false; graph.num_vertices()],
            stack: Vec::with_capacity(depth_bound),
            depth_bound,
            seed: 0,
            graph,
        }
    }
}

impl Iterator for BdfsOrder<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            // Refill the stack from the seed cursor if empty.
            while self.stack.is_empty() {
                let n = self.graph.num_vertices() as u32;
                while self.seed < n && self.discovered[self.seed as usize] {
                    self.seed += 1;
                }
                if self.seed >= n {
                    return None;
                }
                self.discovered[self.seed as usize] = true;
                self.stack.push(self.seed);
            }
            let &v = self.stack.last().expect("stack nonempty");
            let c = self.cursor[v as usize] as usize;
            if c >= self.graph.out_degree(v) {
                self.stack.pop();
                continue;
            }
            self.cursor[v as usize] += 1;
            let d = self.graph.neighbors(v)[c];
            // Descend into undiscovered targets while within the bound;
            // targets that do not fit stay undiscovered so a later edge
            // or the seed scan still schedules their out-edges.
            if !self.discovered[d as usize] && self.stack.len() < self.depth_bound {
                self.discovered[d as usize] = true;
                self.stack.push(d);
            }
            return Some((v, d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::rng::Rng;

    #[test]
    fn emits_every_edge_once() {
        let mut rng = Rng::new(11);
        let g = crate::gen::community(500, 5000, 10, 0.9, &mut rng);
        let mut bdfs: Vec<_> = BdfsOrder::new(&g).collect();
        let mut all: Vec<_> = g.edges().collect();
        bdfs.sort_unstable();
        all.sort_unstable();
        assert_eq!(bdfs, all);
    }

    #[test]
    fn respects_depth_bound() {
        // A long chain: with bound 4 the stack cannot grow past 4, but
        // all edges still come out.
        let edges: Vec<(u32, u32)> = (0..99u32).map(|v| (v, v + 1)).collect();
        let g = crate::csr::Csr::from_edges(100, &edges);
        let out: Vec<_> = BdfsOrder::with_bound(&g, 4).collect();
        assert_eq!(out.len(), 99);
    }

    #[test]
    fn improves_community_locality_over_vertex_order() {
        // On a community graph with shuffled vertex→community assignment
        // the vertex-ordered traversal jumps between communities;
        // BDFS mostly stays inside one. Measure destination locality:
        // mean absolute distance between consecutive destinations.
        let mut rng = Rng::new(13);
        let g = crate::gen::community(2000, 30_000, 20, 0.95, &mut rng);
        let jumpiness = |order: &[(u32, u32)]| -> f64 {
            order
                .windows(2)
                .map(|w| (i64::from(w[1].1) - i64::from(w[0].1)).unsigned_abs() as f64)
                .sum::<f64>()
                / (order.len() - 1) as f64
        };
        let vertex_order: Vec<_> = g.edges().collect();
        let bdfs_order: Vec<_> = BdfsOrder::new(&g).collect();
        let jv = jumpiness(&vertex_order);
        let jb = jumpiness(&bdfs_order);
        assert!(
            jb < jv,
            "BDFS should improve destination locality: bdfs={jb} vertex={jv}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        let g = crate::csr::Csr::from_edges(1, &[]);
        BdfsOrder::with_bound(&g, 0);
    }
}
