//! # tako-graph — graph substrate
//!
//! Graph data structures and algorithms for the PHI and HATS case studies
//! (Secs 8.1–8.2):
//!
//! * [`csr`] — compressed sparse row graphs; the in-memory layout the
//!   simulated workloads traverse.
//! * [`gen`] — synthetic generators: uniform random, power-law (skewed
//!   in-degree, like the paper's synthetic PageRank graphs), and a
//!   planted-partition **community** generator substituting for the
//!   uk-2002 web crawl (HATS exploits community structure; see
//!   DESIGN.md §5 for the substitution rationale).
//! * [`pagerank`] — a reference (host-side) PageRank used to validate
//!   that every simulated implementation computes identical ranks.
//! * [`bdfs`] — bounded depth-first traversal order (HATS's scheduler),
//!   usable both natively (reference) and inside the simulated Morph.

pub mod bdfs;
pub mod csr;
pub mod gen;
pub mod pagerank;

pub use bdfs::BdfsOrder;
pub use csr::Csr;
