//! The assembled memory hierarchy with täkō interposition (Sec 5).
//!
//! [`Hierarchy`] owns every timing-relevant component of the tiled CMP:
//! per-tile L1d/L2/prefetcher, the banked inclusive LLC with an in-tag
//! directory, the mesh, the DRAM controllers, the per-tile engines, the
//! Morph registry, and the backing store. All agents — cores, engines,
//! prefetchers — walk the same arrays, so locality, pollution, and
//! contention interact exactly as they would in hardware.
//!
//! The walk implements the paper's semantics:
//!
//! * Misses on a Morph's range invoke `onMiss` at the registered level's
//!   engine. Phantom lines are materialized by the callback alone (no
//!   memory access); real lines fetch in parallel with the callback.
//! * Evictions invoke `onEviction`/`onWriteback` *off the critical path*
//!   of the evicting access; phantom victims are then discarded, real
//!   dirty victims written back after the callback interposes.
//! * The triggering line is locked for the duration of the callback
//!   (enforced by the engine scheduler + the line's `ready_at`).
//! * Remote memory operations on a SHARED Morph execute directly at the
//!   owning LLC bank (PHI's push updates, Sec 8.1).
//! * Engine-issued fills insert at trrîp's distant priority, and every
//!   set keeps a callback-free line (deadlock avoidance).

use tako_cache::array::{CacheArray, InsertKind};
use tako_cache::mshr::MshrFile;
use tako_cache::prefetch::StridePrefetcher;
use tako_cpu::AccessKind;
use tako_mem::addr::{is_phantom, line_of, Addr, AddrRange};
use tako_mem::backing::PhysMem;
use tako_mem::dram::Dram;
use tako_noc::{Mesh, Payload};
use tako_sim::config::{SystemConfig, LINE_BYTES};
use tako_sim::energy::EnergyModel;
use tako_sim::fault::{FaultInjector, FaultKind};
use tako_sim::stats::{Counter, Stats};
use tako_sim::{Cycle, TileId};

use crate::ctx::EngineCtx;
use crate::engine::Engine;
use crate::morph::{CallbackKind, MorphId, MorphLevel, MorphRegistry};
use crate::watchdog::{DiagnosticSnapshot, MshrSnapshot, Watchdog};

/// A user-space interrupt raised by a callback (Sec 4.3 / Sec 8.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupt {
    /// Tile whose thread is interrupted (the Morph's registering tile).
    pub tile: TileId,
    /// Cycle the interrupt was raised.
    pub cycle: Cycle,
    /// The cache line whose event triggered it.
    pub line: Addr,
}

/// Per-tile private components.
#[derive(Debug)]
pub struct Tile {
    /// L1 data cache.
    pub l1d: CacheArray,
    /// Private L2.
    pub l2: CacheArray,
    /// L2 stride prefetcher.
    pub prefetcher: StridePrefetcher,
}

/// The full simulated memory system.
pub struct Hierarchy {
    /// System parameters.
    pub cfg: SystemConfig,
    /// Event counters and histograms.
    pub stats: Stats,
    /// Functional backing store (real *and* phantom data).
    pub mem: PhysMem,
    /// Off-chip memory timing.
    pub dram: Dram,
    /// Mesh interconnect.
    pub mesh: Mesh,
    /// Per-tile private caches.
    pub tiles: Vec<Tile>,
    /// LLC banks (one per tile), inclusive, with in-tag directory.
    pub llc: Vec<CacheArray>,
    llc_next_free: Vec<Cycle>,
    /// Registered Morphs (the TLB bits + OS table).
    pub registry: MorphRegistry,
    /// Per-tile engines; `None` while checked out to run a callback.
    pub engines: Vec<Option<Engine>>,
    /// Interrupts raised by callbacks, awaiting delivery.
    pub interrupts: Vec<Interrupt>,
    /// Callbacks whose Morph was busy when they triggered (a callback's
    /// own memory traffic evicted another line of the same Morph). The
    /// evicted line sits in the writeback buffer until the engine frees
    /// up (Sec 5.2); we run them as soon as the running callback ends.
    pending_callbacks: Vec<(TileId, MorphId, CallbackKind, Addr, Cycle)>,
    callback_depth: usize,
    /// Per-bank LLC MSHR files: bound outstanding fills and enforce the
    /// Sec 5.2 callback reservation.
    pub mshrs: Vec<MshrFile>,
    /// Deterministic fault injector (inert unless `cfg.faults` is set).
    faults: FaultInjector,
    /// Runtime invariant watchdog and forward-progress detector.
    pub watchdog: Watchdog,
}

impl Hierarchy {
    /// Build an idle system from `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let tiles = (0..cfg.tiles)
            .map(|_| Tile {
                l1d: CacheArray::new(cfg.l1d),
                l2: CacheArray::new(cfg.l2),
                prefetcher: StridePrefetcher::new(cfg.prefetch),
            })
            .collect();
        // LLC banks are selected by the low line-number bits; each
        // bank's set index must skip them.
        let bank_bits = (cfg.tiles as u64).trailing_zeros();
        let llc = (0..cfg.tiles)
            .map(|_| CacheArray::with_index_shift(cfg.llc_bank, bank_bits))
            .collect();
        let engines = (0..cfg.tiles)
            .map(|_| Some(Engine::new(cfg.engine)))
            .collect();
        let mshrs = (0..cfg.tiles)
            .map(|_| MshrFile::new(cfg.llc_bank.mshrs.max(2) as usize))
            .collect();
        Hierarchy {
            stats: Stats::new(),
            mem: PhysMem::new(),
            dram: Dram::new(cfg.mem),
            mesh: Mesh::new(cfg.mesh, cfg.noc),
            tiles,
            llc,
            llc_next_free: vec![0; cfg.tiles],
            registry: MorphRegistry::new(),
            engines,
            interrupts: Vec::new(),
            pending_callbacks: Vec::new(),
            callback_depth: 0,
            mshrs,
            faults: FaultInjector::new(cfg.faults.as_ref()),
            watchdog: Watchdog::new(cfg.watchdog),
            cfg,
        }
    }

    /// Zero a line in the backing store (the controller zeroes phantom
    /// lines before invoking onMiss, Sec 4.3).
    pub fn zero_line(&mut self, line: Addr) {
        self.mem.write_bytes(line, &[0u8; LINE_BYTES as usize]);
    }

    #[inline]
    fn bank_start(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.llc_next_free[bank]);
        self.llc_next_free[bank] = start + 1;
        start
    }

    fn sharer_tiles(mask: u64) -> impl Iterator<Item = usize> {
        (0..64).filter(move |i| mask & (1 << i) != 0)
    }

    // ------------------------------------------------------------------
    // Callback execution
    // ------------------------------------------------------------------

    /// Run `kind` for `morph_id` on `line` at `engine_tile`'s engine,
    /// arriving at `arrival`. Returns the callback's completion cycle.
    /// Once the outermost callback finishes, any events deferred while
    /// its Morph was busy are drained.
    pub fn run_callback(
        &mut self,
        engine_tile: TileId,
        morph_id: MorphId,
        kind: CallbackKind,
        line: Addr,
        arrival: Cycle,
    ) -> Cycle {
        let done = self.run_callback_inner(engine_tile, morph_id, kind, line, arrival);
        while self.callback_depth == 0 {
            let Some((t, m, k, l, a)) = self.pending_callbacks.pop() else {
                break;
            };
            self.run_callback_inner(t, m, k, l, a.max(done));
        }
        done
    }

    fn run_callback_inner(
        &mut self,
        engine_tile: TileId,
        morph_id: MorphId,
        kind: CallbackKind,
        line: Addr,
        arrival: Cycle,
    ) -> Cycle {
        let Some(entry) = self.registry.entry(morph_id) else {
            return arrival;
        };
        if entry.quarantined.is_some() {
            // Graceful degradation: the event falls through to baseline
            // hardware behavior and the skipped callback is counted.
            self.stats.bump(Counter::CbDegraded);
            return arrival;
        }
        let range = entry.range;
        let level = entry.level;
        let home_tile = entry.home_tile;
        // Injected fabric-capacity exhaustion: the engine cannot hold the
        // bitstream, so the Morph degrades before the callback starts.
        if self
            .faults
            .poll(arrival, FaultKind::FabricExhaustion)
            .is_some()
        {
            self.stats.bump(Counter::FaultInjected);
            self.quarantine_morph(morph_id, "fabric capacity exhausted");
            self.stats.bump(Counter::CbDegraded);
            return arrival;
        }
        let Some(mut morph) = self.registry.checkout(morph_id) else {
            // The Morph is mid-callback and this event was triggered by
            // that callback's own traffic: the line waits in the
            // writeback buffer and the event runs when the engine frees.
            self.pending_callbacks
                .push((engine_tile, morph_id, kind, line, arrival));
            return arrival;
        };
        self.callback_depth += 1;
        // The paper sequentializes HATS's onMiss calls (Sec 8.2);
        // eviction-side callbacks interleave freely.
        let serialize =
            morph.serialize_callbacks() && kind == CallbackKind::OnMiss;
        // Take the engine out so the callback context can borrow both the
        // engine's fabric/L1d and the rest of the hierarchy. If this
        // engine is itself mid-callback (nested event on the same tile),
        // run on a transient engine with the same resources.
        let taken = self.engines[engine_tile].take();
        let is_temp = taken.is_none();
        let mut engine =
            taken.unwrap_or_else(|| Engine::new(self.cfg.engine));
        let start =
            engine.admit(morph_id, line, arrival, serialize, &mut self.stats);
        self.stats.bump(match kind {
            CallbackKind::OnMiss => Counter::CbOnMiss,
            CallbackKind::OnEviction => Counter::CbOnEviction,
            CallbackKind::OnWriteback => Counter::CbOnWriteback,
        });
        // Injected callback misbehavior, applied through the same ctx the
        // Morph uses so the timing and suppression paths are the real ones.
        let overrun = self.faults.poll(start, FaultKind::CallbackOverrun);
        let illegal = self.faults.poll(start, FaultKind::IllegalAction);
        if overrun.is_some() {
            self.stats.bump(Counter::FaultInjected);
        }
        if illegal.is_some() {
            self.stats.bump(Counter::FaultInjected);
        }
        let (result, violation) = {
            let mut ctx = EngineCtx::new(
                self,
                &mut engine,
                start,
                engine_tile,
                home_tile,
                line,
                kind,
                range,
                level,
                morph_id,
            );
            match kind {
                CallbackKind::OnMiss => morph.on_miss(&mut ctx),
                CallbackKind::OnEviction => morph.on_eviction(&mut ctx),
                CallbackKind::OnWriteback => morph.on_writeback(&mut ctx),
            }
            if let Some(n) = overrun {
                ctx.alu_chain(&[], n);
            }
            if illegal.is_some() {
                ctx.inject_illegal();
            }
            let violation = ctx.take_violation();
            (ctx.finish(), violation)
        };
        self.stats.add(Counter::EngineInstr, result.instrs);
        self.stats.add(Counter::EngineMemOp, result.mem_ops);
        engine.complete(
            morph_id,
            line,
            start,
            result.completion,
            serialize,
            &mut self.stats,
        );
        if !is_temp {
            self.engines[engine_tile] = Some(engine);
        }
        self.registry.checkin(morph_id, morph);
        self.callback_depth -= 1;
        if result.instrs > self.cfg.engine.callback_instr_budget {
            self.quarantine_morph(
                morph_id,
                "callback instruction budget overrun",
            );
        }
        if let Some(v) = violation {
            self.quarantine_morph(
                morph_id,
                format!("illegal callback action: {v}"),
            );
        }
        result.completion
    }

    /// Quarantine a Morph (counted once per Morph). Its range keeps
    /// routing through the hierarchy but behaves like baseline hardware
    /// from here on.
    fn quarantine_morph(&mut self, id: MorphId, reason: impl Into<String>) {
        if self.registry.quarantine(id, reason) {
            self.stats.bump(Counter::MorphQuarantined);
        }
    }

    // ------------------------------------------------------------------
    // Shared level (LLC + memory)
    // ------------------------------------------------------------------

    /// Fetch `line` through the LLC for requester `tile`. Returns
    /// `(completion, exclusive)`: the cycle the line arrives at the
    /// requester's L2 edge, and whether no other tile holds a copy.
    /// `track_sharer` is false for engine fills (engine L1ds are
    /// cluster-coherent with their tile, not directory-tracked).
    fn fetch_shared(
        &mut self,
        tile: TileId,
        write: bool,
        line: Addr,
        t: Cycle,
        insert_kind: InsertKind,
        track_sharer: bool,
    ) -> (Cycle, Cycle, bool) {
        let bank = self.mesh.bank_of_line(line);
        let mut t =
            t + self.mesh.transfer(tile, bank, Payload::Control, &mut self.stats);
        t = self.bank_start(bank, t) + self.cfg.llc_bank.tag_latency;

        // lookup (not probe) so a hit is found and promoted in one walk;
        // the field updates below re-probe only on the paths that need
        // coherence work in between.
        let probe = self.llc[bank].lookup(line).map(|e| {
            e.prefetched = false;
            (e.ready_at, e.owner, e.sharers, e.morph)
        });
        let exclusive;
        match probe {
            Some((ready_at, owner, sharers, _morph)) => {
                self.stats.bump(Counter::LlcHit);
                t = t.max(ready_at);
                // Dirty data lives in another tile's L2: fetch & downgrade.
                if let Some(o) = owner {
                    let o = o as usize;
                    if o != tile {
                        t += self.mesh.transfer(
                            bank,
                            o,
                            Payload::Control,
                            &mut self.stats,
                        ) + self.cfg.l2.data_latency
                            + self.mesh.transfer(
                                o,
                                bank,
                                Payload::Line,
                                &mut self.stats,
                            );
                        if let Some(le) = self.tiles[o].l2.probe_mut(line) {
                            le.dirty = false;
                            le.exclusive = false;
                        }
                        if let Some(le) = self.tiles[o].l1d.probe_mut(line) {
                            le.dirty = false;
                        }
                        // A concurrent callback may have evicted the
                        // line between the probe and here; skip the
                        // directory update rather than assume presence.
                        if let Some(e) = self.llc[bank].probe_mut(line) {
                            e.dirty = true;
                            e.owner = None;
                        }
                    }
                }
                if write {
                    let others = sharers & !(1u64 << tile);
                    let mut inval_lat = 0;
                    for s in Self::sharer_tiles(others) {
                        self.stats.bump(Counter::CoherenceInval);
                        let mut d = false;
                        if let Some(ev) = self.tiles[s].l1d.invalidate(line) {
                            d |= ev.dirty;
                        }
                        if let Some(ev) = self.tiles[s].l2.invalidate(line) {
                            d |= ev.dirty;
                        }
                        let hop = self.mesh.transfer(
                            bank,
                            s,
                            Payload::Control,
                            &mut self.stats,
                        );
                        inval_lat = inval_lat.max(hop);
                        if d {
                            if let Some(e) = self.llc[bank].probe_mut(line) {
                                e.dirty = true;
                            }
                        }
                    }
                    t += inval_lat;
                    if let Some(e) = self.llc[bank].probe_mut(line) {
                        e.sharers = if track_sharer { 1 << tile } else { 0 };
                        e.owner = track_sharer.then_some(tile as u8);
                    }
                    exclusive = true;
                } else if let Some(e) = self.llc[bank].probe_mut(line) {
                    if track_sharer {
                        e.sharers |= 1 << tile;
                    }
                    exclusive = e.sharers & !(1u64 << tile) == 0
                        && e.owner.is_none();
                } else {
                    // Line evicted out from under the hit path: claim
                    // nothing (a later write pays for an upgrade).
                    exclusive = false;
                }
                t += self.cfg.llc_bank.data_latency;
            }
            None => {
                self.stats.bump(Counter::LlcMiss);
                let morph = self.registry.lookup(line);
                // ---- LLC MSHR admission (Sec 5.2) ----
                self.mshrs[bank].drain(t);
                let for_callback =
                    matches!(morph, Some((_, MorphLevel::Shared)));
                if let Some(extra) =
                    self.faults.poll(t, FaultKind::MshrPressure)
                {
                    // Injected pressure spike: phantom fills occupy
                    // entries for a while, forcing the stall path below.
                    self.stats.bump(Counter::FaultInjected);
                    for k in 0..extra {
                        self.mshrs[bank].try_alloc(
                            u64::MAX - k * LINE_BYTES,
                            t + 100 + k,
                            false,
                        );
                    }
                }
                // The stall path engages only in fault campaigns: the
                // recursive timing model retires accesses in order, so a
                // full file in a normal run is a tracking artifact and
                // stalling on it would perturb the calibrated baseline.
                if !self.faults.is_inert() {
                    while !self.mshrs[bank].can_alloc(for_callback) {
                        self.stats.bump(Counter::MshrStall);
                        t = self.mshrs[bank]
                            .earliest_completion()
                            .map_or(t + 1, |c| c.max(t + 1));
                        self.mshrs[bank].drain(t);
                    }
                }
                let (mut ready, is_morph) = match morph {
                    Some((id, MorphLevel::Shared)) => {
                        if is_phantom(line) {
                            self.zero_line(line);
                            let cb = self.run_callback(
                                bank,
                                id,
                                CallbackKind::OnMiss,
                                line,
                                t,
                            );
                            (cb, true)
                        } else {
                            // onMiss runs in parallel with the fetch.
                            let mem =
                                self.dram.read_line(line, t, &mut self.stats);
                            let cb = self.run_callback(
                                bank,
                                id,
                                CallbackKind::OnMiss,
                                line,
                                t,
                            );
                            (mem.max(cb), true)
                        }
                    }
                    _ => {
                        if is_phantom(line) {
                            // A shared phantom line with no Morph (e.g.
                            // after unregistration): materialize zeroes.
                            (t, false)
                        } else {
                            (self.dram.read_line(line, t, &mut self.stats), false)
                        }
                    }
                };
                // Injected lost/late memory response. Prefetch fills are
                // skipped: a delayed prefetch that is evicted unused
                // would never surface to a demand access, and the
                // campaign asserts every injected stall is detected.
                if insert_kind != InsertKind::Prefetch {
                    if let Some(delay) =
                        self.faults.poll(t, FaultKind::DelayedDram)
                    {
                        self.stats.bump(Counter::FaultInjected);
                        ready += delay;
                    }
                }
                self.mshrs[bank].try_alloc(line, ready, for_callback);
                if let Some(ev) =
                    self.llc[bank].insert(line, false, is_morph, insert_kind, ready)
                {
                    self.handle_llc_evict(bank, ev, t);
                }
                // Genuinely fallible: handle_llc_evict can run callbacks
                // whose own traffic evicts the just-inserted line.
                if track_sharer {
                    if let Some(e) = self.llc[bank].probe_mut(line) {
                        e.sharers = 1 << tile;
                        e.owner = write.then_some(tile as u8);
                    }
                }
                exclusive = true;
                t = ready + self.cfg.llc_bank.data_latency;
            }
        }
        let resp =
            self.mesh.transfer(bank, tile, Payload::Line, &mut self.stats);
        (t + resp, t, exclusive)
    }

    /// Handle an LLC bank eviction: inclusive invalidation of private
    /// copies, SHARED-Morph callbacks, and the writeback (Table 1).
    fn handle_llc_evict(
        &mut self,
        bank: usize,
        ev: tako_cache::EvictedLine,
        t: Cycle,
    ) {
        self.stats.bump(Counter::LlcEviction);
        let mut dirty = ev.dirty;
        for s in Self::sharer_tiles(ev.sharers) {
            self.stats.bump(Counter::CoherenceInval);
            if let Some(l1ev) = self.tiles[s].l1d.invalidate(ev.line) {
                dirty |= l1ev.dirty;
            }
            if let Some(l2ev) = self.tiles[s].l2.invalidate(ev.line) {
                dirty |= l2ev.dirty;
            }
        }
        if ev.morph {
            if let Some((id, _)) = self.registry.lookup(ev.line) {
                let kind = if dirty {
                    CallbackKind::OnWriteback
                } else {
                    CallbackKind::OnEviction
                };
                // Off the critical path: the evicting access proceeds.
                self.run_callback(bank, id, kind, ev.line, t);
            }
            if is_phantom(ev.line) {
                return; // phantom lines are discarded after the callback
            }
        }
        if dirty {
            self.stats.bump(Counter::LlcWriteback);
            self.dram.write_line(ev.line, t, &mut self.stats);
        }
    }

    /// Write a dirty line from a tile's L2 (or engine L1d) back to the
    /// LLC; phantom (SHARED-Morph) lines re-insert, real lines mark dirty.
    fn writeback_to_llc(&mut self, tile: TileId, line: Addr, t: Cycle) {
        let bank = self.mesh.bank_of_line(line);
        let t = t
            + self.mesh.transfer(tile, bank, Payload::Line, &mut self.stats);
        let t = self.bank_start(bank, t);
        if let Some(e) = self.llc[bank].probe_mut(line) {
            e.dirty = true;
            e.sharers &= !(1u64 << tile);
            if e.owner == Some(tile as u8) {
                e.owner = None;
            }
            return;
        }
        // Not present (engine L1ds and streaming stores are not covered
        // by inclusion): install the dirty line in the LLC so it can
        // coalesce further writes; phantom SHARED-Morph lines keep their
        // Morph bit so the eventual eviction still triggers a callback.
        let is_morph = is_phantom(line)
            && matches!(
                self.registry.lookup(line),
                Some((_, MorphLevel::Shared))
            );
        if let Some(ev) =
            self.llc[bank].insert(line, true, is_morph, InsertKind::Engine, t)
        {
            self.handle_llc_evict(bank, ev, t);
        }
    }

    // ------------------------------------------------------------------
    // Private level (L1 + L2)
    // ------------------------------------------------------------------

    /// Handle an L2 eviction: merge the L1 copy, run PRIVATE-Morph
    /// callbacks, then write back or discard.
    fn handle_l2_evict(
        &mut self,
        tile: TileId,
        ev: tako_cache::EvictedLine,
        t: Cycle,
    ) {
        self.stats.bump(Counter::L2Eviction);
        let mut dirty = ev.dirty;
        if let Some(l1ev) = self.tiles[tile].l1d.invalidate(ev.line) {
            dirty |= l1ev.dirty;
        }
        if ev.morph {
            if let Some((id, MorphLevel::Private)) =
                self.registry.lookup(ev.line)
            {
                let kind = if dirty {
                    CallbackKind::OnWriteback
                } else {
                    CallbackKind::OnEviction
                };
                self.run_callback(tile, id, kind, ev.line, t);
            }
            if is_phantom(ev.line) {
                return; // discarded, never written downward
            }
        }
        if is_phantom(ev.line) {
            // SHARED-Morph phantom line cached privately.
            if dirty {
                self.writeback_to_llc(tile, ev.line, t);
            }
            return;
        }
        if dirty {
            self.stats.bump(Counter::L2Writeback);
            self.writeback_to_llc(tile, ev.line, t);
        } else {
            // Silent clean eviction: lazily clear the directory bit.
            let bank = self.mesh.bank_of_line(ev.line);
            if let Some(e) = self.llc[bank].probe_mut(ev.line) {
                e.sharers &= !(1u64 << tile);
            }
        }
    }

    /// Fill `line` into `tile`'s L1d, merging any displaced dirty line
    /// into the (inclusive) L2.
    fn fill_l1(&mut self, tile: TileId, line: Addr, dirty: bool, ready: Cycle) {
        if self.tiles[tile].l1d.probe(line).is_some() {
            if dirty {
                if let Some(e) = self.tiles[tile].l1d.probe_mut(line) {
                    e.dirty = true;
                }
            }
            return;
        }
        if let Some(ev) =
            self.tiles[tile].l1d.insert(line, dirty, false, InsertKind::Demand, ready)
        {
            if ev.dirty {
                if let Some(e) = self.tiles[tile].l2.probe_mut(ev.line) {
                    e.dirty = true;
                } else if !is_phantom(ev.line) {
                    self.writeback_to_llc(tile, ev.line, ready);
                }
            }
        }
    }

    /// Obtain write permission for a line held shared (upgrade): a
    /// control round-trip to the home bank that invalidates other copies.
    fn upgrade(&mut self, tile: TileId, line: Addr, t: Cycle) -> Cycle {
        let bank = self.mesh.bank_of_line(line);
        let mut t = t
            + self.mesh.transfer(tile, bank, Payload::Control, &mut self.stats);
        t = self.bank_start(bank, t);
        let sharers = self.llc[bank]
            .probe(line)
            .map(|e| e.sharers & !(1u64 << tile))
            .unwrap_or(0);
        let mut inval = 0;
        for s in Self::sharer_tiles(sharers) {
            self.stats.bump(Counter::CoherenceInval);
            self.tiles[s].l1d.invalidate(line);
            self.tiles[s].l2.invalidate(line);
            inval = inval.max(self.mesh.transfer(
                bank,
                s,
                Payload::Control,
                &mut self.stats,
            ));
        }
        if let Some(e) = self.llc[bank].probe_mut(line) {
            e.sharers = 1 << tile;
            e.owner = Some(tile as u8);
        }
        t + inval
            + self.mesh.transfer(bank, tile, Payload::Control, &mut self.stats)
    }

    /// Issue one prefetch into `tile`'s L2 (may trigger onMiss for a
    /// PRIVATE Morph — the HATS decoupling mechanism).
    fn issue_prefetch(&mut self, tile: TileId, line: Addr, t: Cycle) {
        if self.tiles[tile].l2.probe(line).is_some()
            || self.tiles[tile].l1d.probe(line).is_some()
        {
            return;
        }
        self.stats.bump(Counter::PrefetchIssued);
        let morph = self.registry.lookup(line);
        let (ready, is_morph) = match morph {
            Some((id, MorphLevel::Private)) => {
                if is_phantom(line) {
                    self.zero_line(line);
                    let cb = self.run_callback(
                        tile,
                        id,
                        CallbackKind::OnMiss,
                        line,
                        t,
                    );
                    (cb, true)
                } else {
                    let (fetch, _, _) = self.fetch_shared(
                        tile,
                        false,
                        line,
                        t,
                        InsertKind::Prefetch,
                        true,
                    );
                    let cb = self.run_callback(
                        tile,
                        id,
                        CallbackKind::OnMiss,
                        line,
                        t,
                    );
                    (fetch.max(cb), true)
                }
            }
            _ => {
                let (fetch, _, _) = self.fetch_shared(
                    tile,
                    false,
                    line,
                    t,
                    InsertKind::Prefetch,
                    true,
                );
                (fetch, false)
            }
        };
        if let Some(ev) = self.tiles[tile].l2.insert(
            line,
            false,
            is_morph,
            InsertKind::Prefetch,
            ready,
        ) {
            self.handle_l2_evict(tile, ev, t);
        }
    }

    // ------------------------------------------------------------------
    // Core-side access
    // ------------------------------------------------------------------

    /// A remote memory operation on a SHARED Morph executes directly at
    /// the owning LLC bank (no private-cache allocation).
    fn rmo_shared(
        &mut self,
        tile: TileId,
        id: MorphId,
        line: Addr,
        t: Cycle,
    ) -> Cycle {
        let bank = self.mesh.bank_of_line(line);
        let mut t = t
            + self.mesh.transfer(tile, bank, Payload::Control, &mut self.stats);
        t = self.bank_start(bank, t) + self.cfg.llc_bank.tag_latency;
        // Single-pass hit: promote, read the old sharer set, and apply
        // the RMO's unconditional state updates in one tag walk.
        let present = self.llc[bank].lookup(line).map(|e| {
            let sharers = e.sharers;
            e.prefetched = false;
            e.dirty = true;
            e.sharers = 0;
            (e.ready_at, sharers)
        });
        match present {
            Some((ready_at, sharers)) => {
                self.stats.bump(Counter::LlcHit);
                t = t.max(ready_at);
                for s in Self::sharer_tiles(sharers) {
                    self.stats.bump(Counter::CoherenceInval);
                    self.tiles[s].l1d.invalidate(line);
                    self.tiles[s].l2.invalidate(line);
                }
                t += self.cfg.llc_bank.data_latency;
            }
            None => {
                self.stats.bump(Counter::LlcMiss);
                let ready = if is_phantom(line) {
                    self.zero_line(line);
                    self.run_callback(bank, id, CallbackKind::OnMiss, line, t)
                } else {
                    let mem = self.dram.read_line(line, t, &mut self.stats);
                    let cb = self
                        .run_callback(bank, id, CallbackKind::OnMiss, line, t);
                    mem.max(cb)
                };
                if let Some(ev) = self.llc[bank].insert(
                    line,
                    true,
                    true,
                    InsertKind::Demand,
                    ready,
                ) {
                    self.handle_llc_evict(bank, ev, t);
                }
                t = ready + self.cfg.llc_bank.data_latency;
            }
        }
        t
    }

    /// Fetch for a non-temporal load: served from the LLC if present
    /// (without promotion or sharer tracking), else straight from DRAM
    /// **without installing in the LLC** — streaming data must not churn
    /// the inclusive LLC, whose evictions would invalidate the L1/L2
    /// copy before the scan finishes the line.
    pub(crate) fn fetch_stream(
        &mut self,
        tile: TileId,
        line: Addr,
        t: Cycle,
    ) -> Cycle {
        let bank = self.mesh.bank_of_line(line);
        let mut t = t
            + self.mesh.transfer(tile, bank, Payload::Control, &mut self.stats);
        t = self.bank_start(bank, t) + self.cfg.llc_bank.tag_latency;
        if let Some(e) = self.llc[bank].probe(line) {
            self.stats.bump(Counter::LlcHit);
            t = t.max(e.ready_at) + self.cfg.llc_bank.data_latency;
        } else {
            self.stats.bump(Counter::LlcMiss);
            t = if is_phantom(line) {
                t
            } else {
                self.dram.read_line(line, t, &mut self.stats)
            };
        }
        t + self.mesh.transfer(bank, tile, Payload::Line, &mut self.stats)
    }

    /// A core-side non-temporal store: write-combining in the L1d with no
    /// read-for-ownership fetch; displaced dirty lines flow down the
    /// hierarchy normally.
    fn core_write_stream(&mut self, tile: TileId, line: Addr, t: Cycle) -> Cycle {
        let l1_cfg = self.cfg.l1d;
        if let Some(e) = self.tiles[tile].l1d.probe_mut(line) {
            self.stats.bump(Counter::L1dHit);
            e.dirty = true;
            return t + l1_cfg.tag_latency + l1_cfg.data_latency;
        }
        self.stats.bump(Counter::L1dMiss);
        let done = t + l1_cfg.tag_latency + l1_cfg.data_latency;
        if let Some(ev) = self.tiles[tile].l1d.insert(
            line,
            true,
            false,
            InsertKind::Engine,
            done,
        ) {
            if ev.dirty {
                if let Some(e) = self.tiles[tile].l2.probe_mut(ev.line) {
                    e.dirty = true;
                } else if !is_phantom(ev.line) {
                    self.writeback_to_llc(tile, ev.line, done);
                }
            }
        }
        done
    }

    /// A core-side access: the full L1 → L2 → LLC → memory walk with
    /// Morph interposition, observed by the watchdog. Returns the
    /// completion cycle.
    pub fn core_access(
        &mut self,
        tile: TileId,
        kind: AccessKind,
        addr: Addr,
        t: Cycle,
    ) -> Cycle {
        let done = self.core_access_inner(tile, kind, addr, t);
        if self.watchdog.enabled() {
            if let Some(latency) = self.watchdog.observe_access(t, done) {
                self.stats.bump(Counter::WatchdogStallEvents);
                self.stats.stall_detection.record(latency);
                if self.watchdog.snapshot().is_none() {
                    let snap = self.diagnostic_snapshot(done, latency);
                    self.watchdog.attach_snapshot(snap);
                }
            }
            if self.watchdog.epoch_due(done) {
                self.watchdog_epoch(done);
            }
        }
        done
    }

    /// The epoch invariant sweep: trrîp's one-callback-free-line-per-set
    /// rule, MSHR accounting (no overflow, reservation intact), and
    /// progress-counter monotonicity.
    fn watchdog_epoch(&mut self, now: Cycle) {
        let instrs = self.stats.total_instrs();
        let dram = self.stats.dram_accesses();
        let accesses = self.stats.memory_accesses();
        // Energy is a positive-weighted tally of monotone counters, so
        // a regression means counter corruption (same params as
        // `TakoSystem::energy`).
        let energy_pj =
            EnergyModel::default_params().tally(&self.stats).total_pj() as u64;
        let before = self.watchdog.violation_count();
        let wd = &mut self.watchdog;
        wd.begin_epoch(now);
        for (i, tile) in self.tiles.iter().enumerate() {
            wd.check(tile.l2.morph_invariant_holds(), || {
                format!("tile {i} L2: set of all-Morph lines (trrîp rule)")
            });
        }
        for (b, bank) in self.llc.iter().enumerate() {
            wd.check(bank.morph_invariant_holds(), || {
                format!("LLC bank {b}: set of all-Morph lines (trrîp rule)")
            });
        }
        for (b, m) in self.mshrs.iter().enumerate() {
            wd.check(m.len() <= m.capacity(), || {
                format!(
                    "LLC bank {b} MSHRs overflowed: {}/{}",
                    m.len(),
                    m.capacity()
                )
            });
            wd.check(m.callback_entries() < m.capacity(), || {
                format!(
                    "LLC bank {b}: callbacks hold all {} MSHRs \
                     (Sec 5.2 reservation broken)",
                    m.capacity()
                )
            });
        }
        wd.check_progress(instrs, dram, accesses, energy_pj);
        let delta = self.watchdog.violation_count() - before;
        if delta > 0 {
            self.stats.add(Counter::InvariantViolation, delta);
        }
    }

    /// Structured machine-state dump for the first detected stall.
    fn diagnostic_snapshot(
        &self,
        cycle: Cycle,
        latency: Cycle,
    ) -> DiagnosticSnapshot {
        DiagnosticSnapshot {
            cycle,
            latency,
            bound: self.watchdog.stall_bound(),
            l2_occupancy: self.tiles.iter().map(|t| t.l2.occupancy()).collect(),
            llc_occupancy: self.llc.iter().map(|b| b.occupancy()).collect(),
            mshrs: self
                .mshrs
                .iter()
                .map(|m| MshrSnapshot {
                    len: m.len(),
                    for_callback: m.callback_entries(),
                    capacity: m.capacity(),
                })
                .collect(),
            pending_callbacks: self.pending_callbacks.len(),
            quarantined_morphs: self.registry.quarantined_morphs().count(),
        }
    }

    fn core_access_inner(
        &mut self,
        tile: TileId,
        kind: AccessKind,
        addr: Addr,
        t: Cycle,
    ) -> Cycle {
        let line = line_of(addr);
        let morph = self.registry.lookup(addr);
        if kind == AccessKind::Rmo {
            if let Some((id, MorphLevel::Shared)) = morph {
                return self.rmo_shared(tile, id, line, t);
            }
        }
        if kind == AccessKind::WriteStream {
            return self.core_write_stream(tile, line, t);
        }
        let stream = kind == AccessKind::ReadStream;
        let write = matches!(kind, AccessKind::Write | AccessKind::Rmo);
        let l1_cfg = self.cfg.l1d;
        let l2_cfg = self.cfg.l2;

        // ---- L1d ----
        // Single-pass hit: lookup promotes and returns the entry, so the
        // dirty update needs no second tag walk.
        if let Some(e) = self.tiles[tile].l1d.lookup(line) {
            self.stats.bump(Counter::L1dHit);
            let mut done =
                (t + l1_cfg.tag_latency + l1_cfg.data_latency).max(e.ready_at);
            e.prefetched = false;
            if write {
                e.dirty = true;
            }
            if write {
                let needs_upgrade = self.tiles[tile]
                    .l2
                    .probe(line)
                    .map(|le| !le.exclusive)
                    .unwrap_or(false)
                    && !is_phantom(line);
                if needs_upgrade {
                    done = self.upgrade(tile, line, done);
                    if let Some(le) = self.tiles[tile].l2.probe_mut(line) {
                        le.exclusive = true;
                        le.dirty = true;
                    }
                } else if let Some(le) = self.tiles[tile].l2.probe_mut(line) {
                    le.dirty = true;
                }
            }
            return done;
        }
        self.stats.bump(Counter::L1dMiss);
        let t1 = t + l1_cfg.tag_latency;

        // ---- L2 ----
        // Non-temporal hits do not promote (scans stay cold), so only the
        // demand path takes the promoting single-pass lookup.
        let l2_probe = if stream {
            self.tiles[tile]
                .l2
                .probe(line)
                .map(|e| (e.ready_at, e.exclusive, e.prefetched))
        } else {
            self.tiles[tile].l2.lookup(line).map(|e| {
                let prefetched = e.prefetched;
                e.prefetched = false;
                (e.ready_at, e.exclusive, prefetched)
            })
        };
        let done = match l2_probe {
            Some((ready_at, exclusive, prefetched)) => {
                self.stats.bump(Counter::L2Hit);
                if prefetched {
                    self.stats.bump(Counter::PrefetchUseful);
                }
                let mut done = (t1 + l2_cfg.tag_latency + l2_cfg.data_latency)
                    .max(ready_at);
                if write && !exclusive && !is_phantom(line) {
                    done = self.upgrade(tile, line, done);
                }
                if write {
                    if let Some(e) = self.tiles[tile].l2.probe_mut(line) {
                        e.dirty = true;
                        e.exclusive = true;
                    }
                }
                self.fill_l1(tile, line, write, done);
                done
            }
            None => {
                self.stats.bump(Counter::L2Miss);
                let t2 = t1 + l2_cfg.tag_latency;
                let (ready, is_morph, exclusive) = match morph {
                    Some((id, MorphLevel::Private)) => {
                        if is_phantom(line) {
                            self.zero_line(line);
                            let cb = self.run_callback(
                                tile,
                                id,
                                CallbackKind::OnMiss,
                                line,
                                t2,
                            );
                            (cb, true, true)
                        } else {
                            let (fetch, _, excl) = self.fetch_shared(
                                tile,
                                write,
                                line,
                                t2,
                                InsertKind::Demand,
                                true,
                            );
                            let cb = self.run_callback(
                                tile,
                                id,
                                CallbackKind::OnMiss,
                                line,
                                t2,
                            );
                            (fetch.max(cb), true, excl)
                        }
                    }
                    _ if stream => {
                        let fetch = self.fetch_stream(tile, line, t2);
                        (fetch, false, false)
                    }
                    _ => {
                        let (fetch, _, excl) = self.fetch_shared(
                            tile,
                            write,
                            line,
                            t2,
                            InsertKind::Demand,
                            true,
                        );
                        (fetch, false, excl)
                    }
                };
                let done = ready + l2_cfg.data_latency;
                if stream {
                    // Non-temporal fills bypass the L2 entirely: the line
                    // lives briefly in the L1 and is dropped silently.
                    self.fill_l1(tile, line, write, done);
                    return done;
                }
                if let Some(ev) = self.tiles[tile].l2.insert(
                    line,
                    write,
                    is_morph,
                    InsertKind::Demand,
                    done,
                ) {
                    self.handle_l2_evict(tile, ev, t2);
                }
                if let Some(e) = self.tiles[tile].l2.probe_mut(line) {
                    e.exclusive = exclusive || write || is_phantom(line);
                }
                self.fill_l1(tile, line, write, done);
                done
            }
        };

        // ---- prefetcher (trains on L2 accesses; NT scans bypass it) ----
        if !stream {
            let pf = self.tiles[tile].prefetcher.observe(addr);
            for &p in pf.as_slice() {
                self.issue_prefetch(tile, p, t1);
            }
        }
        done
    }

    // ------------------------------------------------------------------
    // Engine-side access
    // ------------------------------------------------------------------

    /// A memory access issued by a callback running on `tile`'s engine.
    /// PRIVATE-level callbacks reach memory through the tile's L2 (the
    /// engine is clustered with it); SHARED-level callbacks go straight
    /// to the LLC. Fills insert at trrîp's distant priority.
    ///
    /// The engine's own L1d is probed/filled by the caller (`EngineCtx`),
    /// which holds it checked out; this method models everything below.
    pub fn engine_fill(
        &mut self,
        tile: TileId,
        write: bool,
        line: Addr,
        t: Cycle,
        level: MorphLevel,
    ) -> Cycle {
        match level {
            MorphLevel::Private => {
                let l2_cfg = self.cfg.l2;
                // Single-pass hit: promote and update state in one walk.
                let hit = self.tiles[tile].l2.lookup(line).map(|e| {
                    e.prefetched = false;
                    if write {
                        e.dirty = true;
                    }
                    e.ready_at
                });
                match hit {
                    Some(ready_at) => {
                        self.stats.bump(Counter::L2Hit);
                        (t + l2_cfg.tag_latency + l2_cfg.data_latency)
                            .max(ready_at)
                    }
                    None => {
                        self.stats.bump(Counter::L2Miss);
                        let t2 = t + l2_cfg.tag_latency;
                        // trrîp: engine *streaming* traffic (writes)
                        // inserts at distant priority; engine loads with
                        // reuse insert like demands so the L2 backstops
                        // the small engine L1d.
                        let kind = if write && self.cfg.engine.trrip {
                            InsertKind::Engine
                        } else {
                            InsertKind::Demand
                        };
                        let (fetch, _, _) = self.fetch_shared(
                            tile, write, line, t2, kind, true,
                        );
                        let done = fetch + l2_cfg.data_latency;
                        if let Some(ev) = self.tiles[tile].l2.insert(
                            line,
                            write,
                            false,
                            kind,
                            done,
                        ) {
                            self.handle_l2_evict(tile, ev, t2);
                        }
                        done
                    }
                }
            }
            MorphLevel::Shared => {
                let kind = if self.cfg.engine.trrip {
                    InsertKind::Engine
                } else {
                    InsertKind::Demand
                };
                let (_, at_bank, _) = self.fetch_shared(
                    tile, write, line, t, kind, false,
                );
                if write {
                    let bank = self.mesh.bank_of_line(line);
                    if let Some(e) = self.llc[bank].probe_mut(line) {
                        e.dirty = true;
                    }
                }
                at_bank
            }
        }
    }

    /// CLDEMOTE: drop the L1 copy (merging dirty state into the L2) and
    /// move the L2 entry to the preferred-victim position. No callback —
    /// the line is not evicted, just deprioritized.
    pub fn demote_line(&mut self, tile: TileId, line: Addr) {
        let line = line_of(line);
        let mut dirty = false;
        if let Some(ev) = self.tiles[tile].l1d.invalidate(line) {
            dirty |= ev.dirty;
        }
        if let Some(e) = self.tiles[tile].l2.probe_mut(line) {
            e.dirty |= dirty;
            e.rrpv = 3;
            e.lru_stamp = 0;
        }
    }

    /// Writeback of a dirty line displaced from an engine L1d.
    pub fn engine_writeback(&mut self, tile: TileId, line: Addr, t: Cycle) {
        if let Some(e) = self.tiles[tile].l2.probe_mut(line) {
            e.dirty = true;
            return;
        }
        if !is_phantom(line) {
            self.writeback_to_llc(tile, line, t);
        }
    }

    // ------------------------------------------------------------------
    // Flush
    // ------------------------------------------------------------------

    /// täkō's flushData (Sec 4.4): walk the tag arrays at the appropriate
    /// level, evict every line in `range` (triggering callbacks), and
    /// return the cycle all callbacks complete.
    pub fn flush_range(
        &mut self,
        tile: TileId,
        range: AddrRange,
        now: Cycle,
    ) -> Cycle {
        let level = self
            .registry
            .lookup(range.base)
            .map(|(_, l)| l);
        let mut completion = now;
        match level {
            Some(MorphLevel::Shared) => {
                for bank in 0..self.llc.len() {
                    let lines = self.llc[bank].lines_in_range(range);
                    let mut t = now;
                    for line in lines {
                        t += 1; // tag-walk increment
                        self.stats.bump(Counter::FlushedLines);
                        if let Some(ev) = self.llc[bank].invalidate(line) {
                            let c = self.flush_llc_victim(bank, ev, t);
                            completion = completion.max(c);
                        }
                    }
                    completion = completion.max(t);
                }
            }
            _ => {
                let lines = self.tiles[tile].l2.lines_in_range(range);
                let mut t = now;
                for line in lines {
                    t += 1;
                    self.stats.bump(Counter::FlushedLines);
                    let mut dirty = false;
                    if let Some(l1ev) = self.tiles[tile].l1d.invalidate(line) {
                        dirty |= l1ev.dirty;
                    }
                    if let Some(ev) = self.tiles[tile].l2.invalidate(line) {
                        dirty |= ev.dirty;
                        if ev.morph {
                            if let Some((id, MorphLevel::Private)) =
                                self.registry.lookup(line)
                            {
                                let kind = if dirty {
                                    CallbackKind::OnWriteback
                                } else {
                                    CallbackKind::OnEviction
                                };
                                let c = self
                                    .run_callback(tile, id, kind, line, t);
                                completion = completion.max(c);
                            }
                            if is_phantom(line) {
                                continue;
                            }
                        }
                        if dirty && !is_phantom(line) {
                            self.stats.bump(Counter::L2Writeback);
                            self.writeback_to_llc(tile, line, t);
                        }
                    }
                }
                completion = completion.max(t);
            }
        }
        completion
    }

    /// Invalidate every cached copy of `range` at every level of every
    /// tile (used when (un)registering a Morph: Sec 4.1's range flush).
    /// Dirty real lines write back; no callbacks run (the range has no
    /// Morph at this moment).
    pub fn invalidate_range_everywhere(&mut self, range: AddrRange, now: Cycle) {
        for tile in 0..self.tiles.len() {
            for line in self.tiles[tile].l1d.lines_in_range(range) {
                self.tiles[tile].l1d.invalidate(line);
            }
            for line in self.tiles[tile].l2.lines_in_range(range) {
                if let Some(ev) = self.tiles[tile].l2.invalidate(line) {
                    if ev.dirty && !is_phantom(line) {
                        self.writeback_to_llc(tile, line, now);
                    }
                }
            }
        }
        for bank in 0..self.llc.len() {
            for line in self.llc[bank].lines_in_range(range) {
                if let Some(ev) = self.llc[bank].invalidate(line) {
                    if ev.dirty && !is_phantom(line) {
                        self.dram.write_line(line, now, &mut self.stats);
                    }
                    let _ = ev;
                }
            }
        }
        // Engine L1ds may also hold copies.
        for e in self.engines.iter_mut().flatten() {
            for line in e.l1d.lines_in_range(range) {
                e.l1d.invalidate(line);
            }
        }
    }

    fn flush_llc_victim(
        &mut self,
        bank: usize,
        ev: tako_cache::EvictedLine,
        t: Cycle,
    ) -> Cycle {
        let mut dirty = ev.dirty;
        for s in Self::sharer_tiles(ev.sharers) {
            if let Some(l1ev) = self.tiles[s].l1d.invalidate(ev.line) {
                dirty |= l1ev.dirty;
            }
            if let Some(l2ev) = self.tiles[s].l2.invalidate(ev.line) {
                dirty |= l2ev.dirty;
            }
        }
        let mut completion = t;
        if ev.morph {
            if let Some((id, MorphLevel::Shared)) =
                self.registry.lookup(ev.line)
            {
                let kind = if dirty {
                    CallbackKind::OnWriteback
                } else {
                    CallbackKind::OnEviction
                };
                completion = self.run_callback(bank, id, kind, ev.line, t);
            }
            if is_phantom(ev.line) {
                return completion;
            }
        }
        if dirty {
            self.stats.bump(Counter::LlcWriteback);
            self.dram.write_line(ev.line, t, &mut self.stats);
        }
        completion
    }
}
