//! Deterministic per-tile simulation lanes.
//!
//! [`run_multicore_lanes`] is a drop-in sibling of
//! [`tako_cpu::run_multicore`] that executes independent tiles' work in
//! parallel *inside one simulation* while producing byte-identical
//! results for any lane count — including the fully serial runner.
//!
//! ## How it stays exact
//!
//! The serial runner's only ordering rule is "always step the program
//! whose core clock is furthest behind" (ties broken by lowest tile
//! index), and a step is atomic. So any step whose start clock is
//! strictly below every other unfinished tile's clock *would run next
//! under some serial schedule* — and if the step is **pure** (every
//! access an own-tile L1d hit, every write to a line the tile holds
//! exclusive), it commutes with every other tile's pure steps: it
//! touches only tile-private state (L1d/L2 replacement bits, the core
//! clock, the program) plus functional data no other tile may observe
//! under the coherence protocol.
//!
//! Each round therefore:
//!
//! 1. serially computes, per unfinished tile, a clock bound `B_i =
//!    min over other unfinished tiles' clocks`;
//! 2. runs all tiles as parallel **lanes** on the fork-join pool
//!    ([`tako_sim::parallel::parallel_map`]): each lane speculatively
//!    executes steps while `start < B_i`, journalling per-access
//!    accounting and buffering functional writes. A step that turns out
//!    impure is rolled back exactly (program snapshot, core/predictor
//!    clone, cache-slot undo log, journal truncation) and the lane
//!    parks;
//! 3. at the **epoch barrier**, merges all committed steps in canonical
//!    serial order — sorted by `(start clock, tile)` — and replays
//!    their accounting against the real bus and watchdog, applies their
//!    buffered writes, then executes *one* ordinary serial step for the
//!    laggard tile (which consumes whatever impurity parked it).
//!
//! Because the replay order equals the serial runner's execution order
//! and pure steps change nothing any other tile can see between
//! barriers, the final machine state — statistics, watchdog counter
//! history, cache contents, functional memory — is byte-identical to
//! the serial run. The lane count changes only which OS threads execute
//! the windows, never their content or merge order.
//!
//! Lanes require an un-tapped accounting bus (no trace or observer
//! attached) and an inert fault plan; otherwise the runner silently
//! falls back to the serial path, which is always correct.

use tako_cache::array::SlotUndo;
use tako_cpu::{
    run_multicore, AccessKind, BranchPredictor, CoreEnv, CoreTiming, LaneProgram, MemSystem,
    StepResult, ThreadProgram,
};
use tako_mem::addr::{is_phantom, line_of, Addr, AddrRange};
use tako_mem::backing::PhysMem;
use tako_sim::config::SystemConfig;
use tako_sim::event::SinkTap;
use tako_sim::parallel::parallel_map;
use tako_sim::stats::{Counter, Stats};
use tako_sim::{Cycle, TileId};

use crate::hierarchy::Tile;
use crate::system::TakoSystem;

/// One journalled effect of a pure lane step, replayed at the barrier
/// in canonical order so the bus and watchdog observe the exact counter
/// history the serial runner would have produced.
#[derive(Debug, Clone, Copy)]
enum LaneOp {
    /// A pure L1d-hit walk (the hot walk's accounting): emit
    /// `Hit(L1d)` and run the watchdog observe/epoch tail.
    Hit { line: Addr, t: Cycle, done: Cycle },
    /// A core-side counter bump.
    Acct { c: Counter, n: u64 },
    /// A load-latency histogram sample.
    LoadLat { lat: Cycle },
    /// A buffered functional write (bit pattern + byte width).
    Write { addr: Addr, bits: u64, width: u8 },
    /// A statistics phase switch.
    Phase { phase: usize },
}

/// Undo record for one cache-array mutation inside a speculative step.
#[derive(Debug, Clone, Copy)]
enum UndoRec {
    L1 { undo: SlotUndo, stamp: u64 },
    L2 { undo: SlotUndo, stamp: u64 },
}

/// A committed speculative step: its serial-order key plus the extent
/// of its journal entries in the lane's op stream.
#[derive(Debug, Clone, Copy)]
struct StepRec {
    start: Cycle,
    ops_to: usize,
}

/// What one lane window produced.
struct LaneOutcome {
    /// Index into the runner's program array.
    idx: usize,
    tile: TileId,
    steps: Vec<StepRec>,
    ops: Vec<LaneOp>,
    /// Program returned `Done` inside the window.
    finished: bool,
    finish_cycle: Cycle,
}

/// The per-lane [`MemSystem`]: applies pure L1d hits directly to the
/// tile's own caches, journals their accounting, buffers functional
/// writes, and *poisons* the current step the moment it does anything a
/// pure step may not — after which every operation is an inert no-op
/// (loads return zero) until the runner rolls the step back.
struct LaneView<'a> {
    tile: TileId,
    tile_state: &'a mut Tile,
    cfg: &'a SystemConfig,
    mem: &'a PhysMem,
    /// Buffered writes for store→load forwarding within the window.
    writes: Vec<(Addr, u64, u8)>,
    ops: Vec<LaneOp>,
    undo: Vec<UndoRec>,
    poisoned: bool,
    /// Zeroed backing handed out if a program insists on raw
    /// `data()` access mid-step (which poisons the step).
    scratch_mem: PhysMem,
    /// Throwaway registry for direct `stats()` access (also poisons).
    scratch_stats: Stats,
}

impl<'a> LaneView<'a> {
    fn new(
        tile: TileId,
        tile_state: &'a mut Tile,
        cfg: &'a SystemConfig,
        mem: &'a PhysMem,
    ) -> Self {
        LaneView {
            tile,
            tile_state,
            cfg,
            mem,
            writes: Vec::new(),
            ops: Vec::new(),
            undo: Vec::new(),
            poisoned: false,
            scratch_mem: PhysMem::new(),
            scratch_stats: Stats::new(),
        }
    }

    /// Attempt `kind` on `addr` as a pure own-tile L1d hit, mirroring
    /// the hot walk exactly (promotion, prefetched-clear, dirty bits)
    /// but recording undo state first. `None` means the access is
    /// impure; *nothing* has been mutated in that case.
    fn pure_access(&mut self, kind: AccessKind, addr: Addr, t: Cycle) -> Option<Cycle> {
        if !matches!(
            kind,
            AccessKind::Read | AccessKind::ReadStream | AccessKind::Write
        ) {
            return None;
        }
        let line = line_of(addr);
        let write = kind == AccessKind::Write;
        let ts = &mut *self.tile_state;
        if write {
            // Stricter than the hot walk: a pure write needs the L2 to
            // hold the line exclusive (no upgrade, and no other tile
            // can observe the line), and phantom lines stay serial.
            let exclusive = ts.l2.probe(line).map(|le| le.exclusive()).unwrap_or(false);
            if !exclusive || is_phantom(line) {
                return None;
            }
        }
        // Capture undo state before touching anything: `lookup` bumps
        // the touch stamp even on a miss, so probe first.
        let Some(l1_undo) = ts.l1d.slot_undo(line) else {
            return None; // L1d miss: impure, untouched.
        };
        self.undo.push(UndoRec::L1 {
            undo: l1_undo,
            stamp: ts.l1d.touch_stamp(),
        });
        let ready = {
            let mut e = ts.l1d.lookup(line)?;
            e.set_prefetched(false);
            if write {
                e.set_dirty(true);
            }
            e.ready_at()
        };
        let l1_cfg = self.cfg.l1d;
        let done = (t + l1_cfg.tag_latency + l1_cfg.data_latency).max(ready);
        if write {
            if let Some(l2_undo) = ts.l2.slot_undo(line) {
                self.undo.push(UndoRec::L2 {
                    undo: l2_undo,
                    stamp: ts.l2.touch_stamp(),
                });
                if let Some(mut le) = ts.l2.probe_mut(line) {
                    le.set_dirty(true);
                }
            }
        }
        Some(done)
    }

    /// Latest buffered write exactly matching `(addr, width)`, if any.
    /// An overlapping but non-identical buffered write poisons the step
    /// (mixed-width forwarding is not worth modelling speculatively).
    fn forwarded(&mut self, addr: Addr, width: u8) -> Option<Option<u64>> {
        for &(a, bits, w) in self.writes.iter().rev() {
            if a == addr && w == width {
                return Some(Some(bits));
            }
            let overlap = a < addr + u64::from(width) && addr < a + u64::from(w);
            if overlap {
                self.poisoned = true;
                return Some(None);
            }
        }
        None
    }

    fn read_bits(&mut self, addr: Addr, width: u8) -> u64 {
        if self.poisoned {
            return 0;
        }
        match self.forwarded(addr, width) {
            Some(Some(bits)) => bits,
            Some(None) => 0, // poisoned by a mixed-width overlap
            None => match width {
                4 => u64::from(self.mem.read_u32(addr)),
                _ => self.mem.read_u64(addr),
            },
        }
    }

    fn buffer_write(&mut self, addr: Addr, bits: u64, width: u8) {
        if self.poisoned {
            return;
        }
        // A buffered functional write must target a line this tile
        // holds exclusive: that is what makes it invisible to every
        // other lane until the barrier applies it.
        let line = line_of(addr);
        let exclusive = self
            .tile_state
            .l2
            .probe(line)
            .map(|le| le.exclusive())
            .unwrap_or(false);
        if !exclusive || is_phantom(line) {
            self.poisoned = true;
            return;
        }
        self.writes.push((addr, bits, width));
        self.ops.push(LaneOp::Write { addr, bits, width });
    }

    /// Roll the current step back to the marks captured at its start.
    fn rollback(&mut self, undo_mark: usize, ops_mark: usize, writes_mark: usize) {
        while self.undo.len() > undo_mark {
            let Some(rec) = self.undo.pop() else { break };
            match rec {
                UndoRec::L1 { undo, stamp } => {
                    self.tile_state.l1d.restore_slot(undo);
                    self.tile_state.l1d.set_touch_stamp(stamp);
                }
                UndoRec::L2 { undo, stamp } => {
                    self.tile_state.l2.restore_slot(undo);
                    self.tile_state.l2.set_touch_stamp(stamp);
                }
            }
        }
        self.ops.truncate(ops_mark);
        self.writes.truncate(writes_mark);
        self.poisoned = false;
    }
}

impl MemSystem for LaneView<'_> {
    fn data(&mut self) -> &mut PhysMem {
        // Raw functional access cannot be given a consistent view from
        // inside a lane; poison the step and hand out zeroed scratch.
        self.poisoned = true;
        &mut self.scratch_mem
    }

    fn timed_access(&mut self, tile: TileId, kind: AccessKind, addr: Addr, now: Cycle) -> Cycle {
        debug_assert_eq!(tile, self.tile);
        if self.poisoned {
            return now;
        }
        match self.pure_access(kind, addr, now) {
            Some(done) => {
                self.ops.push(LaneOp::Hit {
                    line: line_of(addr),
                    t: now,
                    done,
                });
                done
            }
            None => {
                self.poisoned = true;
                now
            }
        }
    }

    fn timed_flush(&mut self, _tile: TileId, _range: AddrRange, now: Cycle) -> Cycle {
        self.poisoned = true;
        now
    }

    fn stats(&mut self) -> &mut Stats {
        self.poisoned = true;
        &mut self.scratch_stats
    }

    fn timed_demote(&mut self, _tile: TileId, _addr: Addr, now: Cycle) -> Cycle {
        self.poisoned = true;
        now
    }

    fn take_interrupt(&mut self, _tile: TileId) -> Option<Cycle> {
        // Whether an interrupt is pending is global state; deciding
        // "none" speculatively would be wrong whenever one arrives
        // before this step's serial position. Always park.
        self.poisoned = true;
        None
    }

    fn func_read_u64(&mut self, addr: Addr) -> u64 {
        self.read_bits(addr, 8)
    }
    fn func_read_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.read_bits(addr, 8))
    }
    fn func_read_u32(&mut self, addr: Addr) -> u32 {
        self.read_bits(addr, 4) as u32
    }
    fn func_write_u64(&mut self, addr: Addr, val: u64) {
        self.buffer_write(addr, val, 8);
    }
    fn func_write_f64(&mut self, addr: Addr, val: f64) {
        self.buffer_write(addr, val.to_bits(), 8);
    }
    fn func_write_u32(&mut self, addr: Addr, val: u32) {
        self.buffer_write(addr, u64::from(val), 4);
    }
    fn func_write_bytes(&mut self, _addr: Addr, _bytes: &[u8]) {
        self.poisoned = true;
    }
    fn func_add_f64(&mut self, _addr: Addr, _val: f64) {
        self.poisoned = true;
    }
    fn func_fetch_add_u64(&mut self, _addr: Addr, _val: u64) -> u64 {
        self.poisoned = true;
        0
    }

    fn acct(&mut self, c: Counter, n: u64) {
        if !self.poisoned {
            self.ops.push(LaneOp::Acct { c, n });
        }
    }
    fn acct_load_latency(&mut self, lat: Cycle) {
        if !self.poisoned {
            self.ops.push(LaneOp::LoadLat { lat });
        }
    }
    fn set_phase(&mut self, phase: usize) {
        if !self.poisoned {
            self.ops.push(LaneOp::Phase { phase });
        }
    }
}

/// Everything one lane needs, moved into the fork-join pool.
struct LaneItem<'a> {
    idx: usize,
    tile: TileId,
    prog: &'a mut dyn LaneProgram,
    core: &'a mut CoreTiming,
    pred: &'a mut BranchPredictor,
    tile_state: &'a mut Tile,
    bound: Cycle,
}

/// Run one lane window: speculate pure steps while the start clock is
/// strictly below `bound`, rolling back and parking at the first
/// impurity.
fn run_lane(item: LaneItem<'_>, cfg: &SystemConfig, mem: &PhysMem) -> LaneOutcome {
    let LaneItem {
        idx,
        tile,
        prog,
        core,
        pred,
        tile_state,
        bound,
    } = item;
    let mut view = LaneView::new(tile, tile_state, cfg, mem);
    let mut steps = Vec::new();
    let mut finished = false;
    let mut finish_cycle = 0;
    // Reused snapshots: `clone_from` keeps their allocations across
    // steps.
    let mut saved_core = core.clone();
    let mut saved_pred = pred.clone();
    loop {
        let start = core.now();
        if start >= bound {
            break;
        }
        let saved_prog = prog.lane_save();
        saved_core.clone_from(core);
        saved_pred.clone_from(pred);
        let undo_mark = view.undo.len();
        let ops_mark = view.ops.len();
        let writes_mark = view.writes.len();
        let res = {
            let mut env = CoreEnv::new(tile, core, pred, &mut view);
            prog.step(&mut env)
        };
        if view.poisoned {
            prog.lane_restore(saved_prog);
            core.clone_from(&saved_core);
            pred.clone_from(&saved_pred);
            view.rollback(undo_mark, ops_mark, writes_mark);
            break;
        }
        steps.push(StepRec {
            start,
            ops_to: view.ops.len(),
        });
        if res == StepResult::Done {
            finished = true;
            finish_cycle = core.drain();
            break;
        }
    }
    LaneOutcome {
        idx,
        tile,
        steps,
        ops: view.ops,
        finished,
        finish_cycle,
    }
}

/// Serial-compatibility shim: drives a [`LaneProgram`] slice through the
/// plain serial runner.
struct SerialShim<'a>(&'a mut dyn LaneProgram);
impl ThreadProgram for SerialShim<'_> {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        self.0.step(env)
    }
}

fn run_serial(
    programs: &mut [(TileId, &mut dyn LaneProgram)],
    cores: &mut [CoreTiming],
    predictors: &mut [BranchPredictor],
    sys: &mut TakoSystem,
    max_steps: u64,
) -> Cycle {
    let mut shims: Vec<(TileId, SerialShim<'_>)> = programs
        .iter_mut()
        .map(|(t, p)| (*t, SerialShim(&mut **p)))
        .collect();
    let mut serial: Vec<(TileId, &mut dyn ThreadProgram)> = shims
        .iter_mut()
        .map(|(t, s)| (*t, s as &mut dyn ThreadProgram))
        .collect();
    run_multicore(&mut serial, cores, predictors, sys, max_steps)
}

/// Drive thread programs to completion with deterministic per-tile
/// parallel lanes. Semantics — final machine state, statistics,
/// watchdog history, return value — are byte-identical to
/// [`tako_cpu::run_multicore`] for every `lanes` value.
///
/// `lanes` is the fork-join pool width for the speculative windows;
/// `lanes <= 1` still exercises the lane algorithm, just on one thread.
/// Falls back to the serial runner whenever lane preconditions do not
/// hold: a tap (trace/observer) on the bus, an armed fault plan, or
/// programs sharing a tile.
///
/// # Panics
///
/// As [`tako_cpu::run_multicore`]: empty `programs`, mismatched slice
/// lengths, or exceeding `max_steps` committed steps.
pub fn run_multicore_lanes(
    programs: &mut [(TileId, &mut dyn LaneProgram)],
    cores: &mut [CoreTiming],
    predictors: &mut [BranchPredictor],
    sys: &mut TakoSystem,
    max_steps: u64,
    lanes: usize,
) -> Cycle {
    assert!(!programs.is_empty(), "need at least one program");
    assert_eq!(programs.len(), cores.len());
    assert_eq!(programs.len(), predictors.len());
    let n = programs.len();
    // Preconditions for exact replay: no tap (the hot-walk accounting
    // the journal mirrors is only taken with an un-tapped bus), inert
    // faults (fault arming is walk-order-sensitive), and one program
    // per tile (lanes own their tile island exclusively).
    let hier = sys.hierarchy();
    let tap_free = matches!(hier.bus.tap, SinkTap::None);
    let faults_ok = hier.bus.faults_inert();
    let tiles_ok = {
        let mut seen = vec![false; hier.cfg.tiles];
        programs
            .iter()
            .all(|&(t, _)| t < seen.len() && !std::mem::replace(&mut seen[t], true))
    };
    if !(tap_free && faults_ok && tiles_ok) {
        return run_serial(programs, cores, predictors, sys, max_steps);
    }
    // Results are identical for any pool width (the barrier merge is
    // canonical), so never oversubscribe the host: extra threads only
    // add scheduler churn, never coverage.
    let lanes = lanes.min(tako_sim::parallel::default_jobs());

    let mut done = vec![false; n];
    let mut finish = vec![0 as Cycle; n];
    let mut remaining = n;
    let mut steps_used = 0u64;
    let step_budget = |steps_used: &mut u64, k: u64| {
        *steps_used += k;
        assert!(
            *steps_used <= max_steps,
            "program exceeded {max_steps} steps; runaway loop?"
        );
    };
    while remaining > 0 {
        if remaining == 1 {
            // One program left: no other clock to order against, so the
            // rest of the run is the plain serial tail.
            let Some(i) = (0..n).find(|&i| !done[i]) else {
                break;
            };
            let (tile, ref mut prog) = programs[i];
            loop {
                step_budget(&mut steps_used, 1);
                let mut env = CoreEnv::new(tile, &mut cores[i], &mut predictors[i], sys);
                if prog.step(&mut env) == StepResult::Done {
                    finish[i] = cores[i].drain();
                    break;
                }
            }
            break;
        }

        // --- Round prologue (serial): per-tile speculation bounds. ---
        // Two smallest clocks among unfinished programs give every tile
        // its bound in O(n).
        let mut min1 = Cycle::MAX;
        let mut min2 = Cycle::MAX;
        for i in 0..n {
            if done[i] {
                continue;
            }
            let now = cores[i].now();
            if now < min1 {
                min2 = min1;
                min1 = now;
            } else if now < min2 {
                min2 = now;
            }
        }

        // --- Parallel lane windows. ---
        let outcomes = {
            let (tiles_mut, mem, cfg) = sys.lane_split();
            let mut tile_slots: Vec<Option<&mut Tile>> = tiles_mut.iter_mut().map(Some).collect();
            let mut core_slots: Vec<Option<&mut CoreTiming>> = cores.iter_mut().map(Some).collect();
            let mut pred_slots: Vec<Option<&mut BranchPredictor>> =
                predictors.iter_mut().map(Some).collect();
            let mut items: Vec<LaneItem<'_>> = Vec::with_capacity(remaining);
            for (i, (tile, prog)) in programs.iter_mut().enumerate() {
                if done[i] {
                    continue;
                }
                // Slots are unique per program/tile (`tiles_ok` above);
                // if one is somehow already taken, sit this program out
                // of the round — the serial laggard step still advances
                // it — rather than panicking mid-campaign.
                let (Some(core), Some(pred), Some(tile_state)) = (
                    core_slots[i].take(),
                    pred_slots[i].take(),
                    tile_slots[*tile].take(),
                ) else {
                    continue;
                };
                let now = core.now();
                let bound = if now == min1 { min2 } else { min1 };
                items.push(LaneItem {
                    idx: i,
                    tile: *tile,
                    prog: &mut **prog,
                    core,
                    pred,
                    tile_state,
                    bound,
                });
            }
            parallel_map(lanes, items, |_, item| run_lane(item, cfg, mem))
        };

        // --- Epoch barrier: canonical replay. ---
        // Merge committed steps in serial order: (start clock, tile).
        let mut order: Vec<(Cycle, TileId, usize, usize)> = Vec::new();
        for (o_idx, o) in outcomes.iter().enumerate() {
            for (s_idx, s) in o.steps.iter().enumerate() {
                order.push((s.start, o.tile, o_idx, s_idx));
            }
        }
        order.sort_unstable_by_key(|&(start, tile, _, _)| (start, tile));
        step_budget(&mut steps_used, order.len() as u64);
        let hier = sys.hierarchy_mut();
        for &(_, _, o_idx, s_idx) in &order {
            let o = &outcomes[o_idx];
            let from = if s_idx == 0 {
                0
            } else {
                o.steps[s_idx - 1].ops_to
            };
            for op in &o.ops[from..o.steps[s_idx].ops_to] {
                match *op {
                    LaneOp::Hit { line, t, done } => hier.lane_replay_hit(line, t, done),
                    LaneOp::Acct { c, n } => hier.bus.stats.add(c, n),
                    LaneOp::LoadLat { lat } => hier.bus.stats.load_latency.record(lat),
                    LaneOp::Write { addr, bits, width } => match width {
                        4 => hier.mem.write_u32(addr, bits as u32),
                        _ => hier.mem.write_u64(addr, bits),
                    },
                    LaneOp::Phase { phase } => hier.bus.stats.set_phase(phase),
                }
            }
        }
        for o in &outcomes {
            if o.finished {
                done[o.idx] = true;
                finish[o.idx] = o.finish_cycle;
                remaining -= 1;
            }
        }
        if remaining == 0 {
            break;
        }

        // --- One serial step for the laggard (guarantees progress and
        // consumes whatever impurity parked its lane). ---
        let Some(i) = (0..n).filter(|&i| !done[i]).min_by_key(|&i| cores[i].now()) else {
            break;
        };
        step_budget(&mut steps_used, 1);
        let (tile, ref mut prog) = programs[i];
        let mut env = CoreEnv::new(tile, &mut cores[i], &mut predictors[i], sys);
        if prog.step(&mut env) == StepResult::Done {
            done[i] = true;
            finish[i] = cores[i].drain();
            remaining -= 1;
        }
    }
    finish.into_iter().max().unwrap_or(0)
}
