//! Hardware-overhead accounting (Table 2).
//!
//! täkō's state overhead per LLC bank: one Morph bit per LLC tag, the
//! engine's L1d / TLB / rTLB, the callback buffer, and the fabric's token
//! store and instruction memory. The paper reports 27.1 KB over a 512 KB
//! bank — 5.3%.

use tako_sim::config::{SystemConfig, LINE_BYTES};

/// Bytes of täkō state per LLC bank, itemized (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// 1 bit per LLC-bank line for Morph tracking.
    pub llc_tag_bits_bytes: u64,
    /// Engine L1 data cache.
    pub engine_l1d_bytes: u64,
    /// Engine TLB (conventional, shared sizing with the rTLB).
    pub engine_tlb_bytes: u64,
    /// Engine reverse TLB.
    pub engine_rtlb_bytes: u64,
    /// Callback buffer (one line-sized entry per slot).
    pub callback_buffer_bytes: u64,
    /// Fabric token store (tokens/PE × 64 B operand width).
    pub token_store_bytes: u64,
    /// Fabric instruction memory (≈4 B per static instruction).
    pub instruction_memory_bytes: u64,
    /// Capacity of one LLC bank, for the percentage.
    pub llc_bank_bytes: u64,
}

impl OverheadReport {
    /// Compute the report for `cfg`.
    pub fn for_config(cfg: &SystemConfig) -> Self {
        let lines = cfg.llc_bank.lines();
        let e = &cfg.engine;
        // TLB entries sized like the rTLB: 8 B per entry.
        let tlb_bytes = u64::from(e.rtlb_entries) * 8;
        OverheadReport {
            llc_tag_bits_bytes: lines.div_ceil(8),
            engine_l1d_bytes: e.l1d.size_bytes,
            engine_tlb_bytes: tlb_bytes,
            engine_rtlb_bytes: tlb_bytes,
            callback_buffer_bytes: u64::from(e.callback_buffer) * LINE_BYTES,
            token_store_bytes: u64::from(e.total_pes()) * u64::from(e.tokens_per_pe) * LINE_BYTES,
            instruction_memory_bytes: u64::from(e.instr_capacity()) * 4,
            llc_bank_bytes: cfg.llc_bank.size_bytes,
        }
    }

    /// Total täkō state per bank.
    pub fn total_bytes(&self) -> u64 {
        self.llc_tag_bits_bytes
            + self.engine_l1d_bytes
            + self.engine_tlb_bytes
            + self.engine_rtlb_bytes
            + self.callback_buffer_bytes
            + self.token_store_bytes
            + self.instruction_memory_bytes
    }

    /// Overhead as a percentage of the LLC bank.
    pub fn percent_of_bank(&self) -> f64 {
        100.0 * self.total_bytes() as f64 / self.llc_bank_bytes as f64
    }

    /// Render the Table 2 rows.
    pub fn table(&self) -> String {
        let kib = |b: u64| b as f64 / 1024.0;
        format!(
            "L3 tags               {:>6.1} KB\n\
             Engine L1d            {:>6.1} KB\n\
             Engine TLB + rTLB     {:>6.1} KB\n\
             Callback buffer       {:>6.1} KB\n\
             Token store           {:>6.1} KB\n\
             Instruction memory    {:>6.1} KB\n\
             Total per L3 bank     {:>6.1} KB / {:.0} KB = {:.1}%\n",
            kib(self.llc_tag_bits_bytes),
            kib(self.engine_l1d_bytes),
            kib(self.engine_tlb_bytes + self.engine_rtlb_bytes),
            kib(self.callback_buffer_bytes),
            kib(self.token_store_bytes),
            kib(self.instruction_memory_bytes),
            kib(self.total_bytes()),
            kib(self.llc_bank_bytes),
            self.percent_of_bank(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table2() {
        let r = OverheadReport::for_config(&SystemConfig::default_16core());
        // Table 2: 1 KB tag bits, 8 KB L1d, 2+2 KB TLBs, 0.5 KB callback
        // buffer, 12 KB token store, 1.6 KB instruction memory.
        assert_eq!(r.llc_tag_bits_bytes, 1024);
        assert_eq!(r.engine_l1d_bytes, 8 * 1024);
        assert_eq!(r.engine_tlb_bytes, 2 * 1024);
        assert_eq!(r.engine_rtlb_bytes, 2 * 1024);
        assert_eq!(r.callback_buffer_bytes, 512);
        assert_eq!(r.token_store_bytes, 25 * 8 * 64);
        assert_eq!(r.instruction_memory_bytes, 25 * 16 * 4);
        // Paper: 27.1 KB / 512 KB = 5.3%.
        let pct = r.percent_of_bank();
        assert!((5.0..5.6).contains(&pct), "overhead {pct}%");
    }

    #[test]
    fn table_renders() {
        let r = OverheadReport::for_config(&SystemConfig::default_16core());
        let t = r.table();
        assert!(t.contains("Token store"));
        assert!(t.contains('%'));
    }
}
