//! The execution context handed to Morph callbacks.
//!
//! [`EngineCtx`] is what callback code programs against (Fig 8's
//! `täkō::Morph` methods). Every operation is *functionally* applied to
//! the simulated memory and *timed* on the engine's dataflow fabric
//! through `tako-dataflow` [`Val`] handles, so callback latency is the
//! dependence-constrained, resource-constrained critical path.
//!
//! The context exposes three classes of operations:
//!
//! * **ALU ops** ([`EngineCtx::alu`], [`EngineCtx::alu_chain`]) — SIMD
//!   fabric instructions; an op across a full cache line counts once.
//! * **Line ops** (`line_read_*` / `line_write_*`) — accesses to the
//!   locked, triggering cache line held by the adjacent cache controller.
//! * **Memory ops** (`load_*` / `store_*`) — coherent accesses through
//!   the engine's L1d and the hierarchy below. These enforce the paper's
//!   restriction (Sec 4.3): a callback may not access data with a Morph
//!   registered at the same or a higher level (PRIVATE → SHARED is
//!   allowed and triggers the SHARED callback).
//!
//! # Misbehaving callbacks
//!
//! A callback that violates the Sec 4.3 restriction (or reaches outside
//! the locked line) does not take the simulator down: the illegal
//! operation is suppressed (it burns a fabric slot but never touches
//! the hierarchy), counted in `Counter::CbIllegalOp`, and recorded as a
//! violation. When the callback returns, the hierarchy quarantines the
//! offending Morph — its range degrades to baseline hardware behavior —
//! mirroring the architecture's deadlock-avoidance rule without
//! aborting the run.

use tako_cache::array::{CacheArray, InsertKind};
use tako_dataflow::{Trace, TraceResult, Val};
use tako_mem::addr::{line_of, Addr, AddrRange};
use tako_mem::backing::PhysMem;
use tako_sim::config::LINE_BYTES;
use tako_sim::stats::{Counter, Stats};
use tako_sim::{Cycle, TileId};

use crate::engine::Engine;
use crate::hierarchy::{Hierarchy, Interrupt};
use crate::morph::{CallbackKind, MorphId, MorphLevel};

/// The context of one executing callback.
pub struct EngineCtx<'a> {
    hier: &'a mut Hierarchy,
    trace: Trace<'a>,
    l1d: &'a mut CacheArray,
    tile: TileId,
    home_tile: TileId,
    line: Addr,
    kind: CallbackKind,
    range: AddrRange,
    level: MorphLevel,
    morph_id: MorphId,
    /// Write-combining buffers (engine state, persist across callbacks
    /// so sequential appends combine).
    wc_lines: &'a mut Vec<Addr>,
    /// First illegal action this callback attempted (Sec 4.3 violation
    /// or out-of-bounds line access); the hierarchy quarantines the
    /// Morph when set.
    violation: Option<String>,
}

impl<'a> EngineCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        hier: &'a mut Hierarchy,
        engine: &'a mut Engine,
        start: Cycle,
        tile: TileId,
        home_tile: TileId,
        line: Addr,
        kind: CallbackKind,
        range: AddrRange,
        level: MorphLevel,
        morph_id: MorphId,
    ) -> Self {
        let Engine {
            fabric,
            l1d,
            wc_lines,
            ..
        } = engine;
        EngineCtx {
            trace: fabric.begin(start),
            hier,
            l1d,
            tile,
            home_tile,
            line,
            kind,
            range,
            level,
            morph_id,
            wc_lines,
            violation: None,
        }
    }

    pub(crate) fn finish(self) -> TraceResult {
        self.trace.finish()
    }

    /// Record the callback's first illegal action; subsequent ones only
    /// count (the first is what the quarantine reports).
    fn note_violation(&mut self, msg: impl FnOnce() -> String) {
        self.hier.bus.stats.bump(Counter::CbIllegalOp);
        if self.violation.is_none() {
            self.violation = Some(format!(
                "{} ({} fabric instrs in)",
                msg(),
                self.trace.instrs_so_far()
            ));
        }
    }

    /// Take the recorded violation, if any (read by the hierarchy after
    /// the callback body returns, before `finish`).
    pub(crate) fn take_violation(&mut self) -> Option<String> {
        self.violation.take()
    }

    /// Fault injection: perform an illegal action (a coherent load of
    /// the callback's own Morph range), exercising the same suppression
    /// path a buggy Morph would.
    pub(crate) fn inject_illegal(&mut self) {
        let base = self.range.base;
        self.engine_mem(base, false, &[]);
    }

    // ---- introspection -------------------------------------------------

    /// The line address that triggered this callback.
    pub fn addr(&self) -> Addr {
        self.line
    }

    /// Byte offset of the triggering line within the Morph's range.
    pub fn offset(&self) -> u64 {
        self.line - self.range.base
    }

    /// The Morph's registered address range.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Which event triggered the callback.
    pub fn kind(&self) -> CallbackKind {
        self.kind
    }

    /// The registration level.
    pub fn level(&self) -> MorphLevel {
        self.level
    }

    /// The tile whose engine is executing this callback.
    pub fn engine_tile(&self) -> TileId {
        self.tile
    }

    /// The cycle the callback started executing.
    pub fn start(&self) -> Cycle {
        self.trace.start()
    }

    /// A dataflow value available at callback start (e.g., `addr`).
    pub fn arg(&self) -> Val {
        self.trace.arg()
    }

    // ---- fabric ALU ops -------------------------------------------------

    /// One SIMD fabric instruction consuming `deps`.
    pub fn alu(&mut self, deps: &[Val]) -> Val {
        self.trace.alu(deps)
    }

    /// A chain of `n` dependent fabric instructions.
    pub fn alu_chain(&mut self, deps: &[Val], n: u64) -> Val {
        self.trace.alu_chain(deps, n)
    }

    // ---- locked-line ops -------------------------------------------------

    fn host_line_latency(&self) -> Cycle {
        match self.level {
            MorphLevel::Private => self.hier.cfg.l2.data_latency,
            MorphLevel::Shared => self.hier.cfg.llc_bank.data_latency,
        }
    }

    /// Clamp a line access into bounds. A well-formed callback is
    /// untouched; an out-of-bounds one is pulled back to the last
    /// `width`-sized slot and recorded as a violation (the locked line
    /// is the only data the callback may touch, so the simulator must
    /// not let a buggy offset corrupt the neighboring line).
    fn clamp_line_offset(&mut self, offset: usize, width: usize) -> usize {
        let max = LINE_BYTES as usize - width.min(LINE_BYTES as usize);
        if offset > max {
            self.note_violation(|| {
                format!("line access out of bounds: offset {offset} width {width}")
            });
            return max;
        }
        offset
    }

    fn line_op(&mut self, offset: usize, width: usize, deps: &[Val]) -> (usize, Val) {
        let offset = self.clamp_line_offset(offset, width);
        let fire = self.trace.mem_fire(deps);
        let done = fire + self.host_line_latency();
        (offset, self.trace.mem_complete(done))
    }

    /// Read a `u64` from the locked line at byte `offset`.
    pub fn line_read_u64(&mut self, offset: usize, deps: &[Val]) -> (u64, Val) {
        let (offset, v) = self.line_op(offset, 8, deps);
        (self.hier.mem.read_u64(self.line + offset as u64), v)
    }

    /// Read an `f64` from the locked line at byte `offset`.
    pub fn line_read_f64(&mut self, offset: usize, deps: &[Val]) -> (f64, Val) {
        let (offset, v) = self.line_op(offset, 8, deps);
        (self.hier.mem.read_f64(self.line + offset as u64), v)
    }

    /// Write a `u64` into the locked line at byte `offset`.
    pub fn line_write_u64(&mut self, offset: usize, val: u64, deps: &[Val]) -> Val {
        let (offset, v) = self.line_op(offset, 8, deps);
        self.hier.mem.write_u64(self.line + offset as u64, val);
        v
    }

    /// Write an `f64` into the locked line at byte `offset`.
    pub fn line_write_f64(&mut self, offset: usize, val: f64, deps: &[Val]) -> Val {
        let (offset, v) = self.line_op(offset, 8, deps);
        self.hier.mem.write_f64(self.line + offset as u64, val);
        v
    }

    /// Read the whole locked line as eight `u64`s with one SIMD access.
    pub fn line_read_all_u64(&mut self, deps: &[Val]) -> ([u64; 8], Val) {
        let (_, v) = self.line_op(0, LINE_BYTES as usize, deps);
        let mut out = [0u64; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.hier.mem.read_u64(self.line + 8 * i as u64);
        }
        (out, v)
    }

    /// Read the whole locked line as eight `f64`s with one SIMD access.
    pub fn line_read_all_f64(&mut self, deps: &[Val]) -> ([f64; 8], Val) {
        let (_, v) = self.line_op(0, LINE_BYTES as usize, deps);
        let mut out = [0.0f64; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.hier.mem.read_f64(self.line + 8 * i as u64);
        }
        (out, v)
    }

    /// Fill the whole locked line with a repeated `u64` (one SIMD store).
    pub fn line_fill_u64(&mut self, val: u64, deps: &[Val]) -> Val {
        let (_, v) = self.line_op(0, LINE_BYTES as usize, deps);
        for i in 0..8 {
            self.hier.mem.write_u64(self.line + 8 * i, val);
        }
        v
    }

    /// Write eight `u64`s across the locked line with one SIMD store.
    pub fn line_write_all_u64(&mut self, vals: &[u64; 8], deps: &[Val]) -> Val {
        let (_, v) = self.line_op(0, LINE_BYTES as usize, deps);
        for (i, x) in vals.iter().enumerate() {
            self.hier.mem.write_u64(self.line + 8 * i as u64, *x);
        }
        v
    }

    /// Write eight `f64`s across the locked line with one SIMD store.
    pub fn line_write_all_f64(&mut self, vals: &[f64; 8], deps: &[Val]) -> Val {
        let (_, v) = self.line_op(0, LINE_BYTES as usize, deps);
        for (i, x) in vals.iter().enumerate() {
            self.hier.mem.write_f64(self.line + 8 * i as u64, *x);
        }
        v
    }

    // ---- coherent memory ops ---------------------------------------------

    /// Enforce the Sec 4.3 restriction. Returns true when `addr` is
    /// legal for this callback; an illegal access is recorded as a
    /// violation (the caller suppresses the operation and the hierarchy
    /// quarantines the Morph after the callback returns).
    fn check_restriction(&mut self, addr: Addr) -> bool {
        let reason = match self.hier.registry.lookup(addr) {
            None => return true,
            Some((id, _)) if id == self.morph_id => "callback accessed its own Morph range",
            Some((_, MorphLevel::Private)) => {
                "callback accessed data with a PRIVATE Morph \
                 (Sec 4.3 restriction: same/higher level)"
            }
            Some((_, MorphLevel::Shared)) if self.level == MorphLevel::Shared => {
                "SHARED callback accessed SHARED Morph data \
                 (Sec 4.3 restriction)"
            }
            Some((_, MorphLevel::Shared)) => return true,
        };
        self.note_violation(|| format!("{reason} at {addr:#x}"));
        false
    }

    /// The timing of a suppressed illegal memory op: it occupies a
    /// fabric slot (the instruction fired before the check tripped it)
    /// but never reaches the hierarchy or the functional store.
    fn suppressed_mem(&mut self, deps: &[Val]) -> Val {
        let fire = self.trace.mem_fire(deps);
        self.trace.mem_complete(fire + 1)
    }

    fn engine_mem(&mut self, addr: Addr, write: bool, deps: &[Val]) -> Val {
        if !self.check_restriction(addr) {
            return self.suppressed_mem(deps);
        }
        let line = line_of(addr);
        let fire = self.trace.mem_fire(deps);
        if let Some(mut e) = self.l1d.probe_mut(line) {
            let done = (fire + 1).max(e.ready_at());
            if write {
                e.set_dirty(true);
            }
            self.hier.bus.stats.bump(Counter::EngineL1Hit);
            self.l1d.touch(line);
            return self.trace.mem_complete(done);
        }
        self.hier.bus.stats.bump(Counter::EngineL1Miss);
        let done = self
            .hier
            .engine_fill(self.tile, write, line, fire + 1, self.level);
        if let Some(ev) = self
            .l1d
            .insert(line, write, false, InsertKind::Demand, done)
        {
            if ev.dirty {
                self.hier.engine_writeback(self.tile, ev.line, done);
            }
        }
        // Stores are posted; loads complete when the data arrives.
        let seen = if write { fire + 1 } else { done };
        self.trace.mem_complete(seen)
    }

    /// A non-temporal engine load for data the callback touches once
    /// (e.g., the compressed/AoS source of a transformation). The line
    /// fills the engine L1d only and bypasses the L2 — this is how
    /// trrîp's "engine accesses insert at lower priority" (Sec 5.2)
    /// avoids polluting the core's caches with callback streams.
    fn engine_mem_nt(&mut self, addr: Addr, deps: &[Val]) -> Val {
        if !self.check_restriction(addr) {
            return self.suppressed_mem(deps);
        }
        let line = line_of(addr);
        let fire = self.trace.mem_fire(deps);
        if let Some(e) = self.l1d.probe_mut(line) {
            let done = (fire + 1).max(e.ready_at());
            self.hier.bus.stats.bump(Counter::EngineL1Hit);
            self.l1d.touch(line);
            return self.trace.mem_complete(done);
        }
        self.hier.bus.stats.bump(Counter::EngineL1Miss);
        let done = self.hier.fetch_stream(self.tile, line, fire + 1);
        if let Some(ev) = self
            .l1d
            .insert(line, false, false, InsertKind::Engine, done)
        {
            if ev.dirty {
                self.hier.engine_writeback(self.tile, ev.line, done);
            }
        }
        self.trace.mem_complete(done)
    }

    /// Non-temporal load of a `u64` (see [`EngineCtx::load_u64`] for the
    /// allocating variant).
    pub fn load_stream_u64(&mut self, addr: Addr, deps: &[Val]) -> (u64, Val) {
        let v = self.engine_mem_nt(addr, deps);
        (self.hier.mem.read_u64(addr), v)
    }

    /// Non-temporal load of an `f64`.
    pub fn load_stream_f64(&mut self, addr: Addr, deps: &[Val]) -> (f64, Val) {
        let v = self.engine_mem_nt(addr, deps);
        (self.hier.mem.read_f64(addr), v)
    }

    /// Engine-side software prefetch: starts a coherent read of `addr`'s
    /// line into the engine L1d without joining the dataflow graph (the
    /// later demand load completes early).
    pub fn prefetch(&mut self, addr: Addr) {
        if !self.check_restriction(addr) {
            return;
        }
        let line = line_of(addr);
        if self.l1d.probe(line).is_some() {
            return;
        }
        let fire = self.trace.mem_fire(&[]);
        self.hier.bus.stats.bump(Counter::EngineL1Miss);
        let done = self
            .hier
            .engine_fill(self.tile, false, line, fire + 1, self.level);
        if let Some(ev) = self
            .l1d
            .insert(line, false, false, InsertKind::Prefetch, done)
        {
            if ev.dirty {
                self.hier.engine_writeback(self.tile, ev.line, done);
            }
        }
        self.trace.mem_complete(fire + 1);
    }

    /// Coherent load of a `u64`.
    pub fn load_u64(&mut self, addr: Addr, deps: &[Val]) -> (u64, Val) {
        let v = self.engine_mem(addr, false, deps);
        (self.hier.mem.read_u64(addr), v)
    }

    /// Coherent load of an `f64`.
    pub fn load_f64(&mut self, addr: Addr, deps: &[Val]) -> (f64, Val) {
        let v = self.engine_mem(addr, false, deps);
        (self.hier.mem.read_f64(addr), v)
    }

    /// Coherent load of a `u32`.
    pub fn load_u32(&mut self, addr: Addr, deps: &[Val]) -> (u32, Val) {
        let v = self.engine_mem(addr, false, deps);
        (self.hier.mem.read_u32(addr), v)
    }

    /// A non-allocating streaming store, absorbed by a one-line
    /// write-combining buffer (hardware streaming stores combine
    /// sequential appends like PHI's bins or the NVM journal without
    /// disturbing the engine L1d). When the append stream moves to a new
    /// line, the combined line writes back through the hierarchy.
    fn engine_mem_stream(&mut self, addr: Addr, deps: &[Val]) -> Val {
        if !self.check_restriction(addr) {
            return self.suppressed_mem(deps);
        }
        let line = line_of(addr);
        let fire = self.trace.mem_fire(deps);
        if let Some(pos) = self.wc_lines.iter().position(|&l| l == line) {
            // Keep the active buffer most-recent.
            let l = self.wc_lines.remove(pos);
            self.wc_lines.push(l);
        } else {
            if self.wc_lines.len() >= crate::engine::WC_BUFFERS {
                let victim = self.wc_lines.remove(0);
                self.hier.engine_writeback(self.tile, victim, fire + 1);
            }
            self.wc_lines.push(line);
        }
        self.trace.mem_complete(fire + 1)
    }

    /// Streaming (non-allocating) store of a `u64`; see
    /// [`EngineCtx::store_u64`] for the allocating variant.
    pub fn store_stream_u64(&mut self, addr: Addr, val: u64, deps: &[Val]) -> Val {
        let v = self.engine_mem_stream(addr, deps);
        self.hier.mem.write_u64(addr, val);
        v
    }

    /// Streaming (non-allocating) store of an `f64`.
    pub fn store_stream_f64(&mut self, addr: Addr, val: f64, deps: &[Val]) -> Val {
        let v = self.engine_mem_stream(addr, deps);
        self.hier.mem.write_f64(addr, val);
        v
    }

    /// Coherent posted store of a `u64`.
    pub fn store_u64(&mut self, addr: Addr, val: u64, deps: &[Val]) -> Val {
        let v = self.engine_mem(addr, true, deps);
        self.hier.mem.write_u64(addr, val);
        v
    }

    /// Coherent posted store of an `f64`.
    pub fn store_f64(&mut self, addr: Addr, val: f64, deps: &[Val]) -> Val {
        let v = self.engine_mem(addr, true, deps);
        self.hier.mem.write_f64(addr, val);
        v
    }

    /// Add to an `f64` in memory (engine-side read-modify-write).
    pub fn add_f64(&mut self, addr: Addr, val: f64, deps: &[Val]) -> Val {
        let (old, v0) = self.load_f64(addr, deps);
        let sum = self.alu(&[v0]);
        self.store_f64(addr, old + val, &[sum])
    }

    /// Copy `len` bytes of the locked line (starting at `offset`) to
    /// `dst` in memory — the NVM study's data-copy primitive. One line op
    /// plus one store per destination line touched.
    pub fn copy_line_out(&mut self, offset: usize, dst: Addr, len: usize, deps: &[Val]) -> Val {
        let len = len.min(LINE_BYTES as usize);
        let (offset, read) = self.line_op(offset, len, deps);
        let mut buf = vec![0u8; len];
        self.hier
            .mem
            .read_bytes(self.line + offset as u64, &mut buf);
        let mut last = read;
        for dl in AddrRange::new(dst, len as u64).lines() {
            last = self.engine_mem_stream(dl.max(dst), &[read]);
        }
        self.hier.mem.write_bytes(dst, &buf);
        last
    }

    // ---- system ----------------------------------------------------------

    /// Raise a user-space interrupt to the Morph's registering thread
    /// (Sec 8.4's defense mechanism).
    pub fn raise_interrupt(&mut self) {
        self.hier.bus.stats.bump(Counter::UserInterrupt);
        let cycle = self.start();
        let interrupt = Interrupt {
            tile: self.home_tile,
            cycle,
            line: self.line,
        };
        self.hier.interrupts.push(interrupt);
    }

    /// Functional (untimed) memory access — for Morph-local bookkeeping
    /// that hardware would keep in the engine's registers.
    pub fn data(&mut self) -> &mut PhysMem {
        &mut self.hier.mem
    }

    /// The statistics registry (for application-level counters such as
    /// [`Counter::Decompression`]).
    pub fn stats(&mut self) -> &mut Stats {
        &mut self.hier.bus.stats
    }
}
