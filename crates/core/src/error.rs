//! Error type for the täkō programming interface.

use std::error::Error;
use std::fmt;

use tako_mem::addr::AddrRange;
use tako_sim::checkpoint::SnapError;
use tako_sim::config::ConfigError;

/// Errors returned by Morph registration and management (Sec 4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TakoError {
    /// `registerReal`/`registerPhantom` on a range that already has a
    /// Morph — täkō allows only one Morph per address at a time.
    RangeOverlap {
        /// The range the caller tried to register.
        requested: AddrRange,
        /// The existing registration it collides with.
        existing: AddrRange,
    },
    /// The handle does not name a currently registered Morph.
    NotRegistered,
    /// The Morph's callbacks need more static instructions than the
    /// engine fabric can hold (Table 2: 25 PEs × 16 instructions).
    FabricCapacity {
        /// Instructions the Morph requires.
        required: u32,
        /// Instructions the fabric provides.
        available: u32,
    },
    /// A zero-sized range was requested.
    EmptyRange,
    /// A Morph's callback faulted (illegal action, budget overrun, or
    /// fabric exhaustion) and the hierarchy quarantined it, degrading
    /// its range to baseline SRRIP hardware behavior.
    CallbackQuarantined {
        /// Registry id of the quarantined Morph.
        morph: usize,
        /// Why it was quarantined.
        reason: String,
    },
    /// The forward-progress watchdog saw an access exceed its stall
    /// bound and dumped a diagnostic snapshot.
    WatchdogStall {
        /// Observed end-to-end latency of the flagged access.
        latency: u64,
        /// The configured stall bound it exceeded.
        bound: u64,
    },
    /// The system configuration failed validation.
    InvalidConfig(ConfigError),
    /// A checkpoint could not be restored (corrupt envelope, version
    /// skew, or state that contradicts the rebuilt configuration).
    BadSnapshot(SnapError),
    /// The persistence fabric reported a *permanent* I/O failure on
    /// this thread (see [`tako_sim::storage::IoClass`]): checkpoints
    /// and journals written since cannot be trusted durable.
    StorageDegraded {
        /// Permanent failures tallied on the simulating thread.
        permanent: u64,
        /// Transient failures tallied alongside (retried/absorbed).
        transient: u64,
        /// The most recent failure, as `op path: error`.
        last: String,
    },
}

impl fmt::Display for TakoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TakoError::RangeOverlap {
                requested,
                existing,
            } => write!(
                f,
                "range {:#x}+{} overlaps a registered Morph at {:#x}+{}",
                requested.base, requested.size, existing.base, existing.size
            ),
            TakoError::NotRegistered => {
                write!(f, "no Morph registered under this handle")
            }
            TakoError::FabricCapacity {
                required,
                available,
            } => write!(
                f,
                "Morph needs {required} fabric instructions but only \
                 {available} are available"
            ),
            TakoError::EmptyRange => write!(f, "requested range is empty"),
            TakoError::CallbackQuarantined { morph, reason } => write!(
                f,
                "Morph {morph} quarantined ({reason}); its range degraded \
                 to baseline replacement"
            ),
            TakoError::WatchdogStall { latency, bound } => write!(
                f,
                "watchdog: access took {latency} cycles \
                 (stall bound {bound})"
            ),
            TakoError::InvalidConfig(e) => {
                write!(f, "invalid configuration: {e}")
            }
            TakoError::BadSnapshot(e) => {
                write!(f, "cannot restore snapshot: {e}")
            }
            TakoError::StorageDegraded {
                permanent,
                transient,
                last,
            } => write!(
                f,
                "storage degraded: {permanent} permanent / {transient} \
                 transient I/O failures (last: {last})"
            ),
        }
    }
}

impl Error for TakoError {}

impl From<ConfigError> for TakoError {
    fn from(e: ConfigError) -> Self {
        TakoError::InvalidConfig(e)
    }
}

impl From<SnapError> for TakoError {
    fn from(e: SnapError) -> Self {
        TakoError::BadSnapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TakoError::RangeOverlap {
            requested: AddrRange::new(0x100, 64),
            existing: AddrRange::new(0x80, 256),
        };
        let msg = e.to_string();
        assert!(msg.contains("overlaps"));
        assert!(TakoError::NotRegistered.to_string().contains("no Morph"));
        assert!(TakoError::FabricCapacity {
            required: 500,
            available: 400
        }
        .to_string()
        .contains("500"));
        assert!(TakoError::EmptyRange.to_string().contains("empty"));
        assert!(TakoError::CallbackQuarantined {
            morph: 3,
            reason: "budget overrun".into()
        }
        .to_string()
        .contains("quarantined"));
        assert!(TakoError::WatchdogStall {
            latency: 500_000,
            bound: 200_000
        }
        .to_string()
        .contains("watchdog"));
        let e: TakoError = ConfigError::NoDramControllers.into();
        assert!(e.to_string().contains("invalid configuration"));
        let e: TakoError = SnapError::BadMagic.into();
        assert!(e.to_string().contains("cannot restore snapshot"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TakoError>();
    }
}
