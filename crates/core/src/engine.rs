//! The per-tile täkō engine: hardware scheduler + dataflow fabric (Sec 5.3).
//!
//! Each tile's engine runs all callbacks for that tile's L2 and LLC bank.
//! It consists of:
//!
//! * a **callback buffer** of `callback_buffer` entries — a callback
//!   occupies one entry from admission to completion; when the buffer is
//!   full, arriving callbacks queue (for evictions, the registered line
//!   occupies a writeback-buffer entry until a slot frees up);
//! * **per-line locking** — the address that triggered a callback is
//!   locked until the callback completes; later operations on the same
//!   line wait (Sec 4.3);
//! * a **bitstream cache** mapping Morphs to fabric configurations; a
//!   callback whose bitstream is not loaded pays a reconfiguration
//!   penalty;
//! * an **rTLB** for reverse (physical→virtual) translation of the
//!   triggering address, plus a small TLB for other data (Sec 6);
//! * the engine's coherent **L1d** and the **dataflow fabric**
//!   (`tako-dataflow`), shared by all concurrent callbacks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use tako_cache::CacheArray;
use tako_dataflow::Fabric;
use tako_mem::addr::Addr;
use tako_sim::config::EngineConfig;
use tako_sim::stats::{Counter, Stats};
use tako_sim::Cycle;

use crate::morph::MorphId;

/// Cycles to load a callback bitstream onto the fabric when it is not in
/// the bitstream cache.
pub const BITSTREAM_LOAD_CYCLES: Cycle = 16;
/// Cycles for a reverse-translation walk on an rTLB miss.
pub const RTLB_WALK_CYCLES: Cycle = 30;
/// Morphs whose bitstreams stay resident on the fabric.
const BITSTREAM_CACHE_SLOTS: usize = 4;
/// Simulated page size for the rTLB (the paper uses 2 MB pages, Sec 9).
pub const RTLB_PAGE_BITS: u32 = 21;
/// Write-combining buffers per engine.
pub const WC_BUFFERS: usize = 8;

/// A small fully-associative LRU reverse TLB.
#[derive(Debug, Clone)]
pub struct Rtlb {
    capacity: usize,
    entries: HashMap<u64, u64>,
    clock: u64,
}

impl Rtlb {
    /// An rTLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Rtlb {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            clock: 0,
        }
    }

    /// Translate the page of `addr`; returns true on a hit. Misses
    /// install the translation (evicting the LRU entry when full).
    pub fn access(&mut self, addr: Addr) -> bool {
        let page = addr >> RTLB_PAGE_BITS;
        self.clock += 1;
        let clock = self.clock;
        if let Some(stamp) = self.entries.get_mut(&page) {
            *stamp = clock;
            return true;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &s)| s) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(page, clock);
        false
    }

    /// Drop all translations (TLB shootdown on register/unregister).
    pub fn shootdown(&mut self) {
        self.entries.clear();
    }
}

/// The engine's hardware scheduler state plus its fabric and L1d.
pub struct Engine {
    cfg: EngineConfig,
    /// The spatial dataflow fabric executing callbacks.
    pub fabric: Fabric,
    /// The engine's coherent L1 data cache.
    pub l1d: CacheArray,
    /// Reverse TLB for triggering addresses.
    pub rtlb: Rtlb,
    /// Write-combining buffers for engine streaming stores (line
    /// addresses, oldest first; x86-class cores have ~8-10).
    pub wc_lines: Vec<Addr>,
    slots: BinaryHeap<Reverse<Cycle>>,
    /// Slots borrowed while the buffer was oversubscribed (more nested
    /// concurrent callbacks than `callback_buffer` entries). Repaid in
    /// [`Engine::complete`]; zero at every quiescent point, so it is
    /// not serialized.
    slot_debt: usize,
    line_locks: HashMap<Addr, Cycle>,
    morph_last: HashMap<MorphId, Cycle>,
    bitstreams: Vec<MorphId>,
    callbacks_run: u64,
}

impl Engine {
    /// An idle engine with `cfg`'s resources.
    pub fn new(cfg: EngineConfig) -> Self {
        let mut slots = BinaryHeap::new();
        for _ in 0..cfg.callback_buffer.max(1) {
            slots.push(Reverse(0));
        }
        Engine {
            fabric: Fabric::new(cfg),
            l1d: CacheArray::new(cfg.l1d),
            rtlb: Rtlb::new(cfg.rtlb_entries as usize),
            wc_lines: Vec::with_capacity(WC_BUFFERS),
            slots,
            slot_debt: 0,
            line_locks: HashMap::new(),
            morph_last: HashMap::new(),
            bitstreams: Vec::new(),
            callbacks_run: 0,
            cfg,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Total callbacks executed.
    pub fn callbacks_run(&self) -> u64 {
        self.callbacks_run
    }

    /// Admit a callback that arrived at `arrival`: returns the cycle its
    /// execution may begin, after waiting for a callback-buffer slot, the
    /// line lock, optional Morph-level serialization, the bitstream load,
    /// and the rTLB.
    pub fn admit(
        &mut self,
        morph: MorphId,
        line: Addr,
        arrival: Cycle,
        serialize: bool,
        stats: &mut Stats,
    ) -> Cycle {
        // Callback-buffer slot: one entry held until completion. With
        // more nested concurrent callbacks than buffer entries the pop
        // fails; hardware would backpressure the writeback buffer, so
        // degrade by borrowing a slot (repaid in `complete`) and
        // charging a full-buffer stall instead of panicking.
        let slot_free = match self.slots.pop() {
            Some(Reverse(c)) => c,
            None => {
                self.slot_debt += 1;
                arrival + 1
            }
        };
        let mut start = arrival.max(slot_free);
        if slot_free > arrival {
            stats.bump(Counter::CbBufferFull);
            stats.add(Counter::CbBufferStallCycles, slot_free - arrival);
        }
        // Per-line lock (Sec 4.3: the cache controller serializes
        // operations on each address).
        if let Some(&locked_until) = self.line_locks.get(&line) {
            start = start.max(locked_until);
        }
        // Optional whole-Morph serialization (HATS).
        if serialize {
            if let Some(&last) = self.morph_last.get(&morph) {
                start = start.max(last);
            }
        }
        // Bitstream cache.
        if let Some(pos) = self.bitstreams.iter().position(|&m| m == morph) {
            let id = self.bitstreams.remove(pos);
            self.bitstreams.push(id);
        } else {
            self.bitstreams.push(morph);
            if self.bitstreams.len() > BITSTREAM_CACHE_SLOTS {
                self.bitstreams.remove(0);
            }
            start += BITSTREAM_LOAD_CYCLES;
        }
        // Reverse translation of the triggering address (eagerly filled
        // for onMiss; hit ratios are very high, Sec 6).
        if self.rtlb.access(line) {
            stats.bump(Counter::RtlbHit);
        } else {
            stats.bump(Counter::RtlbMiss);
            start += RTLB_WALK_CYCLES;
        }
        start
    }

    /// Record a callback's completion: frees its buffer slot, updates the
    /// line lock and serialization cursor, and tallies statistics.
    pub fn complete(
        &mut self,
        morph: MorphId,
        line: Addr,
        start: Cycle,
        completion: Cycle,
        serialize: bool,
        stats: &mut Stats,
    ) {
        if self.slot_debt > 0 {
            self.slot_debt -= 1;
        } else {
            self.slots.push(Reverse(completion));
        }
        self.line_locks.insert(line, completion);
        if serialize {
            self.morph_last
                .entry(morph)
                .and_modify(|c| *c = (*c).max(completion))
                .or_insert(completion);
        }
        self.callbacks_run += 1;
        stats
            .callback_latency
            .record(completion.saturating_sub(start));
        if self.line_locks.len() > 8192 {
            let horizon = start;
            self.line_locks.retain(|_, &mut c| c > horizon);
        }
    }

    /// The cycle the line is locked until, if a callback is (or was)
    /// running on it.
    pub fn locked_until(&self, line: Addr) -> Option<Cycle> {
        self.line_locks.get(&line).copied()
    }

    /// The earliest cycle a new callback could start (all slots busy
    /// until then at least).
    pub fn earliest_slot(&self) -> Cycle {
        self.slots.peek().map(|&Reverse(c)| c).unwrap_or(0)
    }

    /// Drop scheduler history (used when a Morph is unregistered).
    pub fn forget_morph(&mut self, morph: MorphId) {
        self.morph_last.remove(&morph);
        self.bitstreams.retain(|&m| m != morph);
    }
}

impl tako_sim::checkpoint::Snapshot for Rtlb {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("rtlb");
        w.put_usize(self.capacity);
        w.put_u64(self.clock);
        let mut entries: Vec<(u64, u64)> = self.entries.iter().map(|(p, s)| (*p, *s)).collect();
        entries.sort_unstable();
        w.put_len(entries.len());
        for (page, stamp) in entries {
            w.put_u64(page);
            w.put_u64(stamp);
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::SnapError;
        r.section("rtlb")?;
        let capacity = r.get_usize()?;
        if capacity != self.capacity {
            return Err(SnapError::StateMismatch(format!(
                "rTLB capacity: snapshot {capacity}, rebuilt {}",
                self.capacity
            )));
        }
        self.clock = r.get_u64()?;
        let n = r.get_len()?;
        self.entries.clear();
        for _ in 0..n {
            let page = r.get_u64()?;
            let stamp = r.get_u64()?;
            self.entries.insert(page, stamp);
        }
        Ok(())
    }
}

impl tako_sim::checkpoint::Snapshot for Engine {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("engine");
        self.fabric.save(w);
        self.l1d.save(w);
        self.rtlb.save(w);
        w.put_len(self.wc_lines.len());
        for l in &self.wc_lines {
            w.put_u64(*l);
        }
        // Callback-buffer slots: heap order is arbitrary, write sorted.
        let mut slots: Vec<Cycle> = self.slots.iter().map(|Reverse(c)| *c).collect();
        slots.sort_unstable();
        w.put_len(slots.len());
        for c in slots {
            w.put_u64(c);
        }
        let mut locks: Vec<(Addr, Cycle)> = self.line_locks.iter().map(|(a, c)| (*a, *c)).collect();
        locks.sort_unstable();
        w.put_len(locks.len());
        for (a, c) in locks {
            w.put_u64(a);
            w.put_u64(c);
        }
        let mut last: Vec<(MorphId, Cycle)> =
            self.morph_last.iter().map(|(m, c)| (*m, *c)).collect();
        last.sort_unstable();
        w.put_len(last.len());
        for (m, c) in last {
            w.put_usize(m);
            w.put_u64(c);
        }
        // Bitstream-cache order is LRU state: preserved verbatim.
        w.put_len(self.bitstreams.len());
        for m in &self.bitstreams {
            w.put_usize(*m);
        }
        w.put_u64(self.callbacks_run);
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        r.section("engine")?;
        self.fabric.load(r)?;
        self.l1d.load(r)?;
        self.rtlb.load(r)?;
        let n = r.get_len()?;
        self.wc_lines.clear();
        for _ in 0..n {
            self.wc_lines.push(r.get_u64()?);
        }
        let n = r.get_len_expect("callback-buffer slots", self.slots.len())?;
        let mut slots = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            slots.push(Reverse(r.get_u64()?));
        }
        self.slots = slots;
        let n = r.get_len()?;
        self.line_locks.clear();
        for _ in 0..n {
            let a = r.get_u64()?;
            let c = r.get_u64()?;
            self.line_locks.insert(a, c);
        }
        let n = r.get_len()?;
        self.morph_last.clear();
        for _ in 0..n {
            let m = r.get_usize()?;
            let c = r.get_u64()?;
            self.morph_last.insert(m, c);
        }
        let n = r.get_len()?;
        self.bitstreams.clear();
        for _ in 0..n {
            self.bitstreams.push(r.get_usize()?);
        }
        self.callbacks_run = r.get_u64()?;
        Ok(())
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("callbacks_run", &self.callbacks_run)
            .field("outstanding_locks", &self.line_locks.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default_5x5())
    }

    #[test]
    fn rtlb_hit_miss_lru() {
        let mut r = Rtlb::new(2);
        let page = 1u64 << RTLB_PAGE_BITS;
        assert!(!r.access(0));
        assert!(r.access(0));
        assert!(!r.access(page));
        assert!(!r.access(2 * page)); // evicts page 0 (LRU)
        assert!(!r.access(0));
        r.shootdown();
        assert!(!r.access(2 * page));
    }

    #[test]
    fn admit_charges_bitstream_once() {
        let mut e = engine();
        let mut s = Stats::new();
        let s1 = e.admit(0, 0, 1000, false, &mut s);
        assert_eq!(s1, 1000 + BITSTREAM_LOAD_CYCLES + RTLB_WALK_CYCLES);
        e.complete(0, 0, s1, s1 + 10, false, &mut s);
        // Same Morph, different line in the same page: warm bitstream+rTLB.
        let s2 = e.admit(0, 64, 2000, false, &mut s);
        assert_eq!(s2, 2000);
    }

    #[test]
    fn line_lock_serializes_same_line() {
        let mut e = engine();
        let mut s = Stats::new();
        let s1 = e.admit(0, 0, 0, false, &mut s);
        e.complete(0, 0, s1, s1 + 100, false, &mut s);
        let s2 = e.admit(0, 0, 0, false, &mut s);
        assert!(s2 >= s1 + 100, "second callback on same line must wait");
        let s3 = e.admit(0, 64, 0, false, &mut s);
        assert!(s3 < s1 + 100, "different line need not wait");
    }

    #[test]
    fn buffer_slots_backpressure() {
        let mut cfg = EngineConfig::default_5x5();
        cfg.callback_buffer = 1;
        let mut e = Engine::new(cfg);
        let mut s = Stats::new();
        let s1 = e.admit(0, 0, 0, false, &mut s);
        e.complete(0, 0, s1, s1 + 500, false, &mut s);
        let s2 = e.admit(0, 64, 0, false, &mut s);
        assert!(s2 >= s1 + 500, "single-entry buffer serializes callbacks");
        assert!(s.get(Counter::CbBufferFull) > 0);
        assert!(s.get(Counter::CbBufferStallCycles) > 0);
    }

    #[test]
    fn morph_serialization_flag() {
        let mut e = engine();
        let mut s = Stats::new();
        let s1 = e.admit(3, 0, 0, true, &mut s);
        e.complete(3, 0, s1, s1 + 200, true, &mut s);
        let s2 = e.admit(3, 640, 0, true, &mut s);
        assert!(s2 >= s1 + 200, "serialized Morph waits across lines");
    }

    #[test]
    fn bitstream_cache_eviction() {
        let mut e = engine();
        let mut s = Stats::new();
        // Load 5 distinct morphs into the 4-slot cache; morph 0 evicted.
        for m in 0..5 {
            let st = e.admit(m, m as u64 * 64, 0, false, &mut s);
            e.complete(m, m as u64 * 64, st, st, false, &mut s);
        }
        let warm = e.admit(4, 4 * 64, 100_000, false, &mut s);
        assert_eq!(warm, 100_000);
        let cold = e.admit(0, 0, 200_000, false, &mut s);
        assert_eq!(cold, 200_000 + BITSTREAM_LOAD_CYCLES);
    }
}
