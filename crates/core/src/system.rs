//! The täkō system facade.
//!
//! [`TakoSystem`] is the public entry point: it owns the full
//! [`Hierarchy`], exposes the Morph programming interface of Sec 4
//! (`register_phantom`, `register_real`, `unregister`, `flush_data`), and
//! implements [`tako_cpu::MemSystem`] so any `ThreadProgram` runs on it.

use tako_cpu::{AccessKind, MemSystem};
use tako_mem::addr::{Addr, AddrRange, Allocator};
use tako_mem::backing::PhysMem;
use tako_sim::checkpoint::{self, SnapError, SnapReader, SnapWriter, Snapshot};
use tako_sim::config::SystemConfig;
use tako_sim::digest::Sha256;
use tako_sim::energy::{EnergyBreakdown, EnergyModel};
use tako_sim::stats::Stats;
use tako_sim::{Cycle, TileId};

use crate::error::TakoError;
use crate::hierarchy::{Hierarchy, Interrupt};
use crate::morph::{Morph, MorphEntry, MorphHandle, MorphLevel};

/// A complete simulated täkō system: the tiled CMP of Table 3 plus the
/// Morph registry, engines, and allocator.
pub struct TakoSystem {
    pub(crate) hier: Hierarchy,
    alloc: Allocator,
    energy: EnergyModel,
}

impl TakoSystem {
    /// Build an idle system from `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        TakoSystem {
            hier: Hierarchy::new(cfg),
            alloc: Allocator::new(),
            energy: EnergyModel::default_params(),
        }
    }

    /// Build a system after validating `cfg`, rejecting configurations
    /// the hardware could not exist in (zero-way caches, non-power-of-two
    /// set counts, no DRAM controllers, ...).
    ///
    /// # Errors
    ///
    /// [`TakoError::InvalidConfig`] describing the first problem found.
    pub fn try_new(cfg: SystemConfig) -> Result<Self, TakoError> {
        cfg.validate()?;
        Ok(Self::new(cfg))
    }

    /// Post-run health verdict from the robustness machinery.
    ///
    /// # Errors
    ///
    /// [`TakoError::WatchdogStall`] if the watchdog flagged an access
    /// exceeding its stall bound; [`TakoError::CallbackQuarantined`] if
    /// any Morph was quarantined for a misbehaving callback;
    /// [`TakoError::StorageDegraded`] if this thread's persistence
    /// fabric tallied a permanent I/O failure (transient failures are
    /// absorbed and do not fail health). A clean run returns `Ok(())`.
    pub fn health(&self) -> Result<(), TakoError> {
        if let Some((latency, bound)) = self.hier.watchdog.stall() {
            return Err(TakoError::WatchdogStall { latency, bound });
        }
        if let Some((morph, reason)) = self.hier.registry.quarantined_morphs().next() {
            return Err(TakoError::CallbackQuarantined {
                morph,
                reason: reason.to_string(),
            });
        }
        // The unit journal runs on the simulating thread, so this
        // thread's storage tally is this system's persistence health.
        // Transient failures degrade checkpointing but self-heal;
        // permanent ones mean recent journal writes may not be durable.
        let io = tako_sim::storage::io_health();
        if io.permanent > 0 {
            return Err(TakoError::StorageDegraded {
                permanent: io.permanent,
                transient: io.transient,
                last: io.last.unwrap_or_default(),
            });
        }
        Ok(())
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.hier.cfg
    }

    /// The underlying hierarchy (arrays, engines, registry) — exposed for
    /// tests and detailed inspection.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Mutable access to the hierarchy.
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hier
    }

    /// Split the hierarchy into the disjoint pieces a lane window
    /// needs: exclusive per-tile cache islands, the shared read-only
    /// backing store, and the configuration. Everything else (bus,
    /// watchdog, LLC, DRAM, engines) is untouched during a window.
    pub(crate) fn lane_split(
        &mut self,
    ) -> (&mut [crate::hierarchy::Tile], &PhysMem, &SystemConfig) {
        let h = &mut self.hier;
        (&mut h.tiles, &h.mem, &h.cfg)
    }

    /// The address-space allocator (for workload setup).
    pub fn allocator(&mut self) -> &mut Allocator {
        &mut self.alloc
    }

    /// Allocate DRAM-backed memory for workload data.
    pub fn alloc_real(&mut self, size: u64) -> AddrRange {
        self.alloc.alloc_real(size)
    }

    // ------------------------------------------------------------------
    // Morph interface (Sec 4)
    // ------------------------------------------------------------------

    fn check_capacity(&self, morph: &dyn Morph) -> Result<(), TakoError> {
        let available = self.hier.cfg.engine.instr_capacity();
        let required = morph.static_instrs();
        if required > available {
            return Err(TakoError::FabricCapacity {
                required,
                available,
            });
        }
        Ok(())
    }

    /// Allocate a phantom address range of `size` bytes and register
    /// `morph` on it at `level`, on behalf of `register_tile` (whose
    /// engine runs PRIVATE callbacks). Phantom data lives only in the
    /// caches; the callbacks define load/store semantics.
    ///
    /// # Errors
    ///
    /// [`TakoError::EmptyRange`] for `size == 0`;
    /// [`TakoError::FabricCapacity`] if the Morph's callbacks exceed the
    /// fabric's instruction memory.
    pub fn register_phantom_at(
        &mut self,
        register_tile: TileId,
        level: MorphLevel,
        size: u64,
        morph: Box<dyn Morph>,
    ) -> Result<MorphHandle, TakoError> {
        if size == 0 {
            return Err(TakoError::EmptyRange);
        }
        self.check_capacity(morph.as_ref())?;
        let range = self.alloc.alloc_phantom(size);
        // Registration flushes the range from the caches (Sec 4.1) —
        // even freshly allocated phantom addresses can be cached already
        // (prefetcher overshoot past a neighbouring range).
        self.hier.invalidate_range_everywhere(range, 0);
        let id = self.hier.registry.insert(MorphEntry {
            range,
            level,
            morph: Some(morph),
            home_tile: register_tile,
            quarantined: None,
        });
        Ok(MorphHandle::new(id, range, level))
    }

    /// [`TakoSystem::register_phantom_at`] registered from tile 0.
    ///
    /// # Errors
    ///
    /// See [`TakoSystem::register_phantom_at`].
    pub fn register_phantom(
        &mut self,
        level: MorphLevel,
        size: u64,
        morph: Box<dyn Morph>,
    ) -> Result<MorphHandle, TakoError> {
        self.register_phantom_at(0, level, size, morph)
    }

    /// Register `morph` on an existing DRAM-backed `range` (Sec 4.1's
    /// registerReal). Load-store semantics are preserved: `onMiss` runs
    /// in parallel with the fetch, `onWriteback` interposes before the
    /// writeback. The range is flushed first, as the paper requires.
    ///
    /// # Errors
    ///
    /// [`TakoError::RangeOverlap`] if another Morph covers any byte of
    /// `range`; [`TakoError::EmptyRange`] / [`TakoError::FabricCapacity`]
    /// as for phantom registration.
    pub fn register_real_at(
        &mut self,
        register_tile: TileId,
        level: MorphLevel,
        range: AddrRange,
        morph: Box<dyn Morph>,
        now: Cycle,
    ) -> Result<MorphHandle, TakoError> {
        if range.size == 0 {
            return Err(TakoError::EmptyRange);
        }
        self.check_capacity(morph.as_ref())?;
        if let Some(existing) = self.hier.registry.overlapping(range) {
            return Err(TakoError::RangeOverlap {
                requested: range,
                existing,
            });
        }
        // Registration flushes the range from the caches (Sec 4.1).
        self.hier.invalidate_range_everywhere(range, now);
        let id = self.hier.registry.insert(MorphEntry {
            range,
            level,
            morph: Some(morph),
            home_tile: register_tile,
            quarantined: None,
        });
        Ok(MorphHandle::new(id, range, level))
    }

    /// [`TakoSystem::register_real_at`] registered from tile 0 at cycle 0.
    ///
    /// # Errors
    ///
    /// See [`TakoSystem::register_real_at`].
    pub fn register_real(
        &mut self,
        level: MorphLevel,
        range: AddrRange,
        morph: Box<dyn Morph>,
    ) -> Result<MorphHandle, TakoError> {
        self.register_real_at(0, level, range, morph, 0)
    }

    /// Unregister a Morph: flush its range (triggering final callbacks),
    /// remove the registration, and shoot down engine rTLBs. Returns the
    /// Morph object and the completion cycle.
    ///
    /// # Errors
    ///
    /// [`TakoError::NotRegistered`] if the handle is stale.
    pub fn unregister(
        &mut self,
        handle: MorphHandle,
        now: Cycle,
    ) -> Result<(Box<dyn Morph>, Cycle), TakoError> {
        let entry = self
            .hier
            .registry
            .entry(handle.id())
            .ok_or(TakoError::NotRegistered)?;
        let tile = entry.home_tile;
        let done = self.hier.flush_range(tile, handle.range(), now);
        let entry = self
            .hier
            .registry
            .remove(handle.id())
            .ok_or(TakoError::NotRegistered)?;
        for engine in self.hier.engines.iter_mut().flatten() {
            engine.forget_morph(handle.id());
            engine.rtlb.shootdown();
        }
        let morph = entry.morph.ok_or(TakoError::NotRegistered)?;
        Ok((morph, done))
    }

    /// täkō's flushData (Sec 4.4): flush every cached line of the Morph's
    /// range, blocking until all callbacks complete. Returns that cycle.
    pub fn flush_data(&mut self, handle: MorphHandle, now: Cycle) -> Cycle {
        let tile = self
            .hier
            .registry
            .entry(handle.id())
            .map(|e| e.home_tile)
            .unwrap_or(0);
        self.hier.flush_range(tile, handle.range(), now)
    }

    /// Borrow a registered Morph's object for inspection (e.g., reading
    /// application-level results accumulated in Morph-local state).
    pub fn with_morph<R>(
        &mut self,
        handle: MorphHandle,
        f: impl FnOnce(&mut dyn Morph) -> R,
    ) -> Option<R> {
        let mut m = self.hier.registry.checkout(handle.id())?;
        let r = f(m.as_mut());
        self.hier.registry.checkin(handle.id(), m);
        Some(r)
    }

    // ------------------------------------------------------------------
    // Results & inspection
    // ------------------------------------------------------------------

    /// Interrupts raised so far, draining the queue.
    pub fn take_interrupts(&mut self) -> Vec<Interrupt> {
        std::mem::take(&mut self.hier.interrupts)
    }

    /// Statistics (immutable view).
    pub fn stats_view(&self) -> &Stats {
        &self.hier.bus.stats
    }

    /// Dynamic energy of everything simulated so far.
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy.tally(&self.hier.bus.stats)
    }

    /// The observability observer attached to the accounting bus, when
    /// tracing was armed (`tako_sim::trace::arm`) before this system was
    /// built or a traced snapshot was restored. `None` otherwise.
    pub fn observer(&self) -> Option<&tako_sim::trace::Observer> {
        self.hier.bus.observer()
    }

    // ------------------------------------------------------------------
    // Checkpoint / resume
    // ------------------------------------------------------------------

    /// A short fingerprint of the configuration, embedded in every
    /// snapshot so a resume into a differently parameterized system is
    /// rejected before any component state is touched.
    fn config_fingerprint(cfg: &SystemConfig) -> String {
        let mut h = Sha256::new();
        h.update(format!("{cfg:?}").as_bytes());
        let d = h.finish();
        d[..8].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Serialize the entire system — hierarchy, allocator, and config
    /// fingerprint — into a versioned, checksummed snapshot envelope.
    /// Call only at a quiescent point (between accesses); the campaign
    /// runner uses the watchdog epoch boundary signalled by
    /// [`TakoSystem::take_checkpoint_due`].
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        checkpoint::encode(self)
    }

    /// Restore a snapshot produced by [`TakoSystem::snapshot_bytes`]
    /// into this freshly built system. The caller must first rebuild the
    /// system from the *same configuration* and re-register the same
    /// Morphs in the same order — object structure (geometries, engine
    /// fabrics, Morph code) is reconstructed from config, then verified
    /// against the snapshot; only mutable state is restored.
    ///
    /// # Errors
    ///
    /// [`TakoError::BadSnapshot`] on a corrupt or truncated envelope,
    /// version skew, or any component whose rebuilt structure contradicts
    /// the snapshot (wrong geometry, missing Morph, config mismatch).
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), TakoError> {
        checkpoint::decode(bytes, self)?;
        Ok(())
    }

    /// True once per elapsed checkpoint interval (`cfg.checkpoint`);
    /// see [`Hierarchy::take_checkpoint_due`].
    pub fn take_checkpoint_due(&mut self) -> bool {
        self.hier.take_checkpoint_due()
    }

    /// Functional read of a `u64` *with timing*, as a one-off core access
    /// from `tile` at cycle `now` (useful in tests and docs). Returns the
    /// value and the completion cycle.
    pub fn debug_read_u64(&mut self, tile: TileId, addr: Addr, now: Cycle) -> (u64, Cycle) {
        let done = self.hier.core_access(tile, AccessKind::Read, addr, now);
        (self.hier.mem.read_u64(addr), done)
    }
}

impl Snapshot for TakoSystem {
    fn save(&self, w: &mut SnapWriter) {
        w.section("tako");
        w.put_str(&Self::config_fingerprint(&self.hier.cfg));
        self.alloc.save(w);
        self.hier.save(w);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("tako")?;
        let fp = r.get_str()?;
        let ours = Self::config_fingerprint(&self.hier.cfg);
        if fp != ours {
            return Err(SnapError::StateMismatch(format!(
                "config fingerprint: snapshot {fp}, rebuilt {ours}"
            )));
        }
        self.alloc.load(r)?;
        self.hier.load(r)?;
        Ok(())
    }
}

impl MemSystem for TakoSystem {
    fn data(&mut self) -> &mut PhysMem {
        &mut self.hier.mem
    }

    fn timed_access(&mut self, tile: TileId, kind: AccessKind, addr: Addr, now: Cycle) -> Cycle {
        self.hier.core_access(tile, kind, addr, now)
    }

    fn timed_flush(&mut self, tile: TileId, range: AddrRange, now: Cycle) -> Cycle {
        self.hier.flush_range(tile, range, now)
    }

    #[inline]
    fn stats(&mut self) -> &mut Stats {
        &mut self.hier.bus.stats
    }

    fn timed_demote(&mut self, tile: TileId, addr: Addr, now: Cycle) -> Cycle {
        self.hier.demote_line(tile, addr);
        now
    }

    fn take_interrupt(&mut self, tile: TileId) -> Option<Cycle> {
        let pos = self.hier.interrupts.iter().position(|i| i.tile == tile)?;
        Some(self.hier.interrupts.remove(pos).cycle)
    }
}
