//! The Morph programming interface and registry (Sec 4).
//!
//! A [`Morph`] bundles the callbacks (and any local state) that define a
//! polymorphic cache hierarchy instance. Registering it associates the
//! callbacks with an address range at the private L2 or the shared LLC;
//! the [`MorphRegistry`] is the simulator's model of the TLB registration
//! bits (Sec 5.1) plus the OS-side table of registered ranges (Sec 6).

use tako_mem::addr::{Addr, AddrRange};

use crate::ctx::EngineCtx;

/// Identifier of a registered Morph.
pub type MorphId = usize;

/// Where a Morph's callbacks run (Sec 4.1): täkō supports the private L2
/// and the shared LLC, but not the L1 (too tightly coupled to the core)
/// or the memory controller (below the coherence protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MorphLevel {
    /// Registered at the requesting tile's private L2.
    Private,
    /// Registered at the shared LLC (callbacks run at the owning bank's
    /// engine).
    Shared,
}

/// Which cache event triggered a callback (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallbackKind {
    /// A miss: the callback generates data for the requested address.
    /// On phantom ranges it defines the result of the load; on real
    /// ranges it runs in parallel with reading memory. Must be free of
    /// side effects.
    OnMiss,
    /// Eviction of unmodified data. Must be free of side effects.
    OnEviction,
    /// Eviction of modified data. May have side effects — modified data
    /// corresponds to a committed store in some software thread.
    OnWriteback,
}

/// A polymorphic cache hierarchy instance: callbacks plus local state.
///
/// All callbacks default to doing nothing, so a Morph implements only the
/// events it cares about (e.g., the side-channel detector implements only
/// [`Morph::on_eviction`], Table 7). Callback code runs on the engine's
/// dataflow fabric; every operation performed through the [`EngineCtx`]
/// is timed by the fabric model.
///
/// Callbacks should follow the paper's restrictions (Sec 4.3): `on_miss`
/// and `on_eviction` should write only the affected line and Morph-local
/// state; callbacks must not access data with a Morph registered at the
/// same or a higher level of the hierarchy. The restriction is enforced:
/// the context suppresses the illegal access and the hierarchy
/// quarantines the offending Morph, degrading its range to baseline
/// hardware behavior (mirroring the architecture's deadlock rule without
/// taking the simulation down).
pub trait Morph {
    /// Short name for diagnostics.
    fn name(&self) -> &str;

    /// Handle a miss on `ctx.addr()` (Table 1: generates data for the
    /// requested address).
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let _ = ctx;
    }

    /// Handle the eviction of an unmodified line.
    fn on_eviction(&mut self, ctx: &mut EngineCtx<'_>) {
        let _ = ctx;
    }

    /// Handle the eviction of a modified line.
    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        let _ = ctx;
    }

    /// Static fabric instructions this Morph's callbacks occupy (checked
    /// against Table 2's 25 PEs × 16 instructions at registration). The
    /// paper's largest Morph (HATS) uses 94.
    fn static_instrs(&self) -> u32 {
        32
    }

    /// If true, the engine serializes this Morph's callbacks with respect
    /// to each other (not just per line). HATS uses this to simplify
    /// contention on its shared traversal stack (Sec 8.2).
    fn serialize_callbacks(&self) -> bool {
        false
    }

    /// Serialize Morph-local mutable state into a checkpoint. Morphs
    /// whose callbacks keep no state outside simulated memory (the
    /// common case — counters and work lists usually live in phantom or
    /// real ranges, which the backing store snapshots) can keep the
    /// default, which writes nothing.
    fn save_state(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        let _ = w;
    }

    /// Restore state written by [`Morph::save_state`]. The registry
    /// frames each Morph's bytes, so a Morph that reads more or less
    /// than it wrote fails the resume loudly instead of corrupting its
    /// neighbours.
    fn load_state(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        let _ = r;
        Ok(())
    }
}

/// A registered Morph, as returned by `register_*`. Software threads use
/// the handle to flush or unregister the Morph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorphHandle {
    id: MorphId,
    range: AddrRange,
    level: MorphLevel,
}

impl MorphHandle {
    pub(crate) fn new(id: MorphId, range: AddrRange, level: MorphLevel) -> Self {
        MorphHandle { id, range, level }
    }

    /// The registry id.
    pub fn id(&self) -> MorphId {
        self.id
    }

    /// The address range the Morph is registered on.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// The registration level.
    pub fn level(&self) -> MorphLevel {
        self.level
    }
}

pub(crate) struct MorphEntry {
    pub range: AddrRange,
    pub level: MorphLevel,
    /// `None` while the Morph is checked out for callback execution.
    pub morph: Option<Box<dyn Morph>>,
    /// The tile whose engine runs PRIVATE callbacks (the registering
    /// tile). Unused for SHARED Morphs, whose callbacks run at the owning
    /// bank.
    pub home_tile: usize,
    /// Why this Morph was quarantined, or `None` while healthy. A
    /// quarantined Morph stays registered (so its range keeps routing
    /// through the hierarchy) but its callbacks are skipped and its
    /// range behaves like baseline SRRIP hardware.
    pub quarantined: Option<String>,
}

/// The table of registered Morphs: models the TLB registration bits and
/// the OS bookkeeping of Sec 6.
#[derive(Default)]
pub struct MorphRegistry {
    entries: Vec<Option<MorphEntry>>,
}

impl MorphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MorphRegistry {
            entries: Vec::new(),
        }
    }

    /// Find the registration covering `range`, if any overlaps.
    pub fn overlapping(&self, range: AddrRange) -> Option<AddrRange> {
        self.entries
            .iter()
            .flatten()
            .map(|e| e.range)
            .find(|r| r.overlaps(&range))
    }

    pub(crate) fn insert(&mut self, entry: MorphEntry) -> MorphId {
        if let Some(i) = self.entries.iter().position(|e| e.is_none()) {
            self.entries[i] = Some(entry);
            i
        } else {
            self.entries.push(Some(entry));
            self.entries.len() - 1
        }
    }

    pub(crate) fn remove(&mut self, id: MorphId) -> Option<MorphEntry> {
        self.entries.get_mut(id)?.take()
    }

    pub(crate) fn entry(&self, id: MorphId) -> Option<&MorphEntry> {
        self.entries.get(id)?.as_ref()
    }

    /// The Morph covering `addr`, with its level — the per-access lookup
    /// the TLB bits provide (two bits per page in hardware; a scan over
    /// the handful of live registrations here).
    #[inline]
    pub fn lookup(&self, addr: Addr) -> Option<(MorphId, MorphLevel)> {
        self.entries.iter().enumerate().find_map(|(i, e)| {
            let e = e.as_ref()?;
            e.range.contains(addr).then_some((i, e.level))
        })
    }

    /// Check out the Morph object for callback execution (hardware
    /// analogy: the bitstream is loaded on the fabric).
    pub(crate) fn checkout(&mut self, id: MorphId) -> Option<Box<dyn Morph>> {
        self.entries.get_mut(id)?.as_mut()?.morph.take()
    }

    /// Return a checked-out Morph object.
    pub(crate) fn checkin(&mut self, id: MorphId, morph: Box<dyn Morph>) {
        if let Some(Some(e)) = self.entries.get_mut(id) {
            debug_assert!(e.morph.is_none(), "double check-in");
            e.morph = Some(morph);
        }
    }

    /// Quarantine a Morph after a callback fault. Returns true the
    /// first time (so the caller counts each Morph once); the first
    /// reason sticks.
    pub(crate) fn quarantine(&mut self, id: MorphId, reason: impl Into<String>) -> bool {
        match self.entries.get_mut(id) {
            Some(Some(e)) if e.quarantined.is_none() => {
                e.quarantined = Some(reason.into());
                true
            }
            _ => false,
        }
    }

    /// The quarantine reason for `id`, if it has been quarantined.
    pub fn quarantined(&self, id: MorphId) -> Option<&str> {
        self.entries.get(id)?.as_ref()?.quarantined.as_deref()
    }

    /// All quarantined Morphs, as `(id, reason)`.
    pub fn quarantined_morphs(&self) -> impl Iterator<Item = (MorphId, &str)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| Some((i, e.as_ref()?.quarantined.as_deref()?)))
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl tako_sim::checkpoint::Snapshot for MorphRegistry {
    /// Boxed Morph objects cannot be rebuilt from bytes; a resume
    /// re-registers the same Morphs first (structure comes from the
    /// driver), then this load verifies every slot matches the snapshot
    /// — range, level, home tile — and restores the mutable bits:
    /// quarantine status and each Morph's [`Morph::save_state`] payload.
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("registry");
        w.put_len(self.entries.len());
        for slot in &self.entries {
            w.put_bool(slot.is_some());
            let Some(e) = slot else { continue };
            w.put_u64(e.range.base);
            w.put_u64(e.range.size);
            w.put_u8(match e.level {
                MorphLevel::Private => 0,
                MorphLevel::Shared => 1,
            });
            w.put_usize(e.home_tile);
            w.put_bool(e.quarantined.is_some());
            w.put_str(e.quarantined.as_deref().unwrap_or(""));
            // Frame the Morph's own state so a buggy save/load pair
            // cannot desynchronize the rest of the snapshot.
            let mut state = tako_sim::checkpoint::SnapWriter::new();
            if let Some(m) = &e.morph {
                m.save_state(&mut state);
            }
            w.put_bytes(state.as_bytes());
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::{SnapError, SnapReader};
        r.section("registry")?;
        r.get_len_expect("morph registry slots", self.entries.len())?;
        for (i, slot) in self.entries.iter_mut().enumerate() {
            let occupied = r.get_bool()?;
            if occupied != slot.is_some() {
                return Err(SnapError::StateMismatch(format!(
                    "morph slot {i}: snapshot occupied={occupied}, rebuilt occupied={}",
                    slot.is_some()
                )));
            }
            let Some(e) = slot else { continue };
            let range = AddrRange {
                base: r.get_u64()?,
                size: r.get_u64()?,
            };
            let level = match r.get_u8()? {
                0 => MorphLevel::Private,
                1 => MorphLevel::Shared,
                x => {
                    return Err(SnapError::StateMismatch(format!(
                        "morph slot {i}: unknown level tag {x}"
                    )))
                }
            };
            let home_tile = r.get_usize()?;
            if range != e.range || level != e.level || home_tile != e.home_tile {
                return Err(SnapError::StateMismatch(format!(
                    "morph slot {i}: snapshot ({range:?}, {level:?}, tile {home_tile}) \
                     does not match re-registration ({:?}, {:?}, tile {})",
                    e.range, e.level, e.home_tile
                )));
            }
            let has_quarantine = r.get_bool()?;
            let reason = r.get_str()?;
            e.quarantined = has_quarantine.then_some(reason);
            let state = r.get_bytes()?;
            let mut sr = SnapReader::new(state);
            if let Some(m) = &mut e.morph {
                m.load_state(&mut sr)?;
            }
            sr.finish()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Morph for Nop {
        fn name(&self) -> &str {
            "nop"
        }
    }

    fn entry(base: Addr, size: u64, level: MorphLevel) -> MorphEntry {
        MorphEntry {
            range: AddrRange::new(base, size),
            level,
            morph: Some(Box::new(Nop)),
            home_tile: 0,
            quarantined: None,
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut r = MorphRegistry::new();
        let a = r.insert(entry(0x1000, 0x100, MorphLevel::Private));
        let b = r.insert(entry(0x2000, 0x100, MorphLevel::Shared));
        assert_eq!(r.len(), 2);
        assert_eq!(r.lookup(0x1010), Some((a, MorphLevel::Private)));
        assert_eq!(r.lookup(0x20FF), Some((b, MorphLevel::Shared)));
        assert_eq!(r.lookup(0x3000), None);
        assert!(r.remove(a).is_some());
        assert_eq!(r.lookup(0x1010), None);
        assert!(r.remove(a).is_none());
        // Freed slots are reused.
        let c = r.insert(entry(0x3000, 0x40, MorphLevel::Private));
        assert_eq!(c, a);
    }

    #[test]
    fn overlap_detection() {
        let mut r = MorphRegistry::new();
        r.insert(entry(0x1000, 0x100, MorphLevel::Private));
        assert!(r.overlapping(AddrRange::new(0x10FF, 1)).is_some());
        assert!(r.overlapping(AddrRange::new(0x1100, 64)).is_none());
    }

    #[test]
    fn checkout_checkin() {
        let mut r = MorphRegistry::new();
        let id = r.insert(entry(0, 64, MorphLevel::Private));
        let m = r.checkout(id).expect("morph present");
        assert!(r.checkout(id).is_none(), "double checkout");
        // Lookup still works while checked out (TLB bits stay set).
        assert!(r.lookup(0).is_some());
        r.checkin(id, m);
        assert!(r.checkout(id).is_some());
    }

    #[test]
    fn quarantine_is_sticky_and_counted_once() {
        let mut r = MorphRegistry::new();
        let id = r.insert(entry(0, 64, MorphLevel::Private));
        assert_eq!(r.quarantined(id), None);
        assert!(r.quarantine(id, "budget overrun"));
        assert!(!r.quarantine(id, "illegal action"), "second is a no-op");
        assert_eq!(r.quarantined(id), Some("budget overrun"));
        // Lookup still resolves (the range stays registered, degraded).
        assert!(r.lookup(0).is_some());
        assert_eq!(
            r.quarantined_morphs().collect::<Vec<_>>(),
            vec![(id, "budget overrun")]
        );
        assert!(!r.quarantine(999, "nonexistent"));
    }

    #[test]
    fn default_callbacks_are_noops() {
        let mut n = Nop;
        assert_eq!(n.static_instrs(), 32);
        assert!(!n.serialize_callbacks());
        let _ = &mut n; // on_miss etc. exercised in integration tests
    }
}
