//! Prefetch stages: stride training and prefetch issue into the L2.
//!
//! Training happens at the tail of every non-streaming core access
//! ([`Hierarchy::train_prefetcher`]); each issued prefetch is a
//! [`MemTxn`] of kind [`TxnKind::Prefetch`](super::TxnKind::Prefetch)
//! that runs the same `fetch_shared` stage demand misses use — with a
//! distant insertion priority, and triggering `onMiss` for PRIVATE
//! Morphs, which is exactly the HATS decoupling mechanism (Sec 8.2).

use tako_cache::array::InsertKind;
use tako_mem::addr::{is_phantom, Addr};
use tako_sim::event::{TxnEvent, TxnSink};
use tako_sim::{Cycle, TileId};

use super::txn::MemTxn;
use super::Hierarchy;
use crate::morph::{CallbackKind, MorphLevel};

impl Hierarchy {
    /// Train the stride prefetcher on a demand access and issue whatever
    /// it predicts.
    pub(super) fn train_prefetcher(&mut self, tile: TileId, addr: Addr, t: Cycle) {
        let pf = self.tiles[tile].prefetcher.observe(addr);
        for &p in pf.as_slice() {
            self.issue_prefetch(tile, p, t);
        }
    }

    /// Issue one prefetch into `tile`'s L2 (may trigger onMiss for a
    /// PRIVATE Morph — the HATS decoupling mechanism).
    pub(super) fn issue_prefetch(&mut self, tile: TileId, line: Addr, t: Cycle) {
        if self.tiles[tile].l2.probe(line).is_some() || self.tiles[tile].l1d.probe(line).is_some() {
            return;
        }
        self.bus.emit(TxnEvent::PrefetchIssued);
        let morph = self.registry.lookup(line);
        let (ready, is_morph) = match morph {
            Some((id, MorphLevel::Private)) => {
                if is_phantom(line) {
                    self.zero_line(line);
                    let cb = self.run_callback(tile, id, CallbackKind::OnMiss, line, t);
                    (cb, true)
                } else {
                    let mut txn = MemTxn::prefetch(tile, line, t);
                    let (fetch, _, _) = self.fetch_shared(&mut txn, t);
                    let cb = self.run_callback(tile, id, CallbackKind::OnMiss, line, t);
                    (fetch.max(cb), true)
                }
            }
            _ => {
                let mut txn = MemTxn::prefetch(tile, line, t);
                let (fetch, _, _) = self.fetch_shared(&mut txn, t);
                (fetch, false)
            }
        };
        if let Some(ev) =
            self.tiles[tile]
                .l2
                .insert(line, false, is_morph, InsertKind::Prefetch, ready)
        {
            self.handle_l2_evict(tile, ev, t);
        }
    }
}
