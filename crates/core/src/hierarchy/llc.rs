//! Shared-level stages: the banked LLC and everything below it.
//!
//! [`Hierarchy::fetch_shared`] is the spine of the pipeline — every
//! demand, prefetch, and engine fill that misses the private level
//! arrives here as a [`MemTxn`] and is served by a composition of
//! stages: bank arbitration ([`Hierarchy::bank_start`]), the directory
//! hit path (owner downgrade + sharer invalidation, `coherence.rs`),
//! MSHR admission ([`Hierarchy::mshr_admit`], Sec 5.2), and the
//! below-LLC resolve ([`Hierarchy::fetch_line_below`]: DRAM in parallel
//! with `onMiss`, or callback-materialized phantoms).

use tako_cache::array::InsertKind;
use tako_mem::addr::{is_phantom, Addr};
use tako_noc::Payload;
use tako_sim::config::LINE_BYTES;
use tako_sim::event::{LevelId, TxnEvent, TxnSink};
use tako_sim::fault::FaultKind;
use tako_sim::{Cycle, TileId};

use super::coherence::PrivateScope;
use super::txn::{CachePort, DramEdge, LevelPort, MemTxn};
use super::{Hierarchy, SchedPoint};
use crate::morph::{CallbackKind, MorphId, MorphLevel};

impl Hierarchy {
    /// Serialize access to one LLC bank: each request occupies the tag
    /// pipeline for a cycle.
    #[inline]
    pub(super) fn bank_start(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.llc_next_free[bank]);
        self.llc_next_free[bank] = start + 1;
        start
    }

    /// Fetch `txn.line` through the LLC, arriving at the private level's
    /// edge at `t`. Returns `(completion, at_bank, exclusive)`: the
    /// cycle the line arrives back at the requester, the cycle it was
    /// ready at the bank, and whether no other tile holds a copy.
    pub(super) fn fetch_shared(&mut self, txn: &mut MemTxn, t: Cycle) -> (Cycle, Cycle, bool) {
        let (tile, line) = (txn.tile, txn.line);
        let write = txn.is_write();
        let bank = self.mesh.bank_of_line(line);
        let mut t = t + self
            .mesh
            .transfer(tile, bank, Payload::Control, &mut self.bus);
        t = self.bank_start(bank, t) + self.cfg.llc_bank.tag_latency;
        txn.stamps.llc = Some(t);

        // lookup (not probe) so a hit is found and promoted in one walk;
        // the field updates below re-probe only on the paths that need
        // coherence work in between.
        let mut port = CachePort::new(&mut self.llc[bank], LevelId::Llc);
        let probe = port.lookup_counted(line, &mut self.bus).map(|mut e| {
            e.set_prefetched(false);
            (e.ready_at(), e.owner(), e.sharers())
        });
        let exclusive;
        match probe {
            Some((ready_at, owner, sharers)) => {
                t = t.max(ready_at);
                // Dirty data lives in another tile's L2: fetch & downgrade.
                if let Some(o) = owner {
                    let o = o as usize;
                    if o != tile {
                        t = self.downgrade_owner(bank, o, line, t);
                    }
                }
                if write {
                    let others = sharers & !(1u64 << tile);
                    let mut inval_lat = 0;
                    for s in Self::sharer_tiles(others) {
                        self.bus.emit(TxnEvent::CoherenceInval);
                        let d = self.merge_private_dirty(s, line, PrivateScope::L1AndL2);
                        let hop = self.mesh.transfer(bank, s, Payload::Control, &mut self.bus);
                        inval_lat = inval_lat.max(hop);
                        if d {
                            if let Some(mut e) = self.llc[bank].probe_mut(line) {
                                e.set_dirty(true);
                            }
                        }
                    }
                    t += inval_lat;
                    if let Some(mut e) = self.llc[bank].probe_mut(line) {
                        e.set_sharers(if txn.track_sharer { 1 << tile } else { 0 });
                        e.set_owner(txn.track_sharer.then_some(tile as u8));
                    }
                    exclusive = true;
                } else if let Some(mut e) = self.llc[bank].probe_mut(line) {
                    if txn.track_sharer {
                        e.set_sharers(e.sharers() | (1 << tile));
                    }
                    exclusive = e.sharers() & !(1u64 << tile) == 0 && e.owner().is_none();
                    // A second sharer ends any clean-exclusive copy: the
                    // holder must stop taking silent write hits before
                    // this response is visible (E -> S). The downgrade
                    // notification rides the directory's existing
                    // response traffic, so no extra hop is charged.
                    for s in Self::sharer_tiles(sharers & !(1u64 << tile)) {
                        if let Some(mut le) = self.tiles[s].l2.probe_mut(line) {
                            le.set_exclusive(false);
                        }
                    }
                } else {
                    // Line evicted out from under the hit path: claim
                    // nothing (a later write pays for an upgrade).
                    exclusive = false;
                }
                t += self.cfg.llc_bank.data_latency;
            }
            None => {
                let morph = self.registry.lookup(line);
                let for_callback = matches!(morph, Some((_, MorphLevel::Shared)));
                t = self.mshr_admit(bank, t, for_callback);
                let (mut ready, is_morph) = self.fetch_line_below(bank, line, t, morph);
                txn.stamps.fill = Some(ready);
                // Injected lost/late memory response. Prefetch fills are
                // skipped: a delayed prefetch that is evicted unused
                // would never surface to a demand access, and the
                // campaign asserts every injected stall is detected.
                if txn.fill_kind != InsertKind::Prefetch {
                    if let Some(delay) = self.bus.poll_fault(t, FaultKind::DelayedDram) {
                        ready += delay;
                    }
                }
                self.mshrs[bank].try_alloc(line, ready, for_callback);
                if let Some(ev) = self.llc[bank].insert(line, false, is_morph, txn.fill_kind, ready)
                {
                    self.handle_llc_evict(bank, ev, t);
                }
                // Genuinely fallible: handle_llc_evict can run callbacks
                // whose own traffic evicts the just-inserted line.
                if txn.track_sharer {
                    if let Some(mut e) = self.llc[bank].probe_mut(line) {
                        e.set_sharers(1 << tile);
                        e.set_owner(write.then_some(tile as u8));
                    }
                }
                exclusive = true;
                t = ready + self.cfg.llc_bank.data_latency;
            }
        }
        let resp = self.mesh.transfer(bank, tile, Payload::Line, &mut self.bus);
        (t + resp, t, exclusive)
    }

    /// LLC MSHR admission (Sec 5.2): drain retired fills, apply injected
    /// pressure, and — in fault campaigns only — stall until an entry
    /// (outside the callback reservation) frees up. Returns the
    /// admission cycle.
    fn mshr_admit(&mut self, bank: usize, mut t: Cycle, for_callback: bool) -> Cycle {
        // A scheduler may hold retired fills across this admission to
        // explore admit/drain orderings; hardware always drains first.
        if self.sched_choose(SchedPoint::MshrDrain, 2, 0) == 0 {
            self.mshrs[bank].drain(t);
        }
        if let Some(extra) = self.bus.poll_fault(t, FaultKind::MshrPressure) {
            // Injected pressure spike: phantom fills occupy entries for
            // a while, forcing the stall path below.
            for k in 0..extra {
                self.mshrs[bank].try_alloc(u64::MAX - k * LINE_BYTES, t + 100 + k, false);
            }
        }
        // The stall path engages only in fault campaigns: the recursive
        // timing model retires accesses in order, so a full file in a
        // normal run is a tracking artifact and stalling on it would
        // perturb the calibrated baseline.
        if !self.bus.faults_inert() {
            while !self.mshrs[bank].can_alloc(for_callback) {
                self.bus.emit(TxnEvent::MshrStall);
                t = self.mshrs[bank]
                    .earliest_completion()
                    .map_or(t + 1, |c| c.max(t + 1));
                self.mshrs[bank].drain(t);
            }
        }
        t
    }

    /// Resolve a line below the LLC: a SHARED Morph's `onMiss` runs at
    /// the bank (in parallel with the DRAM fetch for real lines; alone
    /// for phantom lines, which it materializes); unmanaged real lines
    /// come from DRAM. Returns `(ready, is_morph)`.
    fn fetch_line_below(
        &mut self,
        bank: usize,
        line: Addr,
        t: Cycle,
        morph: Option<(MorphId, MorphLevel)>,
    ) -> (Cycle, bool) {
        match morph {
            Some((id, MorphLevel::Shared)) => {
                if is_phantom(line) {
                    self.zero_line(line);
                    let cb = self.run_callback(bank, id, CallbackKind::OnMiss, line, t);
                    (cb, true)
                } else {
                    // onMiss runs in parallel with the fetch.
                    let mem = self.dram.read_line(line, t, &mut self.bus);
                    let cb = self.run_callback(bank, id, CallbackKind::OnMiss, line, t);
                    (mem.max(cb), true)
                }
            }
            _ => {
                if is_phantom(line) {
                    // A shared phantom line with no Morph (e.g. after
                    // unregistration): materialize zeroes.
                    (t, false)
                } else {
                    (self.dram.read_line(line, t, &mut self.bus), false)
                }
            }
        }
    }

    /// Write a dirty line from a tile's L2 (or engine L1d) back to the
    /// LLC; phantom (SHARED-Morph) lines re-insert, real lines mark dirty.
    pub(super) fn writeback_to_llc(&mut self, tile: TileId, line: Addr, t: Cycle) {
        let bank = self.mesh.bank_of_line(line);
        let t = t + self.mesh.transfer(tile, bank, Payload::Line, &mut self.bus);
        let t = self.bank_start(bank, t);
        if let Some(mut e) = self.llc[bank].probe_mut(line) {
            e.set_dirty(true);
            e.set_sharers(e.sharers() & !(1u64 << tile));
            if e.owner() == Some(tile as u8) {
                e.set_owner(None);
            }
            return;
        }
        // Not present (engine L1ds and streaming stores are not covered
        // by inclusion): install the dirty line in the LLC so it can
        // coalesce further writes; phantom SHARED-Morph lines keep their
        // Morph bit so the eventual eviction still triggers a callback.
        let is_morph =
            is_phantom(line) && matches!(self.registry.lookup(line), Some((_, MorphLevel::Shared)));
        if let Some(ev) = self.llc[bank].insert(line, true, is_morph, InsertKind::Engine, t) {
            self.handle_llc_evict(bank, ev, t);
        }
    }

    /// A remote memory operation on a SHARED Morph executes directly at
    /// the owning LLC bank (no private-cache allocation).
    pub(super) fn rmo_shared(&mut self, tile: TileId, id: MorphId, line: Addr, t: Cycle) -> Cycle {
        let bank = self.mesh.bank_of_line(line);
        let mut t = t + self
            .mesh
            .transfer(tile, bank, Payload::Control, &mut self.bus);
        t = self.bank_start(bank, t) + self.cfg.llc_bank.tag_latency;
        // Single-pass hit: promote, read the old sharer set, and apply
        // the RMO's unconditional state updates in one tag walk.
        let mut port = CachePort::new(&mut self.llc[bank], LevelId::Llc);
        let present = port.lookup_counted(line, &mut self.bus).map(|mut e| {
            let sharers = e.sharers();
            e.set_prefetched(false);
            e.set_dirty(true);
            e.set_sharers(0);
            (e.ready_at(), sharers)
        });
        match present {
            Some((ready_at, sharers)) => {
                t = t.max(ready_at);
                for s in Self::sharer_tiles(sharers) {
                    self.bus.emit(TxnEvent::CoherenceInval);
                    self.merge_private_dirty(s, line, PrivateScope::L1AndL2);
                }
                t += self.cfg.llc_bank.data_latency;
            }
            None => {
                let (ready, _) =
                    self.fetch_line_below(bank, line, t, Some((id, MorphLevel::Shared)));
                if let Some(ev) = self.llc[bank].insert(line, true, true, InsertKind::Demand, ready)
                {
                    self.handle_llc_evict(bank, ev, t);
                }
                t = ready + self.cfg.llc_bank.data_latency;
            }
        }
        t
    }

    /// Fetch for a non-temporal load: served from the LLC if present
    /// (without promotion or sharer tracking), else straight from DRAM
    /// **without installing in the LLC** — streaming data must not churn
    /// the inclusive LLC, whose evictions would invalidate the L1/L2
    /// copy before the scan finishes the line. Composed from
    /// [`LevelPort`]s: the bank port falls through to the DRAM edge.
    pub(crate) fn fetch_stream(&mut self, tile: TileId, line: Addr, t: Cycle) -> Cycle {
        let bank = self.mesh.bank_of_line(line);
        let mut t = t + self
            .mesh
            .transfer(tile, bank, Payload::Control, &mut self.bus);
        t = self.bank_start(bank, t) + self.cfg.llc_bank.tag_latency;
        let served =
            CachePort::new(&mut self.llc[bank], LevelId::Llc).serve(line, t, &mut self.bus);
        t = match served {
            Some(done) => done,
            None if is_phantom(line) => t,
            // The DRAM edge serves every real line; if that contract
            // ever breaks, degrade to a zero-latency miss rather than
            // tearing down the walk — the checker observes the timing
            // anomaly instead of a panic.
            None => DramEdge::new(&mut self.dram)
                .serve(line, t, &mut self.bus)
                .unwrap_or(t),
        };
        t + self.mesh.transfer(bank, tile, Payload::Line, &mut self.bus)
    }

    // ------------------------------------------------------------------
    // Engine-side access
    // ------------------------------------------------------------------

    /// A memory access issued by a callback running on `tile`'s engine.
    /// PRIVATE-level callbacks reach memory through the tile's L2 (the
    /// engine is clustered with it); SHARED-level callbacks go straight
    /// to the LLC. Fills insert at trrîp's distant priority.
    ///
    /// The engine's own L1d is probed/filled by the caller (`EngineCtx`),
    /// which holds it checked out; this method models everything below.
    pub fn engine_fill(
        &mut self,
        tile: TileId,
        write: bool,
        line: Addr,
        t: Cycle,
        level: MorphLevel,
    ) -> Cycle {
        match level {
            MorphLevel::Private => {
                let l2_cfg = self.cfg.l2;
                // Single-pass hit: promote and update state in one walk.
                let mut port = CachePort::new(&mut self.tiles[tile].l2, LevelId::L2);
                let hit = port.lookup_counted(line, &mut self.bus).map(|mut e| {
                    e.set_prefetched(false);
                    if write {
                        e.set_dirty(true);
                    }
                    e.ready_at()
                });
                match hit {
                    Some(ready_at) => (t + l2_cfg.tag_latency + l2_cfg.data_latency).max(ready_at),
                    None => {
                        let t2 = t + l2_cfg.tag_latency;
                        // trrîp: engine *streaming* traffic (writes)
                        // inserts at distant priority; engine loads with
                        // reuse insert like demands so the L2 backstops
                        // the small engine L1d.
                        let kind = if write && self.cfg.engine.trrip {
                            InsertKind::Engine
                        } else {
                            InsertKind::Demand
                        };
                        let mut txn = MemTxn::engine(tile, write, line, t2, kind, true);
                        let (fetch, _, _) = self.fetch_shared(&mut txn, t2);
                        let done = fetch + l2_cfg.data_latency;
                        if let Some(ev) = self.tiles[tile].l2.insert(line, write, false, kind, done)
                        {
                            self.handle_l2_evict(tile, ev, t2);
                        }
                        done
                    }
                }
            }
            MorphLevel::Shared => {
                let kind = if self.cfg.engine.trrip {
                    InsertKind::Engine
                } else {
                    InsertKind::Demand
                };
                let mut txn = MemTxn::engine(tile, write, line, t, kind, false);
                let (_, at_bank, _) = self.fetch_shared(&mut txn, t);
                if write {
                    let bank = self.mesh.bank_of_line(line);
                    if let Some(mut e) = self.llc[bank].probe_mut(line) {
                        e.set_dirty(true);
                    }
                }
                at_bank
            }
        }
    }

    /// Writeback of a dirty line displaced from an engine L1d.
    pub fn engine_writeback(&mut self, tile: TileId, line: Addr, t: Cycle) {
        if let Some(mut e) = self.tiles[tile].l2.probe_mut(line) {
            e.set_dirty(true);
            return;
        }
        if !is_phantom(line) {
            self.writeback_to_llc(tile, line, t);
        }
    }
}
