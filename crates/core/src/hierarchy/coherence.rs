//! Coherence stages: directory-driven actions on private caches.
//!
//! Every path that pulls a line out of a tile's private caches — LLC
//! evictions invalidating inclusive copies, write-hit sharer
//! invalidations, upgrades, RMOs, flushes, CLDEMOTE — funnels through
//! [`Hierarchy::merge_private_dirty`], so the L1-before-L2 order and the
//! dirty-bit merge exist in exactly one place. Callers that owe a
//! coherence-invalidation charge emit [`TxnEvent::CoherenceInval`]
//! themselves: the charge belongs to protocol traffic (demand-side
//! invalidations), not to every private-copy removal (flush walks and
//! silent merges are free).

use tako_mem::addr::{is_phantom, Addr, AddrRange};
use tako_noc::Payload;
use tako_sim::event::{TxnEvent, TxnSink};
use tako_sim::{Cycle, TileId};

use super::Hierarchy;

/// How much of a tile's private hierarchy a merge covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum PrivateScope {
    /// Only the L1d (the L2 copy is handled separately by the caller,
    /// e.g. it is itself the eviction victim).
    L1Only,
    /// Both the L1d and the L2 (full private-copy removal).
    L1AndL2,
}

impl Hierarchy {
    /// Invalidate `tile`'s private copies of `line` (L1d first, then —
    /// for [`PrivateScope::L1AndL2`] — the L2), returning whether any
    /// removed copy was dirty. The single definition of the
    /// "merge the private dirty state" stage.
    pub(super) fn merge_private_dirty(
        &mut self,
        tile: TileId,
        line: Addr,
        scope: PrivateScope,
    ) -> bool {
        let mut dirty = false;
        if let Some(ev) = self.tiles[tile].l1d.invalidate(line) {
            dirty |= ev.dirty;
        }
        if scope == PrivateScope::L1AndL2 {
            if let Some(ev) = self.tiles[tile].l2.invalidate(line) {
                dirty |= ev.dirty;
            }
        }
        dirty
    }

    /// Dirty data for a hit line lives in owner `o`'s L2: fetch it
    /// through the bank and downgrade the owner to a clean sharer.
    /// Returns the completion cycle of the three-leg transfer.
    pub(super) fn downgrade_owner(&mut self, bank: usize, o: usize, line: Addr, t: Cycle) -> Cycle {
        let t = t
            + self.mesh.transfer(bank, o, Payload::Control, &mut self.bus)
            + self.cfg.l2.data_latency
            + self.mesh.transfer(o, bank, Payload::Line, &mut self.bus);
        if let Some(mut le) = self.tiles[o].l2.probe_mut(line) {
            le.set_dirty(false);
            le.set_exclusive(false);
        }
        if let Some(mut le) = self.tiles[o].l1d.probe_mut(line) {
            le.set_dirty(false);
        }
        // A concurrent callback may have evicted the line between the
        // probe and here; skip the directory update rather than assume
        // presence.
        if let Some(mut e) = self.llc[bank].probe_mut(line) {
            e.set_dirty(true);
            e.set_owner(None);
        }
        t
    }

    /// Obtain write permission for a line held shared (upgrade): a
    /// control round-trip to the home bank that invalidates other copies.
    pub(super) fn upgrade(&mut self, tile: TileId, line: Addr, t: Cycle) -> Cycle {
        let bank = self.mesh.bank_of_line(line);
        let mut t = t + self
            .mesh
            .transfer(tile, bank, Payload::Control, &mut self.bus);
        t = self.bank_start(bank, t);
        let sharers = self.llc[bank]
            .probe(line)
            .map(|e| e.sharers() & !(1u64 << tile))
            .unwrap_or(0);
        let mut inval = 0;
        for s in Self::sharer_tiles(sharers) {
            self.bus.emit(TxnEvent::CoherenceInval);
            self.merge_private_dirty(s, line, PrivateScope::L1AndL2);
            inval = inval.max(self.mesh.transfer(bank, s, Payload::Control, &mut self.bus));
        }
        if let Some(mut e) = self.llc[bank].probe_mut(line) {
            e.set_sharers(1 << tile);
            e.set_owner(Some(tile as u8));
        }
        t + inval
            + self
                .mesh
                .transfer(bank, tile, Payload::Control, &mut self.bus)
    }

    /// Invalidate every cached copy of `range` at every level of every
    /// tile (used when (un)registering a Morph: Sec 4.1's range flush).
    /// Dirty real lines write back; no callbacks run (the range has no
    /// Morph at this moment).
    pub fn invalidate_range_everywhere(&mut self, range: AddrRange, now: Cycle) {
        for tile in 0..self.tiles.len() {
            for line in self.tiles[tile].l1d.lines_in_range(range) {
                self.tiles[tile].l1d.invalidate(line);
            }
            for line in self.tiles[tile].l2.lines_in_range(range) {
                if let Some(ev) = self.tiles[tile].l2.invalidate(line) {
                    if ev.dirty && !is_phantom(line) {
                        self.writeback_to_llc(tile, line, now);
                    }
                }
            }
        }
        for bank in 0..self.llc.len() {
            for line in self.llc[bank].lines_in_range(range) {
                if let Some(ev) = self.llc[bank].invalidate(line) {
                    if ev.dirty && !is_phantom(line) {
                        self.dram.write_line(line, now, &mut self.bus);
                    }
                    let _ = ev;
                }
            }
        }
        // Engine L1ds may also hold copies.
        for e in self.engines.iter_mut().flatten() {
            for line in e.l1d.lines_in_range(range) {
                e.l1d.invalidate(line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_cache::array::InsertKind;
    use tako_sim::config::SystemConfig;

    fn small() -> Hierarchy {
        Hierarchy::new(SystemConfig::default_16core())
    }

    #[test]
    fn merge_reports_dirty_from_either_level() {
        let mut h = small();
        // Clean L1 + dirty L2 copy.
        h.tiles[0]
            .l1d
            .insert(64, false, false, InsertKind::Demand, 0);
        h.tiles[0].l2.insert(64, true, false, InsertKind::Demand, 0);
        assert!(h.merge_private_dirty(0, 64, PrivateScope::L1AndL2));
        assert!(h.tiles[0].l1d.probe(64).is_none());
        assert!(h.tiles[0].l2.probe(64).is_none());
        // Nothing cached at all: clean merge.
        assert!(!h.merge_private_dirty(0, 64, PrivateScope::L1AndL2));
    }

    #[test]
    fn l1_only_scope_leaves_l2_untouched() {
        let mut h = small();
        h.tiles[1]
            .l1d
            .insert(128, true, false, InsertKind::Demand, 0);
        h.tiles[1]
            .l2
            .insert(128, false, false, InsertKind::Demand, 0);
        assert!(h.merge_private_dirty(1, 128, PrivateScope::L1Only));
        assert!(h.tiles[1].l1d.probe(128).is_none());
        assert!(
            h.tiles[1].l2.probe(128).is_some(),
            "L1Only scope must not invalidate the L2 copy"
        );
    }
}
