//! The assembled memory hierarchy with täkō interposition (Sec 5),
//! structured as a staged memory-transaction pipeline.
//!
//! [`Hierarchy`] owns every timing-relevant component of the tiled CMP:
//! per-tile L1d/L2/prefetcher, the banked inclusive LLC with an in-tag
//! directory, the mesh, the DRAM controllers, the per-tile engines, the
//! Morph registry, and the backing store. All agents — cores, engines,
//! prefetchers — walk the same arrays, so locality, pollution, and
//! contention interact exactly as they would in hardware.
//!
//! # The pipeline
//!
//! A request is a [`MemTxn`] that flows through stage functions, each in
//! the submodule that owns its level; all side-channel accounting rides
//! the [`AccountingBus`] (`tako_sim::event`), never inline in a walk:
//!
//! ```text
//!            core_access (private)            engine_fill / rmo (llc)
//!                  │                                   │
//!   ┌──────────────▼───────────────────────────────────▼─────────────┐
//!   │ L1d ──miss──▶ L2 ──miss──▶ fetch_shared @ LLC bank ──miss──▶   │
//!   │  │hit          │hit          │hit                  fetch_line  │
//!   │ fill_l1   fill_l1 ◀── insert └─ downgrade_owner /  _below      │
//!   │                      │        sharer invals        (DRAM ∥     │
//!   │                handle_l2_evict (evict)              onMiss)    │
//!   │                      │                              │          │
//!   │            merge_private_dirty (coherence)     handle_llc_evict│
//!   │                      │                              (evict)    │
//!   │              writeback_to_llc ────────────────────▶ │          │
//!   └──────────────────────┬───────────────────────────────┼─────────┘
//!                          ▼                               ▼
//!                   AccountingBus ◀──every stage──  eviction_callback
//!              (Stats + faults + tap)                → run_callback
//! ```
//!
//! * [`txn`] — the transaction vocabulary: [`MemTxn`], [`TxnKind`],
//!   [`StageStamps`], and the [`LevelPort`] trait ([`CachePort`],
//!   [`DramEdge`]) that charges per-level accounting at the port.
//! * `private.rs` — the core-side walk: L1d/L2 stages, non-temporal
//!   stores, the watchdog epoch hook.
//! * `llc.rs` — the shared level: bank arbitration, `fetch_shared`,
//!   MSHR admission (Sec 5.2), below-LLC fills, RMOs, engine fills.
//! * `coherence.rs` — directory actions: `merge_private_dirty`,
//!   owner downgrade, upgrades, range invalidation.
//! * `evict.rs` — eviction chains at both levels, flushData walks, and
//!   the shared `eviction_callback` dispatch.
//! * `prefetch.rs` — stride-prefetch training and issue.
//!
//! The walk implements the paper's semantics:
//!
//! * Misses on a Morph's range invoke `onMiss` at the registered level's
//!   engine. Phantom lines are materialized by the callback alone (no
//!   memory access); real lines fetch in parallel with the callback.
//! * Evictions invoke `onEviction`/`onWriteback` *off the critical path*
//!   of the evicting access; phantom victims are then discarded, real
//!   dirty victims written back after the callback interposes.
//! * The triggering line is locked for the duration of the callback
//!   (enforced by the engine scheduler + the line's `ready_at`).
//! * Remote memory operations on a SHARED Morph execute directly at the
//!   owning LLC bank (PHI's push updates, Sec 8.1).
//! * Engine-issued fills insert at trrîp's distant priority, and every
//!   set keeps a callback-free line (deadlock avoidance).

mod coherence;
mod evict;
mod llc;
mod prefetch;
mod private;
pub mod txn;

pub use txn::{CachePort, DramEdge, LevelPort, MemTxn, StageStamps, TxnKind};

use tako_cache::array::CacheArray;
use tako_cache::mshr::MshrFile;
use tako_cache::prefetch::StridePrefetcher;
use tako_mem::addr::Addr;
use tako_mem::backing::PhysMem;
use tako_mem::dram::Dram;
use tako_noc::Mesh;
use tako_sim::checkpoint::{SnapError, SnapReader, SnapWriter, Snapshot};
use tako_sim::config::{SystemConfig, LINE_BYTES};
use tako_sim::event::{AccountingBus, CbPhase, SinkTap, TxnEvent, TxnSink};
use tako_sim::fault::{FaultInjector, FaultKind};
use tako_sim::{Cycle, TileId};

use crate::ctx::EngineCtx;
use crate::engine::Engine;
use crate::morph::{CallbackKind, MorphId, MorphRegistry};
use crate::watchdog::Watchdog;

/// A nondeterministic decision point in the txn stage walk.
///
/// Hardware resolves each of these with a fixed policy; a model checker
/// installs a [`StageScheduler`] to explore the alternatives. With no
/// scheduler installed every point takes its hardware default, so the
/// walk is byte-identical to a seam-less build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPoint {
    /// Which deferred callback to drain next out of `n` pending.
    /// Hardware drains the writeback buffer LIFO (index `n - 1`).
    DrainPick,
    /// Whether a ready callback runs now (`0`, the hardware path) or is
    /// parked in the writeback buffer first (`1`), exploring the
    /// trigger-vs-drain interleaving of Sec 5.2.
    DeferCallback,
    /// Whether completed MSHR entries drain on bank entry (`0`, the
    /// hardware path) or are held across this admission (`1`),
    /// exploring admit/drain orderings against the Sec 5.2 callback
    /// reservation.
    MshrDrain,
}

/// Pluggable scheduler for the nondeterministic points of the stage
/// walk. `choose` returns an index in `0..n`; out-of-range answers are
/// clamped. Implementations must eventually fall back to the hardware
/// default (e.g. a finite choice script) — a scheduler that defers the
/// same callback forever livelocks the walk by construction.
pub trait StageScheduler {
    /// Pick one of `n` alternatives at `point`.
    fn choose(&mut self, point: SchedPoint, n: usize) -> usize;
}

/// A user-space interrupt raised by a callback (Sec 4.3 / Sec 8.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupt {
    /// Tile whose thread is interrupted (the Morph's registering tile).
    pub tile: TileId,
    /// Cycle the interrupt was raised.
    pub cycle: Cycle,
    /// The cache line whose event triggered it.
    pub line: Addr,
}

/// Per-tile private components.
#[derive(Debug)]
pub struct Tile {
    /// L1 data cache.
    pub l1d: CacheArray,
    /// Private L2.
    pub l2: CacheArray,
    /// L2 stride prefetcher.
    pub prefetcher: StridePrefetcher,
}

/// The full simulated memory system.
pub struct Hierarchy {
    /// System parameters.
    pub cfg: SystemConfig,
    /// The unified accounting bus: counters, fault injector, optional
    /// tap. Every stage emits here; no walk body counts inline.
    pub bus: AccountingBus,
    /// Functional backing store (real *and* phantom data).
    pub mem: PhysMem,
    /// Off-chip memory timing.
    pub dram: Dram,
    /// Mesh interconnect.
    pub mesh: Mesh,
    /// Per-tile private caches.
    pub tiles: Vec<Tile>,
    /// LLC banks (one per tile), inclusive, with in-tag directory.
    pub llc: Vec<CacheArray>,
    llc_next_free: Vec<Cycle>,
    /// Registered Morphs (the TLB bits + OS table).
    pub registry: MorphRegistry,
    /// Per-tile engines; `None` while checked out to run a callback.
    pub engines: Vec<Option<Engine>>,
    /// Interrupts raised by callbacks, awaiting delivery.
    pub interrupts: Vec<Interrupt>,
    /// Callbacks whose Morph was busy when they triggered (a callback's
    /// own memory traffic evicted another line of the same Morph). The
    /// evicted line sits in the writeback buffer until the engine frees
    /// up (Sec 5.2); we run them as soon as the running callback ends.
    pending_callbacks: Vec<(TileId, MorphId, CallbackKind, Addr, Cycle)>,
    callback_depth: usize,
    /// Per-bank LLC MSHR files: bound outstanding fills and enforce the
    /// Sec 5.2 callback reservation.
    pub mshrs: Vec<MshrFile>,
    /// Runtime invariant watchdog and forward-progress detector.
    pub watchdog: Watchdog,
    /// Optional scheduler for the walk's nondeterministic points.
    /// `None` (the default, and the only production configuration)
    /// means every [`SchedPoint`] takes its hardware policy. Host-side
    /// harness state: never serialized by [`Snapshot`].
    scheduler: Option<Box<dyn StageScheduler>>,
    /// Raised by the epoch sweep when the checkpoint cadence
    /// (`cfg.checkpoint`) elapses; the driver drains it with
    /// [`Hierarchy::take_checkpoint_due`] at the next quiescent point.
    ckpt_due: bool,
}

impl Hierarchy {
    /// Build an idle system from `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let tiles = (0..cfg.tiles)
            .map(|_| Tile {
                l1d: CacheArray::new(cfg.l1d),
                l2: CacheArray::new(cfg.l2),
                prefetcher: StridePrefetcher::new(cfg.prefetch),
            })
            .collect();
        // LLC banks are selected by the low line-number bits; each
        // bank's set index must skip them.
        let bank_bits = (cfg.tiles as u64).trailing_zeros();
        let llc = (0..cfg.tiles)
            .map(|_| CacheArray::with_index_shift(cfg.llc_bank, bank_bits))
            .collect();
        let engines = (0..cfg.tiles)
            .map(|_| Some(Engine::new(cfg.engine)))
            .collect();
        let mshrs = (0..cfg.tiles)
            .map(|_| MshrFile::new(cfg.llc_bank.mshrs.max(2) as usize))
            .collect();
        let mut bus = AccountingBus::new(FaultInjector::new(cfg.faults.as_ref()));
        // Observability and supervision taps are diagnostic-only:
        // simulation observables never read them, so attaching one
        // cannot perturb timing. The full observer (armed via
        // `tako_sim::trace::arm`) subsumes the supervision ring — it
        // carries its own stamped event tail — so it wins when both are
        // armed.
        if tako_sim::trace::armed() {
            bus.tap = SinkTap::Observer(Box::default());
        } else if tako_sim::supervise::armed() {
            // Under campaign supervision, keep a ring of recent pipeline
            // events so a deadline kill or panic can show what the
            // machine was doing.
            bus.tap = SinkTap::Trace(Box::default());
        }
        Hierarchy {
            bus,
            mem: PhysMem::new(),
            dram: Dram::new(cfg.mem),
            mesh: Mesh::new(cfg.mesh, cfg.noc),
            tiles,
            llc,
            llc_next_free: vec![0; cfg.tiles],
            registry: MorphRegistry::new(),
            engines,
            interrupts: Vec::new(),
            pending_callbacks: Vec::new(),
            callback_depth: 0,
            mshrs,
            watchdog: Watchdog::new(cfg.watchdog),
            scheduler: None,
            ckpt_due: false,
            cfg,
        }
    }

    /// Install (or remove) the stage-walk scheduler. Returns the
    /// previous one. The scheduler survives [`Snapshot`] restores — it
    /// is harness state, not machine state.
    pub fn install_scheduler(
        &mut self,
        s: Option<Box<dyn StageScheduler>>,
    ) -> Option<Box<dyn StageScheduler>> {
        std::mem::replace(&mut self.scheduler, s)
    }

    /// Resolve a [`SchedPoint`] with `n` alternatives; `hw` is the
    /// hardware policy used when no scheduler is installed.
    fn sched_choose(&mut self, point: SchedPoint, n: usize, hw: usize) -> usize {
        match &mut self.scheduler {
            Some(s) => s.choose(point, n).min(n.saturating_sub(1)),
            None => hw,
        }
    }

    /// Callbacks currently parked in the writeback buffer (deferred
    /// because their Morph was mid-callback, or by a scheduler).
    pub fn pending_callbacks(&self) -> &[(TileId, MorphId, CallbackKind, Addr, Cycle)] {
        &self.pending_callbacks
    }

    /// True once per elapsed checkpoint interval: the epoch sweep raises
    /// the flag, the driver drains it here and takes the snapshot. The
    /// probe itself is a branch and a bool store — no allocation — so an
    /// armed-but-idle checkpoint config costs nothing on the walk.
    pub fn take_checkpoint_due(&mut self) -> bool {
        std::mem::take(&mut self.ckpt_due)
    }

    /// Zero a line in the backing store (the controller zeroes phantom
    /// lines before invoking onMiss, Sec 4.3).
    pub fn zero_line(&mut self, line: Addr) {
        self.mem.write_bytes(line, &[0u8; LINE_BYTES as usize]);
    }

    fn sharer_tiles(mask: u64) -> impl Iterator<Item = usize> {
        (0..64).filter(move |i| mask & (1 << i) != 0)
    }

    // ------------------------------------------------------------------
    // Callback execution
    // ------------------------------------------------------------------

    /// Run `kind` for `morph_id` on `line` at `engine_tile`'s engine,
    /// arriving at `arrival`. Returns the callback's completion cycle.
    /// Once the outermost callback finishes, any events deferred while
    /// its Morph was busy are drained.
    pub fn run_callback(
        &mut self,
        engine_tile: TileId,
        morph_id: MorphId,
        kind: CallbackKind,
        line: Addr,
        arrival: Cycle,
    ) -> Cycle {
        let done = self.run_callback_inner(engine_tile, morph_id, kind, line, arrival);
        while self.callback_depth == 0 && !self.pending_callbacks.is_empty() {
            let n = self.pending_callbacks.len();
            let i = self.sched_choose(SchedPoint::DrainPick, n, n - 1);
            let (t, m, k, l, a) = self.pending_callbacks.remove(i);
            self.run_callback_inner(t, m, k, l, a.max(done));
        }
        done
    }

    fn run_callback_inner(
        &mut self,
        engine_tile: TileId,
        morph_id: MorphId,
        kind: CallbackKind,
        line: Addr,
        arrival: Cycle,
    ) -> Cycle {
        self.bus.observe_at(arrival, engine_tile);
        let Some(entry) = self.registry.entry(morph_id) else {
            return arrival;
        };
        if entry.quarantined.is_some() {
            // Graceful degradation: the event falls through to baseline
            // hardware behavior and the skipped callback is counted.
            self.bus.emit(TxnEvent::CallbackDegraded);
            return arrival;
        }
        let range = entry.range;
        let level = entry.level;
        let home_tile = entry.home_tile;
        // Injected fabric-capacity exhaustion: the engine cannot hold the
        // bitstream, so the Morph degrades before the callback starts.
        if self
            .bus
            .poll_fault_at(arrival, FaultKind::FabricExhaustion, engine_tile)
            .is_some()
        {
            self.quarantine_morph(morph_id, "fabric capacity exhausted");
            self.bus.emit(TxnEvent::CallbackDegraded);
            return arrival;
        }
        // A scheduler may park a ready callback in the writeback buffer
        // to explore trigger-vs-drain orderings; hardware never does.
        if self.scheduler.is_some() && self.sched_choose(SchedPoint::DeferCallback, 2, 0) == 1 {
            self.pending_callbacks
                .push((engine_tile, morph_id, kind, line, arrival));
            return arrival;
        }
        let Some(mut morph) = self.registry.checkout(morph_id) else {
            // The Morph is mid-callback and this event was triggered by
            // that callback's own traffic: the line waits in the
            // writeback buffer and the event runs when the engine frees.
            self.pending_callbacks
                .push((engine_tile, morph_id, kind, line, arrival));
            return arrival;
        };
        self.callback_depth += 1;
        // The paper sequentializes HATS's onMiss calls (Sec 8.2);
        // eviction-side callbacks interleave freely.
        let serialize = morph.serialize_callbacks() && kind == CallbackKind::OnMiss;
        // Take the engine out so the callback context can borrow both the
        // engine's fabric/L1d and the rest of the hierarchy. If this
        // engine is itself mid-callback (nested event on the same tile),
        // run on a transient engine with the same resources.
        let taken = self.engines[engine_tile].take();
        let is_temp = taken.is_none();
        let mut engine = taken.unwrap_or_else(|| Engine::new(self.cfg.engine));
        let start = engine.admit(morph_id, line, arrival, serialize, &mut self.bus.stats);
        self.bus.emit(TxnEvent::CallbackRun(match kind {
            CallbackKind::OnMiss => CbPhase::OnMiss,
            CallbackKind::OnEviction => CbPhase::OnEviction,
            CallbackKind::OnWriteback => CbPhase::OnWriteback,
        }));
        // Injected callback misbehavior, applied through the same ctx the
        // Morph uses so the timing and suppression paths are the real ones.
        let overrun = self
            .bus
            .poll_fault_at(start, FaultKind::CallbackOverrun, engine_tile);
        let illegal = self
            .bus
            .poll_fault_at(start, FaultKind::IllegalAction, engine_tile);
        let (result, violation) = {
            let mut ctx = EngineCtx::new(
                self,
                &mut engine,
                start,
                engine_tile,
                home_tile,
                line,
                kind,
                range,
                level,
                morph_id,
            );
            match kind {
                CallbackKind::OnMiss => morph.on_miss(&mut ctx),
                CallbackKind::OnEviction => morph.on_eviction(&mut ctx),
                CallbackKind::OnWriteback => morph.on_writeback(&mut ctx),
            }
            if let Some(n) = overrun {
                ctx.alu_chain(&[], n);
            }
            if illegal.is_some() {
                ctx.inject_illegal();
            }
            let violation = ctx.take_violation();
            (ctx.finish(), violation)
        };
        self.bus.emit(TxnEvent::EngineWork {
            instrs: result.instrs,
            mem_ops: result.mem_ops,
        });
        engine.complete(
            morph_id,
            line,
            start,
            result.completion,
            serialize,
            &mut self.bus.stats,
        );
        if !is_temp {
            self.engines[engine_tile] = Some(engine);
        }
        self.registry.checkin(morph_id, morph);
        self.callback_depth -= 1;
        if result.instrs > self.cfg.engine.callback_instr_budget {
            self.quarantine_morph(morph_id, "callback instruction budget overrun");
        }
        if let Some(v) = violation {
            self.quarantine_morph(morph_id, format!("illegal callback action: {v}"));
        }
        let completion = tako_sim::span!(
            self.bus,
            tako_sim::trace::Stage::Callback,
            start,
            result.completion
        );
        if let Some(obs) = self.bus.observer_mut() {
            obs.record_callback(completion.saturating_sub(start));
        }
        completion
    }

    /// Quarantine a Morph (counted once per Morph). Its range keeps
    /// routing through the hierarchy but behaves like baseline hardware
    /// from here on.
    fn quarantine_morph(&mut self, id: MorphId, reason: impl Into<String>) {
        if self.registry.quarantine(id, reason) {
            self.bus.emit(TxnEvent::MorphQuarantined);
        }
    }
}

impl Drop for Hierarchy {
    /// Flush an attached observability observer into the process-wide
    /// trace collector so `tako_sim::trace::drain` sees every system
    /// that ran while tracing was armed.
    fn drop(&mut self) {
        if let Some(obs) = self.bus.take_observer() {
            tako_sim::trace::collect(*obs);
        }
    }
}

impl Snapshot for Hierarchy {
    /// The whole machine, component by component. Snapshots are taken at
    /// epoch boundaries — the only guaranteed quiescent points: no walk
    /// is in flight, every engine is checked in, `callback_depth` is
    /// zero. Structure (tile count, geometries, capacities) is rebuilt
    /// from config by [`Hierarchy::new`] and *verified* by each
    /// component's `load`, never restored, so resuming into a mismatched
    /// config fails loudly. The supervision trace tap is diagnostic-only
    /// and re-armed by the driver rather than serialized; an attached
    /// observability observer *is* serialized (v2) so traces, interval
    /// metrics, and stage profiles survive checkpoint/resume.
    fn save(&self, w: &mut SnapWriter) {
        w.section("hierarchy");
        self.bus.stats.save(w);
        self.bus.faults.save(w);
        self.mem.save(w);
        self.dram.save(w);
        self.mesh.save(w);
        w.put_len(self.tiles.len());
        for t in &self.tiles {
            t.l1d.save(w);
            t.l2.save(w);
            t.prefetcher.save(w);
        }
        w.put_len(self.llc.len());
        for bank in &self.llc {
            bank.save(w);
        }
        w.put_len(self.llc_next_free.len());
        for c in &self.llc_next_free {
            w.put_u64(*c);
        }
        self.registry.save(w);
        w.put_len(self.engines.len());
        for e in &self.engines {
            w.put_bool(e.is_some());
            if let Some(e) = e {
                e.save(w);
            }
        }
        w.put_len(self.interrupts.len());
        for i in &self.interrupts {
            w.put_usize(i.tile);
            w.put_u64(i.cycle);
            w.put_u64(i.line);
        }
        w.put_len(self.pending_callbacks.len());
        for (tile, morph, kind, line, at) in &self.pending_callbacks {
            w.put_usize(*tile);
            w.put_usize(*morph);
            w.put_u8(match kind {
                CallbackKind::OnMiss => 0,
                CallbackKind::OnEviction => 1,
                CallbackKind::OnWriteback => 2,
            });
            w.put_u64(*line);
            w.put_u64(*at);
        }
        w.put_usize(self.callback_depth);
        w.put_len(self.mshrs.len());
        for m in &self.mshrs {
            m.save(w);
        }
        self.watchdog.save(w);
        w.put_bool(self.ckpt_due);
        match self.bus.observer() {
            Some(obs) => {
                w.put_bool(true);
                obs.save(w);
            }
            None => w.put_bool(false),
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("hierarchy")?;
        self.bus.stats.load(r)?;
        self.bus.faults.load(r)?;
        self.mem.load(r)?;
        self.dram.load(r)?;
        self.mesh.load(r)?;
        r.get_len_expect("tiles", self.tiles.len())?;
        for t in &mut self.tiles {
            t.l1d.load(r)?;
            t.l2.load(r)?;
            t.prefetcher.load(r)?;
        }
        r.get_len_expect("LLC banks", self.llc.len())?;
        for bank in &mut self.llc {
            bank.load(r)?;
        }
        r.get_len_expect("LLC bank ports", self.llc_next_free.len())?;
        for c in &mut self.llc_next_free {
            *c = r.get_u64()?;
        }
        self.registry.load(r)?;
        r.get_len_expect("engines", self.engines.len())?;
        for (i, e) in self.engines.iter_mut().enumerate() {
            let occupied = r.get_bool()?;
            if occupied != e.is_some() {
                return Err(SnapError::StateMismatch(format!(
                    "engine {i}: snapshot occupied={occupied}, rebuilt \
                     occupied={} (snapshot taken mid-callback?)",
                    e.is_some()
                )));
            }
            if let Some(e) = e {
                e.load(r)?;
            }
        }
        let n = r.get_len()?;
        self.interrupts.clear();
        for _ in 0..n {
            self.interrupts.push(Interrupt {
                tile: r.get_usize()?,
                cycle: r.get_u64()?,
                line: r.get_u64()?,
            });
        }
        let n = r.get_len()?;
        self.pending_callbacks.clear();
        for _ in 0..n {
            let tile = r.get_usize()?;
            let morph = r.get_usize()?;
            let kind = match r.get_u8()? {
                0 => CallbackKind::OnMiss,
                1 => CallbackKind::OnEviction,
                2 => CallbackKind::OnWriteback,
                tag => {
                    return Err(SnapError::StateMismatch(format!(
                        "unknown callback kind tag {tag}"
                    )))
                }
            };
            let line = r.get_u64()?;
            let at = r.get_u64()?;
            self.pending_callbacks.push((tile, morph, kind, line, at));
        }
        self.callback_depth = r.get_usize()?;
        r.get_len_expect("LLC MSHR files", self.mshrs.len())?;
        for m in &mut self.mshrs {
            m.load(r)?;
        }
        self.watchdog.load(r)?;
        self.ckpt_due = r.get_bool()?;
        if r.get_bool()? {
            // Restore the observer into the tap, attaching one if the
            // resuming process didn't arm tracing itself.
            let mut obs = self.bus.take_observer().unwrap_or_default();
            obs.load(r)?;
            self.bus.tap = SinkTap::Observer(obs);
        } else {
            // The snapshot ran untraced; drop any locally armed
            // observer so resumed accounting matches the original run.
            self.bus.take_observer();
        }
        Ok(())
    }
}
