//! The memory-transaction vocabulary of the staged pipeline.
//!
//! A [`MemTxn`] is one request walking the hierarchy: what kind of
//! access it is, who issued it, which line it touches, and — as the
//! stage functions in `private.rs`, `llc.rs`, and `evict.rs` handle it —
//! a timestamp per stage it passed through. The stamps are bookkeeping
//! only: stages compute timing from their own arguments, so recording a
//! stamp can never perturb the walk (the golden-output test pins this).
//!
//! [`LevelPort`] is the uniform face a level presents to a stage: the
//! three tag-array levels via [`CachePort`] and the memory controllers
//! via [`DramEdge`]. Ports charge their own hit/miss (or DRAM-transfer)
//! accounting on the [`AccountingBus`], so a stage cannot forget to
//! count an access, and the `no_alloc` suite can pin the whole
//! port-plus-bus hot path as allocation-free.

use tako_cache::array::{CacheArray, EntryMut, EntryRef, InsertKind};
use tako_cpu::AccessKind;
use tako_mem::addr::Addr;
use tako_mem::dram::Dram;
use tako_sim::event::{AccountingBus, LevelId, TxnEvent, TxnSink};
use tako_sim::{Cycle, TileId};

/// What kind of request a [`MemTxn`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Core demand load.
    Read,
    /// Core demand store.
    Write,
    /// Core non-temporal load (streaming scan; bypasses the L2).
    ReadStream,
    /// Core non-temporal store (write-combining; no RFO fetch).
    WriteStream,
    /// Remote memory operation on a SHARED Morph (executes at the bank).
    Rmo,
    /// L2 stride-prefetcher fill.
    Prefetch,
    /// Load issued by a callback running on an engine.
    EngineRead,
    /// Store issued by a callback running on an engine.
    EngineWrite,
}

impl TxnKind {
    /// The core-side kinds, from the CPU's access vocabulary.
    pub fn from_access(kind: AccessKind) -> Self {
        match kind {
            AccessKind::Read => TxnKind::Read,
            AccessKind::Write => TxnKind::Write,
            AccessKind::ReadStream => TxnKind::ReadStream,
            AccessKind::WriteStream => TxnKind::WriteStream,
            AccessKind::Rmo => TxnKind::Rmo,
        }
    }

    /// Does this request want write permission where it lands?
    pub fn is_write(self) -> bool {
        matches!(
            self,
            TxnKind::Write | TxnKind::WriteStream | TxnKind::Rmo | TxnKind::EngineWrite
        )
    }

    /// Is this a non-temporal (streaming) access?
    pub fn is_stream(self) -> bool {
        matches!(self, TxnKind::ReadStream | TxnKind::WriteStream)
    }
}

/// When a transaction arrived at each stage of the pipeline (unset for
/// stages it skipped). Purely observational; see the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStamps {
    /// Arrival at the requester's L1d tags.
    pub l1: Option<Cycle>,
    /// Arrival at the requester's L2 tags.
    pub l2: Option<Cycle>,
    /// Start of the LLC bank's tag access (post-NoC, post-bank queue).
    pub llc: Option<Cycle>,
    /// Completion of the below-LLC resolve (DRAM and/or `onMiss`).
    pub fill: Option<Cycle>,
    /// The cycle the whole transaction completed.
    pub completed: Option<Cycle>,
}

/// One memory transaction walking the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTxn {
    /// What the request is.
    pub kind: TxnKind,
    /// Requesting tile (for engine fills: the engine's tile).
    pub tile: TileId,
    /// Line-aligned address.
    pub line: Addr,
    /// Cycle the request entered the hierarchy.
    pub issued: Cycle,
    /// Insertion priority its fills carry (trrîp's pollution control).
    pub fill_kind: InsertKind,
    /// Track the requester in the LLC directory (false for engine L1d
    /// fills, which are cluster-coherent with their tile).
    pub track_sharer: bool,
    /// Per-stage arrival timestamps.
    pub stamps: StageStamps,
}

impl MemTxn {
    /// A core-side demand/stream/RMO transaction.
    pub fn core(kind: AccessKind, tile: TileId, line: Addr, t: Cycle) -> Self {
        MemTxn {
            kind: TxnKind::from_access(kind),
            tile,
            line,
            issued: t,
            fill_kind: InsertKind::Demand,
            track_sharer: true,
            stamps: StageStamps::default(),
        }
    }

    /// A prefetcher-issued fill.
    pub fn prefetch(tile: TileId, line: Addr, t: Cycle) -> Self {
        MemTxn {
            kind: TxnKind::Prefetch,
            tile,
            line,
            issued: t,
            fill_kind: InsertKind::Prefetch,
            track_sharer: true,
            stamps: StageStamps::default(),
        }
    }

    /// An engine-issued fill with explicit routing (trrîp insertion
    /// priority, directory tracking).
    pub fn engine(
        tile: TileId,
        write: bool,
        line: Addr,
        t: Cycle,
        fill_kind: InsertKind,
        track_sharer: bool,
    ) -> Self {
        MemTxn {
            kind: if write {
                TxnKind::EngineWrite
            } else {
                TxnKind::EngineRead
            },
            tile,
            line,
            issued: t,
            fill_kind,
            track_sharer,
            stamps: StageStamps::default(),
        }
    }

    /// Does this transaction want write permission?
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }

    /// Stamp the transaction complete at `done` and hand the completion
    /// cycle back — the standard tail of every walk. Consumes the
    /// transaction: a retired `MemTxn` cannot re-enter a stage.
    #[inline]
    pub fn retire(mut self, done: Cycle) -> Cycle {
        self.stamps.completed = Some(done);
        self.stamps.completed.unwrap_or(done)
    }
}

/// The uniform face a level of the memory system presents to a stage.
///
/// [`serve`](LevelPort::serve) is the *streaming* read shape — a
/// non-promoting presence check plus the level's service latency — used
/// by paths that must not disturb replacement state (non-temporal scans,
/// the engine's NT loads). Demand paths need richer access (promote on
/// hit, mutate dirty/sharer bits), so they use [`CachePort`]'s inherent
/// `lookup_counted`/`probe_counted`; either way the port, not the
/// stage, charges the level's hit/miss accounting.
pub trait LevelPort {
    /// The event tag for this level, or `None` for the DRAM edge (whose
    /// traffic is charged per line transfer, not per tag access).
    fn level_id(&self) -> Option<LevelId>;

    /// The cycle `line`'s data can be consumed from this level for a
    /// request arriving at `t`, or `None` if this level cannot supply
    /// it (after charging the miss). The DRAM edge serves everything.
    fn serve(&mut self, line: Addr, t: Cycle, bus: &mut AccountingBus) -> Option<Cycle>;
}

/// A [`LevelPort`] over one tag array (an L1d, an L2, or an LLC bank).
pub struct CachePort<'a> {
    array: &'a mut CacheArray,
    level: LevelId,
}

impl<'a> CachePort<'a> {
    /// A port over `array`, tagging events with `level`.
    #[inline(always)]
    pub fn new(array: &'a mut CacheArray, level: LevelId) -> Self {
        CachePort { array, level }
    }

    /// Promote-on-hit tag lookup, charging this level's hit or miss on
    /// `bus`. The returned handle is the promoted line; demand stages
    /// update its state bits (dirty, prefetched, sharers) through it.
    ///
    /// always-inlined: this is the per-access tag walk, and the walk
    /// bodies it replaced had it inlined at every use site.
    #[inline(always)]
    pub fn lookup_counted(&mut self, line: Addr, bus: &mut AccountingBus) -> Option<EntryMut<'_>> {
        match self.array.lookup(line) {
            Some(e) => {
                bus.emit(TxnEvent::Hit(self.level));
                Some(e)
            }
            None => {
                bus.emit(TxnEvent::Miss(self.level));
                None
            }
        }
    }

    /// Non-promoting tag probe, charging this level's hit or miss on
    /// `bus` (the non-temporal shape: scans must stay cold).
    #[inline(always)]
    pub fn probe_counted(&mut self, line: Addr, bus: &mut AccountingBus) -> Option<EntryRef<'_>> {
        match self.array.probe(line) {
            Some(e) => {
                bus.emit(TxnEvent::Hit(self.level));
                Some(e)
            }
            None => {
                bus.emit(TxnEvent::Miss(self.level));
                None
            }
        }
    }
}

impl LevelPort for CachePort<'_> {
    fn level_id(&self) -> Option<LevelId> {
        Some(self.level)
    }

    fn serve(&mut self, line: Addr, t: Cycle, bus: &mut AccountingBus) -> Option<Cycle> {
        let data_latency = self.array.config().data_latency;
        self.probe_counted(line, bus)
            .map(|e| t.max(e.ready_at()) + data_latency)
    }
}

/// The [`LevelPort`] at the bottom of the hierarchy: the DRAM
/// controllers. Always serves; charges a [`TxnEvent::DramRead`] per
/// line pulled.
pub struct DramEdge<'a> {
    dram: &'a mut Dram,
}

impl<'a> DramEdge<'a> {
    /// A port over the memory controllers.
    pub fn new(dram: &'a mut Dram) -> Self {
        DramEdge { dram }
    }
}

impl LevelPort for DramEdge<'_> {
    fn level_id(&self) -> Option<LevelId> {
        None
    }

    fn serve(&mut self, line: Addr, t: Cycle, bus: &mut AccountingBus) -> Option<Cycle> {
        Some(self.dram.read_line(line, t, bus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::config::SystemConfig;
    use tako_sim::fault::FaultInjector;
    use tako_sim::stats::Counter;

    #[test]
    fn core_txn_maps_access_kinds() {
        let t = MemTxn::core(AccessKind::Write, 3, 128, 10);
        assert_eq!(t.kind, TxnKind::Write);
        assert!(t.is_write() && t.track_sharer);
        assert_eq!((t.tile, t.line, t.issued), (3, 128, 10));
        assert_eq!(t.stamps, StageStamps::default());
        assert!(TxnKind::from_access(AccessKind::ReadStream).is_stream());
        assert!(!MemTxn::prefetch(0, 0, 0).is_write());
        let e = MemTxn::engine(1, true, 64, 5, InsertKind::Engine, false);
        assert_eq!(e.kind, TxnKind::EngineWrite);
        assert!(!e.track_sharer);
    }

    #[test]
    fn cache_port_counts_and_promotes() {
        let cfg = SystemConfig::default_16core();
        let mut array = CacheArray::new(cfg.l1d);
        let mut bus = AccountingBus::new(FaultInjector::new(None));
        let mut port = CachePort::new(&mut array, LevelId::L1d);
        assert!(port.serve(0, 5, &mut bus).is_none());
        assert_eq!(bus.stats.get(Counter::L1dMiss), 1);
        port.array.insert(0, false, false, InsertKind::Demand, 7);
        let served = port.serve(0, 5, &mut bus).expect("hit");
        assert_eq!(served, 7 + cfg.l1d.data_latency);
        assert_eq!(bus.stats.get(Counter::L1dHit), 1);
        assert!(port.lookup_counted(0, &mut bus).is_some());
        assert_eq!(bus.stats.get(Counter::L1dHit), 2);
        assert_eq!(port.level_id(), Some(LevelId::L1d));
    }

    #[test]
    fn dram_edge_always_serves() {
        let cfg = SystemConfig::default_16core();
        let mut dram = Dram::new(cfg.mem);
        let mut bus = AccountingBus::new(FaultInjector::new(None));
        let mut edge = DramEdge::new(&mut dram);
        assert_eq!(edge.level_id(), None);
        let done = edge.serve(0, 0, &mut bus).expect("dram serves all");
        assert_eq!(done, cfg.mem.latency);
        assert_eq!(bus.stats.get(Counter::DramRead), 1);
    }
}
