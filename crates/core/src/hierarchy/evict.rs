//! Eviction stages: what happens when a line leaves a level (Table 1).
//!
//! Both eviction chains ([`Hierarchy::handle_l2_evict`] at the private
//! level, [`Hierarchy::handle_llc_evict`] at the shared level) and the
//! flushData walks compose the same three stages: merge private copies
//! (`coherence.rs`), dispatch the Morph's eviction-side callback through
//! [`Hierarchy::eviction_callback`] — *off the critical path* of the
//! evicting access — and then write back or discard the victim. The
//! structured [`EvictEvent`] from `tako-cache` carries the victim's
//! full directory state (dirty, Morph bit, sharers) into these stages.

use tako_cache::EvictEvent;
use tako_mem::addr::{is_phantom, Addr, AddrRange};
use tako_sim::event::{LevelId, TxnEvent, TxnSink};
use tako_sim::{Cycle, TileId};

use super::coherence::PrivateScope;
use super::Hierarchy;
use crate::morph::{CallbackKind, MorphLevel};

impl Hierarchy {
    /// Run the eviction-side callback for `line` if a Morph (of `level`,
    /// when given) covers it: `onWriteback` when the merged state is
    /// dirty, `onEviction` otherwise. Returns the callback's completion
    /// cycle, or `None` if no callback applied.
    fn eviction_callback(
        &mut self,
        engine_tile: TileId,
        line: Addr,
        dirty: bool,
        level: Option<MorphLevel>,
        t: Cycle,
    ) -> Option<Cycle> {
        let id = match (self.registry.lookup(line), level) {
            (Some((id, l)), Some(want)) if l == want => id,
            (Some((id, _)), None) => id,
            _ => return None,
        };
        let kind = if dirty {
            CallbackKind::OnWriteback
        } else {
            CallbackKind::OnEviction
        };
        Some(self.run_callback(engine_tile, id, kind, line, t))
    }

    /// Handle an LLC bank eviction: inclusive invalidation of private
    /// copies, SHARED-Morph callbacks, and the writeback (Table 1).
    pub(super) fn handle_llc_evict(&mut self, bank: usize, ev: EvictEvent, t: Cycle) {
        self.bus.emit(TxnEvent::Eviction(LevelId::Llc));
        let mut dirty = ev.dirty;
        for s in Self::sharer_tiles(ev.sharers) {
            self.bus.emit(TxnEvent::CoherenceInval);
            dirty |= self.merge_private_dirty(s, ev.line, PrivateScope::L1AndL2);
        }
        if ev.morph {
            // Off the critical path: the evicting access proceeds. Any
            // Morph level applies — a PRIVATE Morph's line can reach the
            // LLC through writebacks.
            self.eviction_callback(bank, ev.line, dirty, None, t);
            if is_phantom(ev.line) {
                return; // phantom lines are discarded after the callback
            }
        }
        if dirty {
            self.bus.emit(TxnEvent::Writeback(LevelId::Llc));
            self.dram.write_line(ev.line, t, &mut self.bus);
        }
    }

    /// Handle an L2 eviction: merge the L1 copy, run PRIVATE-Morph
    /// callbacks, then write back or discard.
    pub(super) fn handle_l2_evict(&mut self, tile: TileId, ev: EvictEvent, t: Cycle) {
        self.bus.emit(TxnEvent::Eviction(LevelId::L2));
        let mut dirty = ev.dirty;
        dirty |= self.merge_private_dirty(tile, ev.line, PrivateScope::L1Only);
        if ev.morph {
            self.eviction_callback(tile, ev.line, dirty, Some(MorphLevel::Private), t);
            if is_phantom(ev.line) {
                return; // discarded, never written downward
            }
        }
        if is_phantom(ev.line) {
            // SHARED-Morph phantom line cached privately.
            if dirty {
                self.writeback_to_llc(tile, ev.line, t);
            }
            return;
        }
        if dirty {
            self.bus.emit(TxnEvent::Writeback(LevelId::L2));
            self.writeback_to_llc(tile, ev.line, t);
        } else {
            // Silent clean eviction: lazily clear the directory bit.
            let bank = self.mesh.bank_of_line(ev.line);
            if let Some(mut e) = self.llc[bank].probe_mut(ev.line) {
                e.set_sharers(e.sharers() & !(1u64 << tile));
            }
        }
    }

    /// A line invalidated out of an LLC bank by a flushData walk:
    /// merge private copies, run the SHARED-Morph callback, write back.
    /// Unlike capacity evictions this charges no coherence-invalidation
    /// events — the flush is the requester's own traffic.
    pub(super) fn flush_llc_victim(&mut self, bank: usize, ev: EvictEvent, t: Cycle) -> Cycle {
        let mut dirty = ev.dirty;
        for s in Self::sharer_tiles(ev.sharers) {
            dirty |= self.merge_private_dirty(s, ev.line, PrivateScope::L1AndL2);
        }
        let mut completion = t;
        if ev.morph {
            if let Some(c) =
                self.eviction_callback(bank, ev.line, dirty, Some(MorphLevel::Shared), t)
            {
                completion = c;
            }
            if is_phantom(ev.line) {
                return completion;
            }
        }
        if dirty {
            self.bus.emit(TxnEvent::Writeback(LevelId::Llc));
            self.dram.write_line(ev.line, t, &mut self.bus);
        }
        completion
    }

    /// täkō's flushData (Sec 4.4): walk the tag arrays at the appropriate
    /// level, evict every line in `range` (triggering callbacks), and
    /// return the cycle all callbacks complete.
    pub fn flush_range(&mut self, tile: TileId, range: AddrRange, now: Cycle) -> Cycle {
        let level = self.registry.lookup(range.base).map(|(_, l)| l);
        let mut completion = now;
        match level {
            Some(MorphLevel::Shared) => {
                for bank in 0..self.llc.len() {
                    let lines = self.llc[bank].lines_in_range(range);
                    let mut t = now;
                    for line in lines {
                        t += 1; // tag-walk increment
                        self.bus.emit(TxnEvent::FlushedLine);
                        if let Some(ev) = self.llc[bank].invalidate(line) {
                            let c = self.flush_llc_victim(bank, ev, t);
                            completion = completion.max(c);
                        }
                    }
                    completion = completion.max(t);
                }
            }
            _ => {
                let lines = self.tiles[tile].l2.lines_in_range(range);
                let mut t = now;
                for line in lines {
                    t += 1;
                    self.bus.emit(TxnEvent::FlushedLine);
                    let mut dirty = self.merge_private_dirty(tile, line, PrivateScope::L1Only);
                    if let Some(ev) = self.tiles[tile].l2.invalidate(line) {
                        dirty |= ev.dirty;
                        if ev.morph {
                            if let Some(c) = self.eviction_callback(
                                tile,
                                line,
                                dirty,
                                Some(MorphLevel::Private),
                                t,
                            ) {
                                completion = completion.max(c);
                            }
                            if is_phantom(line) {
                                continue;
                            }
                        }
                        if dirty && !is_phantom(line) {
                            self.bus.emit(TxnEvent::Writeback(LevelId::L2));
                            self.writeback_to_llc(tile, line, t);
                        }
                    }
                }
                completion = completion.max(t);
            }
        }
        completion
    }
}
