//! Private-level stages: the core-side L1d/L2 walk.
//!
//! [`Hierarchy::core_access`] is the pipeline's front end: it mints a
//! [`MemTxn`] for the request and advances it stage by stage — L1d port,
//! L2 port, then one of the shared-level stages (`fetch_shared`,
//! `fetch_stream`, `rmo_shared` in `llc.rs`) — stamping the transaction
//! as it goes. The watchdog observes every completed walk here, off the
//! walk body, and the epoch sweep reads its counters through the bus.

use tako_cache::array::InsertKind;
use tako_cpu::AccessKind;
use tako_mem::addr::{is_phantom, line_of, Addr};
use tako_sim::energy::EnergyModel;
use tako_sim::event::{LevelId, SinkTap, TxnEvent, TxnSink};
use tako_sim::{Cycle, TileId};

use super::coherence::PrivateScope;
use super::txn::{CachePort, MemTxn};
use super::Hierarchy;
use crate::morph::{CallbackKind, MorphLevel};
use crate::watchdog::{DiagnosticSnapshot, MshrSnapshot};

impl Hierarchy {
    /// A core-side access: the full L1 → L2 → LLC → memory walk with
    /// Morph interposition, observed by the watchdog. Returns the
    /// completion cycle.
    pub fn core_access(&mut self, tile: TileId, kind: AccessKind, addr: Addr, t: Cycle) -> Cycle {
        // Hot-walk gate: with no tap attached, the observe/stamp
        // superstructure around the walk only feeds counters, so the
        // tap discriminant is tested once per access here — not per
        // emit — and an L1d hit (the overwhelming majority of
        // accesses) completes on a lean path that mints no MemTxn.
        // Anything else falls through to the full staged walk. The
        // watchdog (on by default) observes both paths identically.
        let done = if matches!(self.bus.tap, SinkTap::None) {
            match self.hot_l1_hit(tile, kind, addr, t) {
                Some(done) => done,
                None => self.core_access_inner(tile, kind, addr, t),
            }
        } else {
            self.bus.observe_at(t, tile);
            self.core_access_inner(tile, kind, addr, t)
        };
        if self.watchdog.enabled() {
            self.watchdog_observe(line_of(addr), t, done);
        }
        done
    }

    /// The watchdog tail every completed core access runs: stall
    /// detection plus the epoch sweep. Shared by the serial walk above
    /// and the lane-replay path so both produce identical watchdog
    /// counter histories. `line` is the accessed cache line; on the
    /// first stall the snapshot names it (and its LLC bank/set) as the
    /// blocked line.
    fn watchdog_observe(&mut self, line: Addr, t: Cycle, done: Cycle) {
        if let Some(latency) = self.watchdog.observe_access(t, done) {
            self.bus.emit(TxnEvent::StallDetected { latency });
            if self.watchdog.snapshot().is_none() {
                let snap = self.diagnostic_snapshot(done, latency, Some(line));
                self.watchdog.attach_snapshot(snap);
            }
        }
        if self.watchdog.epoch_due(done) {
            self.watchdog_epoch(done);
        }
    }

    /// Replay the accounting of one committed pure lane step's L1d hit:
    /// exactly what the hot walk emits, re-run serially at the lane
    /// epoch barrier in canonical step order.
    pub(crate) fn lane_replay_hit(&mut self, line: Addr, t: Cycle, done: Cycle) {
        self.bus.emit(TxnEvent::Hit(LevelId::L1d));
        if self.watchdog.enabled() {
            self.watchdog_observe(line, t, done);
        }
    }

    /// The epoch invariant sweep: trrîp's one-callback-free-line-per-set
    /// rule, MSHR accounting (no overflow, reservation intact), and
    /// progress-counter monotonicity.
    fn watchdog_epoch(&mut self, now: Cycle) {
        let instrs = self.bus.stats.total_instrs();
        let dram = self.bus.stats.dram_accesses();
        let accesses = self.bus.stats.memory_accesses();
        // Energy is a positive-weighted tally of monotone counters, so
        // a regression means counter corruption (same params as
        // `TakoSystem::energy`).
        let energy_pj = EnergyModel::default_params()
            .tally(&self.bus.stats)
            .total_pj() as u64;
        let before = self.watchdog.violation_count();
        let wd = &mut self.watchdog;
        wd.begin_epoch(now);
        for (i, tile) in self.tiles.iter().enumerate() {
            wd.check(tile.l2.morph_invariant_holds(), || {
                format!("tile {i} L2: set of all-Morph lines (trrîp rule)")
            });
        }
        for (b, bank) in self.llc.iter().enumerate() {
            wd.check(bank.morph_invariant_holds(), || {
                format!("LLC bank {b}: set of all-Morph lines (trrîp rule)")
            });
        }
        for (b, m) in self.mshrs.iter().enumerate() {
            wd.check(m.len() <= m.capacity(), || {
                format!(
                    "LLC bank {b} MSHRs overflowed: {}/{}",
                    m.len(),
                    m.capacity()
                )
            });
            wd.check(m.callback_entries() < m.capacity(), || {
                format!(
                    "LLC bank {b}: callbacks hold all {} MSHRs \
                     (Sec 5.2 reservation broken)",
                    m.capacity()
                )
            });
        }
        wd.check_progress(instrs, dram, accesses, energy_pj);
        let delta = self.watchdog.violation_count() - before;
        if delta > 0 {
            self.bus.emit(TxnEvent::InvariantViolations(delta));
        }
        // Observability interval sampling rides the same quiescent
        // point: close the epoch's interval with counter deltas plus the
        // energy and DRAM-backlog gauges. Disjoint field borrows: the
        // observer lives in `bus.tap`, the counters in `bus.stats`.
        if self.bus.observer().is_some() {
            let epoch = self.watchdog.epochs_run();
            let backlog = self.dram.backlog(now);
            let energy = EnergyModel::default_params()
                .tally(&self.bus.stats)
                .total_pj();
            let tako_sim::event::SinkTap::Observer(obs) = &mut self.bus.tap else {
                unreachable!()
            };
            obs.sample_epoch(epoch, now, &self.bus.stats, energy, backlog);
        }
        // Checkpoint cadence piggybacks on the epoch sweep: the epoch
        // boundary is the hierarchy's only guaranteed quiescent point
        // (no walk in flight, engines checked in). Raising the flag is a
        // branch and a bool store — the armed-but-idle cost is zero
        // allocations on the walk (pinned by `no_alloc.rs`).
        if let Some(ck) = &self.cfg.checkpoint {
            if self.watchdog.epochs_run().is_multiple_of(ck.every_epochs) {
                self.ckpt_due = true;
            }
        }
        // Supervised deadline probe: wall-clock only, checked at epoch
        // cadence so an arbitrarily stalled walk still gets killed at
        // the next completed access. The panic payload is the triage
        // bundle; the campaign runner catches it and journals it.
        if tako_sim::supervise::armed() {
            if let Some((budget, elapsed)) = tako_sim::supervise::deadline_exceeded() {
                panic!("{}", self.deadline_triage(now, budget, elapsed));
            }
        }
    }

    /// The crash-triage bundle for a deadline kill: where the machine
    /// was, what it was doing (event-trace tail), how far the fault plan
    /// had advanced, and the last checkpoint to resume from.
    fn deadline_triage(
        &self,
        now: Cycle,
        budget: std::time::Duration,
        elapsed: std::time::Duration,
    ) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "deadline exceeded: {:.1}s elapsed against a {:.1}s budget at cycle {now}",
            elapsed.as_secs_f64(),
            budget.as_secs_f64()
        );
        let snap = self
            .watchdog
            .snapshot()
            .cloned()
            .unwrap_or_else(|| self.diagnostic_snapshot(now, 0, None));
        let _ = writeln!(s, "machine state: {snap:?}");
        let _ = writeln!(s, "fault plan: {}", self.bus.faults.cursor());
        if let Some(trace) = self.bus.trace() {
            let _ = writeln!(s, "event tail: {}", trace.render());
        }
        if let Some(obs) = self.bus.observer() {
            let _ = writeln!(s, "event tail: {}", obs.ring.render());
        }
        match tako_sim::supervise::last_checkpoint() {
            Some(id) => {
                let _ = writeln!(s, "last checkpoint: {id}");
            }
            None => {
                let _ = writeln!(s, "last checkpoint: none (restart from scratch)");
            }
        }
        s
    }

    /// Structured machine-state dump for the first detected stall.
    /// `blocked` is the stalled access's line, when known; the snapshot
    /// resolves its home LLC bank and set so the dump names exactly
    /// where the trrîp/MSHR argument broke, not just that it did.
    fn diagnostic_snapshot(
        &self,
        cycle: Cycle,
        latency: Cycle,
        blocked: Option<Addr>,
    ) -> DiagnosticSnapshot {
        let blocked_set = blocked.map(|line| {
            let bank = self.mesh.bank_of_line(line);
            (bank, self.llc[bank].set_index(line))
        });
        DiagnosticSnapshot {
            cycle,
            latency,
            bound: self.watchdog.stall_bound(),
            l2_occupancy: self.tiles.iter().map(|t| t.l2.occupancy()).collect(),
            llc_occupancy: self.llc.iter().map(|b| b.occupancy()).collect(),
            mshrs: self
                .mshrs
                .iter()
                .map(|m| MshrSnapshot {
                    len: m.len(),
                    for_callback: m.callback_entries(),
                    capacity: m.capacity(),
                })
                .collect(),
            pending_callbacks: self.pending_callbacks.len(),
            quarantined_morphs: self.registry.quarantined_morphs().count(),
            blocked_line: blocked,
            blocked_set,
        }
    }

    /// Retire `txn`, first feeding its observational stage stamps to an
    /// attached observer (stage profile + miss latency). A no-op wrapper
    /// around [`MemTxn::retire`] when tracing is off.
    fn retire_profiled(&mut self, txn: MemTxn, done: Cycle) -> Cycle {
        if let Some(obs) = self.bus.observer_mut() {
            let s = &txn.stamps;
            obs.record_txn(txn.issued, s.l1, s.l2, s.llc, s.fill, done);
        }
        txn.retire(done)
    }

    /// The lean L1d-hit walk taken behind the hot-walk gate: same
    /// timing, promotion, and accounting as the full walk's hit arm,
    /// minus the transaction stamps and observer hooks that are inert
    /// without a tap. Returns `None` — having changed nothing and
    /// emitted nothing — for misses and for the kinds with their own
    /// front-end (RMO, write-streams), which re-enter the full walk.
    #[inline]
    fn hot_l1_hit(
        &mut self,
        tile: TileId,
        kind: AccessKind,
        addr: Addr,
        t: Cycle,
    ) -> Option<Cycle> {
        if matches!(kind, AccessKind::Rmo | AccessKind::WriteStream) {
            return None;
        }
        let line = line_of(addr);
        let l1_cfg = self.cfg.l1d;
        let write = kind == AccessKind::Write;
        let ready = {
            let mut e = self.tiles[tile].l1d.lookup(line)?;
            e.set_prefetched(false);
            if write {
                e.set_dirty(true);
            }
            e.ready_at()
        };
        self.bus.emit(TxnEvent::Hit(LevelId::L1d));
        let mut done = (t + l1_cfg.tag_latency + l1_cfg.data_latency).max(ready);
        if write {
            let needs_upgrade = self.tiles[tile]
                .l2
                .probe(line)
                .map(|le| !le.exclusive())
                .unwrap_or(false);
            if needs_upgrade {
                done = self.upgrade(tile, line, done);
                if let Some(mut le) = self.tiles[tile].l2.probe_mut(line) {
                    le.set_exclusive(true);
                    le.set_dirty(true);
                }
            } else if let Some(mut le) = self.tiles[tile].l2.probe_mut(line) {
                le.set_dirty(true);
            }
        }
        Some(done)
    }

    fn core_access_inner(&mut self, tile: TileId, kind: AccessKind, addr: Addr, t: Cycle) -> Cycle {
        let line = line_of(addr);
        if kind == AccessKind::Rmo {
            if let Some((id, MorphLevel::Shared)) = self.registry.lookup(addr) {
                return self.rmo_shared(tile, id, line, t);
            }
        }
        if kind == AccessKind::WriteStream {
            return self.core_write_stream(tile, line, t);
        }
        let mut txn = MemTxn::core(kind, tile, line, t);
        let stream = txn.kind.is_stream();
        let write = txn.is_write();
        let l1_cfg = self.cfg.l1d;
        let l2_cfg = self.cfg.l2;

        // ---- L1d ----
        // Single-pass hit: the port's lookup promotes and returns the
        // entry, so the dirty update needs no second tag walk.
        txn.stamps.l1 = Some(t);
        let mut l1 = CachePort::new(&mut self.tiles[tile].l1d, LevelId::L1d);
        if let Some(mut e) = l1.lookup_counted(line, &mut self.bus) {
            let mut done = (t + l1_cfg.tag_latency + l1_cfg.data_latency).max(e.ready_at());
            e.set_prefetched(false);
            if write {
                e.set_dirty(true);
            }
            if write {
                let needs_upgrade = self.tiles[tile]
                    .l2
                    .probe(line)
                    .map(|le| !le.exclusive())
                    .unwrap_or(false);
                if needs_upgrade {
                    done = self.upgrade(tile, line, done);
                    if let Some(mut le) = self.tiles[tile].l2.probe_mut(line) {
                        le.set_exclusive(true);
                        le.set_dirty(true);
                    }
                } else if let Some(mut le) = self.tiles[tile].l2.probe_mut(line) {
                    le.set_dirty(true);
                }
            }
            return self.retire_profiled(txn, done);
        }
        let t1 = t + l1_cfg.tag_latency;
        // Morph interposition only matters below the L1: deferring the
        // registry scan here keeps it off the L1-hit path entirely.
        let morph = self.registry.lookup(addr);

        // ---- L2 ----
        // Non-temporal hits do not promote (scans stay cold), so only the
        // demand path takes the promoting single-pass lookup.
        txn.stamps.l2 = Some(t1);
        let mut l2 = CachePort::new(&mut self.tiles[tile].l2, LevelId::L2);
        let l2_probe = if stream {
            l2.probe_counted(line, &mut self.bus)
                .map(|e| (e.ready_at(), e.exclusive(), e.prefetched()))
        } else {
            l2.lookup_counted(line, &mut self.bus).map(|mut e| {
                let prefetched = e.prefetched();
                e.set_prefetched(false);
                (e.ready_at(), e.exclusive(), prefetched)
            })
        };
        let done = match l2_probe {
            Some((ready_at, exclusive, prefetched)) => {
                if prefetched {
                    self.bus.emit(TxnEvent::PrefetchUseful);
                }
                let mut done = (t1 + l2_cfg.tag_latency + l2_cfg.data_latency).max(ready_at);
                if write && !exclusive {
                    done = self.upgrade(tile, line, done);
                }
                if write {
                    if let Some(mut e) = self.tiles[tile].l2.probe_mut(line) {
                        e.set_dirty(true);
                        e.set_exclusive(true);
                    }
                }
                self.fill_l1(tile, line, write, done);
                done
            }
            None => {
                let t2 = t1 + l2_cfg.tag_latency;
                let (ready, is_morph, exclusive) = match morph {
                    Some((id, MorphLevel::Private)) => {
                        if is_phantom(line) {
                            self.zero_line(line);
                            let cb = self.run_callback(tile, id, CallbackKind::OnMiss, line, t2);
                            (cb, true, true)
                        } else {
                            let (fetch, _, excl) = self.fetch_shared(&mut txn, t2);
                            let cb = self.run_callback(tile, id, CallbackKind::OnMiss, line, t2);
                            (fetch.max(cb), true, excl)
                        }
                    }
                    _ if stream => {
                        let fetch = self.fetch_stream(tile, line, t2);
                        (fetch, false, false)
                    }
                    _ => {
                        let (fetch, _, excl) = self.fetch_shared(&mut txn, t2);
                        (fetch, false, excl)
                    }
                };
                let done = ready + l2_cfg.data_latency;
                if stream {
                    // Non-temporal fills bypass the L2 entirely: the line
                    // lives briefly in the L1 and is dropped silently.
                    self.fill_l1(tile, line, write, done);
                    return self.retire_profiled(txn, done);
                }
                if let Some(ev) =
                    self.tiles[tile]
                        .l2
                        .insert(line, write, is_morph, InsertKind::Demand, done)
                {
                    self.handle_l2_evict(tile, ev, t2);
                }
                if let Some(mut e) = self.tiles[tile].l2.probe_mut(line) {
                    // Exclusivity comes from the directory (or a write,
                    // which invalidated other sharers in fetch_shared).
                    // Phantom lines get no exception: a SHARED-morph
                    // phantom line another tile still caches must not
                    // take silent write hits here, or the copies
                    // diverge and writebacks lose updates. PRIVATE
                    // phantom fills pass `exclusive = true` explicitly.
                    e.set_exclusive(exclusive || write);
                }
                self.fill_l1(tile, line, write, done);
                done
            }
        };
        // ---- prefetcher (trains on L2 accesses; NT scans bypass it) ----
        if !stream {
            self.train_prefetcher(tile, addr, t1);
        }
        self.retire_profiled(txn, done)
    }

    /// Fill `line` into `tile`'s L1d, merging any displaced dirty line
    /// into the (inclusive) L2.
    pub(super) fn fill_l1(&mut self, tile: TileId, line: Addr, dirty: bool, ready: Cycle) {
        if self.tiles[tile].l1d.probe(line).is_some() {
            if dirty {
                if let Some(mut e) = self.tiles[tile].l1d.probe_mut(line) {
                    e.set_dirty(true);
                }
            }
            return;
        }
        self.l1_install(tile, line, dirty, InsertKind::Demand, ready);
    }

    /// Insert into the L1d and route the displaced victim: dirty lines
    /// merge into the (inclusive) L2, or — for lines the L2 does not
    /// back, e.g. streaming stores — flow down to the LLC.
    fn l1_install(
        &mut self,
        tile: TileId,
        line: Addr,
        dirty: bool,
        kind: InsertKind,
        ready: Cycle,
    ) {
        if let Some(ev) = self.tiles[tile].l1d.insert(line, dirty, false, kind, ready) {
            if ev.dirty {
                if let Some(mut e) = self.tiles[tile].l2.probe_mut(ev.line) {
                    e.set_dirty(true);
                } else if !is_phantom(ev.line) {
                    self.writeback_to_llc(tile, ev.line, ready);
                }
            }
        }
    }

    /// A core-side non-temporal store: write-combining in the L1d with no
    /// read-for-ownership fetch; displaced dirty lines flow down the
    /// hierarchy normally.
    fn core_write_stream(&mut self, tile: TileId, line: Addr, t: Cycle) -> Cycle {
        let l1_cfg = self.cfg.l1d;
        if let Some(mut e) = self.tiles[tile].l1d.probe_mut(line) {
            e.set_dirty(true);
            self.bus.emit(TxnEvent::Hit(LevelId::L1d));
            return t + l1_cfg.tag_latency + l1_cfg.data_latency;
        }
        self.bus.emit(TxnEvent::Miss(LevelId::L1d));
        let done = t + l1_cfg.tag_latency + l1_cfg.data_latency;
        self.l1_install(tile, line, true, InsertKind::Engine, done);
        done
    }

    /// CLDEMOTE: drop the L1 copy (merging dirty state into the L2) and
    /// move the L2 entry to the preferred-victim position. No callback —
    /// the line is not evicted, just deprioritized.
    pub fn demote_line(&mut self, tile: TileId, line: Addr) {
        let line = line_of(line);
        let dirty = self.merge_private_dirty(tile, line, PrivateScope::L1Only);
        if let Some(mut e) = self.tiles[tile].l2.probe_mut(line) {
            e.set_dirty(e.dirty() | dirty);
            e.set_rrpv(3);
            e.set_lru_stamp(0);
        }
    }
}
