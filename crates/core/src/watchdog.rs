//! Runtime invariant watchdog.
//!
//! täkō's correctness leans on a handful of fragile runtime invariants:
//! trrîp's one-callback-free-line-per-set rule (Sec 5.2), the MSHR
//! callback reservation, and bounded callback queues. A bug in any of
//! them historically shows up as a silent deadlock or as quiet state
//! corruption many millions of cycles later. The [`Watchdog`] makes
//! both failure modes loud and cheap to detect:
//!
//! * **Epoch sweeps** — every [`WatchdogConfig::epoch_cycles`] the
//!   hierarchy walks its arrays and MSHR files and asserts the
//!   invariants through [`Watchdog::check`]; failures are recorded (and
//!   counted in `Counter::InvariantViolation`), never panicked, so a
//!   campaign can report them all.
//! * **Forward-progress detection** — any single access whose
//!   end-to-end latency exceeds [`WatchdogConfig::stall_cycles`] is
//!   flagged through [`Watchdog::observe_access`] and the first such
//!   event captures a [`DiagnosticSnapshot`] of the machine (per-level
//!   occupancy, MSHR state, pending callbacks) — a structured dump
//!   instead of a hung simulator.
//!
//! The watchdog is strictly observational: it never changes simulated
//! timing, so enabling it cannot perturb results.

use std::fmt;

use tako_sim::config::WatchdogConfig;
use tako_sim::Cycle;

/// Cap on stored violation messages (counters keep exact totals; the
/// message list only needs enough to diagnose).
const MAX_VIOLATIONS: usize = 64;

/// Point-in-time MSHR state of one LLC bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrSnapshot {
    /// Outstanding entries.
    pub len: usize,
    /// Entries held by callback-waiting requests.
    pub for_callback: usize,
    /// Total entries in the file.
    pub capacity: usize,
}

/// A structured dump of hierarchy state, captured when the watchdog
/// first detects a stalled access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticSnapshot {
    /// Cycle at which the stalled access completed.
    pub cycle: Cycle,
    /// The access's end-to-end latency.
    pub latency: Cycle,
    /// The stall bound it exceeded.
    pub bound: Cycle,
    /// Occupied lines per private L2, in tile order.
    pub l2_occupancy: Vec<usize>,
    /// Occupied lines per LLC bank, in tile order.
    pub llc_occupancy: Vec<usize>,
    /// MSHR state per LLC bank, in tile order.
    pub mshrs: Vec<MshrSnapshot>,
    /// Callbacks queued behind busy lines.
    pub pending_callbacks: usize,
    /// Morphs currently quarantined.
    pub quarantined_morphs: usize,
    /// The cache line whose access stalled, when known.
    pub blocked_line: Option<u64>,
    /// `(bank, set)` the blocked line maps to in the LLC — the set the
    /// trrîp one-callback-free-line argument is about.
    pub blocked_set: Option<(usize, usize)>,
}

impl fmt::Display for DiagnosticSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "watchdog snapshot @ cycle {}: access latency {} \
             exceeded stall bound {}",
            self.cycle, self.latency, self.bound
        )?;
        writeln!(f, "  L2 occupancy:  {:?}", self.l2_occupancy)?;
        writeln!(f, "  LLC occupancy: {:?}", self.llc_occupancy)?;
        write!(f, "  LLC MSHRs:     [")?;
        for (i, m) in self.mshrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{} ({} cb)", m.len, m.capacity, m.for_callback)?;
        }
        writeln!(f, "]")?;
        if let Some(line) = self.blocked_line {
            write!(f, "  blocked line:  {line:#x}")?;
            if let Some((bank, set)) = self.blocked_set {
                write!(f, " (LLC bank {bank}, set {set})")?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "  pending callbacks: {}, quarantined Morphs: {}",
            self.pending_callbacks, self.quarantined_morphs
        )
    }
}

/// The watchdog's accumulated findings for one run.
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    next_epoch: Cycle,
    epochs_run: u64,
    violations: Vec<String>,
    violation_count: u64,
    stall: Option<(Cycle, Cycle)>,
    snapshot: Option<DiagnosticSnapshot>,
    prev_progress: Option<[u64; 4]>,
}

impl Watchdog {
    /// A fresh watchdog; with `enabled: false` every probe is a no-op.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            next_epoch: cfg.epoch_cycles.max(1),
            epochs_run: 0,
            violations: Vec::new(),
            violation_count: 0,
            stall: None,
            snapshot: None,
            prev_progress: None,
        }
    }

    /// Whether the watchdog is active at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configured stall bound.
    pub fn stall_bound(&self) -> Cycle {
        self.cfg.stall_cycles
    }

    /// True when an epoch sweep is due at `now`.
    pub fn epoch_due(&self, now: Cycle) -> bool {
        self.cfg.enabled && now >= self.next_epoch
    }

    /// Start an epoch sweep, scheduling the next one after `now`.
    pub fn begin_epoch(&mut self, now: Cycle) {
        self.epochs_run += 1;
        self.next_epoch = now + self.cfg.epoch_cycles.max(1);
    }

    /// Assert one invariant; records a violation when `ok` is false and
    /// returns `ok` so callers can also bump a counter.
    pub fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) -> bool {
        if !ok {
            self.violation_count += 1;
            if self.violations.len() < MAX_VIOLATIONS {
                self.violations.push(msg());
            }
        }
        ok
    }

    /// Epoch-over-epoch monotonicity of the progress counters
    /// (instructions, DRAM accesses, memory accesses, tallied energy):
    /// the simulator only ever adds to them, so a decrease means state
    /// corruption.
    pub fn check_progress(&mut self, instrs: u64, dram: u64, accesses: u64, energy_pj: u64) {
        let cur = [instrs, dram, accesses, energy_pj];
        if let Some(prev) = self.prev_progress {
            self.check(cur.iter().zip(prev.iter()).all(|(c, p)| c >= p), || {
                format!("progress counters regressed: {prev:?} -> {cur:?}")
            });
        }
        self.prev_progress = Some(cur);
    }

    /// Observe one finished access. Returns the latency when it
    /// exceeded the stall bound (the caller records the stall and, on
    /// the first one, attaches a snapshot). A `done < start` pair is a
    /// cycle-monotonicity violation and is recorded here directly.
    pub fn observe_access(&mut self, start: Cycle, done: Cycle) -> Option<Cycle> {
        if !self.cfg.enabled {
            return None;
        }
        if done < start {
            self.check(false, || {
                format!("access completed at {done} before it began at {start}")
            });
            return None;
        }
        let latency = done - start;
        if latency > self.cfg.stall_cycles {
            self.stall.get_or_insert((latency, self.cfg.stall_cycles));
            return Some(latency);
        }
        None
    }

    /// Attach the machine-state dump for the first detected stall.
    pub fn attach_snapshot(&mut self, snap: DiagnosticSnapshot) {
        self.snapshot.get_or_insert(snap);
    }

    /// The first detected stall, as `(latency, bound)`.
    pub fn stall(&self) -> Option<(Cycle, Cycle)> {
        self.stall
    }

    /// The snapshot captured at the first stall.
    pub fn snapshot(&self) -> Option<&DiagnosticSnapshot> {
        self.snapshot.as_ref()
    }

    /// Total invariant violations observed (exact, even past the
    /// stored-message cap).
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// Recorded violation messages (capped).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of epoch sweeps run.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }
}

impl tako_sim::checkpoint::Snapshot for Watchdog {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("watchdog");
        w.put_u64(self.next_epoch);
        w.put_u64(self.epochs_run);
        w.put_u64(self.violation_count);
        w.put_len(self.violations.len());
        for v in &self.violations {
            w.put_str(v);
        }
        w.put_bool(self.stall.is_some());
        let (lat, bound) = self.stall.unwrap_or((0, 0));
        w.put_u64(lat);
        w.put_u64(bound);
        w.put_bool(self.prev_progress.is_some());
        for p in self.prev_progress.unwrap_or([0; 4]) {
            w.put_u64(p);
        }
        w.put_bool(self.snapshot.is_some());
        if let Some(s) = &self.snapshot {
            w.put_u64(s.cycle);
            w.put_u64(s.latency);
            w.put_u64(s.bound);
            w.put_len(s.l2_occupancy.len());
            for o in &s.l2_occupancy {
                w.put_usize(*o);
            }
            w.put_len(s.llc_occupancy.len());
            for o in &s.llc_occupancy {
                w.put_usize(*o);
            }
            w.put_len(s.mshrs.len());
            for m in &s.mshrs {
                w.put_usize(m.len);
                w.put_usize(m.for_callback);
                w.put_usize(m.capacity);
            }
            w.put_usize(s.pending_callbacks);
            w.put_usize(s.quarantined_morphs);
            w.put_bool(s.blocked_line.is_some());
            w.put_u64(s.blocked_line.unwrap_or(0));
            w.put_bool(s.blocked_set.is_some());
            let (bank, set) = s.blocked_set.unwrap_or((0, 0));
            w.put_usize(bank);
            w.put_usize(set);
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        r.section("watchdog")?;
        self.next_epoch = r.get_u64()?;
        self.epochs_run = r.get_u64()?;
        self.violation_count = r.get_u64()?;
        let n = r.get_len()?;
        self.violations.clear();
        for _ in 0..n {
            self.violations.push(r.get_str()?);
        }
        let has_stall = r.get_bool()?;
        let stall = (r.get_u64()?, r.get_u64()?);
        self.stall = has_stall.then_some(stall);
        let has_progress = r.get_bool()?;
        let mut progress = [0u64; 4];
        for p in &mut progress {
            *p = r.get_u64()?;
        }
        self.prev_progress = has_progress.then_some(progress);
        self.snapshot = if r.get_bool()? {
            let cycle = r.get_u64()?;
            let latency = r.get_u64()?;
            let bound = r.get_u64()?;
            let mut l2_occupancy = Vec::new();
            for _ in 0..r.get_len()? {
                l2_occupancy.push(r.get_usize()?);
            }
            let mut llc_occupancy = Vec::new();
            for _ in 0..r.get_len()? {
                llc_occupancy.push(r.get_usize()?);
            }
            let mut mshrs = Vec::new();
            for _ in 0..r.get_len()? {
                mshrs.push(MshrSnapshot {
                    len: r.get_usize()?,
                    for_callback: r.get_usize()?,
                    capacity: r.get_usize()?,
                });
            }
            let pending_callbacks = r.get_usize()?;
            let quarantined_morphs = r.get_usize()?;
            let has_line = r.get_bool()?;
            let line = r.get_u64()?;
            let has_set = r.get_bool()?;
            let bank_set = (r.get_usize()?, r.get_usize()?);
            Some(DiagnosticSnapshot {
                cycle,
                latency,
                bound,
                l2_occupancy,
                llc_occupancy,
                mshrs,
                pending_callbacks,
                quarantined_morphs,
                blocked_line: has_line.then_some(line),
                blocked_set: has_set.then_some(bank_set),
            })
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(stall: u64, epoch: u64) -> WatchdogConfig {
        WatchdogConfig {
            enabled: true,
            epoch_cycles: epoch,
            stall_cycles: stall,
        }
    }

    #[test]
    fn disabled_watchdog_is_silent() {
        let mut w = Watchdog::new(WatchdogConfig {
            enabled: false,
            ..WatchdogConfig::default()
        });
        assert!(!w.epoch_due(u64::MAX));
        assert_eq!(w.observe_access(0, u64::MAX), None);
        assert!(w.stall().is_none());
    }

    #[test]
    fn epoch_scheduling() {
        let mut w = Watchdog::new(cfg(1000, 100));
        assert!(!w.epoch_due(50));
        assert!(w.epoch_due(100));
        w.begin_epoch(100);
        assert!(!w.epoch_due(150));
        assert!(w.epoch_due(200));
        assert_eq!(w.epochs_run(), 1);
    }

    #[test]
    fn stall_detection_and_snapshot_once() {
        let mut w = Watchdog::new(cfg(100, 1 << 20));
        assert_eq!(w.observe_access(0, 100), None);
        assert_eq!(w.observe_access(0, 101), Some(101));
        assert_eq!(w.observe_access(0, 500), Some(500));
        // First stall wins.
        assert_eq!(w.stall(), Some((101, 100)));
        let snap = DiagnosticSnapshot {
            cycle: 101,
            latency: 101,
            bound: 100,
            l2_occupancy: vec![1, 2],
            llc_occupancy: vec![3],
            mshrs: vec![MshrSnapshot {
                len: 2,
                for_callback: 1,
                capacity: 16,
            }],
            pending_callbacks: 4,
            quarantined_morphs: 0,
            blocked_line: Some(0x1440),
            blocked_set: Some((1, 3)),
        };
        w.attach_snapshot(snap.clone());
        let other = DiagnosticSnapshot {
            cycle: 999,
            ..snap.clone()
        };
        w.attach_snapshot(other);
        assert_eq!(w.snapshot(), Some(&snap));
        let text = snap.to_string();
        assert!(text.contains("exceeded stall bound 100"));
        assert!(text.contains("2/16 (1 cb)"));
        assert!(text.contains("pending callbacks: 4"));
        assert!(text.contains("blocked line:  0x1440 (LLC bank 1, set 3)"));
    }

    #[test]
    fn violations_recorded_and_counted() {
        let mut w = Watchdog::new(cfg(100, 100));
        assert!(w.check(true, || unreachable!()));
        assert!(!w.check(false, || "bad".to_string()));
        assert_eq!(w.violation_count(), 1);
        assert_eq!(w.violations(), &["bad".to_string()]);
        // Time running backwards is a violation, not a stall.
        assert_eq!(w.observe_access(10, 5), None);
        assert_eq!(w.violation_count(), 2);
        assert!(w.stall().is_none());
    }

    #[test]
    fn violation_messages_are_capped() {
        let mut w = Watchdog::new(cfg(100, 100));
        for i in 0..200 {
            w.check(false, || format!("v{i}"));
        }
        assert_eq!(w.violation_count(), 200);
        assert_eq!(w.violations().len(), MAX_VIOLATIONS);
    }

    #[test]
    fn progress_monotonicity() {
        let mut w = Watchdog::new(cfg(100, 100));
        w.check_progress(10, 5, 20, 900);
        w.check_progress(11, 5, 25, 950);
        assert_eq!(w.violation_count(), 0);
        w.check_progress(9, 5, 30, 950);
        assert_eq!(w.violation_count(), 1);
        assert!(w.violations()[0].contains("regressed"));
        // Energy regression alone is also caught.
        w.check_progress(12, 6, 31, 800);
        assert_eq!(w.violation_count(), 2);
    }
}
