//! # tako-core — the täkō polymorphic cache hierarchy
//!
//! This crate is the paper's contribution: a cache hierarchy whose misses,
//! evictions, and writebacks trigger *software callbacks* that run on
//! reconfigurable dataflow engines placed next to each L2 and LLC bank.
//!
//! ## The programming interface (Sec 4)
//!
//! Software defines a [`Morph`] — a set of callbacks plus whatever local
//! state they need — and registers it on an address range at either the
//! private L2 ([`MorphLevel::Private`]) or the shared LLC
//! ([`MorphLevel::Shared`]):
//!
//! * [`TakoSystem::register_phantom`] allocates a *phantom* address range
//!   that lives only in the caches and is never backed by off-chip
//!   memory; `onMiss` and `onWriteback` define the semantics of loads and
//!   stores to it.
//! * [`TakoSystem::register_real`] attaches callbacks to an existing
//!   DRAM-backed range, preserving load-store semantics by default
//!   (`onMiss` runs in parallel with the fetch; `onWriteback` interposes
//!   before the writeback).
//! * [`TakoSystem::flush_data`] (the paper's `flushData`) walks the tag
//!   arrays, evicts every line of a Morph's range — triggering
//!   `onEviction`/`onWriteback` — and blocks until all callbacks finish.
//!
//! Callbacks execute on the per-tile [`engine::Engine`]: a hardware
//! scheduler with a bounded callback buffer, per-line locking, a bitstream
//! cache, an rTLB, a coherent engine L1d, and a spatial dataflow fabric
//! (`tako-dataflow`). The [`EngineCtx`] handed to each callback exposes
//! dataflow-tracked ALU ops, accesses to the locked line, and coherent
//! loads/stores that walk the same hierarchy as every other agent.
//!
//! ## The system (Sec 5)
//!
//! [`TakoSystem`] assembles the full tiled CMP of Table 3 — out-of-order
//! cores, L1/L2, banked inclusive LLC with directory coherence, mesh NoC,
//! DRAM controllers, engines — and implements `tako_cpu::MemSystem`, so
//! any `ThreadProgram` runs against it unchanged. A system with no Morphs
//! registered behaves exactly like the baseline multicore: täkō adds no
//! latency to conventional loads and stores.
//!
//! # Example
//!
//! ```
//! use tako_core::{Morph, MorphLevel, EngineCtx, TakoSystem};
//! use tako_sim::config::SystemConfig;
//!
//! /// A phantom range whose lines materialize as sequential counters.
//! struct Iota;
//! impl Morph for Iota {
//!     fn name(&self) -> &str { "iota" }
//!     fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
//!         let base = ctx.offset() / 8;
//!         let v = ctx.arg();
//!         for i in 0..8 {
//!             ctx.line_write_u64(i as usize * 8, base + i, &[v]);
//!         }
//!     }
//! }
//!
//! let mut sys = TakoSystem::new(SystemConfig::default_16core());
//! let handle = sys.register_phantom(MorphLevel::Private, 4096, Box::new(Iota))?;
//! let base = handle.range().base;
//! // A core-side read of phantom word 10 triggers onMiss, which fills
//! // the line; the value is 10.
//! let (val, _cycle) = sys.debug_read_u64(0, base + 80, 0);
//! assert_eq!(val, 10);
//! # Ok::<(), tako_core::TakoError>(())
//! ```

pub mod ctx;
pub mod engine;
pub mod error;
pub mod hierarchy;
pub mod lanes;
pub mod morph;
pub mod overhead;
pub mod system;
pub mod watchdog;

pub use ctx::EngineCtx;
pub use error::TakoError;
pub use hierarchy::{SchedPoint, StageScheduler};
pub use lanes::run_multicore_lanes;
pub use morph::{CallbackKind, Morph, MorphHandle, MorphId, MorphLevel};
pub use system::TakoSystem;
pub use watchdog::{DiagnosticSnapshot, Watchdog};
