//! Randomized stress tests of the full hierarchy: interleaved reads,
//! writes, RMOs, flushes, and registrations across many tiles and
//! several Morphs, checking global invariants after every burst.

use tako_core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako_cpu::{AccessKind, MemSystem};
use tako_sim::config::{SystemConfig, LINE_BYTES};
use tako_sim::rng::Rng;
use tako_sim::stats::Counter;

/// Counting Morph with a verifiable fill pattern.
struct Pattern {
    tag: u64,
}

impl Morph for Pattern {
    fn name(&self) -> &str {
        "pattern"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let line_idx = ctx.offset() / LINE_BYTES;
        let dep = ctx.arg();
        let mut vals = [0u64; 8];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = self.tag ^ (line_idx << 8) ^ i as u64;
        }
        ctx.line_write_all_u64(&vals, &[dep]);
    }
}

fn morph_invariants_hold(sys: &TakoSystem) {
    let h = sys.hierarchy();
    for (i, tile) in h.tiles.iter().enumerate() {
        assert!(
            tile.l2.morph_invariant_holds(),
            "tile {i} L2 violates the trrîp callback-free-line invariant"
        );
    }
    for (b, bank) in h.llc.iter().enumerate() {
        assert!(
            bank.morph_invariant_holds(),
            "LLC bank {b} violates the trrîp invariant"
        );
    }
}

#[test]
fn random_access_storm_preserves_invariants_and_data() {
    let mut sys = TakoSystem::new(SystemConfig::default_16core());
    let mut rng = Rng::new(0x57E5);

    let real = sys.alloc_real(1 << 20);
    let priv_h = sys
        .register_phantom(
            MorphLevel::Private,
            1 << 18,
            Box::new(Pattern { tag: 0xAAAA }),
        )
        .expect("private morph");
    let shared_h = sys
        .register_phantom(
            MorphLevel::Shared,
            1 << 18,
            Box::new(Pattern { tag: 0x5555 }),
        )
        .expect("shared morph");

    // Shadow model of the real region.
    let mut shadow = vec![0u64; (real.size / 8) as usize];
    let mut t = 0u64;
    for burst in 0..40 {
        for _ in 0..500 {
            let tile = rng.below(16) as usize;
            match rng.below(10) {
                0..=3 => {
                    // Real-region write + shadow.
                    let w = rng.below(real.size / 8);
                    let val = rng.next_u64();
                    t = sys.timed_access(tile, AccessKind::Write, real.base + w * 8, t);
                    sys.data().write_u64(real.base + w * 8, val);
                    shadow[w as usize] = val;
                }
                4..=6 => {
                    // Real-region read must match the shadow.
                    let w = rng.below(real.size / 8);
                    t = sys.timed_access(tile, AccessKind::Read, real.base + w * 8, t);
                    let got = sys.data().read_u64(real.base + w * 8);
                    assert_eq!(got, shadow[w as usize], "data corruption");
                }
                7 => {
                    // Private phantom read: pattern must verify. Phantom
                    // Morphs are registered at tile 0's L2; access from
                    // its home tile.
                    let off = rng.below(priv_h.range().size / 8) * 8;
                    let addr = priv_h.range().base + off;
                    let (got, done) = sys.debug_read_u64(0, addr, t);
                    t = done;
                    let li = (off / LINE_BYTES) * LINE_BYTES / LINE_BYTES;
                    let word = (off % LINE_BYTES) / 8;
                    assert_eq!(got, 0xAAAA ^ (li << 8) ^ word);
                }
                8 => {
                    // Shared phantom read from any tile.
                    let off = rng.below(shared_h.range().size / 8) * 8;
                    let addr = shared_h.range().base + off;
                    let (got, done) = sys.debug_read_u64(tile, addr, t);
                    t = done;
                    let li = off / LINE_BYTES;
                    let word = (off % LINE_BYTES) / 8;
                    assert_eq!(got, 0x5555 ^ (li << 8) ^ word);
                }
                _ => {
                    // RMO into the shared phantom range.
                    let off = rng.below(shared_h.range().size / 8) * 8;
                    t = sys.timed_access(tile, AccessKind::Rmo, shared_h.range().base + off, t);
                }
            }
        }
        morph_invariants_hold(&sys);
        if burst % 10 == 9 {
            t = sys.flush_data(priv_h, t);
            t = sys.flush_data(shared_h, t);
        }
    }
    // Time must be monotone and callbacks must have fired.
    assert!(t > 0);
    assert!(sys.stats_view().get(Counter::CbOnMiss) > 0);

    // Final teardown: unregistering must leave a clean system.
    sys.unregister(priv_h, t).expect("unregister private");
    sys.unregister(shared_h, t).expect("unregister shared");
    assert!(sys.hierarchy().registry.is_empty());
    // Real data still intact after all the churn.
    for (w, &v) in shadow.iter().enumerate() {
        assert_eq!(sys.data().read_u64(real.base + w as u64 * 8), v);
    }
}

#[test]
fn repeated_register_unregister_cycles_are_clean() {
    let mut sys = TakoSystem::new(SystemConfig::default_16core());
    let mut t = 0;
    for round in 0..20u64 {
        let h = sys
            .register_phantom(
                MorphLevel::Private,
                64 * LINE_BYTES,
                Box::new(Pattern { tag: round }),
            )
            .expect("register");
        for i in 0..64u64 {
            let (v, done) = sys.debug_read_u64(0, h.range().base + i * LINE_BYTES, t);
            assert_eq!(v, round ^ (i << 8));
            t = done;
        }
        let (_, done) = sys.unregister(h, t).expect("unregister");
        t = done;
    }
    assert!(sys.hierarchy().registry.is_empty());
    // 20 rounds x 64 lines, each missing exactly once.
    assert_eq!(sys.stats_view().get(Counter::CbOnMiss), 20 * 64);
}
