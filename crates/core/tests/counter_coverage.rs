//! Counter-coverage audit of the transaction pipeline.
//!
//! Every [`Counter`] the staged pipeline can emit through the
//! [`TxnSink`](tako_sim::event::TxnSink) accounting bus must actually be
//! emitted by a mixed campaign — otherwise a refactor could silently
//! orphan an event mapping and the dashboards would read zero forever.
//! The campaign below drives demand traffic, evictions at every level,
//! prefetching, cross-tile coherence, Morph callbacks, a flushData walk,
//! and a fault schedule, then iterates `Counter::ALL` and asserts each
//! pipeline-emittable variant is nonzero.
//!
//! Counters NOT asserted here are the ones the pipeline cannot emit:
//!
//! - `Core*`, `BranchMispredict`: bumped by the `tako-cpu` core model,
//!   not the memory pipeline.
//! - `EngineL1Hit`/`EngineL1Miss`, `CbIllegalOp`, `UserInterrupt`,
//!   `CbBufferStallCycles`/`CbBufferFull`: bumped by the engine-side
//!   `EngineCtx`/callback-buffer models directly.
//! - `RtlbHit`/`RtlbMiss`: registry-TLB model.
//! - `Decompression`, `JournalWrite`, `PhiInPlace`, `PhiBinned`,
//!   `HatsEdgeLogged`, `HatsEdgeEmitted`: workload-Morph counters.
//! - `InvariantViolation`: pipeline-emittable in principle
//!   (`TxnEvent::InvariantViolations`), but only when a watchdog sweep
//!   finds real breakage — a healthy run must keep it at zero.

use tako_core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako_cpu::{AccessKind, MemSystem};
use tako_sim::config::{SystemConfig, LINE_BYTES};
use tako_sim::fault::{FaultEvent, FaultKind, FaultPlan};
use tako_sim::stats::Counter;

/// Minimal Morph whose `onMiss` does real engine work (instructions and
/// memory operations) so the `Engine*` counters move.
struct Filler;

impl Morph for Filler {
    fn name(&self) -> &str {
        "filler"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let vals = [0x7AC0u64; 8];
        ctx.line_write_all_u64(&vals, &[ctx.arg()]);
    }
}

/// The counters the Stats sink can reach from a `TxnEvent`, minus the
/// documented `InvariantViolation` exemption (see module docs).
fn pipeline_emitted(c: Counter) -> bool {
    matches!(
        c,
        Counter::L1dHit
            | Counter::L1dMiss
            | Counter::L2Hit
            | Counter::L2Miss
            | Counter::LlcHit
            | Counter::LlcMiss
            | Counter::L2Eviction
            | Counter::L2Writeback
            | Counter::LlcEviction
            | Counter::LlcWriteback
            | Counter::DramRead
            | Counter::DramWrite
            | Counter::NocFlitHops
            | Counter::PrefetchIssued
            | Counter::PrefetchUseful
            | Counter::CoherenceInval
            | Counter::CbOnMiss
            | Counter::CbOnEviction
            | Counter::CbOnWriteback
            | Counter::EngineInstr
            | Counter::EngineMemOp
            | Counter::FlushedLines
            | Counter::MshrStall
            | Counter::FaultInjected
            | Counter::MorphQuarantined
            | Counter::CbDegraded
            | Counter::WatchdogStallEvents
    )
}

#[test]
fn mixed_campaign_touches_every_pipeline_counter() {
    let mut cfg = SystemConfig::default_16core();
    // Three hand-placed faults, each armed from cycle 0 and consumed by
    // the first matching poll:
    // - FabricExhaustion fires on the first callback dispatch
    //   (FaultInjected + MorphQuarantined + CbDegraded),
    // - MshrPressure floods one LLC bank's MSHRs on the first demand
    //   miss (MshrStall),
    // - DelayedDram stretches that miss past the watchdog stall bound
    //   (WatchdogStallEvents).
    cfg.faults = Some(FaultPlan {
        seed: 0,
        events: vec![
            FaultEvent {
                at: 0,
                kind: FaultKind::FabricExhaustion,
                magnitude: 0,
                site: None,
            },
            FaultEvent {
                at: 0,
                kind: FaultKind::MshrPressure,
                magnitude: 64,
                site: None,
            },
            FaultEvent {
                at: 0,
                kind: FaultKind::DelayedDram,
                magnitude: 400_000,
                site: None,
            },
        ],
    });
    let mut sys = TakoSystem::new(cfg);
    let mut t = 0u64;

    // --- Fault trio: the first callback ever scheduled eats the
    // FabricExhaustion fault, quarantining this sacrificial Morph.
    let sac = sys
        .register_phantom(MorphLevel::Private, 16 * LINE_BYTES, Box::new(Filler))
        .expect("sacrificial morph");
    t = sys.timed_access(0, AccessKind::Read, sac.range().base, t);

    // --- Dirty sweep from tile 0, stride 16 lines so every access maps
    // to LLC bank 0. 9000 lines overflow the bank (8192 lines), so the
    // walk exercises L2 evictions/writebacks, LLC evictions/writebacks,
    // DRAM reads and writes, and — via the armed faults — the MSHR
    // stall loop and a watchdog-visible DRAM delay.
    let real = sys.alloc_real(16 << 20);
    let stride = 16 * LINE_BYTES;
    for k in 0..9000u64 {
        t = sys.timed_access(0, AccessKind::Write, real.base + k * stride, t);
    }

    // --- Cross-tile traffic: tile 1 reads a line tile 0 still caches
    // (LLC hit), then writes one, invalidating tile 0's copy.
    t = sys.timed_access(1, AccessKind::Read, real.base + 8995 * stride, t);
    t = sys.timed_access(1, AccessKind::Write, real.base + 8996 * stride, t);

    // --- Sequential read sweep over a cold region: trains the stride
    // prefetcher (PrefetchIssued) and then hits its fills
    // (PrefetchUseful).
    let seq = real.base + (10 << 20);
    for k in 0..512u64 {
        t = sys.timed_access(0, AccessKind::Read, seq + k * LINE_BYTES, t);
    }
    // Same address twice: the second access is an L1d hit.
    t = sys.timed_access(0, AccessKind::Read, seq, t);
    t = sys.timed_access(0, AccessKind::Read, seq, t);

    // --- Morph callbacks: misses run onMiss with real engine work;
    // flushData of a part-dirty range runs both onEviction (clean
    // lines) and onWriteback (dirty lines), counting FlushedLines.
    let ph = sys
        .register_phantom(MorphLevel::Private, 32 * LINE_BYTES, Box::new(Filler))
        .expect("filler morph");
    for k in 0..32u64 {
        t = sys.timed_access(0, AccessKind::Read, ph.range().base + k * LINE_BYTES, t);
    }
    t = sys.timed_access(0, AccessKind::Write, ph.range().base, t);
    t = sys.timed_access(0, AccessKind::Write, ph.range().base + LINE_BYTES, t);
    t = sys.flush_data(ph, t);
    assert!(t > 0);

    let stats = sys.stats_view();
    for &c in Counter::ALL.iter() {
        if pipeline_emitted(c) {
            assert!(
                stats.get(c) > 0,
                "pipeline-emittable counter {c:?} was never emitted \
                 by the mixed campaign"
            );
        }
    }
    // The healthy-run exemption must hold too: no real invariant broke.
    assert_eq!(stats.get(Counter::InvariantViolation), 0);
}
