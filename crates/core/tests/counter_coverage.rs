//! Counter-coverage audit of the transaction pipeline.
//!
//! Every [`Counter`] is classified into exactly one of two audit
//! classes, and the mixed campaign below proves the classification:
//!
//! - [`fires`]: counters the campaign must drive above zero. A refactor
//!   that silently orphans an event mapping (so a dashboard reads zero
//!   forever) fails this test.
//! - [`cannot_fire`]: counters this campaign must leave at exactly
//!   zero, each for a documented reason. Asserting `== 0` keeps the
//!   exemption honest — if a code change starts bumping one of these
//!   from the pipeline, the audit notices instead of silently ignoring
//!   a now-live counter.
//!
//! The two `matches!` lists must partition `Counter::ALL` (`Counter` is
//! `#[non_exhaustive]`, so a cross-crate exhaustive `match` is not
//! available): a newly added counter belongs to neither list and fails
//! the partition assertion until it is classified.
//!
//! The campaign drives demand traffic, evictions at every level,
//! prefetching, cross-tile coherence, Morph callbacks with coherent
//! engine loads (engine L1d + rTLB), a same-cycle callback burst that
//! overflows the 8-slot callback buffer, a flushData walk, and a fault
//! schedule.

use tako_core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako_cpu::{AccessKind, MemSystem};
use tako_sim::config::{SystemConfig, LINE_BYTES};
use tako_sim::fault::{FaultEvent, FaultKind, FaultPlan};
use tako_sim::stats::Counter;

/// Morph whose `onMiss` does real engine work: line-local writes
/// (EngineInstr/EngineMemOp) plus two coherent loads of an unregistered
/// scratch line — the first can miss the engine L1d, the second hits it
/// (EngineL1Miss/EngineL1Hit). The scratch line carries no Morph, so
/// the Sec 4.3 restriction checker stays silent (CbIllegalOp == 0).
struct Probe {
    scratch: u64,
}

impl Morph for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let vals = [0x7AC0u64; 8];
        let w = ctx.line_write_all_u64(&vals, &[ctx.arg()]);
        let (_, v) = ctx.load_u64(self.scratch, &[w]);
        let _ = ctx.load_u64(self.scratch, &[v]);
    }
}

/// Counters the mixed campaign must drive above zero.
fn fires(c: Counter) -> bool {
    matches!(
        c,
        Counter::L1dHit
            | Counter::L1dMiss
            | Counter::L2Hit
            | Counter::L2Miss
            | Counter::LlcHit
            | Counter::LlcMiss
            | Counter::L2Eviction
            | Counter::L2Writeback
            | Counter::LlcEviction
            | Counter::LlcWriteback
            | Counter::DramRead
            | Counter::DramWrite
            | Counter::NocFlitHops
            | Counter::PrefetchIssued
            | Counter::PrefetchUseful
            | Counter::CoherenceInval
            | Counter::CbOnMiss
            | Counter::CbOnEviction
            | Counter::CbOnWriteback
            | Counter::EngineInstr
            | Counter::EngineMemOp
            | Counter::EngineL1Hit
            | Counter::EngineL1Miss
            | Counter::RtlbHit
            | Counter::RtlbMiss
            | Counter::CbBufferStallCycles
            | Counter::CbBufferFull
            | Counter::FlushedLines
            | Counter::MshrStall
            | Counter::FaultInjected
            | Counter::MorphQuarantined
            | Counter::CbDegraded
            | Counter::WatchdogStallEvents
    )
}

/// Counters this campaign must leave at exactly zero:
///
/// - `Core*`, `BranchMispredict`: bumped by the `tako-cpu` core model;
///   the campaign drives the hierarchy directly through `timed_access`,
///   so no core ever retires an instruction.
/// - `UserInterrupt`: only `EngineCtx::raise_interrupt` bumps it, and
///   no campaign Morph calls it.
/// - `Decompression`, `JournalWrite`, `PhiInPlace`, `PhiBinned`,
///   `HatsEdgeLogged`, `HatsEdgeEmitted`: workload-Morph counters; the
///   campaign registers only the [`Probe`] Morph.
/// - `CbIllegalOp`: every campaign callback touches only its own
///   triggering line and an unregistered scratch line, so the Sec 4.3
///   restriction checker never trips.
/// - `InvariantViolation`: pipeline-emittable in principle
///   (`TxnEvent::InvariantViolations`), but only when a watchdog sweep
///   finds real breakage — a healthy run must keep it at zero.
fn cannot_fire(c: Counter) -> bool {
    matches!(
        c,
        Counter::CoreInstr
            | Counter::CoreLoad
            | Counter::CoreStore
            | Counter::CoreRmo
            | Counter::CoreBranch
            | Counter::BranchMispredict
            | Counter::UserInterrupt
            | Counter::Decompression
            | Counter::JournalWrite
            | Counter::PhiInPlace
            | Counter::PhiBinned
            | Counter::HatsEdgeLogged
            | Counter::HatsEdgeEmitted
            | Counter::CbIllegalOp
            | Counter::InvariantViolation
    )
}

#[test]
fn audit_classes_partition_every_counter() {
    for &c in Counter::ALL.iter() {
        assert!(
            fires(c) != cannot_fire(c),
            "counter {c:?} must be in exactly one audit class \
             (fires: {}, cannot_fire: {}); classify new counters here",
            fires(c),
            cannot_fire(c)
        );
    }
}

#[test]
fn mixed_campaign_touches_every_pipeline_counter() {
    let mut cfg = SystemConfig::default_16core();
    // Three hand-placed faults, each armed from cycle 0 and consumed by
    // the first matching poll:
    // - FabricExhaustion fires on the first callback dispatch
    //   (FaultInjected + MorphQuarantined + CbDegraded),
    // - MshrPressure floods one LLC bank's MSHRs on the first demand
    //   miss (MshrStall),
    // - DelayedDram stretches that miss past the watchdog stall bound
    //   (WatchdogStallEvents).
    cfg.faults = Some(FaultPlan {
        seed: 0,
        events: vec![
            FaultEvent {
                at: 0,
                kind: FaultKind::FabricExhaustion,
                magnitude: 0,
                site: None,
            },
            FaultEvent {
                at: 0,
                kind: FaultKind::MshrPressure,
                magnitude: 64,
                site: None,
            },
            FaultEvent {
                at: 0,
                kind: FaultKind::DelayedDram,
                magnitude: 400_000,
                site: None,
            },
        ],
    });
    let mut sys = TakoSystem::new(cfg);
    let mut t = 0u64;

    // Backing region for the dirty sweep; its tail doubles as the
    // Morph-free scratch line the Probe callbacks load through the
    // engine L1d.
    let real = sys.alloc_real(16 << 20);
    let scratch = real.base + (15 << 20);

    // --- Fault trio: the first callback ever scheduled eats the
    // FabricExhaustion fault, quarantining this sacrificial Morph.
    let sac = sys
        .register_phantom(
            MorphLevel::Private,
            16 * LINE_BYTES,
            Box::new(Probe { scratch }),
        )
        .expect("sacrificial morph");
    t = sys.timed_access(0, AccessKind::Read, sac.range().base, t);

    // --- Dirty sweep from tile 0, stride 16 lines so every access maps
    // to LLC bank 0. 9000 lines overflow the bank (8192 lines), so the
    // walk exercises L2 evictions/writebacks, LLC evictions/writebacks,
    // DRAM reads and writes, and — via the armed faults — the MSHR
    // stall loop and a watchdog-visible DRAM delay.
    let stride = 16 * LINE_BYTES;
    for k in 0..9000u64 {
        t = sys.timed_access(0, AccessKind::Write, real.base + k * stride, t);
    }

    // --- Cross-tile traffic: tile 1 reads a line tile 0 still caches
    // (LLC hit), then writes one, invalidating tile 0's copy.
    t = sys.timed_access(1, AccessKind::Read, real.base + 8995 * stride, t);
    t = sys.timed_access(1, AccessKind::Write, real.base + 8996 * stride, t);

    // --- Sequential read sweep over a cold region: trains the stride
    // prefetcher (PrefetchIssued) and then hits its fills
    // (PrefetchUseful).
    let seq = real.base + (10 << 20);
    for k in 0..512u64 {
        t = sys.timed_access(0, AccessKind::Read, seq + k * LINE_BYTES, t);
    }
    // Same address twice: the second access is an L1d hit.
    t = sys.timed_access(0, AccessKind::Read, seq, t);
    t = sys.timed_access(0, AccessKind::Read, seq, t);

    // --- Morph callbacks: misses run onMiss with real engine work
    // (fabric instructions, engine L1d fills and hits, rTLB walks);
    // flushData of a part-dirty range runs both onEviction (clean
    // lines) and onWriteback (dirty lines), counting FlushedLines.
    let ph = sys
        .register_phantom(
            MorphLevel::Private,
            32 * LINE_BYTES,
            Box::new(Probe { scratch }),
        )
        .expect("probe morph");
    for k in 0..32u64 {
        t = sys.timed_access(0, AccessKind::Read, ph.range().base + k * LINE_BYTES, t);
    }
    t = sys.timed_access(0, AccessKind::Write, ph.range().base, t);
    t = sys.timed_access(0, AccessKind::Write, ph.range().base + LINE_BYTES, t);
    t = sys.flush_data(ph, t);

    // --- Same-cycle callback burst: 64 cold misses all arriving at
    // cycle `t` trigger 64 onMiss callbacks against the engine's 8
    // callback-buffer slots; late arrivals find every slot held by a
    // still-running callback (CbBufferFull + CbBufferStallCycles).
    let burst = sys
        .register_phantom(
            MorphLevel::Private,
            64 * LINE_BYTES,
            Box::new(Probe { scratch }),
        )
        .expect("burst morph");
    let mut burst_done = t;
    for k in 0..64u64 {
        let done = sys.timed_access(0, AccessKind::Read, burst.range().base + k * LINE_BYTES, t);
        burst_done = burst_done.max(done);
    }
    t = burst_done;
    assert!(t > 0);

    let stats = sys.stats_view();
    for &c in Counter::ALL.iter() {
        if fires(c) {
            assert!(
                stats.get(c) > 0,
                "counter {c:?} was never emitted by the mixed campaign; \
                 either the pipeline orphaned its event mapping or the \
                 campaign no longer exercises it"
            );
        } else {
            assert_eq!(
                stats.get(c),
                0,
                "counter {c:?} is documented as un-emittable by this \
                 campaign but moved; reclassify it into fires() and \
                 extend the audit docs"
            );
        }
    }
}
