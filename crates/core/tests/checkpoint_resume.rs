//! Deterministic checkpoint/resume across the full system: a resumed
//! run must be *byte-identical* to an uninterrupted one — same cycles,
//! same counters, same canonical snapshot bytes at the end — including
//! Morph-local state, replacement state, and the fault-plan cursor.

use tako_core::{EngineCtx, Morph, MorphHandle, MorphLevel, TakoError, TakoSystem};
use tako_cpu::{AccessKind, MemSystem};
use tako_sim::checkpoint::{encode, SnapError};
use tako_sim::config::{CheckpointConfig, SystemConfig, LINE_BYTES};
use tako_sim::fault::{FaultEvent, FaultKind, FaultPlan};
use tako_sim::rng::Rng;

/// A Morph with observable local state: counts its misses and fills a
/// verifiable pattern. If resume dropped or duplicated Morph-local
/// state, the final counts would diverge.
struct Tally {
    tag: u64,
    misses: u64,
}

impl Morph for Tally {
    fn name(&self) -> &str {
        "tally"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        self.misses += 1;
        let line_idx = ctx.offset() / LINE_BYTES;
        let dep = ctx.arg();
        let mut vals = [0u64; 8];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = self.tag ^ (line_idx << 8) ^ i as u64;
        }
        ctx.line_write_all_u64(&vals, &[dep]);
    }
    fn save_state(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.put_u64(self.misses);
    }
    fn load_state(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        self.misses = r.get_u64()?;
        Ok(())
    }
}

fn test_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::default_16core();
    cfg.watchdog.epoch_cycles = 5_000;
    cfg.checkpoint = Some(CheckpointConfig { every_epochs: 2 });
    cfg
}

/// Build a system and register the standard Morph set for these tests.
/// Registration order matters: resume re-registers in the same order so
/// Morph ids and phantom ranges line up with the snapshot.
fn build(cfg: &SystemConfig) -> (TakoSystem, MorphHandle) {
    let mut sys = TakoSystem::new(cfg.clone());
    let _real = sys.alloc_real(1 << 18);
    let h = sys
        .register_phantom(
            MorphLevel::Private,
            1 << 16,
            Box::new(Tally {
                tag: 0xBEEF,
                misses: 0,
            }),
        )
        .expect("register morph");
    (sys, h)
}

/// One seeded driver step. Depends only on the rng and the system, so
/// two systems in identical states driven by identical rngs must
/// produce identical cycle results.
fn step(sys: &mut TakoSystem, h: MorphHandle, rng: &mut Rng, t: u64) -> u64 {
    let real_base = 0x1000_0000u64 & !(LINE_BYTES - 1);
    let tile = rng.below(16) as usize;
    match rng.below(8) {
        0..=2 => {
            let off = rng.below(1 << 12) * 8;
            sys.timed_access(tile, AccessKind::Write, real_base + off, t)
        }
        3..=4 => {
            let off = rng.below(1 << 12) * 8;
            sys.timed_access(tile, AccessKind::Read, real_base + off, t)
        }
        _ => {
            let off = rng.below(h.range().size / 8) * 8;
            let (_, done) = sys.debug_read_u64(0, h.range().base + off, t);
            done
        }
    }
}

fn run_split(cfg: &SystemConfig, total: usize, split: usize) -> (Vec<u8>, u64, Vec<u8>) {
    // Uninterrupted reference run, snapshotting (without stopping) at
    // the split point.
    let (mut sys, h) = build(cfg);
    let mut rng = Rng::new(0xC0FFEE);
    let mut t = 0u64;
    let mut mid = Vec::new();
    let mut mid_rng = rng.clone();
    let mut mid_t = 0u64;
    for i in 0..total {
        if i == split {
            mid = sys.snapshot_bytes();
            mid_rng = rng.clone();
            mid_t = t;
        }
        t = step(&mut sys, h, &mut rng, t);
    }
    let final_ref = encode(&sys);

    // Resumed run: fresh system, same registration order, restore the
    // mid-run snapshot, replay the tail.
    let (mut sys2, h2) = build(cfg);
    sys2.restore_bytes(&mid).expect("restore");
    let mut rng2 = mid_rng;
    let mut t2 = mid_t;
    for _ in split..total {
        t2 = step(&mut sys2, h2, &mut rng2, t2);
    }
    assert_eq!(t2, t, "resumed run diverged in time");
    let final_resumed = encode(&sys2);
    (final_ref, t, final_resumed)
}

#[test]
fn resume_is_byte_identical_midstream() {
    let cfg = test_cfg();
    let (reference, t, resumed) = run_split(&cfg, 1200, 700);
    assert!(t > 0);
    assert_eq!(
        reference, resumed,
        "resumed system state is not byte-identical to the uninterrupted run"
    );
}

#[test]
fn resume_is_byte_identical_inside_fault_window() {
    // Snapshot lands while a delayed-DRAM fault plan is mid-flight:
    // one event consumed before the split, one pending after it. The
    // injector cursor must survive the round trip or the tail run
    // would double-fire or drop an event.
    let mut cfg = test_cfg();
    cfg.faults = Some(FaultPlan {
        seed: 7,
        events: vec![
            FaultEvent {
                at: 100,
                kind: FaultKind::DelayedDram,
                magnitude: 50_000,
                site: None,
            },
            FaultEvent {
                at: 40_000,
                kind: FaultKind::DelayedDram,
                magnitude: 50_000,
                site: Some(3),
            },
        ],
    });
    let (reference, _, resumed) = run_split(&cfg, 1200, 600);
    assert_eq!(
        reference, resumed,
        "resume under an active fault plan diverged"
    );
}

#[test]
fn restore_rejects_corruption_and_config_skew() {
    let cfg = test_cfg();
    let (sys, _) = build(&cfg);
    let snap = sys.snapshot_bytes();

    // Bit flip in the payload → checksum failure.
    let mut bad = snap.clone();
    let n = bad.len();
    bad[n - 1] ^= 0x40;
    let (mut fresh, _) = build(&cfg);
    match fresh.restore_bytes(&bad) {
        Err(TakoError::BadSnapshot(SnapError::BadChecksum)) => {}
        other => panic!("corrupt snapshot accepted: {other:?}"),
    }

    // A snapshot stamped with the previous format version (2 — the
    // pre-SoA tag-array layout) → rejected on the envelope version
    // before any payload decoding is attempted.
    let mut stale = snap.clone();
    stale[8..12].copy_from_slice(&2u32.to_le_bytes());
    let (mut fresh2, _) = build(&cfg);
    match fresh2.restore_bytes(&stale) {
        Err(TakoError::BadSnapshot(SnapError::BadVersion { found: 2 })) => {}
        other => panic!("stale-version snapshot accepted: {other:?}"),
    }

    // Same snapshot into a differently parameterized system → rejected
    // on the config fingerprint before any state is touched.
    let mut skewed = cfg.clone();
    skewed.l2.size_bytes *= 2;
    let (mut other, _) = build(&skewed);
    match other.restore_bytes(&snap) {
        Err(TakoError::BadSnapshot(SnapError::StateMismatch(m))) => {
            assert!(m.contains("fingerprint"), "unexpected mismatch: {m}")
        }
        other => panic!("config-skewed restore accepted: {other:?}"),
    }
}

#[test]
fn checkpoint_due_fires_on_epoch_cadence() {
    let cfg = test_cfg();
    let (mut sys, h) = build(&cfg);
    let mut rng = Rng::new(0xD1CE);
    let mut t = 0u64;
    let mut due = 0u64;
    for _ in 0..2000 {
        t = step(&mut sys, h, &mut rng, t);
        if sys.take_checkpoint_due() {
            due += 1;
        }
    }
    let epochs = sys.hierarchy().watchdog.epochs_run();
    assert!(epochs >= 4, "test too short to cross epochs ({epochs})");
    assert!(
        due >= 1,
        "checkpoint cadence never fired over {epochs} epochs"
    );
    // The flag is drained by take(): it cannot still be pending.
    assert!(!sys.take_checkpoint_due());
}
