//! Integration tests of the täkō hierarchy: baseline cache behaviour,
//! Morph callback semantics (Table 1), phantom-line life cycle, flushes,
//! prefetch-triggered callbacks, and the Sec 4.3 restrictions.

use tako_core::{EngineCtx, Morph, MorphLevel, TakoError, TakoSystem};
use tako_cpu::{AccessKind, MemSystem};
use tako_mem::addr::{is_phantom, AddrRange};
use tako_sim::config::{SystemConfig, LINE_BYTES};
use tako_sim::stats::Counter;

fn sys() -> TakoSystem {
    TakoSystem::new(SystemConfig::default_16core())
}

/// A Morph that fills missing lines with a constant and counts events.
#[derive(Default)]
struct CountingMorph {
    misses: u64,
    evictions: u64,
    writebacks: u64,
    fill: u64,
}

impl Morph for CountingMorph {
    fn name(&self) -> &str {
        "counting"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        self.misses += 1;
        let v = ctx.arg();
        ctx.line_fill_u64(self.fill, &[v]);
    }
    fn on_eviction(&mut self, ctx: &mut EngineCtx<'_>) {
        self.evictions += 1;
        let _ = ctx;
    }
    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        self.writebacks += 1;
        let _ = ctx;
    }
}

#[test]
fn baseline_read_hits_after_miss() {
    let mut s = sys();
    let range = s.alloc_real(4096);
    let (_, t1) = s.debug_read_u64(0, range.base, 0);
    // Cold miss goes to DRAM.
    assert!(t1 >= 100, "cold miss too fast: {t1}");
    assert_eq!(s.stats_view().get(Counter::DramRead), 1);
    let (_, t2) = s.debug_read_u64(0, range.base + 8, 100_000);
    // Same line: L1 hit, a few cycles.
    assert!(t2 - 100_000 < 10, "hit too slow: {}", t2 - 100_000);
    assert_eq!(s.stats_view().get(Counter::L1dHit), 1);
    assert_eq!(s.stats_view().get(Counter::DramRead), 1);
}

#[test]
fn no_morph_system_never_runs_callbacks() {
    let mut s = sys();
    let range = s.alloc_real(1 << 20);
    for i in 0..10_000u64 {
        s.timed_access(0, AccessKind::Read, range.base + i * 40, i * 10);
    }
    let st = s.stats_view();
    assert_eq!(st.get(Counter::CbOnMiss), 0);
    assert_eq!(st.get(Counter::CbOnEviction), 0);
    assert_eq!(st.get(Counter::CbOnWriteback), 0);
}

#[test]
fn writes_produce_writebacks_under_pressure() {
    let mut s = sys();
    let range = s.alloc_real(16 << 20); // larger than the LLC
    let mut t = 0;
    for i in 0..(range.size / LINE_BYTES) {
        t = s.timed_access(0, AccessKind::Write, range.base + i * LINE_BYTES, t);
    }
    assert!(s.stats_view().get(Counter::DramWrite) > 0);
    assert!(s.stats_view().get(Counter::L2Writeback) > 0);
}

#[test]
fn phantom_miss_runs_onmiss_then_hits() {
    let mut s = sys();
    let h = s
        .register_phantom(
            MorphLevel::Private,
            4096,
            Box::new(CountingMorph {
                fill: 42,
                ..Default::default()
            }),
        )
        .expect("register");
    assert!(is_phantom(h.range().base));
    let (v, _) = s.debug_read_u64(0, h.range().base + 16, 0);
    assert_eq!(v, 42);
    assert_eq!(s.stats_view().get(Counter::CbOnMiss), 1);
    // No DRAM traffic for phantom data.
    assert_eq!(s.stats_view().get(Counter::DramRead), 0);
    // Re-read: cache hit, no new callback.
    let (v2, _) = s.debug_read_u64(0, h.range().base + 24, 10_000);
    assert_eq!(v2, 42);
    assert_eq!(s.stats_view().get(Counter::CbOnMiss), 1);
    let misses = s.with_morph(h, |m| {
        // Downcast via name — the object is ours.
        m.name().to_string()
    });
    assert_eq!(misses.as_deref(), Some("counting"));
}

#[test]
fn dirty_phantom_eviction_triggers_onwriteback_not_dram() {
    let mut s = sys();
    // Phantom range far larger than the L2 so lines get evicted.
    let h = s
        .register_phantom(
            MorphLevel::Private,
            1 << 20,
            Box::new(CountingMorph::default()),
        )
        .expect("register");
    let base = h.range().base;
    let mut t = 0;
    for i in 0..(1u64 << 20) / LINE_BYTES {
        t = s.timed_access(0, AccessKind::Write, base + i * LINE_BYTES, t);
    }
    let st = s.stats_view();
    assert!(st.get(Counter::CbOnWriteback) > 0, "no onWriteback ran");
    // Phantom lines are never written to DRAM.
    assert_eq!(st.get(Counter::DramWrite), 0);
    assert_eq!(st.get(Counter::DramRead), 0);
}

#[test]
fn clean_phantom_eviction_triggers_oneviction() {
    let mut s = sys();
    let h = s
        .register_phantom(
            MorphLevel::Private,
            1 << 20,
            Box::new(CountingMorph::default()),
        )
        .expect("register");
    let base = h.range().base;
    let mut t = 0;
    for i in 0..(1u64 << 20) / LINE_BYTES {
        t = s.timed_access(0, AccessKind::Read, base + i * LINE_BYTES, t);
    }
    assert!(s.stats_view().get(Counter::CbOnEviction) > 0);
    assert_eq!(s.stats_view().get(Counter::CbOnWriteback), 0);
}

#[test]
fn flush_data_writes_back_all_dirty_lines() {
    let mut s = sys();
    let h = s
        .register_phantom(
            MorphLevel::Private,
            16 * LINE_BYTES,
            Box::new(CountingMorph::default()),
        )
        .expect("register");
    let base = h.range().base;
    let mut t = 0;
    for i in 0..16u64 {
        t = s.timed_access(0, AccessKind::Write, base + i * LINE_BYTES, t);
    }
    let done = s.flush_data(h, t);
    assert!(done >= t);
    assert_eq!(s.stats_view().get(Counter::CbOnWriteback), 16);
    assert_eq!(s.stats_view().get(Counter::FlushedLines), 16);
    // After the flush, a read misses again (lines were discarded).
    s.debug_read_u64(0, base, done);
    assert_eq!(s.stats_view().get(Counter::CbOnMiss), 17);
}

#[test]
fn rmo_on_shared_phantom_executes_at_llc() {
    let mut s = sys();
    let h = s
        .register_phantom(MorphLevel::Shared, 4096, Box::new(CountingMorph::default()))
        .expect("register");
    let base = h.range().base;
    let done = s.timed_access(3, AccessKind::Rmo, base, 0);
    s.data().add_f64(base, 1.5);
    assert!(done > 0);
    let st = s.stats_view();
    assert_eq!(st.get(Counter::CbOnMiss), 1);
    // RMO bypasses the private caches entirely.
    assert_eq!(st.get(Counter::L1dMiss), 0);
    assert_eq!(st.get(Counter::L2Miss), 0);
    // Second RMO to the same line: LLC hit, no callback.
    s.timed_access(5, AccessKind::Rmo, base + 8, done);
    assert_eq!(s.stats_view().get(Counter::CbOnMiss), 1);
    assert_eq!(s.stats_view().get(Counter::LlcHit), 1);
}

/// Morph raising an interrupt on every eviction (Sec 8.4's detector).
struct Alarm;
impl Morph for Alarm {
    fn name(&self) -> &str {
        "alarm"
    }
    fn on_eviction(&mut self, ctx: &mut EngineCtx<'_>) {
        ctx.raise_interrupt();
    }
    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        ctx.raise_interrupt();
    }
}

#[test]
fn real_morph_preserves_data_and_detects_eviction() {
    let mut s = sys();
    let secure = s.alloc_real(4 * LINE_BYTES);
    s.data().write_u64(secure.base, 0xAE5);
    let h = s
        .register_real_at(2, MorphLevel::Shared, secure, Box::new(Alarm), 0)
        .expect("register");
    // Load-store semantics preserved: reads still see the data.
    let (v, _) = s.debug_read_u64(2, secure.base, 0);
    assert_eq!(v, 0xAE5);
    assert_eq!(s.stats_view().get(Counter::CbOnMiss), 1); // ran in parallel
                                                          // Force the LLC set to evict the secure line: hammer conflicting
                                                          // lines (same bank, same set). LLC set index uses line/64 % 512,
                                                          // bank uses line/64 % 16.
    let llc_period = 16 * 512 * LINE_BYTES; // lines mapping to same bank+set
    let attacker = s.alloc_real(64 * llc_period);
    let first_conflict = attacker.base
        + (secure.base % llc_period + llc_period - attacker.base % llc_period) % llc_period;
    let mut t = 1_000_000;
    for w in 0..32u64 {
        t = s.timed_access(9, AccessKind::Read, first_conflict + w * llc_period, t);
    }
    let ints = s.take_interrupts();
    assert!(
        !ints.is_empty(),
        "eviction of monitored line must raise an interrupt"
    );
    assert_eq!(ints[0].tile, 2, "interrupt goes to the registering tile");
    let _ = h;
}

#[test]
fn prefetcher_triggers_onmiss_ahead_of_demand() {
    let mut s = sys();
    let h = s
        .register_phantom(
            MorphLevel::Private,
            1 << 16,
            Box::new(CountingMorph::default()),
        )
        .expect("register");
    let base = h.range().base;
    let mut t = 0;
    // Stream sequentially: the stride prefetcher should run onMiss for
    // lines before the demand reaches them.
    for i in 0..256u64 {
        t = s.timed_access(0, AccessKind::Read, base + i * 8, t);
    }
    let st = s.stats_view();
    assert!(st.get(Counter::PrefetchIssued) > 0, "prefetcher silent");
    assert!(st.get(Counter::PrefetchUseful) > 0, "prefetches unused");
    // Demands + prefetches both triggered callbacks, once per line
    // (plus up to `degree` overshoot past the end of the stream).
    let lines = 256 * 8 / LINE_BYTES;
    let cb = st.get(Counter::CbOnMiss);
    assert!(
        (lines..=lines + 8).contains(&cb),
        "expected ~{lines} onMiss callbacks, got {cb}"
    );
}

#[test]
fn registration_rejects_overlap_and_empty() {
    let mut s = sys();
    let range = s.alloc_real(4096);
    s.register_real(MorphLevel::Shared, range, Box::new(Alarm))
        .expect("first registration");
    let sub = AddrRange::new(range.base + 64, 64);
    let err = s
        .register_real(MorphLevel::Shared, sub, Box::new(Alarm))
        .expect_err("overlap must fail");
    assert!(matches!(err, tako_core::TakoError::RangeOverlap { .. }));
    let err = s
        .register_phantom(MorphLevel::Private, 0, Box::new(Alarm))
        .expect_err("empty must fail");
    assert!(matches!(err, tako_core::TakoError::EmptyRange));
}

#[test]
fn unregister_flushes_and_frees_range() {
    let mut s = sys();
    let h = s
        .register_phantom(
            MorphLevel::Private,
            8 * LINE_BYTES,
            Box::new(CountingMorph::default()),
        )
        .expect("register");
    let base = h.range().base;
    let mut t = 0;
    for i in 0..8u64 {
        t = s.timed_access(0, AccessKind::Write, base + i * LINE_BYTES, t);
    }
    let (morph, done) = s.unregister(h, t).expect("unregister");
    assert!(done >= t);
    assert_eq!(morph.name(), "counting");
    assert_eq!(s.stats_view().get(Counter::CbOnWriteback), 8);
    // Handle is now stale.
    assert!(s.unregister(h, done).is_err());
}

/// PRIVATE callback that reads from a SHARED Morph's range (allowed).
struct ReadsShared {
    shared_base: u64,
}
impl Morph for ReadsShared {
    fn name(&self) -> &str {
        "reads-shared"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let (v, dep) = ctx.load_u64(self.shared_base, &[]);
        ctx.line_write_u64(0, v + 1, &[dep]);
    }
}

#[test]
fn private_callback_may_trigger_shared_callback() {
    let mut s = sys();
    let shared = s
        .register_phantom(
            MorphLevel::Shared,
            4096,
            Box::new(CountingMorph {
                fill: 7,
                ..Default::default()
            }),
        )
        .expect("shared");
    let private = s
        .register_phantom(
            MorphLevel::Private,
            4096,
            Box::new(ReadsShared {
                shared_base: shared.range().base,
            }),
        )
        .expect("private");
    let (v, _) = s.debug_read_u64(0, private.range().base, 0);
    // The private onMiss loaded from the shared phantom range, which
    // triggered the shared onMiss (fill 7), then wrote 7 + 1.
    assert_eq!(v, 8);
    assert_eq!(s.stats_view().get(Counter::CbOnMiss), 2);
}

/// A callback that illegally touches a PRIVATE Morph's range.
struct TouchesPrivate {
    victim: u64,
}
impl Morph for TouchesPrivate {
    fn name(&self) -> &str {
        "touches-private"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        ctx.load_u64(self.victim, &[]);
    }
}

#[test]
fn shared_callback_touching_private_morph_is_quarantined() {
    let mut s = sys();
    let private = s
        .register_phantom(
            MorphLevel::Private,
            4096,
            Box::new(CountingMorph::default()),
        )
        .expect("private");
    let shared = s
        .register_phantom(
            MorphLevel::Shared,
            4096,
            Box::new(TouchesPrivate {
                victim: private.range().base,
            }),
        )
        .expect("shared");
    // The illegal access is suppressed (the run completes) and the
    // offending Morph is quarantined, degrading its range to baseline.
    s.debug_read_u64(0, shared.range().base, 0);
    let st = s.stats_view();
    assert_eq!(st.get(Counter::CbIllegalOp), 1);
    assert_eq!(st.get(Counter::MorphQuarantined), 1);
    assert!(s.hierarchy().registry.quarantined(shared.id()).is_some());
    match s.health() {
        Err(TakoError::CallbackQuarantined { morph, reason }) => {
            assert_eq!(morph, shared.id());
            assert!(reason.contains("illegal"));
        }
        other => panic!("expected CallbackQuarantined, got {other:?}"),
    }
    // Further misses on the quarantined range skip the callback and are
    // counted as degraded.
    s.debug_read_u64(0, shared.range().base + 4032, 0);
    assert!(s.stats_view().get(Counter::CbDegraded) >= 1);
    assert_eq!(s.stats_view().get(Counter::MorphQuarantined), 1);
}

#[test]
fn callback_latency_tracked_and_line_locked() {
    let mut s = sys();
    let h = s
        .register_phantom(
            MorphLevel::Private,
            4096,
            Box::new(CountingMorph::default()),
        )
        .expect("register");
    s.debug_read_u64(0, h.range().base, 0);
    let st = s.stats_view();
    assert!(st.callback_latency.count() > 0);
    assert!(st.callback_latency.mean() > 0.0);
}

#[test]
fn energy_accumulates_dram_dominant() {
    let mut s = sys();
    let range = s.alloc_real(1 << 22);
    let mut t = 0;
    for i in 0..(range.size / LINE_BYTES) {
        t = s.timed_access(0, AccessKind::Read, range.base + i * LINE_BYTES, t);
    }
    let e = s.energy();
    assert!(e.total_pj() > 0.0);
    assert!(
        e.dram_pj > e.l1_pj,
        "for a streaming scan DRAM energy should dominate L1"
    );
}

#[test]
fn nt_stores_skip_the_read_for_ownership_fetch() {
    let mut s = sys();
    let range = s.alloc_real(1 << 20);
    let mut t = 0;
    for i in 0..(range.size / LINE_BYTES) {
        t = s.timed_access(
            0,
            tako_cpu::AccessKind::WriteStream,
            range.base + i * LINE_BYTES,
            t,
        );
    }
    // Write-combining appends never read memory; the dirty lines flow
    // down the hierarchy (parked in the LLC at this footprint).
    assert_eq!(s.stats_view().get(Counter::DramRead), 0);
    let resident: usize = s
        .hierarchy()
        .llc
        .iter()
        .map(|b| b.lines_in_range(range).len())
        .sum();
    assert!(
        resident > 0 || s.stats_view().get(Counter::DramWrite) > 0,
        "streamed writes must flow downward"
    );
}

#[test]
fn nt_reads_do_not_install_in_the_llc() {
    let mut s = sys();
    let range = s.alloc_real(1 << 20);
    let mut t = 0;
    for i in 0..(range.size / LINE_BYTES) {
        t = s.timed_access(
            3,
            tako_cpu::AccessKind::ReadStream,
            range.base + i * LINE_BYTES,
            t,
        );
    }
    let resident: usize = s
        .hierarchy()
        .llc
        .iter()
        .map(|b| b.lines_in_range(range).len())
        .sum();
    assert_eq!(resident, 0, "NT scan must not fill the shared cache");
}

#[test]
fn demote_makes_a_line_the_preferred_victim() {
    let mut s = sys();
    let range = s.alloc_real(1 << 20);
    // Load two lines mapping to the same L2 set (256 sets x 64 B apart).
    let a = range.base;
    let b = range.base + 256 * LINE_BYTES;
    s.timed_access(0, AccessKind::Read, a, 0);
    s.timed_access(0, AccessKind::Read, b, 1_000);
    s.hierarchy_mut().demote_line(0, a);
    // a's L1 copy is gone; its L2 entry is at distant priority.
    assert!(s.hierarchy().tiles[0].l1d.probe(a).is_none());
    let e = s.hierarchy().tiles[0].l2.probe(a).expect("still in L2");
    assert_eq!(e.get().rrpv, 3);
    // Fill the set: the demoted line leaves before the fresh one.
    let mut t = 2_000;
    for k in 2..10u64 {
        t = s.timed_access(0, AccessKind::Read, a + k * 256 * LINE_BYTES, t);
    }
    assert!(s.hierarchy().tiles[0].l2.probe(a).is_none());
    assert!(s.hierarchy().tiles[0].l2.probe(b).is_some());
}

#[test]
fn registration_flush_clears_stale_prefetched_lines() {
    // Prefetcher overshoot caches zeroed no-morph phantom lines past a
    // range's end; a later registration over those addresses must still
    // see onMiss (regression test for the range-flush-on-register rule).
    let mut s = sys();
    let first = s
        .register_phantom(
            MorphLevel::Private,
            8 * LINE_BYTES,
            Box::new(CountingMorph {
                fill: 1,
                ..Default::default()
            }),
        )
        .expect("first");
    let mut t = 0;
    for i in 0..64u64 {
        // Sequential 8 B reads train the prefetcher and overshoot.
        let (_, done) = s.debug_read_u64(0, first.range().base + i * 8, t);
        t = done;
    }
    let second = s
        .register_phantom(
            MorphLevel::Private,
            8 * LINE_BYTES,
            Box::new(CountingMorph {
                fill: 2,
                ..Default::default()
            }),
        )
        .expect("second");
    let (v, _) = s.debug_read_u64(0, second.range().base, t);
    assert_eq!(v, 2, "stale overshoot line served instead of onMiss");
}

#[test]
fn interrupts_deliver_to_the_registering_tile_only() {
    let mut s = sys();
    let secure = s.alloc_real(2 * LINE_BYTES);
    s.register_real_at(7, MorphLevel::Shared, secure, Box::new(Alarm), 0)
        .expect("register");
    // Cache the line, then force it out with conflicting fills.
    s.debug_read_u64(7, secure.base, 0);
    let sets = s.config().llc_bank.sets();
    let period = s.config().tiles as u64 * sets * LINE_BYTES;
    let pool = s.alloc_real(64 * period);
    let first = pool.base + (secure.base % period + period - pool.base % period) % period;
    let mut t = 100_000;
    for w in 0..32u64 {
        t = s.timed_access(1, AccessKind::Read, first + w * period, t);
    }
    use tako_cpu::MemSystem as _;
    assert!(
        s.take_interrupt(3).is_none(),
        "wrong tile got the interrupt"
    );
    assert!(
        s.take_interrupt(7).is_some(),
        "registering tile must get it"
    );
}

/// A Morph whose onMiss burns a long dataflow chain: the triggering
/// access is pinned behind the callback (trrîp inserts the engine's
/// fills at distant priority and the line stays locked), so a tight
/// stall bound trips the watchdog on the very first phantom miss.
struct SlowMorph;
impl Morph for SlowMorph {
    fn name(&self) -> &str {
        "slow"
    }
    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        ctx.alu_chain(&[], 5_000);
    }
}

#[test]
fn stall_snapshot_names_the_blocked_set_and_line() {
    let mut cfg = SystemConfig::default_16core();
    cfg.watchdog.stall_cycles = 100;
    let mut s = TakoSystem::new(cfg);
    let handle = s
        .register_phantom(MorphLevel::Shared, 4096, Box::new(SlowMorph))
        .expect("register");
    let addr = handle.range().base + 3 * LINE_BYTES;
    let (_, done) = s.debug_read_u64(2, addr, 0);
    assert!(done > 100, "callback should stall the access: {done}");

    let hier = s.hierarchy();
    assert!(hier.watchdog.stall().is_some(), "stall not detected");
    let snap = hier.watchdog.snapshot().expect("snapshot attached");
    // The snapshot must name the blocked line and where it lives, not
    // just that something somewhere stalled.
    let line = addr & !(LINE_BYTES - 1);
    assert_eq!(snap.blocked_line, Some(line), "wrong blocked line");
    let bank = hier.mesh.bank_of_line(line);
    let set = hier.llc[bank].set_index(line);
    assert_eq!(snap.blocked_set, Some((bank, set)), "wrong blocked set");
    let text = snap.to_string();
    assert!(
        text.contains(&format!("LLC bank {bank}, set {set}")),
        "dump must name the blocked set: {text}"
    );
}
