//! Seeded corruption fuzz over snapshot envelopes: whatever bytes a
//! lying filesystem hands back, `TakoSystem::restore_bytes` must
//! return a [`tako_core::TakoError`] (or, past the checksum line, at
//! worst a structurally valid wrong state) — it must never panic and
//! never abort on a corrupted length field.
//!
//! Three offset classes are swept:
//!
//! * truncation at every envelope-header boundary and at a seeded
//!   sample of payload lengths;
//! * bit flips anywhere in the envelope (the checksum must catch every
//!   payload flip, the header checks every header flip);
//! * bit flips in the payload with the envelope checksum *recomputed*
//!   — the adversarial case that drives the section/state-mismatch
//!   validation and the capacity sanity bounds instead of the digest.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tako_core::TakoSystem;
use tako_cpu::{AccessKind, MemSystem};
use tako_sim::config::SystemConfig;
use tako_sim::digest::Sha256;
use tako_sim::rng::Rng;

/// Envelope header layout (see `tako_sim::checkpoint::encode`):
/// 8 magic + 4 version + 8 payload length + 32 payload SHA-256.
const HDR: usize = 8 + 4 + 8 + 32;

fn warmed() -> (TakoSystem, Vec<u8>) {
    let mut sys = TakoSystem::new(SystemConfig::with_tiles(4));
    let _ = sys.alloc_real(1 << 16);
    let mut t = 0u64;
    for k in 0..800u64 {
        let addr = 0x1000_0000 + (k % 512) * 64;
        t = sys.timed_access((k % 4) as usize, AccessKind::Read, addr, t);
    }
    let snap = sys.snapshot_bytes();
    (sys, snap)
}

/// Assert that restoring `bytes` does not panic; return the verdict.
fn restore_no_panic(sys: &mut TakoSystem, bytes: &[u8]) -> Result<(), String> {
    let r = catch_unwind(AssertUnwindSafe(|| sys.restore_bytes(bytes)));
    match r {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.to_string()),
        Err(_) => panic!(
            "restore_bytes panicked on corrupt input ({} bytes)",
            bytes.len()
        ),
    }
}

#[test]
fn truncation_at_every_offset_class_errors_not_panics() {
    let (mut sys, snap) = warmed();
    // Every header boundary and its neighbors, then a seeded sample of
    // payload cut points (plus the exact end-minus-one).
    let mut cuts: Vec<usize> = (0..=HDR + 2).collect();
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..64 {
        cuts.push(HDR + (rng.below((snap.len() - HDR) as u64) as usize));
    }
    cuts.push(snap.len() - 1);
    for cut in cuts {
        let r = restore_no_panic(&mut sys, &snap[..cut]);
        assert!(r.is_err(), "truncation to {cut} bytes restored Ok");
    }
    // The untouched envelope must still restore after all that.
    restore_no_panic(&mut sys, &snap).expect("pristine envelope restores");
}

#[test]
fn bit_flips_anywhere_error_not_panic() {
    let (mut sys, snap) = warmed();
    let mut rng = Rng::new(0xBADF00D);
    // Every header byte, then a seeded sample across the payload.
    let mut offsets: Vec<usize> = (0..HDR).collect();
    for _ in 0..96 {
        offsets.push(HDR + rng.below((snap.len() - HDR) as u64) as usize);
    }
    for off in offsets {
        let mut bad = snap.clone();
        bad[off] ^= 1 << (rng.below(8) as u8);
        let r = restore_no_panic(&mut sys, &bad);
        assert!(r.is_err(), "flip at byte {off} restored Ok");
    }
}

#[test]
fn payload_flips_with_recomputed_checksum_never_panic() {
    let (mut sys, snap) = warmed();
    let mut rng = Rng::new(0x5EED);
    for _ in 0..96 {
        let mut bad = snap.clone();
        let off = HDR + rng.below((snap.len() - HDR) as u64) as usize;
        bad[off] ^= 1 << (rng.below(8) as u8);
        // Re-seal the envelope so the digest passes and the flip
        // reaches the structural validation underneath. A length field
        // can now claim gigabytes — the capacity sanity bounds must
        // turn that into an error, not an OOM abort.
        let mut h = Sha256::new();
        h.update(&bad[HDR..]);
        bad[20..52].copy_from_slice(&h.finish());
        // Either verdict is legal here (a flipped counter value is
        // indistinguishable from a different valid history); the
        // assertion is purely no-panic, inside restore_no_panic.
        let _ = restore_no_panic(&mut sys, &bad);
    }
}
