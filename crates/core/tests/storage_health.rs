//! `TakoSystem::health()` surfaces persistence-fabric degradation: a
//! *permanent* I/O failure tallied on the simulating thread fails
//! health with [`TakoError::StorageDegraded`]; transient failures are
//! absorbed (checkpointing degrades, the simulation is still sound).
//!
//! Each test runs on its own thread, so the thread-local tally is
//! naturally isolated from the rest of the suite.

use std::path::Path;
use std::sync::Arc;

use tako_core::{TakoError, TakoSystem};
use tako_sim::config::SystemConfig;
use tako_sim::storage::{
    reset_io_health, DiskStorage, FaultStorage, IoFault, IoFaultKind, IoFaultPlan, Storage,
};

fn sys() -> TakoSystem {
    TakoSystem::new(SystemConfig::with_tiles(4))
}

fn faulty(kind: IoFaultKind) -> FaultStorage {
    FaultStorage::new(
        Arc::new(DiskStorage::new()),
        IoFaultPlan {
            seed: 1,
            faults: vec![IoFault { at_op: 0, kind }],
        },
    )
}

#[test]
fn permanent_io_failure_fails_health() {
    reset_io_health();
    let s = sys();
    assert!(s.health().is_ok(), "fresh system must be healthy");

    let storage = faulty(IoFaultKind::PermanentError);
    let err = storage
        .append(Path::new("/tako-nonexistent/x.units"), b"payload")
        .expect_err("injected permanent error");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    match s.health() {
        Err(TakoError::StorageDegraded {
            permanent,
            transient,
            last,
        }) => {
            assert_eq!(permanent, 1);
            assert_eq!(transient, 0);
            assert!(
                last.contains("x.units"),
                "last failure names the path: {last}"
            );
        }
        other => panic!("expected StorageDegraded, got {other:?}"),
    }
    reset_io_health();
    assert!(s.health().is_ok(), "tally resets cleanly");
}

#[test]
fn transient_io_failure_does_not_fail_health() {
    reset_io_health();
    let s = sys();
    let storage = faulty(IoFaultKind::TransientError);
    let err = storage
        .append(Path::new("/tako-nonexistent/y.units"), b"payload")
        .expect_err("injected transient error");
    assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
    assert!(
        s.health().is_ok(),
        "a transient failure must not fail health"
    );
    reset_io_health();
}
