//! Simulated address space, ranges, and allocation.
//!
//! Addresses are plain `u64`s ([`Addr`]) for arithmetic speed; the address
//! space is carved into a *real* region (backed by DRAM) and a *phantom*
//! region (bit 46 set). Phantom addresses are allocated for täkō Morphs
//! whose data lives only in caches (Sec 4.1: "phantom address ranges are
//! requested only by their size, and registerPhantom allocates and assigns
//! the address range").

use tako_sim::config::LINE_BYTES;

/// A simulated 64-bit address.
pub type Addr = u64;

/// Base of the real (DRAM-backed) heap.
pub const REAL_BASE: Addr = 0x0000_1000_0000;

/// Bit that marks an address as phantom (cache-only, not DRAM-backed).
pub const PHANTOM_BIT: Addr = 1 << 46;

/// Returns true if `addr` lies in the phantom region.
#[inline]
pub fn is_phantom(addr: Addr) -> bool {
    addr & PHANTOM_BIT != 0
}

/// The address of the cache line containing `addr`.
#[inline]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_BYTES - 1)
}

/// Byte offset of `addr` within its cache line.
#[inline]
pub fn line_offset(addr: Addr) -> usize {
    (addr & (LINE_BYTES - 1)) as usize
}

/// A half-open address range `[base, base + size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// First address in the range.
    pub base: Addr,
    /// Size in bytes.
    pub size: u64,
}

impl AddrRange {
    /// A range starting at `base` covering `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range wraps around the address space.
    pub fn new(base: Addr, size: u64) -> Self {
        assert!(
            base.checked_add(size).is_some(),
            "address range wraps the address space"
        );
        AddrRange { base, size }
    }

    /// One past the last address.
    pub fn end(&self) -> Addr {
        self.base + self.size
    }

    /// Whether `addr` lies inside the range.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Whether the two ranges share any address.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.base < other.end() && other.base < self.end()
    }

    /// Whether the range lies in the phantom region.
    pub fn is_phantom(&self) -> bool {
        is_phantom(self.base)
    }

    /// Iterate over the line-aligned addresses covering the range.
    pub fn lines(&self) -> impl Iterator<Item = Addr> {
        let first = line_of(self.base);
        let last = if self.size == 0 {
            first
        } else {
            line_of(self.end() - 1) + LINE_BYTES
        };
        (first..last).step_by(LINE_BYTES as usize)
    }

    /// Byte offset of `addr` from the base.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not inside the range.
    pub fn offset_of(&self, addr: Addr) -> u64 {
        assert!(self.contains(addr), "address outside range");
        addr - self.base
    }
}

/// A bump allocator for the simulated address space.
///
/// Real allocations come from the DRAM-backed heap; phantom allocations
/// come from the phantom region. Allocations are line-aligned and never
/// overlap (a property test asserts this).
#[derive(Debug, Clone)]
pub struct Allocator {
    next_real: Addr,
    next_phantom: Addr,
    allocated: Vec<AddrRange>,
}

impl Allocator {
    /// A fresh allocator with empty real and phantom heaps.
    pub fn new() -> Self {
        Allocator {
            next_real: REAL_BASE,
            next_phantom: PHANTOM_BIT,
            allocated: Vec::new(),
        }
    }

    fn bump(cursor: &mut Addr, size: u64) -> AddrRange {
        let aligned = size.max(1).div_ceil(LINE_BYTES) * LINE_BYTES;
        let range = AddrRange::new(*cursor, aligned);
        *cursor += aligned;
        range
    }

    /// Allocate `size` bytes of DRAM-backed memory (line-aligned).
    pub fn alloc_real(&mut self, size: u64) -> AddrRange {
        let r = Self::bump(&mut self.next_real, size);
        self.allocated.push(r);
        r
    }

    /// Allocate `size` bytes of phantom (cache-only) address space.
    pub fn alloc_phantom(&mut self, size: u64) -> AddrRange {
        let r = Self::bump(&mut self.next_phantom, size);
        self.allocated.push(r);
        r
    }

    /// All ranges handed out so far, in allocation order.
    pub fn allocations(&self) -> &[AddrRange] {
        &self.allocated
    }
}

impl tako_sim::checkpoint::Snapshot for Allocator {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("alloc");
        w.put_u64(self.next_real);
        w.put_u64(self.next_phantom);
        w.put_len(self.allocated.len());
        for r in &self.allocated {
            w.put_u64(r.base);
            w.put_u64(r.size);
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        r.section("alloc")?;
        self.next_real = r.get_u64()?;
        self.next_phantom = r.get_u64()?;
        let n = r.get_len()?;
        self.allocated.clear();
        for _ in 0..n {
            let base = r.get_u64()?;
            let size = r.get_u64()?;
            self.allocated.push(AddrRange { base, size });
        }
        Ok(())
    }
}

impl Default for Allocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::rng::Rng;

    #[test]
    fn line_math() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_offset(130), 2);
    }

    #[test]
    fn range_contains_and_overlap() {
        let a = AddrRange::new(100, 50);
        assert!(a.contains(100));
        assert!(a.contains(149));
        assert!(!a.contains(150));
        let b = AddrRange::new(149, 10);
        let c = AddrRange::new(150, 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn range_lines_cover() {
        let r = AddrRange::new(60, 10); // spans lines 0 and 64
        let lines: Vec<_> = r.lines().collect();
        assert_eq!(lines, vec![0, 64]);
        let empty = AddrRange::new(128, 0);
        assert_eq!(empty.lines().count(), 0);
    }

    #[test]
    fn phantom_detection() {
        let mut alloc = Allocator::new();
        let real = alloc.alloc_real(100);
        let ph = alloc.alloc_phantom(100);
        assert!(!real.is_phantom());
        assert!(ph.is_phantom());
        assert!(is_phantom(ph.base + 10));
    }

    #[test]
    fn alloc_alignment() {
        let mut alloc = Allocator::new();
        let a = alloc.alloc_real(1);
        assert_eq!(a.size, LINE_BYTES);
        assert_eq!(a.base % LINE_BYTES, 0);
        let b = alloc.alloc_real(65);
        assert_eq!(b.size, 2 * LINE_BYTES);
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn offset_of_outside() {
        AddrRange::new(0, 64).offset_of(64);
    }

    // Deterministic randomized tests (the in-tree Rng replaces proptest,
    // which the offline build cannot fetch).

    #[test]
    fn allocations_never_overlap() {
        let mut rng = Rng::new(0xA110C);
        for _ in 0..32 {
            let mut alloc = Allocator::new();
            let n = 1 + rng.below(39) as usize;
            for i in 0..n {
                let s = 1 + rng.below(9_999);
                if i % 2 == 0 {
                    alloc.alloc_real(s);
                } else {
                    alloc.alloc_phantom(s);
                }
            }
            let rs = alloc.allocations();
            for i in 0..rs.len() {
                for j in (i + 1)..rs.len() {
                    assert!(!rs[i].overlaps(&rs[j]));
                }
            }
        }
    }

    #[test]
    fn lines_cover_every_address() {
        let mut rng = Rng::new(0x11E5);
        for _ in 0..256 {
            let base = rng.below(1_000_000);
            let size = 1 + rng.below(4095);
            let r = AddrRange::new(base, size);
            let lines: Vec<_> = r.lines().collect();
            // Every address in the range falls in some listed line.
            for probe in [r.base, r.end() - 1, r.base + size / 2] {
                assert!(lines.contains(&line_of(probe)));
            }
            // And every listed line intersects the range.
            for l in &lines {
                assert!(*l < r.end() && l + LINE_BYTES > r.base);
            }
        }
    }
}
