//! Sparse, byte-accurate backing store.
//!
//! The simulator is execution-driven, so loads must return real data.
//! [`PhysMem`] stores bytes in 4 KB pages allocated on first touch; reads
//! of untouched memory return zero (like fresh OS pages). Both real and
//! phantom addresses can be stored — phantom data functionally lives here
//! while the *timing* model keeps it cache-only (the hierarchy never
//! charges DRAM time or energy for phantom lines).
//!
//! Storage is data-oriented: the two address regions the allocator
//! actually hands out — the low/real heap growing up from zero and the
//! phantom region growing up from [`PHANTOM_BIT`] — live in dense
//! `Vec<Option<Box<Page>>>` tables indexed by page number, so the
//! functional read under every simulated access is an index + deref
//! instead of a hash. Addresses outside both dense windows (stress tests
//! poke near `u64::MAX`) fall back to a `HashMap`.

use std::collections::HashMap;

use crate::addr::{Addr, PHANTOM_BIT};

/// Bytes per backing page.
pub const PAGE_BYTES: u64 = 4096;

type Page = Box<[u8; PAGE_BYTES as usize]>;

/// First page index of the phantom region.
const PHANTOM_PAGE: u64 = PHANTOM_BIT / PAGE_BYTES;

/// Dense-table width in pages (16 GiB of address space per region).
/// The tables grow only to the highest page actually touched, and the
/// bump allocator hands out addresses contiguously from the region base,
/// so table length tracks real footprint, not address magnitude.
const DENSE_PAGES: u64 = 1 << 22;

/// Where a page index lives.
enum Slot {
    /// Dense low/real table, at this offset.
    Real(usize),
    /// Dense phantom table, at this offset.
    Phantom(usize),
    /// Outside both dense windows: HashMap fallback.
    Far,
}

#[inline]
fn slot_of(page: u64) -> Slot {
    if page < DENSE_PAGES {
        Slot::Real(page as usize)
    } else if page >= PHANTOM_PAGE && page - PHANTOM_PAGE < DENSE_PAGES {
        Slot::Phantom((page - PHANTOM_PAGE) as usize)
    } else {
        Slot::Far
    }
}

/// A sparse byte-addressable memory.
#[derive(Debug, Clone, Default)]
pub struct PhysMem {
    real: Vec<Option<Page>>,
    phantom: Vec<Option<Page>>,
    far: HashMap<u64, Page>,
    resident: usize,
}

impl PhysMem {
    /// An empty memory; all addresses read as zero.
    pub fn new() -> Self {
        PhysMem::default()
    }

    #[inline]
    fn split(addr: Addr) -> (u64, usize) {
        (addr / PAGE_BYTES, (addr % PAGE_BYTES) as usize)
    }

    /// The page holding `page` index, if materialized.
    #[inline]
    fn page(&self, page: u64) -> Option<&Page> {
        match slot_of(page) {
            Slot::Real(i) => self.real.get(i)?.as_ref(),
            Slot::Phantom(i) => self.phantom.get(i)?.as_ref(),
            Slot::Far => self.far.get(&page),
        }
    }

    /// The page holding `page` index, materializing it zero-filled.
    fn page_mut(&mut self, page: u64) -> &mut Page {
        let (table, i) = match slot_of(page) {
            Slot::Real(i) => (&mut self.real, i),
            Slot::Phantom(i) => (&mut self.phantom, i),
            Slot::Far => {
                let resident = &mut self.resident;
                return self.far.entry(page).or_insert_with(|| {
                    *resident += 1;
                    Box::new([0; PAGE_BYTES as usize])
                });
            }
        };
        if table.len() <= i {
            table.resize_with(i + 1, || None);
        }
        let slot = &mut table[i];
        if slot.is_none() {
            *slot = Some(Box::new([0; PAGE_BYTES as usize]));
            self.resident += 1;
        }
        slot.as_mut().unwrap()
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let (page, off) = Self::split(addr);
        self.page(page).map_or(0, |p| p[off])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: Addr, val: u8) {
        let (page, off) = Self::split(addr);
        self.page_mut(page)[off] = val;
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        let mut cur = addr;
        let mut done = 0;
        while done < buf.len() {
            let (page, off) = Self::split(cur);
            let chunk = (PAGE_BYTES as usize - off).min(buf.len() - done);
            match self.page(page) {
                Some(p) => buf[done..done + chunk].copy_from_slice(&p[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
            cur += chunk as u64;
        }
    }

    /// Write `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, buf: &[u8]) {
        let mut cur = addr;
        let mut done = 0;
        while done < buf.len() {
            let (page, off) = Self::split(cur);
            let chunk = (PAGE_BYTES as usize - off).min(buf.len() - done);
            let p = self.page_mut(page);
            p[off..off + chunk].copy_from_slice(&buf[done..done + chunk]);
            done += chunk;
            cur += chunk as u64;
        }
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let (page, off) = Self::split(addr);
        if off <= PAGE_BYTES as usize - 8 {
            // Hot path: the whole word sits inside one page.
            match self.page(page) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
                None => 0,
            }
        } else {
            let mut b = [0u8; 8];
            self.read_bytes(addr, &mut b);
            u64::from_le_bytes(b)
        }
    }

    /// Write a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, val: u64) {
        let (page, off) = Self::split(addr);
        if off <= PAGE_BYTES as usize - 8 {
            self.page_mut(page)[off..off + 8].copy_from_slice(&val.to_le_bytes());
        } else {
            self.write_bytes(addr, &val.to_le_bytes());
        }
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Write a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, val: u32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Read a little-endian `f64`.
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write a little-endian `f64`.
    pub fn write_f64(&mut self, addr: Addr, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Atomically add `val` to the little-endian `u64` at `addr`,
    /// returning the previous value (the simulator's RMO primitive).
    pub fn fetch_add_u64(&mut self, addr: Addr, val: u64) -> u64 {
        let old = self.read_u64(addr);
        self.write_u64(addr, old.wrapping_add(val));
        old
    }

    /// Add `val` to the little-endian `f64` at `addr` (commutative
    /// floating-point scatter update, as in PageRank's rank pushes).
    pub fn add_f64(&mut self, addr: Addr, val: f64) {
        let old = self.read_f64(addr);
        self.write_f64(addr, old + val);
    }

    /// Number of pages materialized so far (memory-footprint metric used
    /// by the pre-compute baseline comparison in the decompression study).
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// All materialized page indices, sorted (the canonical snapshot
    /// order).
    fn sorted_indices(&self) -> Vec<u64> {
        let mut indices: Vec<u64> = Vec::with_capacity(self.resident);
        indices.extend(
            self.real
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some())
                .map(|(i, _)| i as u64),
        );
        indices.extend(
            self.phantom
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some())
                .map(|(i, _)| PHANTOM_PAGE + i as u64),
        );
        indices.extend(self.far.keys().copied());
        indices.sort_unstable();
        indices
    }

    fn clear(&mut self) {
        self.real.clear();
        self.phantom.clear();
        self.far.clear();
        self.resident = 0;
    }
}

impl tako_sim::checkpoint::Snapshot for PhysMem {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("physmem");
        // Canonical order: pages sorted by index — the encoding predates
        // the dense tables and must stay byte-identical.
        let indices = self.sorted_indices();
        w.put_len(indices.len());
        for idx in indices {
            w.put_u64(idx);
            w.put_bytes(&self.page(idx).expect("listed page")[..]);
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        use tako_sim::checkpoint::SnapError;
        r.section("physmem")?;
        let n = r.get_len()?;
        self.clear();
        for _ in 0..n {
            let idx = r.get_u64()?;
            let bytes = r.get_bytes()?;
            let page: &[u8; PAGE_BYTES as usize] = bytes.try_into().map_err(|_| {
                SnapError::StateMismatch(format!("backing page {idx} is not {PAGE_BYTES} bytes"))
            })?;
            self.page_mut(idx).copy_from_slice(page);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::rng::Rng;

    #[test]
    fn zero_fill_semantics() {
        let mem = PhysMem::new();
        assert_eq!(mem.read_u64(0x1234), 0);
        assert_eq!(mem.read_u8(u64::MAX - 8), 0);
    }

    #[test]
    fn rw_roundtrip_scalars() {
        let mut mem = PhysMem::new();
        mem.write_u64(100, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(100), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u32(100), 0x0506_0708);
        mem.write_f64(200, -3.25);
        assert_eq!(mem.read_f64(200), -3.25);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = PhysMem::new();
        let addr = PAGE_BYTES - 3;
        mem.write_u64(addr, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(mem.read_u64(addr), 0xAABB_CCDD_EEFF_1122);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn fetch_add() {
        let mut mem = PhysMem::new();
        mem.write_u64(64, 40);
        assert_eq!(mem.fetch_add_u64(64, 2), 40);
        assert_eq!(mem.read_u64(64), 42);
    }

    #[test]
    fn float_accumulate() {
        let mut mem = PhysMem::new();
        mem.add_f64(0, 1.5);
        mem.add_f64(0, 2.5);
        assert_eq!(mem.read_f64(0), 4.0);
    }

    #[test]
    fn every_region_stores_and_counts() {
        let mut mem = PhysMem::new();
        let real = crate::addr::REAL_BASE + 17;
        let phantom = PHANTOM_BIT + 5 * PAGE_BYTES + 3;
        let far = u64::MAX - 100; // beyond both dense windows
        mem.write_u64(real, 1);
        mem.write_u64(phantom, 2);
        mem.write_u64(far, 3);
        assert_eq!(mem.read_u64(real), 1);
        assert_eq!(mem.read_u64(phantom), 2);
        assert_eq!(mem.read_u64(far), 3);
        assert_eq!(mem.resident_pages(), 3);
    }

    // Deterministic randomized tests (the in-tree Rng replaces proptest,
    // which the offline build cannot fetch).

    #[test]
    fn bytes_roundtrip() {
        let mut rng = Rng::new(0xB17E);
        for _ in 0..128 {
            let addr = rng.below(100_000);
            let len = 1 + rng.below(511) as usize;
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut mem = PhysMem::new();
            mem.write_bytes(addr, &data);
            let mut back = vec![0u8; data.len()];
            mem.read_bytes(addr, &mut back);
            assert_eq!(back, data);
        }
    }

    #[test]
    fn snapshot_roundtrip_restores_every_byte() {
        use tako_sim::checkpoint::{decode, encode};
        let mut rng = Rng::new(0x5AB2);
        let mut mem = PhysMem::new();
        for _ in 0..64 {
            mem.write_u64(rng.below(1_000_000), rng.next_u64());
        }
        // Cover the phantom table and the far fallback too.
        mem.write_u64(PHANTOM_BIT + 123, 0xFEED);
        mem.write_u64(u64::MAX - 77, 0xFA5);
        let snap = encode(&mem);
        let mut back = PhysMem::new();
        back.write_u64(0xDEAD, 1); // stale page, must be dropped
        decode(&snap, &mut back).unwrap();
        assert_eq!(back.resident_pages(), mem.resident_pages());
        assert_eq!(back.read_u64(0xDEAD), mem.read_u64(0xDEAD));
        assert_eq!(back.read_u64(PHANTOM_BIT + 123), 0xFEED);
        assert_eq!(back.read_u64(u64::MAX - 77), 0xFA5);
        let mut check = Rng::new(0x5AB2);
        for _ in 0..64 {
            let addr = check.below(1_000_000);
            let _ = check.next_u64();
            assert_eq!(back.read_u64(addr), mem.read_u64(addr));
        }
        // Two encodes of the same memory are byte-identical (canonical
        // page order regardless of which table holds a page).
        assert_eq!(snap, encode(&back));
    }

    #[test]
    fn disjoint_writes_independent() {
        let mut rng = Rng::new(0xD15);
        for _ in 0..128 {
            let a = rng.below(10_000);
            let b = 20_000 + rng.below(10_000);
            let x = rng.next_u64();
            let y = rng.next_u64();
            let mut mem = PhysMem::new();
            mem.write_u64(a, x);
            mem.write_u64(b, y);
            assert_eq!(mem.read_u64(a), x);
            assert_eq!(mem.read_u64(b), y);
        }
    }
}
