//! # tako-mem — memory substrate
//!
//! The memory substrate under the simulated cache hierarchy:
//!
//! * [`addr`] — the 64-bit simulated address space, split into a *real*
//!   region (backed by DRAM) and a *phantom* region (täkō address ranges
//!   that live only in caches and are never backed by off-chip memory,
//!   Sec 4 of the paper), plus [`addr::AddrRange`] and a bump allocator.
//! * [`backing`] — [`backing::PhysMem`], a sparse, byte-accurate backing
//!   store. The simulator is execution-driven: loads return real data, so
//!   workloads can traverse graphs, decompress values, and replay journals.
//! * [`dram`] — [`dram::Dram`], the timing model for the off-chip memory
//!   system: four controllers with 100-cycle latency and a rolling
//!   bandwidth bound of 11.8 GB/s each (Table 3).
//!
//! # Example
//!
//! ```
//! use tako_mem::addr::Allocator;
//! use tako_mem::backing::PhysMem;
//!
//! let mut alloc = Allocator::new();
//! let range = alloc.alloc_real(1024);
//! let mut mem = PhysMem::new();
//! mem.write_u64(range.base, 0xDEAD_BEEF);
//! assert_eq!(mem.read_u64(range.base), 0xDEAD_BEEF);
//! ```

pub mod addr;
pub mod backing;
pub mod dram;

pub use addr::{Addr, AddrRange, Allocator};
pub use backing::PhysMem;
pub use dram::Dram;
