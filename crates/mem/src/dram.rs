//! Off-chip memory timing model.
//!
//! Table 3: four memory controllers, 100-cycle access latency, 11.8 GB/s
//! per controller. Each controller serves an interleaved slice of the
//! line-address space and enforces its bandwidth with a rolling
//! `next_free` bound: a line transfer occupies the controller for
//! `line_bytes / bytes_per_cycle` cycles, and requests that arrive while
//! the controller is busy queue behind it. This captures the
//! bandwidth-bound behaviour that PHI and update batching optimize for.

use tako_sim::config::{MemConfig, LINE_BYTES};
use tako_sim::event::{TxnEvent, TxnSink};
use tako_sim::Cycle;

use crate::addr::Addr;

/// The DRAM (or NVM) timing model.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: MemConfig,
    next_free: Vec<Cycle>,
    occupancy: Cycle,
}

impl Dram {
    /// A memory system with `cfg.controllers` idle controllers.
    pub fn new(cfg: MemConfig) -> Self {
        Dram {
            next_free: vec![0; cfg.controllers],
            occupancy: cfg.line_occupancy(),
            cfg,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    #[inline]
    fn controller_of(&self, line_addr: Addr) -> usize {
        ((line_addr / LINE_BYTES) % self.next_free.len() as u64) as usize
    }

    /// Simulate a line read issued at `now`; returns the cycle the line
    /// is available. The transfer is charged as [`TxnEvent::DramRead`]
    /// on `sink`.
    pub fn read_line(&mut self, line_addr: Addr, now: Cycle, sink: &mut impl TxnSink) -> Cycle {
        sink.emit(TxnEvent::DramRead);
        self.access(line_addr, now)
    }

    /// Simulate a line write issued at `now`; returns the cycle the write
    /// is absorbed (writes are posted, but they still consume bandwidth).
    /// The transfer is charged as [`TxnEvent::DramWrite`] on `sink`.
    pub fn write_line(&mut self, line_addr: Addr, now: Cycle, sink: &mut impl TxnSink) -> Cycle {
        sink.emit(TxnEvent::DramWrite);
        self.access(line_addr, now)
    }

    fn access(&mut self, line_addr: Addr, now: Cycle) -> Cycle {
        let ctrl = self.controller_of(line_addr);
        let start = now.max(self.next_free[ctrl]);
        self.next_free[ctrl] = start + self.occupancy;
        start + self.cfg.latency
    }

    /// The earliest cycle at which all controllers are idle (used to
    /// account for posted writes at the end of a run).
    pub fn drain_cycle(&self) -> Cycle {
        self.next_free.iter().copied().max().unwrap_or(0)
    }

    /// Queue depth at `now`, in cycles: how far the busiest controller's
    /// committed work extends past the present. Zero when idle; sampled
    /// by the observability layer as the DRAM backlog gauge.
    pub fn backlog(&self, now: Cycle) -> Cycle {
        self.next_free
            .iter()
            .map(|&f| f.saturating_sub(now))
            .max()
            .unwrap_or(0)
    }
}

impl tako_sim::checkpoint::Snapshot for Dram {
    fn save(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        w.section("dram");
        w.put_len(self.next_free.len());
        for c in &self.next_free {
            w.put_u64(*c);
        }
    }

    fn load(
        &mut self,
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<(), tako_sim::checkpoint::SnapError> {
        r.section("dram")?;
        r.get_len_expect("DRAM controllers", self.next_free.len())?;
        for c in &mut self.next_free {
            *c = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::stats::{Counter, Stats};

    fn dram() -> (Dram, Stats) {
        (Dram::new(MemConfig::default()), Stats::new())
    }

    #[test]
    fn uncontended_latency() {
        let (mut d, mut s) = dram();
        let done = d.read_line(0, 1000, &mut s);
        assert_eq!(done, 1000 + 100);
        assert_eq!(s.get(Counter::DramRead), 1);
    }

    #[test]
    fn bandwidth_queues_same_controller() {
        let (mut d, mut s) = dram();
        let ctrls = MemConfig::default().controllers as u64;
        // Two back-to-back reads to the same controller: second queues.
        let a = d.read_line(0, 0, &mut s);
        let b = d.read_line(ctrls * LINE_BYTES, 0, &mut s);
        assert_eq!(a, 100);
        assert_eq!(b, 100 + d.occupancy);
    }

    #[test]
    fn different_controllers_parallel() {
        let (mut d, mut s) = dram();
        let a = d.read_line(0, 0, &mut s);
        let b = d.read_line(LINE_BYTES, 0, &mut s); // next controller
        assert_eq!(a, b);
    }

    #[test]
    fn writes_consume_bandwidth() {
        let (mut d, mut s) = dram();
        d.write_line(0, 0, &mut s);
        assert_eq!(s.get(Counter::DramWrite), 1);
        assert!(d.drain_cycle() > 0);
    }

    #[test]
    fn backlog_tracks_busiest_controller() {
        let (mut d, mut s) = dram();
        assert_eq!(d.backlog(0), 0);
        let ctrls = MemConfig::default().controllers as u64;
        // Three queued reads on controller 0: backlog is its occupancy
        // horizon, and it decays as time passes.
        for i in 0..3 {
            d.read_line(i * ctrls * LINE_BYTES, 0, &mut s);
        }
        let occ = d.occupancy;
        assert_eq!(d.backlog(0), 3 * occ);
        assert_eq!(d.backlog(occ), 2 * occ);
        assert_eq!(d.backlog(10 * occ), 0);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let (mut d, mut s) = dram();
        let ctrls = MemConfig::default().controllers as u64;
        d.read_line(0, 0, &mut s);
        // Long idle gap: no queueing penalty remains.
        let late = d.read_line(ctrls * LINE_BYTES, 10_000, &mut s);
        assert_eq!(late, 10_000 + 100);
    }
}
