//! # tako-workloads — the paper's five case studies, with all baselines
//!
//! Each module implements one evaluation workload as simulated
//! `ThreadProgram`s plus the täkō Morphs it needs, alongside every
//! baseline the paper compares against:
//!
//! | Module | Paper section | Variants |
//! |---|---|---|
//! | [`decompress`] | Sec 3 (Figs 6–7) | software, software pre-compute, NDC, täkō, ideal |
//! | [`phi`] | Sec 8.1 (Figs 13–14, 24–25) | software, update batching, täkō/PHI, ideal |
//! | [`hats`] | Sec 8.2 (Figs 16–17, 22–23) | vertex-ordered, software BDFS, täkō/HATS, ideal |
//! | [`nvm`] | Sec 8.3 (Figs 19–20) | journaling, täkō, ideal |
//! | [`sidechannel`] | Sec 8.4 (Fig 21) | undefended baseline, täkō detector |
//! | [`soa`] | Sec 5.2 (trrîp) | AoS scan, täkō SoA Morph, no-trrîp ablation |
//!
//! Every variant returns a [`RunResult`] with cycles, energy, and the
//! statistics snapshot the figures are drawn from, plus functional output
//! that the integration tests compare against a host-side reference.

pub mod common;
pub mod decompress;
pub mod hats;
pub mod nvm;
pub mod phi;
pub mod sidechannel;
pub mod soa;

pub use common::{GraphLayout, RunResult};
