//! In-cache data transformation: lossy base+delta decompression (Sec 3).
//!
//! The motivating example: compute the average of a data set stored in an
//! approximate, compressed format (a per-group base plus a per-value
//! delta). 32 K Zipfian-distributed indices over 16 K values by default
//! (Fig 6). Five variants:
//!
//! * [`Variant::Software`] — the core decompresses on every access.
//! * [`Variant::Precompute`] — the core decompresses all values into a
//!   separate array first (vectorized, a full line at a time), then
//!   reads decompressed values; costs memory and decompresses values
//!   that are never accessed.
//! * [`Variant::Ndc`] — a near-data-computing design (à la Livia): every
//!   access offloads a decompression to the L2 engine; no result reuse,
//!   so locality in the private caches is lost (the paper shows NDC
//!   *hurts* here).
//! * [`Variant::Tako`] — the täkō Morph: a phantom range holds
//!   decompressed values; `onMiss` decompresses one line (8 values) on
//!   the engine and the caches memoize it, eliminating redundant work.
//! * [`Variant::Ideal`] — the täkō Morph on an idealized engine.
//!
//! [`Counter::Decompression`] counts decompressed *values* (Fig 7).

use tako_core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako_cpu::{run_single, CoreEnv, CoreTiming, MemSystem, StepResult, ThreadProgram};
use tako_mem::addr::Addr;
use tako_sim::config::{EngineConfig, SystemConfig};
use tako_sim::rng::{Rng, Zipfian};
use tako_sim::stats::Counter;

use crate::common::RunResult;

/// Which implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Software baseline: decompress on the core per access.
    Software,
    /// Software pre-computation into a decompressed array.
    Precompute,
    /// Near-data offload per access (no memoization).
    Ndc,
    /// täkō: onMiss decompression memoized in the caches.
    Tako,
    /// täkō with an idealized engine.
    Ideal,
}

impl Variant {
    /// All variants, in the order Fig 6 plots them.
    pub const ALL: [Variant; 5] = [
        Variant::Software,
        Variant::Precompute,
        Variant::Ndc,
        Variant::Tako,
        Variant::Ideal,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Software => "software",
            Variant::Precompute => "precompute",
            Variant::Ndc => "ndc",
            Variant::Tako => "tako",
            Variant::Ideal => "ideal",
        }
    }
}

/// Workload parameters (defaults follow Sec 3.3).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of compressed values.
    pub values: u64,
    /// Number of accesses (Zipfian indices).
    pub accesses: u64,
    /// Zipfian skew.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            values: 16 * 1024,
            accesses: 32 * 1024,
            theta: 0.99,
            seed: 0xDEC0,
        }
    }
}

/// Values per compression group (one base per group; one group per line
/// of decompressed output).
const GROUP: u64 = 8;

/// The decompression function both host and simulated code use.
fn decompress(base: i64, delta: u8) -> f64 {
    (base + i64::from(delta)) as f64
}

struct DataSet {
    bases: Addr,
    deltas: Addr,
    indices: Addr,
    /// Host-side reference average.
    expect_avg: f64,
}

fn install(sys: &mut TakoSystem, p: Params) -> DataSet {
    let mut rng = Rng::new(p.seed);
    let zipf = Zipfian::new(p.values, p.theta);
    // Ceiling division: at scaled-down sizes `values` need not be a
    // multiple of GROUP, and the top group must still have a base. The
    // delta array is padded to a whole group so group-granular readers
    // (precompute, the täkō Morph) never touch a neighboring
    // allocation; pad bytes decompress to unreferenced values.
    let groups = p.values.div_ceil(GROUP);
    let bases = sys.alloc_real(groups * 8);
    let deltas = sys.alloc_real(groups * GROUP);
    let indices = sys.alloc_real(p.accesses * 4);
    // Generate compressed data.
    let mut base_vals = vec![0i64; groups as usize];
    let mut delta_vals = vec![0u8; p.values as usize];
    for (g, b) in base_vals.iter_mut().enumerate() {
        *b = rng.below(1 << 20) as i64 + g as i64;
    }
    for d in delta_vals.iter_mut() {
        *d = rng.below(256) as u8;
    }
    let mut idx = vec![0u32; p.accesses as usize];
    for i in idx.iter_mut() {
        *i = zipf.sample(&mut rng) as u32;
    }
    let mut sum = 0.0;
    for &i in &idx {
        sum += decompress(
            base_vals[i as usize / GROUP as usize],
            delta_vals[i as usize],
        );
    }
    let mem = sys.data();
    for (g, b) in base_vals.iter().enumerate() {
        mem.write_u64(bases.base + g as u64 * 8, *b as u64);
    }
    for (i, d) in delta_vals.iter().enumerate() {
        mem.write_u8(deltas.base + i as u64, *d);
    }
    for (k, i) in idx.iter().enumerate() {
        mem.write_u32(indices.base + k as u64 * 4, *i);
    }
    DataSet {
        bases: bases.base,
        deltas: deltas.base,
        indices: indices.base,
        expect_avg: sum / p.accesses as f64,
    }
}

// ----------------------------------------------------------------------
// Morphs
// ----------------------------------------------------------------------

/// The täkō Morph: `onMiss` decompresses one line (8 values).
struct DecompressMorph {
    bases: Addr,
    deltas: Addr,
}

impl Morph for DecompressMorph {
    fn name(&self) -> &str {
        "decompress"
    }

    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        // The phantom line holds 8 decompressed f64s = one group.
        let group = ctx.offset() / 64;
        let v = ctx.arg();
        let (base, b) = ctx.load_u64(self.bases + group * 8, &[v]);
        let (_, d) = ctx.load_u64(self.deltas + group * GROUP, &[v]);
        // SIMD add of base + deltas across the line.
        let sum = ctx.alu(&[b, d]);
        let mut vals = [0.0f64; 8];
        for (i, val) in vals.iter_mut().enumerate() {
            let delta = ctx.data().read_u8(self.deltas + group * GROUP + i as u64);
            *val = decompress(base as i64, delta);
        }
        ctx.line_write_all_f64(&vals, &[sum]);
        ctx.stats().add(Counter::Decompression, GROUP);
    }

    fn static_instrs(&self) -> u32 {
        12
    }
}

/// The NDC Morph: one request line per access, decompressing a single
/// value each time (no memoization — every request is a fresh line).
struct NdcMorph {
    bases: Addr,
    deltas: Addr,
    indices: Addr,
}

impl Morph for NdcMorph {
    fn name(&self) -> &str {
        "ndc-decompress"
    }

    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let req = ctx.offset() / 64;
        let v = ctx.arg();
        let (idx, i) = ctx.load_u32(self.indices + req * 4, &[v]);
        let idx = u64::from(idx);
        let (base, b) = ctx.load_u64(self.bases + (idx / GROUP) * 8, &[i]);
        let (_, d) = ctx.load_u64(self.deltas + (idx / GROUP) * GROUP, &[i]);
        let add = ctx.alu(&[b, d]);
        let delta = ctx.data().read_u8(self.deltas + idx);
        ctx.line_write_f64(0, decompress(base as i64, delta), &[add]);
        ctx.stats().add(Counter::Decompression, 1);
    }

    fn static_instrs(&self) -> u32 {
        14
    }
}

// ----------------------------------------------------------------------
// Thread programs
// ----------------------------------------------------------------------

const CHUNK: u64 = 16;

/// Core-side program for all variants; `mode` selects where the value
/// comes from.
struct AvgProgram {
    ds_bases: Addr,
    ds_deltas: Addr,
    indices: Addr,
    accesses: u64,
    pos: u64,
    sum: f64,
    mode: Mode,
    // Precompute state.
    pre_dst: Addr,
    pre_group: u64,
    pre_groups: u64,
    /// Final computed average.
    result: f64,
    done: bool,
}

enum Mode {
    Software,
    /// Reads from the decompressed array at `pre_dst`.
    FromArray,
    /// Reads value `i` from `stream + idx*8` (täkō phantom).
    Phantom(Addr),
    /// Reads request `k` from `stream + k*64` (NDC request lines).
    NdcStream(Addr),
}

impl AvgProgram {
    fn precompute_step(&mut self, env: &mut CoreEnv<'_>) -> bool {
        // Decompress one group (8 values, vectorized) per inner step.
        if self.pre_group >= self.pre_groups {
            return false;
        }
        let g = self.pre_group;
        self.pre_group += 1;
        let base = env.load_u64(self.ds_bases + g * 8) as i64;
        env.load_u64(self.ds_deltas + g * GROUP);
        env.compute(4); // vector unpack + add + convert
        env.stats().add(Counter::Decompression, GROUP);
        for i in 0..GROUP {
            let d = env.data().read_u8(self.ds_deltas + g * GROUP + i);
            let val = decompress(base, d);
            // One vector store per line (8 f64 = 64 B).
            if i == 0 {
                env.store_f64(self.pre_dst + g * GROUP * 8, val);
            } else {
                env.data()
                    .write_f64(self.pre_dst + (g * GROUP + i) * 8, val);
            }
        }
        true
    }
}

impl ThreadProgram for AvgProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        if self.done {
            return StepResult::Done;
        }
        if matches!(self.mode, Mode::FromArray) && self.precompute_step(env) {
            return StepResult::Running;
        }
        for _ in 0..CHUNK {
            if self.pos >= self.accesses {
                self.result = self.sum / self.accesses as f64;
                self.done = true;
                return StepResult::Done;
            }
            let k = self.pos;
            self.pos += 1;
            // The index array streams once: non-temporal loads with
            // software prefetch ahead of the scan.
            if k.is_multiple_of(16) {
                env.prefetch_stream(self.indices + (k + 32) * 4);
            }
            let idx = u64::from(env.load_stream_u32(self.indices + k * 4));
            let val = match &self.mode {
                Mode::Software => {
                    let base = env.load_u64(self.ds_bases + (idx / GROUP) * 8) as i64;
                    env.load_u64(self.ds_deltas + idx); // delta byte's line
                    env.compute(6); // unpack, add, convert
                    env.stats().add(Counter::Decompression, 1);
                    let d = env.data().read_u8(self.ds_deltas + idx);
                    decompress(base, d)
                }
                Mode::FromArray => env.load_f64(self.pre_dst + idx * 8),
                Mode::Phantom(base) => env.load_f64(base + idx * 8),
                Mode::NdcStream(base) => env.load_f64(base + k * 64),
            };
            self.sum += val;
            env.compute(2); // accumulate + loop
        }
        StepResult::Running
    }
}

// ----------------------------------------------------------------------
// Runner
// ----------------------------------------------------------------------

/// The functional and timing outcome of one decompression run.
#[derive(Debug, Clone)]
pub struct DecompressResult {
    /// Timing/energy/statistics.
    pub run: RunResult,
    /// The computed average (must equal the host reference).
    pub average: f64,
    /// The host reference average.
    pub expected: f64,
    /// Decompressed values (Fig 7).
    pub decompressions: u64,
}

impl tako_sim::checkpoint::Record for DecompressResult {
    fn record(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        self.run.record(w);
        w.put_f64(self.average);
        w.put_f64(self.expected);
        w.put_u64(self.decompressions);
    }
    fn replay(
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<Self, tako_sim::checkpoint::SnapError> {
        Ok(DecompressResult {
            run: RunResult::replay(r)?,
            average: r.get_f64()?,
            expected: r.get_f64()?,
            decompressions: r.get_u64()?,
        })
    }
}

/// Run one variant with `params` on a system configured by `cfg`.
pub fn run(variant: Variant, params: Params, cfg: &SystemConfig) -> DecompressResult {
    let mut cfg = cfg.clone();
    if variant == Variant::Ideal {
        cfg.engine = EngineConfig::ideal();
    }
    if variant == Variant::Ndc {
        // NDC offload requests are engine dispatches, not loads — they
        // do not flow through (or train) the L2 stride prefetcher. The
        // phantom-line encoding of the requests is a simulation artifact.
        cfg.prefetch.enabled = false;
    }
    let mut sys = TakoSystem::new(cfg.clone());
    let ds = install(&mut sys, params);

    let mut prog = AvgProgram {
        ds_bases: ds.bases,
        ds_deltas: ds.deltas,
        indices: ds.indices,
        accesses: params.accesses,
        pos: 0,
        sum: 0.0,
        mode: Mode::Software,
        pre_dst: 0,
        pre_group: 0,
        pre_groups: 0,
        result: 0.0,
        done: false,
    };
    match variant {
        Variant::Software => {}
        Variant::Precompute => {
            // Whole groups (see `install`): the tail group decompresses
            // pad deltas into dst slots no access index reaches.
            let groups = params.values.div_ceil(GROUP);
            let dst = sys.alloc_real(groups * GROUP * 8);
            prog.pre_dst = dst.base;
            prog.pre_groups = groups;
            prog.mode = Mode::FromArray;
        }
        Variant::Ndc => {
            let h = sys
                .register_phantom(
                    MorphLevel::Private,
                    params.accesses * 64,
                    Box::new(NdcMorph {
                        bases: ds.bases,
                        deltas: ds.deltas,
                        indices: ds.indices,
                    }),
                )
                .expect("register NDC morph");
            prog.mode = Mode::NdcStream(h.range().base);
        }
        Variant::Tako | Variant::Ideal => {
            let h = sys
                .register_phantom(
                    MorphLevel::Private,
                    params.values * 8,
                    Box::new(DecompressMorph {
                        bases: ds.bases,
                        deltas: ds.deltas,
                    }),
                )
                .expect("register täkō morph");
            prog.mode = Mode::Phantom(h.range().base);
        }
    }

    let max_steps = 40 * params.accesses.max(params.values) + 10_000;
    let cycles = run_single(0, &mut prog, CoreTiming::new(cfg.core), &mut sys, max_steps);
    let decompressions = sys.stats_view().get(Counter::Decompression);
    DecompressResult {
        run: RunResult::collect(&sys, cycles),
        average: prog.result,
        expected: ds.expect_avg,
        decompressions,
    }
}

/// Convenience: run with a fresh default system per variant.
pub fn run_default(variant: Variant, params: Params) -> DecompressResult {
    run(variant, params, &SystemConfig::default_16core())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            values: 512,
            accesses: 1024,
            theta: 0.9,
            seed: 7,
        }
    }

    #[test]
    fn all_variants_compute_reference_average() {
        for v in Variant::ALL {
            let r = run_default(v, small());
            assert!(
                (r.average - r.expected).abs() < 1e-9,
                "{}: avg {} != expected {}",
                v.label(),
                r.average,
                r.expected
            );
        }
    }

    #[test]
    fn tako_decompresses_less_than_software() {
        let sw = run_default(Variant::Software, small());
        let tk = run_default(Variant::Tako, small());
        assert_eq!(sw.decompressions, 1024);
        assert!(
            tk.decompressions < sw.decompressions,
            "täkō should memoize: {} vs {}",
            tk.decompressions,
            sw.decompressions
        );
    }

    #[test]
    fn tako_beats_software_and_ndc() {
        let p = Params {
            values: 4096,
            accesses: 8192,
            theta: 0.99,
            seed: 3,
        };
        let sw = run_default(Variant::Software, p);
        let tk = run_default(Variant::Tako, p);
        let ndc = run_default(Variant::Ndc, p);
        assert!(
            tk.run.cycles < sw.run.cycles,
            "täkō {} vs software {}",
            tk.run.cycles,
            sw.run.cycles
        );
        assert!(
            tk.run.cycles < ndc.run.cycles,
            "täkō {} vs ndc {}",
            tk.run.cycles,
            ndc.run.cycles
        );
    }

    #[test]
    fn ideal_at_least_as_fast_as_tako() {
        let p = small();
        let tk = run_default(Variant::Tako, p);
        let ideal = run_default(Variant::Ideal, p);
        assert!(ideal.run.cycles <= tk.run.cycles);
    }
}
