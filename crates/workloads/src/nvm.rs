//! Transactions on direct-access NVM (Sec 8.3, Figs 19–20).
//!
//! A filesystem-style workload of append-only transactions on NVM with
//! battery-backed (persistent) caches. The baseline must journal every
//! write because it cannot observe evictions: each 8-byte word is written
//! twice (journal entry + in-place apply) plus bookkeeping instructions.
//!
//! täkō's visibility removes that waste (Table 6): the application
//! writes a *phantom* transaction buffer; `onMiss` fills lines with an
//! `INVALID` marker; committing is just `flushData`. `onWriteback`
//! checks the commit flag — committed lines copy straight to their NVM
//! home ("the cache is the journal"); lines evicted *before* commit fall
//! back to journaling, off the critical path, and the application
//! replays the journal at commit. As long as transactions fit in the L2
//! there are no early evictions and journaling vanishes entirely.

use tako_core::{EngineCtx, Morph, MorphHandle, MorphLevel, TakoSystem};
use tako_cpu::{run_single, CoreEnv, CoreTiming, MemSystem, StepResult, ThreadProgram};
use tako_mem::addr::Addr;
use tako_sim::config::{EngineConfig, SystemConfig, LINE_BYTES};
use tako_sim::stats::Counter;

use crate::common::RunResult;

/// Marker for not-yet-written words in the transaction buffer (Table 6).
pub const INVALID_WORD: u64 = u64::MAX;

/// Which implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Software journaling: every word written to the journal, then
    /// applied in place after commit.
    Journaling,
    /// täkō: phantom transaction buffer, commit = flushData.
    Tako,
    /// täkō with an idealized engine.
    Ideal,
}

impl Variant {
    /// All variants in Fig 19's order.
    pub const ALL: [Variant; 3] = [Variant::Journaling, Variant::Tako, Variant::Ideal];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Journaling => "journaling",
            Variant::Tako => "tako",
            Variant::Ideal => "ideal",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Bytes written per transaction (Fig 19 sweeps 1 KB – 128 KB).
    pub txn_bytes: u64,
    /// Number of transactions.
    pub txns: u64,
    /// RNG-free deterministic data seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            txn_bytes: 16 * 1024,
            txns: 32,
            seed: 0x9091,
        }
    }
}

/// The deterministic payload word for transaction `t`, word `w`
/// (never collides with [`INVALID_WORD`]).
fn payload(seed: u64, t: u64, w: u64) -> u64 {
    (seed ^ (t << 32) ^ w).wrapping_mul(0x9E37_79B9) & !(1 << 63)
}

// ----------------------------------------------------------------------
// The NVM Morph
// ----------------------------------------------------------------------

/// Control block layout (real memory): `+0` commit flag, `+8` journal
/// entry count, `+16` home base for the in-flight transaction.
struct NvmMorph {
    ctrl: Addr,
    journal: Addr,
    journal_cursor: u64,
}

impl Morph for NvmMorph {
    fn name(&self) -> &str {
        "nvm-txn"
    }

    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        // Table 6: set the line to the INVALID value.
        let v = ctx.arg();
        ctx.line_fill_u64(INVALID_WORD, &[v]);
    }

    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        let offset = ctx.offset();
        let (committed, c1) = ctx.load_u64(self.ctrl, &[]);
        let (home, _c2) = ctx.load_u64(self.ctrl + 16, &[c1]);
        let decide = ctx.alu(&[c1]);
        if committed == 1 {
            // Commit already happened: apply the writes directly to NVM.
            ctx.copy_line_out(0, home + offset, LINE_BYTES as usize, &[decide]);
        } else {
            // Evicted before commit: journal (addr, data) entries.
            let (vals, read) = ctx.line_read_all_u64(&[decide]);
            let mut dep = read;
            let mut written = 0u64;
            for (i, &w) in vals.iter().enumerate() {
                if w == INVALID_WORD {
                    continue;
                }
                let entry = self.journal + (self.journal_cursor + written) * 16;
                dep = ctx.store_stream_u64(entry, home + offset + 8 * i as u64, &[dep]);
                ctx.store_stream_u64(entry + 8, w, &[dep]);
                written += 1;
            }
            if written > 0 {
                self.journal_cursor += written;
                ctx.store_u64(self.ctrl + 8, self.journal_cursor, &[dep]);
                ctx.stats().add(Counter::JournalWrite, written);
            }
        }
    }

    fn static_instrs(&self) -> u32 {
        28
    }
}

// ----------------------------------------------------------------------
// Thread programs
// ----------------------------------------------------------------------

const CHUNK: u64 = 16;

/// Baseline journaling transactions.
struct JournalProgram {
    params: Params,
    home: Addr,
    journal: Addr,
    txn: u64,
    word: u64,
    phase: u8, // 0 = journal writes, 1 = apply in place
}

impl ThreadProgram for JournalProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        let words = self.params.txn_bytes / 8;
        for _ in 0..CHUNK {
            if self.txn >= self.params.txns {
                return StepResult::Done;
            }
            let t = self.txn;
            let w = self.word;
            let data = payload(self.params.seed, t, w);
            let home_addr = self.home + t * self.params.txn_bytes + w * 8;
            match self.phase {
                0 => {
                    // Journal entry: (addr, data), plus bookkeeping.
                    let entry = self.journal + (t * words + w) * 16;
                    env.compute(2);
                    env.store_stream_u64(entry, home_addr);
                    env.store_stream_u64(entry + 8, data);
                    env.stats().bump(Counter::JournalWrite);
                }
                _ => {
                    // Apply in place after the commit record.
                    env.compute(1);
                    env.store_stream_u64(home_addr, data);
                }
            }
            self.word += 1;
            if self.word >= words {
                self.word = 0;
                if self.phase == 0 {
                    // Commit record ends the journal phase.
                    env.store_u64(self.journal + t * words * 16 + 8, 1);
                    env.fence();
                    self.phase = 1;
                } else {
                    self.phase = 0;
                    self.txn += 1;
                }
            }
        }
        StepResult::Running
    }
}

/// täkō transactions: write the phantom buffer, commit with flushData.
struct TakoTxnProgram {
    params: Params,
    home: Addr,
    ctrl: Addr,
    journal: Addr,
    handle: MorphHandle,
    txn: u64,
    word: u64,
    replayed: u64,
    phase: u8, // 0 = fill buffer, 1 = commit + replay
}

impl ThreadProgram for TakoTxnProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        let words = self.params.txn_bytes / 8;
        if self.txn >= self.params.txns {
            return StepResult::Done;
        }
        let t = self.txn;
        if self.phase == 1 {
            // Commit: set the flag, flush the Morph's data, replay any
            // journaled writes, then reset for the next transaction.
            env.store_u64(self.ctrl, 1);
            env.fence();
            env.flush(self.handle.range());
            let jcount = env.load_u64(self.ctrl + 8);
            while self.replayed < jcount {
                let entry = self.journal + self.replayed * 16;
                let addr = env.load_stream_u64(entry);
                let data = env.load_stream_u64(entry + 8);
                env.store_stream_u64(addr, data);
                env.compute(1);
                self.replayed += 1;
            }
            env.store_u64(self.ctrl, 0);
            self.phase = 0;
            self.txn += 1;
            return StepResult::Running;
        }
        if self.word == 0 {
            // Announce the transaction's NVM home to the callbacks.
            env.store_u64(self.ctrl + 16, self.home + t * self.params.txn_bytes);
        }
        for _ in 0..CHUNK {
            if self.word >= words {
                self.word = 0;
                self.phase = 1;
                return StepResult::Running;
            }
            let w = self.word;
            self.word += 1;
            let data = payload(self.params.seed, t, w);
            env.compute(1);
            env.store_u64(self.handle.range().base + w * 8, data);
        }
        StepResult::Running
    }
}

// ----------------------------------------------------------------------
// Runner
// ----------------------------------------------------------------------

/// Outcome of an NVM-transaction run.
#[derive(Debug, Clone)]
pub struct NvmResult {
    /// Timing/energy/statistics.
    pub run: RunResult,
    /// Whether the NVM home region holds exactly the committed data.
    pub data_correct: bool,
    /// Journal entries written.
    pub journal_writes: u64,
    /// Core instructions per 8 bytes written (Fig 20).
    pub core_instrs_per_word: f64,
    /// Engine instructions per 8 bytes written (Fig 20).
    pub engine_instrs_per_word: f64,
}

impl tako_sim::checkpoint::Record for NvmResult {
    fn record(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        self.run.record(w);
        w.put_bool(self.data_correct);
        w.put_u64(self.journal_writes);
        w.put_f64(self.core_instrs_per_word);
        w.put_f64(self.engine_instrs_per_word);
    }
    fn replay(
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<Self, tako_sim::checkpoint::SnapError> {
        Ok(NvmResult {
            run: RunResult::replay(r)?,
            data_correct: r.get_bool()?,
            journal_writes: r.get_u64()?,
            core_instrs_per_word: r.get_f64()?,
            engine_instrs_per_word: r.get_f64()?,
        })
    }
}

/// Run one variant.
pub fn run(variant: Variant, params: Params, cfg: &SystemConfig) -> NvmResult {
    let mut cfg = cfg.clone();
    if variant == Variant::Ideal {
        cfg.engine = EngineConfig::ideal();
    }
    let mut sys = TakoSystem::new(cfg.clone());
    let words = params.txn_bytes / 8;
    let total_words = words * params.txns;
    let home = sys.alloc_real(params.txn_bytes * params.txns).base;
    let journal = sys.alloc_real(total_words * 16 + 4096).base;
    let ctrl = sys.alloc_real(64).base;
    let max_steps = 80 * total_words + 10_000;

    let cycles = match variant {
        Variant::Journaling => {
            let mut prog = JournalProgram {
                params,
                home,
                journal,
                txn: 0,
                word: 0,
                phase: 0,
            };
            run_single(0, &mut prog, CoreTiming::new(cfg.core), &mut sys, max_steps)
        }
        Variant::Tako | Variant::Ideal => {
            let handle = sys
                .register_phantom(
                    MorphLevel::Private,
                    params.txn_bytes,
                    Box::new(NvmMorph {
                        ctrl,
                        journal,
                        journal_cursor: 0,
                    }),
                )
                .expect("register NVM morph");
            let mut prog = TakoTxnProgram {
                params,
                home,
                ctrl,
                journal,
                handle,
                txn: 0,
                word: 0,
                replayed: 0,
                phase: 0,
            };
            run_single(0, &mut prog, CoreTiming::new(cfg.core), &mut sys, max_steps)
        }
    };

    // Validate the NVM image.
    let mem = sys.data();
    let mut data_correct = true;
    for t in 0..params.txns {
        for w in 0..words {
            let addr = home + t * params.txn_bytes + w * 8;
            if mem.read_u64(addr) != payload(params.seed, t, w) {
                data_correct = false;
            }
        }
    }
    let stats = sys.stats_view();
    let per_word = |x: u64| x as f64 / total_words as f64;
    NvmResult {
        data_correct,
        journal_writes: stats.get(Counter::JournalWrite),
        core_instrs_per_word: per_word(stats.get(Counter::CoreInstr)),
        engine_instrs_per_word: per_word(stats.get(Counter::EngineInstr)),
        run: RunResult::collect(&sys, cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            txn_bytes: 4 * 1024,
            txns: 8,
            seed: 11,
        }
    }

    #[test]
    fn both_variants_produce_correct_nvm_image() {
        for v in Variant::ALL {
            let r = run(v, small(), &SystemConfig::default_16core());
            assert!(r.data_correct, "{}: corrupted NVM image", v.label());
        }
    }

    #[test]
    fn tako_eliminates_journaling_when_txn_fits_cache() {
        // 4 KB transactions fit easily in the 128 KB L2.
        let tk = run(Variant::Tako, small(), &SystemConfig::default_16core());
        assert_eq!(
            tk.journal_writes, 0,
            "no journaling when nothing is evicted before commit"
        );
        let base = run(
            Variant::Journaling,
            small(),
            &SystemConfig::default_16core(),
        );
        assert_eq!(base.journal_writes, 8 * 4 * 1024 / 8);
    }

    #[test]
    fn tako_falls_back_to_journaling_when_txn_exceeds_cache() {
        let p = Params {
            txn_bytes: 512 * 1024, // 4x the 128 KB L2
            txns: 2,
            seed: 12,
        };
        let tk = run(Variant::Tako, p, &SystemConfig::default_16core());
        assert!(tk.data_correct);
        assert!(
            tk.journal_writes > 0,
            "early evictions must fall back to journaling"
        );
    }

    #[test]
    fn tako_is_faster_and_executes_fewer_core_instructions() {
        let p = small();
        let cfg = SystemConfig::default_16core();
        let base = run(Variant::Journaling, p, &cfg);
        let tk = run(Variant::Tako, p, &cfg);
        assert!(
            tk.run.cycles < base.run.cycles,
            "tako {} vs journaling {}",
            tk.run.cycles,
            base.run.cycles
        );
        // Fig 20: ~50% fewer core instructions.
        assert!(
            tk.core_instrs_per_word < 0.7 * base.core_instrs_per_word,
            "tako {} vs journaling {} core instrs/word",
            tk.core_instrs_per_word,
            base.core_instrs_per_word
        );
    }
}
