//! Shared workload plumbing: result records and simulated-memory layout.

use tako_core::TakoSystem;
use tako_cpu::MemSystem;
use tako_graph::Csr;
use tako_mem::addr::{Addr, AddrRange};
use tako_sim::checkpoint::{Record, SnapError, SnapReader, SnapWriter};
use tako_sim::stats::{Counter, Stats};
use tako_sim::Cycle;

/// The outcome of one simulated workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Cycle the last thread finished.
    pub cycles: Cycle,
    /// Total dynamic energy in microjoules.
    pub energy_uj: f64,
    /// Snapshot of all simulator counters at the end of the run.
    pub stats: Stats,
}

impl RunResult {
    /// Collect the result record from a finished system. Also feeds the
    /// run's access count into the process-wide throughput tally
    /// ([`tako_sim::stats::simulated_accesses`]).
    pub fn collect(sys: &TakoSystem, cycles: Cycle) -> Self {
        let stats = sys.stats_view().clone();
        tako_sim::stats::record_simulated_accesses(stats.memory_accesses());
        RunResult {
            cycles,
            energy_uj: sys.energy().total_uj(),
            stats,
        }
    }

    /// Speedup of this run relative to `baseline` (by cycles).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Energy of this run relative to `baseline` (1.0 = equal).
    pub fn energy_ratio_to(&self, baseline: &RunResult) -> f64 {
        self.energy_uj / baseline.energy_uj
    }

    /// Total DRAM accesses.
    pub fn dram_accesses(&self) -> u64 {
        self.stats.dram_accesses()
    }

    /// Shorthand for a counter value.
    pub fn get(&self, c: Counter) -> u64 {
        self.stats.get(c)
    }
}

impl Record for RunResult {
    /// Journaled as a campaign unit: a replayed result feeds the same
    /// report formatting as a computed one, so the round trip must be
    /// bit-exact (f64s use the to_bits/from_bits path in `put_f64`).
    fn record(&self, w: &mut SnapWriter) {
        w.put_u64(self.cycles);
        w.put_f64(self.energy_uj);
        self.stats.record(w);
    }
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RunResult {
            cycles: r.get_u64()?,
            energy_uj: r.get_f64()?,
            stats: Stats::replay(r)?,
        })
    }
}

/// Where a graph lives in simulated memory.
///
/// Layout: `offsets` (8 B per vertex + 1), `targets` (4 B per edge),
/// `shares` (8 B per vertex: the per-vertex push value,
/// `damping * rank / out_degree`), `next` (8 B per vertex: the
/// accumulator the edge phase scatters into), `ranks` (8 B per vertex).
#[derive(Debug, Clone, Copy)]
pub struct GraphLayout {
    /// Number of vertices.
    pub n: u64,
    /// Number of edges.
    pub m: u64,
    /// CSR offsets array base.
    pub offsets: Addr,
    /// CSR targets array base.
    pub targets: Addr,
    /// Per-vertex push share array base.
    pub shares: Addr,
    /// Scatter-destination accumulator array base.
    pub next: Addr,
    /// Rank vector base.
    pub ranks: Addr,
}

impl GraphLayout {
    /// Write `g` (and the rank/share vectors for one PageRank iteration
    /// from the uniform initial vector) into simulated memory.
    pub fn install(sys: &mut TakoSystem, g: &Csr) -> Self {
        let n = g.num_vertices() as u64;
        let m = g.num_edges() as u64;
        let offsets = sys.alloc_real((n + 1) * 8);
        let targets = sys.alloc_real(m.max(1) * 4);
        let shares = sys.alloc_real(n * 8);
        let next = sys.alloc_real(n * 8);
        let ranks = sys.alloc_real(n * 8);
        let init = 1.0 / n as f64;
        let damping = tako_graph::pagerank::DAMPING;
        let mem = sys.data();
        for (v, off) in g.offsets().iter().enumerate() {
            mem.write_u64(offsets.base + v as u64 * 8, *off);
        }
        for (e, t) in g.targets().iter().enumerate() {
            mem.write_u32(targets.base + e as u64 * 4, *t);
        }
        for v in 0..n {
            mem.write_f64(ranks.base + v * 8, init);
            let deg = g.out_degree(v as u32);
            let share = if deg == 0 {
                0.0
            } else {
                damping * init / deg as f64
            };
            mem.write_f64(shares.base + v * 8, share);
            mem.write_f64(next.base + v * 8, 0.0);
        }
        GraphLayout {
            n,
            m,
            offsets: offsets.base,
            targets: targets.base,
            shares: shares.base,
            next: next.base,
            ranks: ranks.base,
        }
    }

    /// Read back the scatter accumulator (for validation against the
    /// host-side reference iteration).
    pub fn read_next(&self, sys: &mut TakoSystem) -> Vec<f64> {
        let mem = sys.data();
        (0..self.n)
            .map(|v| mem.read_f64(self.next + v * 8))
            .collect()
    }

    /// Finish one PageRank iteration host-side: fold the base term into
    /// the accumulated pushes (`next`), matching the reference
    /// `pagerank::iteration`.
    pub fn finalize_iteration(&self, sys: &mut TakoSystem) -> Vec<f64> {
        let base = (1.0 - tako_graph::pagerank::DAMPING) / self.n as f64;
        self.read_next(sys).into_iter().map(|x| x + base).collect()
    }

    /// The address range of the `next` accumulator array.
    pub fn next_range(&self) -> AddrRange {
        AddrRange::new(self.next, self.n * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_sim::config::SystemConfig;
    use tako_sim::rng::Rng;

    #[test]
    fn layout_roundtrips_graph() {
        let mut sys = TakoSystem::new(SystemConfig::default_16core());
        let g = tako_graph::gen::uniform(64, 512, &mut Rng::new(5));
        let l = GraphLayout::install(&mut sys, &g);
        assert_eq!(l.n, 64);
        assert_eq!(l.m, 512);
        let mem = sys.data();
        // Offsets and targets round-trip.
        assert_eq!(mem.read_u64(l.offsets), 0);
        assert_eq!(
            mem.read_u64(l.offsets + 64 * 8),
            512,
            "last offset = edge count"
        );
        let t0 = mem.read_u32(l.targets);
        assert_eq!(t0, g.targets()[0]);
        // Shares consistent with rank/degree.
        let v0deg = g.out_degree(0);
        let s0 = mem.read_f64(l.shares);
        if v0deg > 0 {
            let expect = tako_graph::pagerank::DAMPING * (1.0 / 64.0) / v0deg as f64;
            assert!((s0 - expect).abs() < 1e-12);
        } else {
            assert_eq!(s0, 0.0);
        }
    }

    #[test]
    fn run_result_ratios() {
        let sys = TakoSystem::new(SystemConfig::default_16core());
        let a = RunResult::collect(&sys, 100);
        let b = RunResult::collect(&sys, 50);
        assert_eq!(b.speedup_over(&a), 2.0);
    }
}
