//! Decoupled graph traversal: HATS on täkō (Sec 8.2, Figs 16–17, 22–23).
//!
//! One PageRank iteration on a single thread over a community-structured
//! graph. HATS improves locality by traversing edges in bounded
//! depth-first order so that communities are visited together; the
//! challenge is that BDFS runs poorly on cores (data-dependent branches,
//! pointer chasing). täkō implements HATS as a *programmable stream*:
//!
//! * the application allocates a phantom range big enough to hold every
//!   edge; the core reads it sequentially;
//! * `onMiss` fills each requested line with the next 8 edges in BDFS
//!   order, walking the CSR arrays on the engine (Table 5);
//! * the L2 stride prefetcher triggers `onMiss` for upcoming lines while
//!   the core processes the current ones — the decoupling that hides the
//!   traversal;
//! * the core marks each consumed edge `INVALID` with an atomic exchange;
//!   evictions log any unprocessed edges (`onEviction`/`onWriteback`),
//!   and the core drains the log after flushing the stream, so no edge
//!   is ever lost.
//!
//! Variants: vertex-ordered baseline, software BDFS on the core, täkō,
//! and täkō with an ideal engine.

use tako_core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako_cpu::{run_single, CoreEnv, CoreTiming, MemSystem, StepResult, ThreadProgram};
use tako_dataflow::Val;
use tako_graph::Csr;
use tako_mem::addr::Addr;
use tako_sim::config::{EngineConfig, SystemConfig};
use tako_sim::rng::Rng;
use tako_sim::stats::Counter;

use crate::common::{GraphLayout, RunResult};

/// Sentinel marking a consumed or never-filled edge slot.
pub const INVALID_EDGE: u64 = u64::MAX;

/// Which implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Process edges in CSR (vertex) order on the core.
    VertexOrdered,
    /// The core itself runs the bounded DFS (branches + pointer chasing).
    SoftwareBdfs,
    /// HATS on täkō: engine-filled phantom stream.
    Tako,
    /// HATS with an idealized engine.
    Ideal,
}

impl Variant {
    /// All variants in Fig 16's order.
    pub const ALL: [Variant; 4] = [
        Variant::VertexOrdered,
        Variant::SoftwareBdfs,
        Variant::Tako,
        Variant::Ideal,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::VertexOrdered => "vertex-ordered",
            Variant::SoftwareBdfs => "sw-bdfs",
            Variant::Tako => "tako",
            Variant::Ideal => "ideal",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Vertices.
    pub vertices: usize,
    /// Edges.
    pub edges: usize,
    /// Communities (membership scattered across the id space).
    pub communities: usize,
    /// Intra-community edge probability.
    pub p_intra: f64,
    /// Contiguous-run length of community members in the id space.
    pub block: usize,
    /// BDFS stack bound.
    pub depth_bound: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            vertices: 1 << 20,
            edges: 8 << 20,
            communities: 256,
            p_intra: 0.95,
            block: 64,
            depth_bound: 32,
            seed: 0x4A75,
        }
    }
}

fn pack(src: u32, dst: u32) -> u64 {
    (u64::from(src) << 32) | u64::from(dst)
}

fn unpack(e: u64) -> (u32, u32) {
    ((e >> 32) as u32, e as u32)
}

// ----------------------------------------------------------------------
// The HATS Morph
// ----------------------------------------------------------------------

/// Engine-side BDFS traversal state. The stack and per-vertex cursors are
/// Morph-local state (the paper's HATS keeps a small stack on the
/// engine); the CSR arrays are read through timed engine loads — the
/// pointer chasing runs near-cache, off the core.
struct HatsMorph {
    offsets: Addr,
    targets: Addr,
    n: u64,
    depth_bound: usize,
    /// (vertex, next edge index, end edge index, offsets-ready value).
    stack: Vec<(u32, u64, u64, Val)>,
    discovered: Vec<bool>,
    seed: u32,
    exhausted: bool,
    /// Control block in real memory: `+0` done flag, `+8` log count.
    ctrl: Addr,
    log: Addr,
    log_cursor: u64,
    emitted: u64,
}

impl HatsMorph {
    /// Push `v` on the stack, loading its offsets on the engine. The
    /// entry's readiness value is the offsets load — later edge fetches
    /// from `v` depend on it, not on each other (the fabric overlaps
    /// neighbor loads; only the traversal decisions are sequential).
    fn push(&mut self, ctx: &mut EngineCtx<'_>, v: u32, dep: Val) {
        let (lo, _d1) = ctx.load_u64(self.offsets + u64::from(v) * 8, &[dep]);
        let (hi, d2) = ctx.load_u64(self.offsets + (u64::from(v) + 1) * 8, &[dep]);
        // Warm the vertex's first target line while the traversal
        // continues (hides the offsets→targets dependence).
        if lo < hi {
            ctx.prefetch(self.targets + lo * 4);
        }
        self.stack.push((v, lo, hi, d2));
    }

    /// Produce the next edge in BDFS order, or `None` when exhausted.
    /// Returns the edge and the value handle of its target load.
    fn next_edge(&mut self, ctx: &mut EngineCtx<'_>) -> Option<((u32, u32), Val)> {
        loop {
            while self.stack.is_empty() {
                while (self.seed as u64) < self.n && self.discovered[self.seed as usize] {
                    self.seed += 1;
                }
                if self.seed as u64 >= self.n {
                    self.exhausted = true;
                    return None;
                }
                self.discovered[self.seed as usize] = true;
                let s = self.seed;
                let dep = ctx.arg();
                self.push(ctx, s, dep);
            }
            let &(v, cur, end, ready) = self.stack.last().expect("nonempty");
            if cur >= end {
                self.stack.pop();
                continue;
            }
            self.stack.last_mut().expect("nonempty").1 += 1;
            let (dst, d) = ctx.load_u32(self.targets + cur * 4, &[ready]);
            // Crossing into a new target line: warm the next one.
            if cur + 1 < end && ((cur + 1) * 4) % 64 == 0 {
                ctx.prefetch(self.targets + (cur + 1) * 4);
            }
            // Per-edge fabric work: visited check, bound compare, pack.
            let chk = ctx.alu(&[d]);
            let packed = ctx.alu(&[chk]);
            if !self.discovered[dst as usize] && self.stack.len() < self.depth_bound {
                self.discovered[dst as usize] = true;
                self.push(ctx, dst, chk);
            }
            self.emitted += 1;
            ctx.stats().bump(Counter::HatsEdgeEmitted);
            return Some(((v, dst), packed));
        }
    }

    /// Log unprocessed edges of the evicted line (Table 5).
    fn log_unprocessed(&mut self, ctx: &mut EngineCtx<'_>) {
        let (vals, read) = ctx.line_read_all_u64(&[]);
        let mut dep = ctx.alu(&[read]);
        let mut logged = 0u64;
        for &e in &vals {
            if e == INVALID_EDGE || e == 0 {
                continue;
            }
            dep = ctx.store_stream_u64(self.log + (self.log_cursor + logged) * 8, e, &[dep]);
            logged += 1;
        }
        if logged > 0 {
            self.log_cursor += logged;
            ctx.store_u64(self.ctrl + 8, self.log_cursor, &[dep]);
            ctx.stats().add(Counter::HatsEdgeLogged, logged);
        }
    }
}

impl Morph for HatsMorph {
    fn name(&self) -> &str {
        "hats"
    }

    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let mut slots = [INVALID_EDGE; 8];
        let mut deps: Vec<Val> = Vec::with_capacity(8);
        for s in slots.iter_mut() {
            match self.next_edge(ctx) {
                Some(((src, dst), d)) => {
                    *s = pack(src, dst);
                    deps.push(d);
                }
                None => break,
            }
        }
        // The line write waits for all of its edges' target loads.
        let fin = ctx.line_write_all_u64(&slots, &deps);
        if self.exhausted {
            ctx.store_u64(self.ctrl, 1, &[fin]);
        }
    }

    fn on_eviction(&mut self, ctx: &mut EngineCtx<'_>) {
        self.log_unprocessed(ctx);
    }

    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        self.log_unprocessed(ctx);
    }

    fn static_instrs(&self) -> u32 {
        94 // the paper's largest Morph (Sec 5.3)
    }

    fn serialize_callbacks(&self) -> bool {
        // The engine's dynamic tag matching runs callbacks concurrently;
        // the traversal state is updated at dispatch (in order), so the
        // memory phases of consecutive onMisses overlap. (The paper's
        // prototype sequentialized onMiss calls and reports lower speedup
        // than hardware HATS for exactly that reason, Sec 8.2.)
        false
    }
}

// ----------------------------------------------------------------------
// Thread programs
// ----------------------------------------------------------------------

const CHUNK: usize = 8;

/// Shared edge-processing step: one PageRank push.
fn process_edge(env: &mut CoreEnv<'_>, layout: &GraphLayout, src: u32, dst: u32) {
    let share = env.load_f64(layout.shares + u64::from(src) * 8);
    let addr = layout.next + u64::from(dst) * 8;
    let old = env.load_f64(addr);
    env.compute(2);
    env.store_f64(addr, old + share);
}

/// Vertex-ordered baseline.
struct VertexOrderedProgram {
    layout: GraphLayout,
    v: u64,
    e: u64,
    e_end: u64,
    src: u32,
}

impl ThreadProgram for VertexOrderedProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        for _ in 0..CHUNK {
            while self.e >= self.e_end {
                if self.v >= self.layout.n {
                    return StepResult::Done;
                }
                let v = self.v;
                self.v += 1;
                self.src = v as u32;
                self.e = env.load_u64(self.layout.offsets + v * 8);
                self.e_end = env.load_u64(self.layout.offsets + (v + 1) * 8);
                env.branch(0x10, true); // outer-loop branch, predictable
            }
            let e = self.e;
            self.e += 1;
            let dst = env.load_u32(self.layout.targets + e * 4);
            env.branch(0x14, self.e < self.e_end); // inner loop
            process_edge(env, &self.layout, self.src, dst);
        }
        StepResult::Running
    }
}

/// Software BDFS: the core runs the traversal itself. Offsets and targets
/// are dependent loads (the address comes from the previous load) and the
/// push/pop decisions are data-dependent branches — the control-flow
/// behaviour Fig 17 measures.
struct SwBdfsProgram {
    layout: GraphLayout,
    stack: Vec<(u32, u64, u64)>,
    discovered: Vec<bool>,
    seed: u32,
    remaining: u64,
    depth_bound: usize,
}

impl SwBdfsProgram {
    fn push(&mut self, env: &mut CoreEnv<'_>, v: u32) {
        let lo = env.load_u64_dep(self.layout.offsets + u64::from(v) * 8);
        let hi = env.load_u64(self.layout.offsets + (u64::from(v) + 1) * 8);
        env.compute(3); // stack bookkeeping
        self.stack.push((v, lo, hi));
    }
}

impl ThreadProgram for SwBdfsProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        for _ in 0..CHUNK {
            if self.remaining == 0 {
                return StepResult::Done;
            }
            loop {
                while self.stack.is_empty() {
                    while (self.seed as u64) < self.layout.n && self.discovered[self.seed as usize]
                    {
                        self.seed += 1;
                        env.compute(2);
                    }
                    if self.seed as u64 >= self.layout.n {
                        return StepResult::Done;
                    }
                    self.discovered[self.seed as usize] = true;
                    let s = self.seed;
                    self.push(env, s);
                }
                let &(v, cur, end) = self.stack.last().expect("nonempty");
                if cur >= end {
                    self.stack.pop();
                    env.branch(0x20, true); // pop decision: data-dependent
                    env.compute(1);
                    continue;
                }
                self.stack.last_mut().expect("nonempty").1 += 1;
                env.branch(0x20, false);
                let dst = env.load_u32(self.layout.targets + cur * 4);
                // Visited check: a dependent load + data-dependent branch.
                let take = !self.discovered[dst as usize] && self.stack.len() < self.depth_bound;
                env.load_u64_dep(self.layout.offsets + u64::from(dst) * 8 / 8 * 8);
                env.branch(0x24, take);
                if take {
                    self.discovered[dst as usize] = true;
                    self.push(env, dst);
                }
                self.remaining -= 1;
                process_edge(env, &self.layout, v, dst);
                break;
            }
        }
        StepResult::Running
    }
}

/// täkō HATS: the core consumes the engine-filled phantom stream.
struct TakoHatsProgram {
    layout: GraphLayout,
    stream: Addr,
    ctrl: Addr,
    log: Addr,
    pos: u64,
    processed: u64,
    state: HatsState,
    log_pos: u64,
    log_count: u64,
    handle: tako_core::MorphHandle,
}

#[derive(PartialEq)]
enum HatsState {
    Streaming,
    Flush,
    DrainLog,
    Done,
}

impl ThreadProgram for TakoHatsProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        match self.state {
            HatsState::Streaming => {
                for _ in 0..CHUNK {
                    let addr = self.stream + self.pos * 8;
                    let e = env.exchange_u64(addr, INVALID_EDGE);
                    env.branch(0x30, e != INVALID_EDGE);
                    if e == INVALID_EDGE {
                        // Stream exhausted (the Morph set the done flag
                        // before filling INVALID slots).
                        let done = env.load_u64(self.ctrl);
                        assert_eq!(done, 1, "INVALID edge before exhaustion");
                        self.state = HatsState::Flush;
                        return StepResult::Running;
                    }
                    self.pos += 1;
                    // Last slot of the line consumed: demote the dead
                    // stream line so it stops polluting the L2.
                    if self.pos.is_multiple_of(8) {
                        env.demote_line(addr);
                    }
                    if e == 0 {
                        continue; // slot beyond the last emitted edge
                    }
                    let (src, dst) = unpack(e);
                    env.compute(2);
                    process_edge(env, &self.layout, src, dst);
                    self.processed += 1;
                }
                StepResult::Running
            }
            HatsState::Flush => {
                // Flush the stream so every unprocessed edge is logged.
                env.flush(self.handle.range());
                self.log_count = env.load_u64(self.ctrl + 8);
                self.state = if self.log_count > 0 {
                    HatsState::DrainLog
                } else {
                    HatsState::Done
                };
                StepResult::Running
            }
            HatsState::DrainLog => {
                for _ in 0..CHUNK {
                    if self.log_pos >= self.log_count {
                        self.state = HatsState::Done;
                        return StepResult::Running;
                    }
                    if self.log_pos.is_multiple_of(4) {
                        env.prefetch_stream(self.log + (self.log_pos + 8) * 8);
                    }
                    let e = env.load_stream_u64(self.log + self.log_pos * 8);
                    self.log_pos += 1;
                    if e == INVALID_EDGE || e == 0 {
                        continue;
                    }
                    let (src, dst) = unpack(e);
                    env.compute(2);
                    process_edge(env, &self.layout, src, dst);
                    self.processed += 1;
                }
                StepResult::Running
            }
            HatsState::Done => StepResult::Done,
        }
    }
}

// ----------------------------------------------------------------------
// Runner
// ----------------------------------------------------------------------

/// Outcome of a HATS run.
#[derive(Debug, Clone)]
pub struct HatsResult {
    /// Timing/energy/statistics.
    pub run: RunResult,
    /// The scatter accumulator (must match the reference iteration).
    pub next: Vec<f64>,
    /// Edges processed by the core (täkō variants).
    pub processed: u64,
    /// Branch mispredictions per edge (Fig 17, middle).
    pub mispredicts_per_edge: f64,
    /// Mean core load latency (Fig 17, right).
    pub mean_load_latency: f64,
}

impl tako_sim::checkpoint::Record for HatsResult {
    fn record(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        self.run.record(w);
        self.next.record(w);
        w.put_u64(self.processed);
        w.put_f64(self.mispredicts_per_edge);
        w.put_f64(self.mean_load_latency);
    }
    fn replay(
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<Self, tako_sim::checkpoint::SnapError> {
        Ok(HatsResult {
            run: RunResult::replay(r)?,
            next: Vec::replay(r)?,
            processed: r.get_u64()?,
            mispredicts_per_edge: r.get_f64()?,
            mean_load_latency: r.get_f64()?,
        })
    }
}

/// Run one variant on `cfg` with a freshly generated community graph.
pub fn run(variant: Variant, params: &Params, cfg: &SystemConfig) -> HatsResult {
    let mut rng = Rng::new(params.seed);
    let g = tako_graph::gen::community_blocked(
        params.vertices,
        params.edges,
        params.communities,
        params.p_intra,
        params.block,
        &mut rng,
    );
    run_on_graph(variant, params, cfg, &g)
}

/// Run one variant on a pre-built graph.
pub fn run_on_graph(variant: Variant, params: &Params, cfg: &SystemConfig, g: &Csr) -> HatsResult {
    let mut cfg = cfg.clone();
    if variant == Variant::Ideal {
        cfg.engine = EngineConfig::ideal();
    }
    let mut sys = TakoSystem::new(cfg.clone());
    let layout = GraphLayout::install(&mut sys, g);
    let m = layout.m;
    let max_steps = 60 * (m + layout.n) + 100_000;
    let core = CoreTiming::new(cfg.core);

    let (cycles, processed) = match variant {
        Variant::VertexOrdered => {
            let mut prog = VertexOrderedProgram {
                layout,
                v: 0,
                e: 0,
                e_end: 0,
                src: 0,
            };
            let c = run_single(0, &mut prog, core, &mut sys, max_steps);
            (c, m)
        }
        Variant::SoftwareBdfs => {
            let mut prog = SwBdfsProgram {
                layout,
                stack: Vec::new(),
                discovered: vec![false; layout.n as usize],
                seed: 0,
                remaining: m,
                depth_bound: params.depth_bound,
            };
            let c = run_single(0, &mut prog, core, &mut sys, max_steps);
            (c, m)
        }
        Variant::Tako | Variant::Ideal => {
            let ctrl = sys.alloc_real(64).base;
            let log = sys.alloc_real(m * 8 + 4096).base;
            let stream_bytes = m * 8 + 64 * 64;
            let handle = sys
                .register_phantom(
                    MorphLevel::Private,
                    stream_bytes,
                    Box::new(HatsMorph {
                        offsets: layout.offsets,
                        targets: layout.targets,
                        n: layout.n,
                        depth_bound: params.depth_bound,
                        stack: Vec::new(),
                        discovered: vec![false; layout.n as usize],
                        seed: 0,
                        exhausted: false,
                        ctrl,
                        log,
                        log_cursor: 0,
                        emitted: 0,
                    }),
                )
                .expect("register HATS morph");
            let mut prog = TakoHatsProgram {
                layout,
                stream: handle.range().base,
                ctrl,
                log,
                pos: 0,
                processed: 0,
                state: HatsState::Streaming,
                log_pos: 0,
                log_count: 0,
                handle,
            };
            let c = run_single(0, &mut prog, core, &mut sys, max_steps);
            // Audit: no emitted edge may be stranded in the stream.
            if cfg!(debug_assertions) {
                let mem = sys.data();
                let mut stranded = 0u64;
                for off in (0..stream_bytes).step_by(8) {
                    let e = mem.read_u64(handle.range().base + off);
                    if e != INVALID_EDGE && e != 0 {
                        stranded += 1;
                    }
                }
                debug_assert_eq!(stranded, 0, "edges stranded in the phantom stream");
            }
            (c, prog.processed)
        }
    };

    let stats = sys.stats_view();
    let mispredicts_per_edge = stats.get(Counter::BranchMispredict) as f64 / m as f64;
    let mean_load_latency = stats.load_latency.mean();
    let next = layout.read_next(&mut sys);
    HatsResult {
        run: RunResult::collect(&sys, cycles),
        next,
        processed,
        mispredicts_per_edge,
        mean_load_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_graph::pagerank;

    fn small() -> Params {
        Params {
            vertices: 4096,
            edges: 32 * 1024,
            communities: 16,
            p_intra: 0.9,
            block: 16,
            depth_bound: 32,
            seed: 77,
        }
    }

    fn reference_next(p: &Params) -> Vec<f64> {
        let mut rng = Rng::new(p.seed);
        let g = tako_graph::gen::community_blocked(
            p.vertices,
            p.edges,
            p.communities,
            p.p_intra,
            p.block,
            &mut rng,
        );
        let init = vec![1.0 / p.vertices as f64; p.vertices];
        let full = pagerank::iteration(&g, &init);
        // `next` holds only the pushed sums (no base term).
        let base = (1.0 - pagerank::DAMPING) / p.vertices as f64;
        full.into_iter().map(|x| x - base).collect()
    }

    #[test]
    fn all_variants_push_identical_sums() {
        let p = small();
        let expect = reference_next(&p);
        for v in Variant::ALL {
            let r = run(v, &p, &SystemConfig::default_16core());
            let diff = pagerank::max_diff(&r.next, &expect);
            assert!(
                diff < 1e-9,
                "{}: next mismatch {diff} (processed {})",
                v.label(),
                r.processed
            );
        }
    }

    #[test]
    fn tako_processes_every_edge_once() {
        let p = small();
        let r = run(Variant::Tako, &p, &SystemConfig::default_16core());
        assert_eq!(r.processed, p.edges as u64);
    }

    #[test]
    fn decoupling_uses_the_prefetcher() {
        let p = small();
        let r = run(Variant::Tako, &p, &SystemConfig::default_16core());
        assert!(
            r.run.get(Counter::PrefetchUseful) > 0,
            "prefetcher should trigger onMiss ahead of the core"
        );
        assert!(r.run.get(Counter::CbOnMiss) > 0);
    }

    #[test]
    fn sw_bdfs_mispredicts_more_than_vertex_order() {
        let p = small();
        let vo = run(Variant::VertexOrdered, &p, &SystemConfig::default_16core());
        let sb = run(Variant::SoftwareBdfs, &p, &SystemConfig::default_16core());
        assert!(
            sb.mispredicts_per_edge > 1.5 * vo.mispredicts_per_edge,
            "sw-bdfs {} vs vertex-ordered {}",
            sb.mispredicts_per_edge,
            vo.mispredicts_per_edge
        );
    }

    #[test]
    fn tako_beats_software_bdfs_and_tracks_ideal() {
        // The decoupled engine-side traversal must clearly beat the same
        // traversal on the core (the paper's software-BDFS baseline gets
        // "minimal benefits"), and the real fabric must track the ideal
        // engine closely. The vertex-ordered comparison needs the paper's
        // scale (vertex data >> LLC) and runs in the fig16 bench.
        let mut cfg = SystemConfig::default_16core();
        cfg.llc_bank.size_bytes = 16 * 1024; // 256 KB LLC
        cfg.l2.size_bytes = 32 * 1024;
        let p = Params {
            vertices: 32 * 1024,
            edges: 512 * 1024, // degree 16, like uk-2002
            communities: 64,
            p_intra: 0.95,
            block: 8,
            depth_bound: 32,
            seed: 3,
        };
        let sb = run(Variant::SoftwareBdfs, &p, &cfg);
        let tk = run(Variant::Tako, &p, &cfg);
        let ideal = run(Variant::Ideal, &p, &cfg);
        assert!(
            (tk.run.cycles as f64) < 0.67 * sb.run.cycles as f64,
            "tako {} vs sw-bdfs {}",
            tk.run.cycles,
            sb.run.cycles
        );
        assert!(
            tk.run.dram_accesses() < sb.run.dram_accesses(),
            "tako {} vs sw-bdfs {} DRAM",
            tk.run.dram_accesses(),
            sb.run.dram_accesses()
        );
        // Fig 22: the 5x5 fabric tracks the ideal engine closely.
        assert!(
            (tk.run.cycles as f64) < 1.15 * ideal.run.cycles as f64,
            "tako {} vs ideal {}",
            tk.run.cycles,
            ideal.run.cycles
        );
    }
}
