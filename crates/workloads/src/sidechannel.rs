//! Detecting cache side-channel attacks (Sec 8.4, Fig 21, Table 7).
//!
//! A prime+probe attack at the shared LLC: the attacker primes one cache
//! set with its own lines, the victim performs secret-dependent accesses
//! to an AES-table-like structure, and the attacker probes its lines
//! again, timing each access — a slow probe reveals that the victim
//! touched the monitored set that round, leaking the secret.
//!
//! With täkō, the victim registers a *real-address* Morph over its
//! secure table whose only callback is `onEviction`: the moment any
//! table line is evicted (which priming forces), the victim's thread is
//! interrupted and can defend itself — here by switching to constant-
//! time accesses (touching every table line each round), after which the
//! probe results carry no information.
//!
//! The run produces a Fig 21-style trace: per round, whether the victim
//! actually touched the monitored line and what the attacker inferred,
//! plus the round at which täkō's interrupt fired.

use std::cell::Cell;
use std::rc::Rc;

use tako_core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako_cpu::{
    run_multicore, BranchPredictor, CoreEnv, CoreTiming, MemSystem, StepResult, ThreadProgram,
};
use tako_mem::addr::Addr;
use tako_sim::config::{SystemConfig, LINE_BYTES};
use tako_sim::rng::Rng;
use tako_sim::stats::Counter;

use crate::common::RunResult;

/// Which system the attack runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Unprotected baseline: the attack succeeds silently.
    Baseline,
    /// täkō: the victim's onEviction Morph detects the priming.
    Tako,
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Attack rounds.
    pub rounds: usize,
    /// Table lines (an AES T-table is 1 KB = 16 lines).
    pub table_lines: usize,
    /// Probe latency above which the attacker calls it a miss.
    pub threshold: u64,
    /// RNG seed for the victim's secret.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            rounds: 64,
            table_lines: 16,
            // The eviction set aliases in the attacker's own L2, so
            // probes distinguish LLC hits (~40 cycles) from DRAM
            // (~150 cycles), not L1 hits from misses.
            threshold: 100,
            seed: 0xAE5,
        }
    }
}

/// The eviction alarm (Table 7: only onEviction is implemented).
struct AlarmMorph;

impl Morph for AlarmMorph {
    fn name(&self) -> &str {
        "eviction-alarm"
    }

    fn on_eviction(&mut self, ctx: &mut EngineCtx<'_>) {
        ctx.raise_interrupt();
    }

    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        ctx.raise_interrupt();
    }

    fn static_instrs(&self) -> u32 {
        4
    }
}

/// Turn-based round synchronization between attacker and victim.
#[derive(Clone)]
struct Turns {
    /// 0 = attacker primes, 1 = victim accesses, 2 = attacker probes.
    turn: Rc<Cell<u8>>,
    round: Rc<Cell<usize>>,
}

struct VictimProgram {
    table: Addr,
    secret: Vec<u8>,
    turns: Turns,
    params: Params,
    /// Set when the täkō interrupt fires; victim goes constant-time.
    defended: Option<usize>,
    /// Ground truth: rounds in which the monitored line was touched.
    touched: Vec<bool>,
    monitored_line: usize,
    tako: bool,
    warmed: bool,
}

impl ThreadProgram for VictimProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        let round = self.turns.round.get();
        if round >= self.params.rounds {
            return StepResult::Done;
        }
        if self.turns.turn.get() != 1 {
            env.compute(1); // waiting for our turn
            return StepResult::Running;
        }
        // Poll the user-space interrupt (täkō's defense signal).
        if self.tako && self.defended.is_none() && env.take_interrupt().is_some() {
            self.defended = Some(round);
        }
        if !self.warmed {
            // AES tables are hot in a real server: warm the whole table
            // before the first encryption.
            for l in 0..self.params.table_lines {
                env.load_u64(self.table + (l as u64) * LINE_BYTES);
            }
            self.warmed = true;
            self.touched.push(true);
            self.turns.turn.set(2);
            return StepResult::Running;
        }
        let nibble = (self.secret[round % self.secret.len()] as usize) % self.params.table_lines;
        if self.defended.is_some() {
            // Defense: constant-time access pattern — touch every line.
            for l in 0..self.params.table_lines {
                env.load_u64(self.table + (l as u64) * LINE_BYTES);
            }
            env.compute(8);
            self.touched.push(true); // all lines touched, nothing leaks
        } else {
            // Secret-dependent table lookups (the AES pattern).
            for _ in 0..4 {
                env.load_u64(self.table + (nibble as u64) * LINE_BYTES);
                env.compute(4);
            }
            self.touched.push(nibble == self.monitored_line);
        }
        self.turns.turn.set(2);
        StepResult::Running
    }
}

struct AttackerProgram {
    conflict_lines: Vec<Addr>,
    turns: Turns,
    params: Params,
    /// Slow probes seen per round.
    slow_counts: Vec<u32>,
}

impl ThreadProgram for AttackerProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        let round = self.turns.round.get();
        if round >= self.params.rounds {
            return StepResult::Done;
        }
        match self.turns.turn.get() {
            0 => {
                // Prime: pull our conflict lines into the monitored set.
                for &l in &self.conflict_lines {
                    env.load_u64(l);
                }
                env.fence();
                self.turns.turn.set(1);
            }
            2 => {
                // Probe: time each line; slow probes mean evictions.
                let mut slow = 0u32;
                for &l in &self.conflict_lines {
                    env.fence();
                    let t0 = env.now();
                    env.load_u64(l);
                    env.fence();
                    if env.now() - t0 > self.params.threshold {
                        slow += 1;
                    }
                }
                self.slow_counts.push(slow);
                self.turns.round.set(round + 1);
                self.turns.turn.set(0);
            }
            _ => {
                env.compute(1); // victim's turn
            }
        }
        StepResult::Running
    }
}

/// Outcome of one attack run.
#[derive(Debug, Clone)]
pub struct SideChannelResult {
    /// Timing/energy/statistics.
    pub run: RunResult,
    /// Per-round ground truth: victim touched the monitored line.
    pub touched: Vec<bool>,
    /// Per-round attacker inference.
    pub inferred: Vec<bool>,
    /// Raw per-round slow-probe counts.
    pub slow_counts: Vec<u32>,
    /// Round at which the victim's defense engaged (täkō only).
    pub detected_at: Option<usize>,
    /// Interrupts raised by the alarm Morph.
    pub interrupts: u64,
}

impl tako_sim::checkpoint::Record for SideChannelResult {
    fn record(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        self.run.record(w);
        self.touched.record(w);
        self.inferred.record(w);
        self.slow_counts.record(w);
        self.detected_at.record(w);
        w.put_u64(self.interrupts);
    }
    fn replay(
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<Self, tako_sim::checkpoint::SnapError> {
        Ok(SideChannelResult {
            run: RunResult::replay(r)?,
            touched: Vec::replay(r)?,
            inferred: Vec::replay(r)?,
            slow_counts: Vec::replay(r)?,
            detected_at: Option::replay(r)?,
            interrupts: r.get_u64()?,
        })
    }
}

impl SideChannelResult {
    /// Fraction of rounds where the attacker's inference matches the
    /// ground truth (≈1.0 = full leak; ≈0.5 or below = no information,
    /// since the defended victim touches the set every round).
    pub fn attacker_accuracy(&self) -> f64 {
        let n = self.touched.len().min(self.inferred.len());
        if n == 0 {
            return 0.0;
        }
        let hits = (0..n)
            .filter(|&i| self.touched[i] == self.inferred[i])
            .count();
        hits as f64 / n as f64
    }

    /// Fraction of *secret-dependent* rounds that leaked before the
    /// defense engaged.
    pub fn rounds_leaked_before_detection(&self) -> usize {
        self.detected_at.unwrap_or(self.touched.len())
    }
}

/// Run the prime+probe attack.
pub fn run(variant: Variant, params: Params, cfg: &SystemConfig) -> SideChannelResult {
    let mut sys = TakoSystem::new(cfg.clone());
    let mut rng = Rng::new(params.seed);

    // Secure table, line-aligned.
    let table = sys.alloc_real(params.table_lines as u64 * LINE_BYTES).base;
    for l in 0..params.table_lines as u64 {
        sys.data().write_u64(table + l * LINE_BYTES, 0x5EC0 + l);
    }
    // Secret nibble sequence.
    let secret: Vec<u8> = (0..params.rounds)
        .map(|_| rng.below(params.table_lines as u64) as u8)
        .collect();
    let monitored_line = 0usize;

    // Conflict lines: same LLC bank and set as the monitored table line.
    // Bank = line# % tiles; set = (line# / tiles) % sets — lines repeat
    // the same (bank, set) every tiles*sets lines.
    let sets = cfg.llc_bank.sets();
    let period = cfg.tiles as u64 * sets * LINE_BYTES;
    let pool = sys.alloc_real(64 * period);
    let target = table + monitored_line as u64 * LINE_BYTES;
    let first = pool.base + (target % period + period - pool.base % period) % period;
    let ways = cfg.llc_bank.ways as u64;
    let conflict_lines: Vec<Addr> = (0..ways).map(|w| first + w * period).collect();

    let victim_tile = 2;
    let tako = variant == Variant::Tako;
    if tako {
        sys.register_real_at(
            victim_tile,
            MorphLevel::Shared,
            tako_mem::addr::AddrRange::new(table, params.table_lines as u64 * LINE_BYTES),
            Box::new(AlarmMorph),
            0,
        )
        .expect("register alarm");
    }

    let turns = Turns {
        turn: Rc::new(Cell::new(0)),
        round: Rc::new(Cell::new(0)),
    };
    let mut victim = VictimProgram {
        table,
        secret,
        turns: turns.clone(),
        params,
        defended: None,
        touched: Vec::new(),
        monitored_line,
        tako,
        warmed: false,
    };
    let mut attacker = AttackerProgram {
        conflict_lines,
        turns,
        params,
        slow_counts: Vec::new(),
    };
    let mut cores = vec![CoreTiming::new(cfg.core), CoreTiming::new(cfg.core)];
    let mut preds = vec![BranchPredictor::new(), BranchPredictor::new()];
    let mut programs: Vec<(usize, &mut dyn ThreadProgram)> =
        vec![(victim_tile, &mut victim), (9, &mut attacker)];
    let cycles = run_multicore(&mut programs, &mut cores, &mut preds, &mut sys, 50_000_000);

    let interrupts = sys.stats_view().get(Counter::UserInterrupt);
    // The attacker infers a victim access whenever the round's slow-probe
    // count exceeds the self-eviction noise floor (the minimum count).
    let floor = attacker.slow_counts.iter().copied().min().unwrap_or(0);
    let inferred: Vec<bool> = attacker.slow_counts.iter().map(|&c| c > floor).collect();
    SideChannelResult {
        run: RunResult::collect(&sys, cycles),
        touched: victim.touched,
        inferred,
        slow_counts: attacker.slow_counts,
        detected_at: victim.defended,
        interrupts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_attack_leaks_the_access_pattern() {
        let r = run(
            Variant::Baseline,
            Params::default(),
            &SystemConfig::default_16core(),
        );
        let acc = r.attacker_accuracy();
        assert!(
            acc > 0.8,
            "prime+probe should leak on the baseline (accuracy {acc})"
        );
        assert!(r.detected_at.is_none());
        assert_eq!(r.interrupts, 0);
    }

    #[test]
    fn tako_detects_the_attack_early() {
        let r = run(
            Variant::Tako,
            Params::default(),
            &SystemConfig::default_16core(),
        );
        assert!(r.interrupts > 0, "the alarm Morph must fire");
        let detected = r.detected_at.expect("defense must engage");
        assert!(
            detected <= 3,
            "detection should happen within the first rounds, got {detected}"
        );
    }

    #[test]
    fn tako_defense_destroys_the_leak() {
        let params = Params::default();
        let r = run(Variant::Tako, params, &SystemConfig::default_16core());
        // After the defense, the victim touches the monitored set every
        // round, so the attacker's raw slow-probe counts are uniformly
        // nonzero and carry no secret-dependent information.
        let start = r.detected_at.expect("defense engaged") + 1;
        let all_on = (start..r.slow_counts.len()).all(|i| r.slow_counts[i] >= 1);
        assert!(
            all_on,
            "post-defense probes should be uniformly slow (no signal): {:?}",
            &r.slow_counts[start..]
        );
    }
}
