//! Commutative scatter-updates: PHI on täkō (Sec 8.1, Figs 13–14, 24–25).
//!
//! One push-based PageRank iteration over a synthetic power-law graph.
//! The edge phase scatters `share[src]` into `next[dst]` for every edge;
//! PHI turns the shared cache into a write-combining buffer for these
//! commutative updates:
//!
//! * the application allocates a *phantom* range the size of the vertex
//!   accumulator and pushes updates to it with remote memory operations
//!   (relaxed atomic adds executed at the owning LLC bank);
//! * `onMiss` initializes lines with the identity (zero) — no memory
//!   fetch;
//! * `onWriteback` counts the updates buffered in the evicted line and
//!   either applies them **in place** (dense lines) or logs them to a
//!   per-region **bin** (sparse lines), exactly Table 4.
//!
//! Variants: software baseline (scattered read-modify-writes), software
//! update batching \[14, 70\] (per-thread binning, then a bin phase),
//! täkō/PHI, and PHI on an ideal engine.

use tako_core::{run_multicore_lanes, EngineCtx, Morph, MorphHandle, MorphLevel, TakoSystem};
use tako_cpu::{
    run_multicore, BranchPredictor, CoreEnv, CoreTiming, LaneProgram, MemSystem, StepResult,
    ThreadProgram,
};
use tako_graph::Csr;
use tako_mem::addr::Addr;
use tako_sim::config::{EngineConfig, SystemConfig};
use tako_sim::rng::Rng;
use tako_sim::stats::Counter;
use tako_sim::Cycle;

use crate::common::{GraphLayout, RunResult};

/// Which implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Scattered read-modify-writes straight into `next`.
    Software,
    /// Software update batching (propagation blocking).
    UpdateBatching,
    /// PHI on täkō.
    Tako,
    /// PHI on an idealized engine.
    Ideal,
}

impl Variant {
    /// All variants in Fig 13's order.
    pub const ALL: [Variant; 4] = [
        Variant::Software,
        Variant::UpdateBatching,
        Variant::Tako,
        Variant::Ideal,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Software => "software",
            Variant::UpdateBatching => "update-batching",
            Variant::Tako => "tako",
            Variant::Ideal => "ideal",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Vertices in the synthetic power-law graph.
    pub vertices: usize,
    /// Edges.
    pub edges: usize,
    /// Zipf skew of destinations.
    pub theta: f64,
    /// Worker threads (one per tile).
    pub threads: usize,
    /// In-place threshold: lines with at least this many buffered
    /// updates apply directly; sparser lines are binned.
    pub threshold: u32,
    /// RNG seed.
    pub seed: u64,
    /// Per-tile parallel lanes: 0 runs the plain serial interleaver
    /// (the golden-digest schedule); `n >= 1` runs the deterministic
    /// lane engine with a fork-join pool of width `n` and single-unit
    /// steps. Results are byte-identical for every `n >= 1`.
    pub lanes: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            vertices: 1 << 20,
            edges: 10 << 20,
            theta: 0.6,
            threads: 16,
            threshold: 3,
            seed: 0x9A1,
            lanes: 0,
        }
    }
}

/// Vertices per bin region (64 KB of `next` per bin).
const BIN_VERTICES: u64 = 8192;

fn num_bins(n: u64) -> u64 {
    n.div_ceil(BIN_VERTICES)
}

// ----------------------------------------------------------------------
// The PHI Morph
// ----------------------------------------------------------------------

struct PhiMorph {
    next: Addr,
    /// Bin storage base. SHARED Morphs have one view per LLC bank
    /// (Sec 4.2), so bins are per-(bank, region): slot
    /// `bank*nbins + region` occupies `[slot*cap*16, (slot+1)*cap*16)`.
    bins: Addr,
    bin_cap: u64,
    /// Per-slot entry counts, mirrored to memory for the bin phase.
    bin_counts: Addr,
    nbins: u64,
    threshold: u32,
    n: u64,
}

impl Morph for PhiMorph {
    fn name(&self) -> &str {
        "phi"
    }

    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        // Initialize the line with the identity element (zero) without
        // any request down the hierarchy (Table 4).
        let v = ctx.arg();
        ctx.line_fill_u64(0, &[v]);
    }

    fn on_writeback(&mut self, ctx: &mut EngineCtx<'_>) {
        let base_v = ctx.offset() / 8; // first vertex buffered in the line
        let (vals, read) = ctx.line_read_all_f64(&[]);
        let count = vals.iter().filter(|&&d| d != 0.0).count() as u32;
        let cmp = ctx.alu(&[read]); // SIMD nonzero count + compare
        if count == 0 {
            return;
        }
        if count >= self.threshold {
            // Dense: apply in place. The 8 deltas map to one contiguous
            // line of `next`: one load, one SIMD add, one store.
            let dst = self.next + base_v * 8;
            let (_, l) = ctx.load_f64(dst, &[cmp]);
            let add = ctx.alu(&[l, read]);
            let _st = ctx.store_u64(dst + 1, 0, &[add]); // timing-only store
            for (i, &d) in vals.iter().enumerate() {
                if d != 0.0 {
                    ctx.data().add_f64(dst + 8 * i as u64, d);
                }
            }
            ctx.stats().add(Counter::PhiInPlace, u64::from(count));
        } else {
            // Sparse: log (vertex, delta) entries to this bank view's
            // bin for the destination region.
            let bank = ctx.engine_tile() as u64;
            let bin = bank * self.nbins + base_v / BIN_VERTICES;
            let mem_count_addr = self.bin_counts + bin * 8;
            let cursor = ctx.data().read_u64(mem_count_addr);
            let mut dep = cmp;
            let mut written = 0u64;
            for (i, &d) in vals.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                let slot = cursor + written;
                written += 1;
                assert!(slot < self.bin_cap, "bin overflow: raise bin capacity");
                let entry = self.bins + (bin * self.bin_cap + slot) * 16;
                let vertex = base_v + i as u64;
                assert!(vertex < self.n);
                dep = ctx.store_stream_u64(entry, vertex, &[dep]);
                ctx.store_stream_f64(entry + 8, d, &[dep]);
            }
            ctx.data().write_u64(mem_count_addr, cursor + written);
            ctx.stats().add(Counter::PhiBinned, u64::from(count));
        }
    }

    fn static_instrs(&self) -> u32 {
        46
    }
}

// ----------------------------------------------------------------------
// Thread programs
// ----------------------------------------------------------------------

/// Work units per serial step. The lane engine runs single-unit steps
/// instead: speculation commits or aborts whole steps, and one unit is
/// the granularity at which an L1-resident phase actually stays pure.
const CHUNK: usize = 16;

#[derive(Clone, Copy)]
enum Sink {
    /// next[dst] += share via scattered read-modify-writes.
    Direct,
    /// Append (dst, share) to thread-local bins at `bins` with capacity
    /// `cap` entries per bin (cursors held in program state).
    LocalBins { bins: Addr, cap: u64 },
    /// RMO push to the PHI phantom range.
    Phantom(Addr),
}

/// Edge-phase program: walk a contiguous source-vertex range and push
/// `share[src]` to every destination.
struct EdgeProgram {
    layout: GraphLayout,
    v_hi: u64,
    v: u64,
    e: u64,
    e_end: u64,
    share: f64,
    sink: Sink,
    bin_cursors: Vec<u64>,
    chunk: usize,
}

impl EdgeProgram {
    fn advance_vertex(&mut self, env: &mut CoreEnv<'_>) -> bool {
        let l = &self.layout;
        while self.e >= self.e_end {
            if self.v >= self.v_hi {
                return false;
            }
            let v = self.v;
            self.v += 1;
            // The CSR arrays stream once per iteration: non-temporal
            // loads with prefetch keep them out of the shared cache.
            if v.is_multiple_of(8) {
                env.prefetch_stream(l.offsets + (v + 16) * 8);
                env.prefetch_stream(l.shares + (v + 16) * 8);
            }
            let lo = env.load_stream_u64(l.offsets + v * 8);
            let hi = env.load_stream_u64(l.offsets + (v + 1) * 8);
            self.share = env.load_stream_f64(l.shares + v * 8);
            env.compute(2);
            self.e = lo;
            self.e_end = hi;
        }
        true
    }
}

impl ThreadProgram for EdgeProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        env.set_phase(0);
        let l = self.layout;
        for _ in 0..self.chunk {
            if !self.advance_vertex(env) {
                return StepResult::Done;
            }
            let e = self.e;
            self.e += 1;
            if e.is_multiple_of(16) {
                env.prefetch_stream(l.targets + (e + 32) * 4);
            }
            let dst = u64::from(env.load_stream_u32(l.targets + e * 4));
            env.compute(1);
            match self.sink {
                Sink::Direct => {
                    let addr = l.next + dst * 8;
                    let old = env.load_f64(addr);
                    env.compute(1);
                    env.store_f64(addr, old + self.share);
                }
                Sink::LocalBins { bins, cap } => {
                    let bin = dst / BIN_VERTICES;
                    let cur = &mut self.bin_cursors[bin as usize];
                    assert!(*cur < cap, "UB bin overflow");
                    let entry = bins + (bin * cap + *cur) * 16;
                    *cur += 1;
                    // Milk-style streaming appends (non-temporal stores).
                    env.store_stream_u64(entry, dst);
                    env.store_stream_f64(entry + 8, self.share);
                    env.compute(2);
                }
                Sink::Phantom(base) => {
                    env.rmo_add_f64(base + dst * 8, self.share);
                }
            }
        }
        StepResult::Running
    }
}

/// Bin-phase program: drain a set of bins into `next`.
struct BinProgram {
    layout: GraphLayout,
    /// (bin storage base, entries) for each bin this thread drains.
    work: Vec<(Addr, u64)>,
    widx: usize,
    entry: u64,
    chunk: usize,
}

impl ThreadProgram for BinProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        env.set_phase(1);
        for _ in 0..self.chunk {
            let Some(&(base, count)) = self.work.get(self.widx) else {
                return StepResult::Done;
            };
            if self.entry >= count {
                self.widx += 1;
                self.entry = 0;
                continue;
            }
            let addr = base + self.entry * 16;
            self.entry += 1;
            // Entries stream once: non-temporal loads keep the scan from
            // evicting the destination region; software prefetch hides
            // the scan's latency (entries are sequential).
            if self.entry % 4 == 1 && self.entry + 8 < count {
                env.prefetch_stream(base + (self.entry + 8) * 16);
            }
            let v = env.load_stream_u64(addr);
            let delta = env.load_stream_f64(addr + 8);
            let dst = self.layout.next + v * 8;
            let old = env.load_f64(dst);
            env.compute(1);
            env.store_f64(dst, old + delta);
        }
        StepResult::Running
    }
}

/// Vertex-phase program: fold `next` into `ranks` for a vertex range.
struct VertexProgram {
    layout: GraphLayout,
    v: u64,
    v_hi: u64,
    base_term: f64,
    chunk: usize,
}

impl ThreadProgram for VertexProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        env.set_phase(2);
        for _ in 0..self.chunk {
            if self.v >= self.v_hi {
                return StepResult::Done;
            }
            let v = self.v;
            self.v += 1;
            let nx = env.load_f64(self.layout.next + v * 8);
            env.compute(2);
            env.store_f64(self.layout.ranks + v * 8, nx + self.base_term);
        }
        StepResult::Running
    }
}

// Lane speculation snapshots: each program saves exactly the state its
// `step` can mutate. All three tolerate poisoned (zeroed) loads after
// an abort point — no assert depends on loaded data (the one `assert!`
// in the LocalBins arm checks a cursor the rollback restores, against a
// fixed capacity; a zeroed `dst` still indexes bin 0 in bounds).
impl LaneProgram for EdgeProgram {
    fn lane_save(&self) -> Box<dyn std::any::Any + Send> {
        Box::new((
            self.v,
            self.e,
            self.e_end,
            self.share,
            self.bin_cursors.clone(),
        ))
    }
    fn lane_restore(&mut self, saved: Box<dyn std::any::Any + Send>) {
        let (v, e, e_end, share, cursors) =
            *saved.downcast::<(u64, u64, u64, f64, Vec<u64>)>().unwrap();
        self.v = v;
        self.e = e;
        self.e_end = e_end;
        self.share = share;
        self.bin_cursors = cursors;
    }
}

impl LaneProgram for BinProgram {
    fn lane_save(&self) -> Box<dyn std::any::Any + Send> {
        Box::new((self.widx, self.entry))
    }
    fn lane_restore(&mut self, saved: Box<dyn std::any::Any + Send>) {
        let (widx, entry) = *saved.downcast::<(usize, u64)>().unwrap();
        self.widx = widx;
        self.entry = entry;
    }
}

impl LaneProgram for VertexProgram {
    fn lane_save(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.v)
    }
    fn lane_restore(&mut self, saved: Box<dyn std::any::Any + Send>) {
        self.v = *saved.downcast::<u64>().unwrap();
    }
}

// ----------------------------------------------------------------------
// Runner
// ----------------------------------------------------------------------

/// Outcome of a PHI run.
#[derive(Debug, Clone)]
pub struct PhiResult {
    /// Timing/energy/statistics.
    pub run: RunResult,
    /// The completed rank vector (must equal the host reference).
    pub ranks: Vec<f64>,
    /// Cycle each phase ended: (edge incl. flush, bin, vertex).
    pub phase_ends: [Cycle; 3],
}

impl tako_sim::checkpoint::Record for PhiResult {
    fn record(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        self.run.record(w);
        self.ranks.record(w);
        for p in self.phase_ends {
            w.put_u64(p);
        }
    }
    fn replay(
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<Self, tako_sim::checkpoint::SnapError> {
        let run = RunResult::replay(r)?;
        let ranks = Vec::replay(r)?;
        let mut phase_ends = [0; 3];
        for p in &mut phase_ends {
            *p = r.get_u64()?;
        }
        Ok(PhiResult {
            run,
            ranks,
            phase_ends,
        })
    }
}

fn partition(n: u64, parts: usize, i: usize) -> (u64, u64) {
    let per = n.div_ceil(parts as u64);
    let lo = per * i as u64;
    (lo.min(n), (lo + per).min(n))
}

fn run_phase(
    sys: &mut TakoSystem,
    mut programs: Vec<Box<dyn LaneProgram>>,
    cfg: &SystemConfig,
    start: Cycle,
    max_steps: u64,
    lanes: usize,
) -> Cycle {
    let threads = programs.len();
    let mut cores: Vec<CoreTiming> = (0..threads)
        .map(|_| {
            let mut c = CoreTiming::new(cfg.core);
            c.stall_until(start);
            c
        })
        .collect();
    let mut preds: Vec<BranchPredictor> = (0..threads).map(|_| BranchPredictor::new()).collect();
    if lanes >= 1 {
        let mut progs: Vec<(usize, &mut dyn LaneProgram)> = programs
            .iter_mut()
            .enumerate()
            .map(|(i, p)| (i % cfg.tiles, p.as_mut() as &mut dyn LaneProgram))
            .collect();
        run_multicore_lanes(&mut progs, &mut cores, &mut preds, sys, max_steps, lanes)
    } else {
        let mut progs: Vec<(usize, &mut dyn ThreadProgram)> = programs
            .iter_mut()
            .enumerate()
            .map(|(i, p)| (i % cfg.tiles, p.as_mut() as &mut dyn ThreadProgram))
            .collect();
        run_multicore(&mut progs, &mut cores, &mut preds, sys, max_steps)
    }
}

/// Run one PageRank iteration with `variant` on `cfg`.
pub fn run(variant: Variant, params: &Params, cfg: &SystemConfig) -> PhiResult {
    let mut rng = Rng::new(params.seed);
    let g = tako_graph::gen::power_law(params.vertices, params.edges, params.theta, &mut rng);
    run_on_graph(variant, params, cfg, &g)
}

/// Run on a pre-built graph (used by the scalability sweep, Fig 25).
pub fn run_on_graph(variant: Variant, params: &Params, cfg: &SystemConfig, g: &Csr) -> PhiResult {
    run_on_graph_inner(variant, params, cfg, g, None)
}

fn run_on_graph_inner(
    variant: Variant,
    params: &Params,
    cfg: &SystemConfig,
    g: &Csr,
    chunk_override: Option<usize>,
) -> PhiResult {
    let mut cfg = cfg.clone();
    if variant == Variant::Ideal {
        cfg.engine = EngineConfig::ideal();
    }
    let mut sys = TakoSystem::new(cfg.clone());
    let layout = GraphLayout::install(&mut sys, g);
    let n = layout.n;
    let m = layout.m;
    let threads = params.threads.min(cfg.tiles).max(1);
    let nbins = num_bins(n);
    let lanes = params.lanes;
    let chunk = chunk_override.unwrap_or(if lanes >= 1 { 1 } else { CHUNK });
    let max_steps = 40 * (m + n) * (CHUNK / chunk) as u64 + 100_000;

    let mut phi_handle: Option<MorphHandle> = None;
    let mut phi_bins = 0;
    let mut phi_bin_cap = 0;
    let mut phi_bin_counts = 0;
    let mut ub_bins: Vec<Addr> = Vec::new();
    let mut ub_cap = 0;

    let sink = match variant {
        Variant::Software => Sink::Direct,
        Variant::UpdateBatching => {
            ub_cap = (m / threads as u64).div_ceil(nbins) * 8 + 256;
            for _ in 0..threads {
                ub_bins.push(sys.alloc_real(nbins * ub_cap * 16).base);
            }
            Sink::LocalBins {
                bins: 0,
                cap: ub_cap,
            }
        }
        Variant::Tako | Variant::Ideal => {
            let banks = cfg.tiles as u64;
            let slots = banks * nbins;
            let cap = m.div_ceil(slots) * 16 + 1024;
            let bins = sys.alloc_real(slots * cap * 16).base;
            let counts = sys.alloc_real(slots * 8).base;
            let h = sys
                .register_phantom(
                    MorphLevel::Shared,
                    n * 8,
                    Box::new(PhiMorph {
                        next: layout.next,
                        bins,
                        bin_cap: cap,
                        bin_counts: counts,
                        nbins,
                        threshold: params.threshold,
                        n,
                    }),
                )
                .expect("register PHI morph");
            phi_handle = Some(h);
            phi_bins = bins;
            phi_bin_cap = cap;
            phi_bin_counts = counts;
            Sink::Phantom(h.range().base)
        }
    };

    // ---- edge phase ----
    let mut edge_programs: Vec<Box<dyn LaneProgram>> = Vec::new();
    for (t, _) in (0..threads).enumerate() {
        let (lo, hi) = partition(n, threads, t);
        let s = match sink {
            Sink::LocalBins { cap, .. } => Sink::LocalBins {
                bins: ub_bins[t],
                cap,
            },
            s => s,
        };
        edge_programs.push(Box::new(EdgeProgram {
            layout,
            v_hi: hi,
            v: lo,
            e: 0,
            e_end: 0,
            share: 0.0,
            sink: s,
            bin_cursors: vec![0; nbins as usize],
            chunk,
        }));
    }
    let mut t_edge = run_phase(&mut sys, edge_programs, &cfg, 0, max_steps, lanes);

    // PHI: flushData pushes every buffered update out (Fig 12).
    if let Some(h) = phi_handle {
        t_edge = sys.flush_data(h, t_edge);
    }

    // ---- bin phase ----
    let mut bin_programs: Vec<Box<dyn LaneProgram>> = Vec::new();
    match variant {
        Variant::Software => {}
        Variant::UpdateBatching => {
            for t in 0..threads {
                let mut work = Vec::new();
                for b in (t as u64..nbins).step_by(threads) {
                    for prod in ub_bins.iter() {
                        let base = prod + b * ub_cap * 16;
                        let count = count_entries(&mut sys, base, ub_cap);
                        if count > 0 {
                            work.push((base, count));
                        }
                    }
                }
                bin_programs.push(Box::new(BinProgram {
                    layout,
                    work,
                    widx: 0,
                    entry: 0,
                    chunk,
                }));
            }
        }
        Variant::Tako | Variant::Ideal => {
            // Thread t drains destination region r ≡ t (mod threads)
            // across every bank's view, preserving region locality.
            let banks = cfg.tiles as u64;
            for t in 0..threads {
                let mut work = Vec::new();
                for r in (t as u64..nbins).step_by(threads) {
                    for bank in 0..banks {
                        let slot = bank * nbins + r;
                        let count = sys.data().read_u64(phi_bin_counts + slot * 8);
                        if count > 0 {
                            work.push((phi_bins + slot * phi_bin_cap * 16, count));
                        }
                    }
                }
                bin_programs.push(Box::new(BinProgram {
                    layout,
                    work,
                    widx: 0,
                    entry: 0,
                    chunk,
                }));
            }
        }
    }
    let has_bins = !bin_programs.is_empty()
        && matches!(
            variant,
            Variant::UpdateBatching | Variant::Tako | Variant::Ideal
        );
    let t_bin = if has_bins {
        run_phase(&mut sys, bin_programs, &cfg, t_edge, max_steps, lanes)
    } else {
        t_edge
    };

    // ---- vertex phase ----
    let base_term = (1.0 - tako_graph::pagerank::DAMPING) / n as f64;
    let mut vertex_programs: Vec<Box<dyn LaneProgram>> = Vec::new();
    for t in 0..threads {
        let (lo, hi) = partition(n, threads, t);
        vertex_programs.push(Box::new(VertexProgram {
            layout,
            v: lo,
            v_hi: hi,
            base_term,
            chunk,
        }));
    }
    let t_vertex = run_phase(&mut sys, vertex_programs, &cfg, t_bin, max_steps, lanes);

    let mem = sys.data();
    let ranks: Vec<f64> = (0..n).map(|v| mem.read_f64(layout.ranks + v * 8)).collect();
    PhiResult {
        run: RunResult::collect(&sys, t_vertex),
        ranks,
        phase_ends: [t_edge, t_bin, t_vertex],
    }
}

/// Count the contiguous non-empty entries at the head of a UB bin
/// (an entry with delta 0.0 marks the first unused slot — shares are
/// strictly positive, so 0.0 never occurs in a real entry).
fn count_entries(sys: &mut TakoSystem, base: Addr, cap: u64) -> u64 {
    let mem = sys.data();
    for k in 0..cap {
        if mem.read_f64(base + k * 16 + 8) == 0.0 {
            return k;
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use tako_graph::pagerank;

    fn small() -> Params {
        Params {
            vertices: 2048,
            edges: 16 * 1024,
            theta: 0.6,
            threads: 4,
            threshold: 3,
            seed: 21,
            lanes: 0,
        }
    }

    fn reference(params: &Params) -> Vec<f64> {
        let mut rng = Rng::new(params.seed);
        let g = tako_graph::gen::power_law(params.vertices, params.edges, params.theta, &mut rng);
        let init = vec![1.0 / params.vertices as f64; params.vertices];
        pagerank::iteration(&g, &init)
    }

    #[test]
    fn all_variants_match_reference_ranks() {
        let p = small();
        let expect = reference(&p);
        for v in Variant::ALL {
            let r = run(v, &p, &SystemConfig::default_16core());
            let diff = pagerank::max_diff(&r.ranks, &expect);
            assert!(diff < 1e-9, "{}: rank mismatch {diff}", v.label());
        }
    }

    /// Canonical byte encoding of a full run, for exact-equality checks.
    fn result_bytes(r: &PhiResult) -> Vec<u8> {
        use tako_sim::checkpoint::Record;
        let mut w = tako_sim::checkpoint::SnapWriter::new();
        r.record(&mut w);
        w.into_bytes()
    }

    /// The lane engine must reproduce the serial laggard schedule
    /// exactly: same program set, same step granularity (unit chunks),
    /// byte-identical stats, ranks, and phase end cycles.
    #[test]
    fn lane_engine_matches_serial_at_unit_chunk() {
        let cfg = SystemConfig::default_16core();
        let serial = small();
        let mut laned = small();
        laned.lanes = 2;
        for v in Variant::ALL {
            let mut rng = Rng::new(serial.seed);
            let g =
                tako_graph::gen::power_law(serial.vertices, serial.edges, serial.theta, &mut rng);
            let a = run_on_graph_inner(v, &serial, &cfg, &g, Some(1));
            let b = run_on_graph(v, &laned, &cfg, &g);
            assert_eq!(
                result_bytes(&a),
                result_bytes(&b),
                "{}: lanes=2 diverged from serial unit-chunk run",
                v.label()
            );
        }
    }

    /// Determinism across pool widths: any lane count produces the
    /// same bytes (the merge order is canonical, not thread-timing).
    #[test]
    fn lane_count_does_not_change_results() {
        let cfg = SystemConfig::default_16core();
        let run_with = |lanes: usize, v: Variant| {
            let mut p = small();
            p.lanes = lanes;
            result_bytes(&run(v, &p, &cfg))
        };
        for v in [Variant::Software, Variant::Tako] {
            let one = run_with(1, v);
            assert_eq!(one, run_with(2, v), "{}: lanes 1 vs 2", v.label());
            assert_eq!(one, run_with(4, v), "{}: lanes 1 vs 4", v.label());
        }
    }

    #[test]
    fn tako_coalesces_updates_in_cache() {
        let p = small();
        let r = run(Variant::Tako, &p, &SystemConfig::default_16core());
        let applied = r.run.get(Counter::PhiInPlace);
        let binned = r.run.get(Counter::PhiBinned);
        // Buffered updates coalesce: the deltas flushed out are far
        // fewer than the raw pushes, but never zero and never more.
        assert!(applied + binned > 0);
        assert!(
            applied + binned < p.edges as u64 / 2,
            "expected >2x write combining, got {} deltas for {} pushes",
            applied + binned,
            p.edges
        );
        assert!(r.run.get(Counter::CbOnWriteback) > 0);
        assert!(r.run.get(Counter::CbOnMiss) > 0);
    }

    #[test]
    fn tako_reduces_dram_vs_software_under_pressure() {
        // The paper's regime, scaled honestly: vertex data several times
        // the LLC (128 MB vs 8 MB in the paper), while the bin phase's
        // per-thread destination regions still fit comfortably.
        let mut cfg = SystemConfig::default_16core();
        cfg.llc_bank.size_bytes = 32 * 1024; // 512 KB LLC
        cfg.l2.size_bytes = 64 * 1024;
        let p = Params {
            vertices: 256 * 1024, // next[] = 2 MB = 4x the LLC
            edges: 768 * 1024,
            theta: 0.4,
            threads: 4,
            threshold: 3,
            seed: 5,
            lanes: 0,
        };
        let sw = run(Variant::Software, &p, &cfg);
        let tk = run(Variant::Tako, &p, &cfg);
        assert!(
            (tk.run.dram_accesses() as f64) < 0.8 * sw.run.dram_accesses() as f64,
            "tako {} vs software {} DRAM accesses",
            tk.run.dram_accesses(),
            sw.run.dram_accesses()
        );
        // The edge phase (where PHI buffers pushes in-cache) is where the
        // paper's speedup comes from; at this small test scale the margin
        // is thin but must not invert.
        assert!(
            tk.phase_ends[0] < sw.phase_ends[0],
            "tako edge phase {} vs software {}",
            tk.phase_ends[0],
            sw.phase_ends[0]
        );
        // End-to-end, täkō must not lose (it wins big once DRAM
        // bandwidth saturates at higher thread counts; see the bench).
        assert!(
            (tk.run.cycles as f64) < 1.1 * sw.run.cycles as f64,
            "tako {} vs software {} cycles",
            tk.run.cycles,
            sw.run.cycles
        );
    }
}
