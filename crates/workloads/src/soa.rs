//! In-cache layout transformation: array-of-structs → struct-of-arrays.
//!
//! Sec 5.2 of the paper mentions that in "a simple Morph that maps
//! array-of-structs to struct-of-arrays, we have observed speedup of
//! >4×" from trrîp's pollution avoidance. This module implements that
//! > Morph and the ablation behind the claim.
//!
//! The application repeatedly scans one 8-byte field of an array of
//! 64-byte structs. The baseline drags the full struct lines through the
//! caches (8× wasted capacity and bandwidth). The täkō version registers
//! a phantom SoA range: `onMiss` gathers the field from eight structs
//! into one dense line; the packed column then *fits* in the private
//! cache, so later passes hit. The engine's gather uses non-temporal
//! loads (trrîp's distant-priority engine accesses) — the ablation
//! variant uses ordinary allocating loads instead, and the AoS stream
//! evicts the very column the Morph is building.

use tako_core::{EngineCtx, Morph, MorphLevel, TakoSystem};
use tako_cpu::{run_single, CoreEnv, CoreTiming, MemSystem, StepResult, ThreadProgram};
use tako_mem::addr::Addr;
use tako_sim::config::{SystemConfig, LINE_BYTES};

use crate::common::RunResult;

/// Bytes per struct (one cache line: 8 fields of 8 bytes).
pub const STRUCT_BYTES: u64 = LINE_BYTES;

/// Which implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Scan the field directly from the array of structs.
    Aos,
    /// täkō SoA Morph with trrîp-style non-temporal engine gathers.
    Tako,
    /// Ablation: the same Morph with allocating engine loads — the
    /// gather stream pollutes the L2 (what trrîp prevents).
    TakoNoTrrip,
}

impl Variant {
    /// All variants.
    pub const ALL: [Variant; 3] = [Variant::Aos, Variant::Tako, Variant::TakoNoTrrip];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Aos => "aos-baseline",
            Variant::Tako => "tako-trrip",
            Variant::TakoNoTrrip => "tako-no-trrip",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of structs.
    pub elements: u64,
    /// Field index scanned (0..8).
    pub field: u64,
    /// Scan passes over the column.
    pub passes: u64,
    /// Seed for the field values.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            elements: 256 * 1024, // AoS = 16 MB, column = 2 MB
            field: 2,
            passes: 8,
            seed: 0x50A,
        }
    }
}

fn field_value(seed: u64, i: u64) -> u64 {
    (seed ^ i).wrapping_mul(0x9E37_79B9) >> 8
}

/// The layout Morph: phantom line `k` holds `field` of structs
/// `8k..8k+8`.
struct SoaMorph {
    aos: Addr,
    field: u64,
    /// Use non-temporal gathers (trrîp behaviour).
    streaming: bool,
}

impl Morph for SoaMorph {
    fn name(&self) -> &str {
        "aos-to-soa"
    }

    fn on_miss(&mut self, ctx: &mut EngineCtx<'_>) {
        let first = ctx.offset() / 8;
        let dep = ctx.arg();
        let mut vals = [0u64; 8];
        let mut deps = Vec::with_capacity(8);
        for (i, v) in vals.iter_mut().enumerate() {
            let addr = self.aos + (first + i as u64) * STRUCT_BYTES + self.field * 8;
            let (x, d) = if self.streaming {
                ctx.load_stream_u64(addr, &[dep])
            } else {
                ctx.load_u64(addr, &[dep])
            };
            *v = x;
            deps.push(d);
        }
        let pack = ctx.alu(&deps);
        ctx.line_write_all_u64(&vals, &[pack]);
    }

    fn static_instrs(&self) -> u32 {
        18
    }
}

struct ScanProgram {
    /// Base of the column being scanned (AoS field or phantom SoA).
    base: Addr,
    /// Stride between consecutive elements' field words.
    stride: u64,
    elements: u64,
    passes: u64,
    i: u64,
    pass: u64,
    sum: u64,
}

impl ThreadProgram for ScanProgram {
    fn step(&mut self, env: &mut CoreEnv<'_>) -> StepResult {
        for _ in 0..16 {
            if self.i >= self.elements {
                self.i = 0;
                self.pass += 1;
            }
            if self.pass >= self.passes {
                return StepResult::Done;
            }
            let v = env.load_u64(self.base + self.i * self.stride);
            self.sum = self.sum.wrapping_add(v);
            env.compute(2);
            self.i += 1;
        }
        StepResult::Running
    }
}

/// Outcome of one run.
#[derive(Debug, Clone)]
pub struct SoaResult {
    /// Timing/energy/statistics.
    pub run: RunResult,
    /// The column checksum (must equal the host reference).
    pub sum: u64,
    /// The host reference checksum.
    pub expected: u64,
}

impl tako_sim::checkpoint::Record for SoaResult {
    fn record(&self, w: &mut tako_sim::checkpoint::SnapWriter) {
        self.run.record(w);
        w.put_u64(self.sum);
        w.put_u64(self.expected);
    }
    fn replay(
        r: &mut tako_sim::checkpoint::SnapReader<'_>,
    ) -> Result<Self, tako_sim::checkpoint::SnapError> {
        Ok(SoaResult {
            run: RunResult::replay(r)?,
            sum: r.get_u64()?,
            expected: r.get_u64()?,
        })
    }
}

/// Run one variant.
pub fn run(variant: Variant, params: Params, cfg: &SystemConfig) -> SoaResult {
    let mut sys = TakoSystem::new(cfg.clone());
    let aos = sys.alloc_real(params.elements * STRUCT_BYTES).base;
    let mut expected = 0u64;
    for i in 0..params.elements {
        let v = field_value(params.seed, i);
        sys.data()
            .write_u64(aos + i * STRUCT_BYTES + params.field * 8, v);
        expected = expected.wrapping_add(v);
    }
    expected = expected.wrapping_mul(params.passes);

    let (base, stride) = match variant {
        Variant::Aos => (aos + params.field * 8, STRUCT_BYTES),
        Variant::Tako | Variant::TakoNoTrrip => {
            let h = sys
                .register_phantom(
                    MorphLevel::Shared,
                    params.elements * 8,
                    Box::new(SoaMorph {
                        aos,
                        field: params.field,
                        streaming: variant == Variant::Tako,
                    }),
                )
                .expect("register SoA morph");
            (h.range().base, 8)
        }
    };
    let mut prog = ScanProgram {
        base,
        stride,
        elements: params.elements,
        passes: params.passes,
        i: 0,
        pass: 0,
        sum: 0,
    };
    let max_steps = 10 * params.elements * params.passes + 10_000;
    let cycles = run_single(0, &mut prog, CoreTiming::new(cfg.core), &mut sys, max_steps);
    SoaResult {
        run: RunResult::collect(&sys, cycles),
        sum: prog.sum,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            elements: 16 * 1024, // AoS 1 MB, column 128 KB
            field: 5,
            passes: 6,
            seed: 3,
        }
    }

    /// AoS larger than the LLC, column smaller: the regime the Morph
    /// targets.
    fn pressure_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::default_16core();
        cfg.llc_bank.size_bytes = 16 * 1024; // 256 KB LLC
        cfg
    }

    #[test]
    fn all_variants_compute_the_same_checksum() {
        for v in Variant::ALL {
            let r = run(v, small(), &pressure_cfg());
            assert_eq!(r.sum, r.expected, "{}", v.label());
        }
    }

    #[test]
    fn soa_morph_beats_aos_scans() {
        let p = small();
        let cfg = pressure_cfg();
        let aos = run(Variant::Aos, p, &cfg);
        let tako = run(Variant::Tako, p, &cfg);
        assert!(
            (tako.run.cycles as f64) < 0.6 * aos.run.cycles as f64,
            "tako {} vs aos {}",
            tako.run.cycles,
            aos.run.cycles
        );
        assert!(
            tako.run.dram_accesses() < aos.run.dram_accesses(),
            "tako {} vs aos {} DRAM",
            tako.run.dram_accesses(),
            aos.run.dram_accesses()
        );
    }

    #[test]
    fn trrip_pollution_avoidance_matters() {
        // Sec 5.2's claim: without distant-priority engine insertions,
        // callback traffic pollutes the shared cache and the benefit
        // shrinks. The ablation flips the config flag.
        let p = small();
        let cfg = pressure_cfg();
        let mut no_trrip = pressure_cfg();
        no_trrip.engine.trrip = false;
        let with = run(Variant::TakoNoTrrip, p, &cfg);
        let without = run(Variant::TakoNoTrrip, p, &no_trrip);
        assert!(
            (with.run.cycles as f64) < 1.02 * without.run.cycles as f64,
            "trrîp {} vs no-trrîp {}",
            with.run.cycles,
            without.run.cycles
        );
    }
}
