//! Trace conformance suite: every [`TxnEvent`] variant emitted through
//! the accounting bus must appear exactly once in the observer's ring
//! trace, with monotonically non-decreasing cycle stamps and correct
//! tile attribution.
//!
//! The suite is exhaustive over variants *at compile time*:
//! [`variant_index`] matches every `TxnEvent` variant with no wildcard
//! arm, so adding a variant fails this test's build until it is given
//! an index — and the index-coverage assertion then forces it into
//! [`all_variants`], the list actually driven through the bus.

use tako_sim::event::{AccountingBus, CbPhase, LevelId, SinkTap, TxnEvent, TxnSink};
use tako_sim::fault::FaultInjector;
use tako_sim::stats::Counter;
use tako_sim::trace::Observer;

/// Number of `TxnEvent` variants under test (level- and phase-carrying
/// variants are exercised once each; their payloads are covered by the
/// event-to-counter mapping tests in `tako_sim::event`).
const VARIANT_COUNT: usize = 19;

/// Maps each variant to a dense index in `0..VARIANT_COUNT`.
///
/// Deliberately wildcard-free: a new `TxnEvent` variant is a compile
/// error here until the conformance suite covers it.
fn variant_index(ev: TxnEvent) -> usize {
    match ev {
        TxnEvent::Hit(_) => 0,
        TxnEvent::Miss(_) => 1,
        TxnEvent::Eviction(_) => 2,
        TxnEvent::Writeback(_) => 3,
        TxnEvent::CoherenceInval => 4,
        TxnEvent::PrefetchIssued => 5,
        TxnEvent::PrefetchUseful => 6,
        TxnEvent::NocHops { .. } => 7,
        TxnEvent::DramRead => 8,
        TxnEvent::DramWrite => 9,
        TxnEvent::MshrStall => 10,
        TxnEvent::FlushedLine => 11,
        TxnEvent::FaultInjected => 12,
        TxnEvent::CallbackRun(_) => 13,
        TxnEvent::CallbackDegraded => 14,
        TxnEvent::MorphQuarantined => 15,
        TxnEvent::EngineWork { .. } => 16,
        TxnEvent::StallDetected { .. } => 17,
        TxnEvent::InvariantViolations(_) => 18,
    }
}

/// One representative of every variant, in [`variant_index`] order.
fn all_variants() -> [TxnEvent; VARIANT_COUNT] {
    [
        TxnEvent::Hit(LevelId::L1d),
        TxnEvent::Miss(LevelId::L2),
        TxnEvent::Eviction(LevelId::Llc),
        TxnEvent::Writeback(LevelId::L2),
        TxnEvent::CoherenceInval,
        TxnEvent::PrefetchIssued,
        TxnEvent::PrefetchUseful,
        TxnEvent::NocHops { flits: 5, hops: 3 },
        TxnEvent::DramRead,
        TxnEvent::DramWrite,
        TxnEvent::MshrStall,
        TxnEvent::FlushedLine,
        TxnEvent::FaultInjected,
        TxnEvent::CallbackRun(CbPhase::OnEviction),
        TxnEvent::CallbackDegraded,
        TxnEvent::MorphQuarantined,
        TxnEvent::EngineWork {
            instrs: 7,
            mem_ops: 2,
        },
        TxnEvent::StallDetected { latency: 640 },
        TxnEvent::InvariantViolations(4),
    ]
}

fn observed_bus() -> AccountingBus {
    let mut bus = AccountingBus::new(FaultInjector::new(None));
    bus.tap = SinkTap::Observer(Box::new(Observer::new()));
    bus
}

#[test]
fn variant_indices_are_a_dense_permutation() {
    let mut seen = [false; VARIANT_COUNT];
    for ev in all_variants() {
        let idx = variant_index(ev);
        assert!(
            !seen[idx],
            "variant index {idx} assigned twice ({ev:?}); the \
             conformance list no longer covers every variant exactly once"
        );
        seen[idx] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "a TxnEvent variant is missing from all_variants()"
    );
}

#[test]
fn every_variant_appears_exactly_once_with_ordered_stamps() {
    let mut bus = observed_bus();
    for (i, ev) in all_variants().into_iter().enumerate() {
        bus.observe_at(100 * i as u64, i);
        bus.emit(ev);
    }
    let obs = bus.observer().expect("observer tap attached");
    let tail: Vec<_> = obs.ring.tail().collect();
    assert_eq!(tail.len(), VARIANT_COUNT, "one trace record per variant");

    let mut seen = [0u32; VARIANT_COUNT];
    let mut prev_cycle = 0;
    for (i, rec) in tail.iter().enumerate() {
        seen[variant_index(rec.event)] += 1;
        assert_eq!(rec.seq, i as u64, "seq is gap-free in emission order");
        assert_eq!(rec.cycle, 100 * i as u64, "cycle stamp from the cursor");
        assert_eq!(rec.tile, i as u32, "tile attribution from the cursor");
        assert!(
            rec.cycle >= prev_cycle,
            "cycle stamps must be monotonically non-decreasing"
        );
        prev_cycle = rec.cycle;
        assert_eq!(rec.event, all_variants()[i], "payload preserved verbatim");
    }
    assert!(
        seen.iter().all(|&n| n == 1),
        "every variant must appear exactly once: {seen:?}"
    );
}

#[test]
fn stale_cursor_updates_cannot_move_time_backwards() {
    let mut bus = observed_bus();
    // Completion-ordered walks can report earlier cycles after later
    // ones; the cursor clamps so the trace stays ordered regardless.
    let cycles = [500u64, 200, 900, 100, 900, 1_000];
    for (i, (&cycle, ev)) in cycles.iter().zip(all_variants()).enumerate() {
        bus.observe_at(cycle, i);
        bus.emit(ev);
    }
    let obs = bus.observer().unwrap();
    let stamps: Vec<u64> = obs.ring.tail().map(|r| r.cycle).collect();
    assert_eq!(stamps, vec![500, 500, 900, 900, 900, 1_000]);
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn ring_keeps_a_bounded_tail_and_counts_everything() {
    let mut bus = observed_bus();
    let cap = bus.observer().unwrap().ring.capacity() as u64;
    for i in 0..cap + 7 {
        bus.observe_at(i, 0);
        bus.emit(TxnEvent::DramRead);
    }
    let obs = bus.observer().unwrap();
    assert_eq!(obs.ring.total(), cap + 7);
    let tail: Vec<_> = obs.ring.tail().collect();
    assert_eq!(tail.len(), cap as usize);
    assert_eq!(tail[0].seq, 7, "oldest retained record follows the drops");
    assert_eq!(tail.last().unwrap().seq, cap + 6);
}

#[test]
fn observing_never_perturbs_counting() {
    let mut plain = AccountingBus::new(FaultInjector::new(None));
    let mut observed = observed_bus();
    for (i, ev) in all_variants().into_iter().enumerate() {
        plain.emit(ev);
        observed.observe_at(10 * i as u64, i);
        observed.emit(ev);
    }
    for c in Counter::ALL {
        assert_eq!(
            plain.stats.get(c),
            observed.stats.get(c),
            "counter {} diverged under observation",
            c.name()
        );
    }
}
