//! Structured tracing, per-phase interval metrics, and profiling hooks.
//!
//! This module is the observability layer on top of the accounting bus
//! ([`crate::event`]): a zero-overhead-when-off subsystem that turns the
//! existing [`TxnEvent`] stream into
//!
//! 1. a bounded **ring-buffer event trace** with cycle stamps and
//!    tile attribution, exportable as Chrome `trace_event` JSON
//!    (loadable in `chrome://tracing` / Perfetto),
//! 2. **per-interval metrics** (hit/miss rates, MPKI, callback
//!    occupancy, fabric utilization, DRAM queue depth, energy) sampled
//!    at watchdog epochs into a [`MetricsRecorder`] with fixed-size
//!    log2-bucket latency histograms, and
//! 3. **profiling spans** that attribute transaction cycles to pipeline
//!    stages (L1/L2/LLC/fill/callback) via the [`span!`](crate::span) macro and the
//!    observational `StageStamps` carried by every `MemTxn`.
//!
//! ```text
//!   pipeline ──TxnEvent──▶ AccountingBus ──▶ Stats
//!                                │
//!                         SinkTap::Observer ──▶ TraceRing   (events)
//!                                │          ├─▶ MetricsRecorder (epochs)
//!                                │          └─▶ StageProfile    (spans)
//!                                ▼ drop/flush
//!                         trace::collect ──▶ trace::drain ──▶ TraceReport
//!                                                    │   ├─ chrome_trace_json
//!                                                    │   ├─ profile_table
//!                                                    │   └─ metrics_json
//! ```
//!
//! # Zero overhead when off
//!
//! Nothing here runs unless [`arm`] has been called: the hierarchy only
//! attaches a [`SinkTap::Observer`] when [`armed`] is true, so the
//! disarmed hot path pays exactly what it paid before this module
//! existed — one `SinkTap` discriminant test per event (pinned by the
//! `no_alloc` test suite, and by the golden-digest differential test
//! which proves tracing is strictly observational).
//!
//! When armed, recording stays allocation-free: every structure below
//! preallocates at construction and records by overwriting fixed slots.
//!
//! [`TxnEvent`]: crate::event::TxnEvent
//! [`SinkTap::Observer`]: crate::event::SinkTap

use crate::checkpoint::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::event::{CbPhase, LevelId, TxnEvent, TxnSink};
use crate::stats::{Counter, LatencyHistogram, Stats};
use crate::Cycle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Slots in each per-system [`TraceRing`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Slots in each per-system [`MetricsRecorder`] sample ring.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 512;

/// Cap on events retained by the process-wide collector across all
/// systems; overflow is counted, never silently dropped.
pub const MAX_COLLECTED_EVENTS: usize = 1 << 17;

/// Cap on interval samples retained by the process-wide collector.
pub const MAX_COLLECTED_SAMPLES: usize = 1 << 14;

/// Simulated clock, used to convert cycle stamps to trace-viewer
/// microseconds (the default system runs at 2.4 GHz).
pub const CYCLES_PER_US: f64 = 2400.0;

// ----------------------------------------------------------------------
// Event trace ring
// ----------------------------------------------------------------------

/// One traced bus event: the raw [`TxnEvent`] plus when/where it
/// happened and its position in the per-system stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Position in the per-system event stream (0-based, gap-free).
    pub seq: u64,
    /// Cycle stamp (the observer cursor at emit time).
    pub cycle: Cycle,
    /// Tile attribution (the observer cursor at emit time).
    pub tile: u32,
    /// Which simulated system produced the event (assigned when the
    /// observer is collected; `0` while recording).
    pub sys: u32,
    /// The event itself.
    pub event: TxnEvent,
}

/// A bounded ring buffer of [`TraceRecord`]s. Recording is a slot
/// write; when the ring wraps, the oldest records are overwritten (and
/// the loss is visible as a gap between `total` and the retained tail).
#[derive(Debug, Clone)]
pub struct TraceRing {
    slots: Box<[Option<TraceRecord>]>,
    total: u64,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRing {
    /// An empty ring with `capacity` slots (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing {
            slots: vec![None; capacity.max(1)].into_boxed_slice(),
            total: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever observed (not just the retained tail).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Append one record (allocation-free slot write).
    #[inline(always)]
    pub fn record(&mut self, rec: TraceRecord) {
        let cap = self.slots.len();
        self.slots[self.total as usize % cap] = Some(rec);
        self.total += 1;
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        let cap = self.slots.len();
        let n = (self.total as usize).min(cap);
        let start = self.total as usize - n;
        (start..self.total as usize).filter_map(move |i| self.slots[i % cap])
    }

    /// Render the tail for a triage bundle, one record per line.
    pub fn render(&self) -> String {
        let n = (self.total as usize).min(self.slots.len());
        let mut out = format!("trace tail ({n} of {} total):\n", self.total);
        for rec in self.tail() {
            out.push_str(&format!(
                "  [{}] cycle={} tile={} {:?}\n",
                rec.seq, rec.cycle, rec.tile, rec.event
            ));
        }
        out
    }
}

// ----------------------------------------------------------------------
// Pipeline stage profile
// ----------------------------------------------------------------------

/// A pipeline stage that cycles can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Private L1d access window.
    L1,
    /// Private L2 window of an L1 miss.
    L2,
    /// Shared LLC window of an L2 miss.
    Llc,
    /// Fill path (DRAM edge and return) of an LLC miss.
    Fill,
    /// Callback execution on an engine.
    Callback,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 5;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::L1,
        Stage::L2,
        Stage::Llc,
        Stage::Fill,
        Stage::Callback,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::L1 => "L1",
            Stage::L2 => "L2",
            Stage::Llc => "LLC",
            Stage::Fill => "Fill",
            Stage::Callback => "Callback",
        }
    }
}

/// Cycles attributed per pipeline stage, fed by [`span!`](crate::span) scopes and by
/// the retiring transaction's `StageStamps`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageProfile {
    visits: [u64; Stage::COUNT],
    cycles: [u64; Stage::COUNT],
    txns: u64,
    txn_cycles: u64,
}

impl StageProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attribute the closed interval `start..done` to `stage`.
    #[inline]
    pub fn record_span(&mut self, stage: Stage, start: Cycle, done: Cycle) {
        self.visits[stage as usize] += 1;
        self.cycles[stage as usize] += done.saturating_sub(start);
    }

    /// Attribute one retired transaction's stage windows from its
    /// observational stamps. Each window runs from its own stamp to the
    /// next stamp that was set (or retirement).
    #[inline]
    pub fn record_txn(
        &mut self,
        issued: Cycle,
        l1: Option<Cycle>,
        l2: Option<Cycle>,
        llc: Option<Cycle>,
        fill: Option<Cycle>,
        done: Cycle,
    ) {
        self.txns += 1;
        self.txn_cycles += done.saturating_sub(issued);
        if let Some(t) = l1 {
            let end = l2.or(llc).or(fill).unwrap_or(done);
            self.record_span(Stage::L1, t, end);
        }
        if let Some(t) = l2 {
            let end = llc.or(fill).unwrap_or(done);
            self.record_span(Stage::L2, t, end);
        }
        if let Some(t) = llc {
            let end = fill.unwrap_or(done);
            self.record_span(Stage::Llc, t, end);
        }
        if let Some(t) = fill {
            self.record_span(Stage::Fill, t, done);
        }
    }

    /// Visits recorded for `stage`.
    pub fn visits(&self, stage: Stage) -> u64 {
        self.visits[stage as usize]
    }

    /// Cycles attributed to `stage`.
    pub fn cycles(&self, stage: Stage) -> u64 {
        self.cycles[stage as usize]
    }

    /// Transactions retired through the profile.
    pub fn txns(&self) -> u64 {
        self.txns
    }

    /// Total issue-to-retire cycles across profiled transactions.
    pub fn txn_cycles(&self) -> u64 {
        self.txn_cycles
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &StageProfile) {
        for i in 0..Stage::COUNT {
            self.visits[i] += other.visits[i];
            self.cycles[i] += other.cycles[i];
        }
        self.txns += other.txns;
        self.txn_cycles += other.txn_cycles;
    }

    /// Render the `--profile` table: per-stage visits, cycles, mean
    /// cycles/visit, and share of total attributed cycles.
    pub fn render(&self) -> String {
        let total: u64 = self.cycles.iter().sum();
        let mut out = String::from(
            "stage         visits       cycles   cyc/visit   share\n\
             --------  ----------  -----------  ----------  ------\n",
        );
        for s in Stage::ALL {
            let v = self.visits(s);
            let c = self.cycles(s);
            let per = if v == 0 { 0.0 } else { c as f64 / v as f64 };
            let share = if total == 0 {
                0.0
            } else {
                100.0 * c as f64 / total as f64
            };
            out.push_str(&format!(
                "{:<8}  {v:>10}  {c:>11}  {per:>10.1}  {share:>5.1}%\n",
                s.name()
            ));
        }
        out.push_str(&format!(
            "{} txns profiled, {} issue-to-retire cycles\n",
            self.txns, self.txn_cycles
        ));
        out
    }
}

impl Snapshot for StageProfile {
    fn save(&self, w: &mut SnapWriter) {
        for v in self.visits {
            w.put_u64(v);
        }
        for c in self.cycles {
            w.put_u64(c);
        }
        w.put_u64(self.txns);
        w.put_u64(self.txn_cycles);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for v in &mut self.visits {
            *v = r.get_u64()?;
        }
        for c in &mut self.cycles {
            *c = r.get_u64()?;
        }
        self.txns = r.get_u64()?;
        self.txn_cycles = r.get_u64()?;
        Ok(())
    }
}

/// Time the hierarchy-stage expression `$body` and attribute its
/// `start..done` window to `$stage` on `$bus` (a no-op unless an
/// observer tap is attached). `$body` must evaluate to the completion
/// cycle; the macro returns it unchanged.
///
/// ```
/// use tako_sim::event::AccountingBus;
/// use tako_sim::fault::FaultInjector;
/// use tako_sim::trace::Stage;
///
/// let mut bus = AccountingBus::new(FaultInjector::new(None));
/// let start = 100u64;
/// let done = tako_sim::span!(bus, Stage::Callback, start, start + 40);
/// assert_eq!(done, 140);
/// ```
#[macro_export]
macro_rules! span {
    ($bus:expr, $stage:expr, $start:expr, $body:expr) => {{
        let __tako_span_start: $crate::Cycle = $start;
        let __tako_span_done: $crate::Cycle = $body;
        $bus.span_record($stage, __tako_span_start, __tako_span_done);
        __tako_span_done
    }};
}

// ----------------------------------------------------------------------
// Interval metrics
// ----------------------------------------------------------------------

/// One per-epoch interval sample: counter *deltas* over the epoch plus
/// instantaneous gauges, from which the rate metrics derive.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IntervalSample {
    /// Which simulated system produced the sample (assigned at collect
    /// time; `0` while recording).
    pub sys: u32,
    /// Watchdog epoch index the sample closed.
    pub epoch: u64,
    /// Cycle at which the sample was taken.
    pub at_cycle: Cycle,
    /// Cycles elapsed since the previous sample.
    pub cycles: Cycle,
    /// L1d hits in the interval.
    pub l1d_hits: u64,
    /// L1d misses in the interval.
    pub l1d_misses: u64,
    /// L2 hits in the interval.
    pub l2_hits: u64,
    /// L2 misses in the interval.
    pub l2_misses: u64,
    /// LLC hits in the interval.
    pub llc_hits: u64,
    /// LLC misses in the interval.
    pub llc_misses: u64,
    /// DRAM line reads in the interval.
    pub dram_reads: u64,
    /// DRAM line writes in the interval.
    pub dram_writes: u64,
    /// NoC flit-hops in the interval.
    pub noc_flit_hops: u64,
    /// MSHR stalls in the interval.
    pub mshr_stalls: u64,
    /// Callbacks dispatched in the interval (all phases).
    pub callbacks: u64,
    /// Engine cycles consumed by callbacks in the interval.
    pub cb_cycles: u64,
    /// Fabric instructions executed in the interval.
    pub engine_instrs: u64,
    /// Instructions (core + engine) in the interval.
    pub instrs: u64,
    /// Dynamic energy (picojoules) spent in the interval.
    pub energy_pj: f64,
    /// DRAM queue depth at sample time: cycles of already-committed
    /// work backlogged on the busiest controller.
    pub dram_backlog: Cycle,
}

impl IntervalSample {
    /// Interval miss rate at `level`, or 0.0 with no accesses.
    pub fn miss_rate(&self, level: LevelId) -> f64 {
        let (hits, misses) = match level {
            LevelId::L1d => (self.l1d_hits, self.l1d_misses),
            LevelId::L2 => (self.l2_hits, self.l2_misses),
            LevelId::Llc => (self.llc_hits, self.llc_misses),
        };
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }

    /// LLC misses per thousand instructions over the interval.
    pub fn mpki(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instrs as f64
        }
    }

    /// Fabric utilization: engine instructions per elapsed cycle.
    pub fn fabric_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.engine_instrs as f64 / self.cycles as f64
        }
    }

    /// Callback occupancy: fraction of the interval spent executing
    /// callbacks (can exceed 1.0 when engines overlap).
    pub fn callback_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cb_cycles as f64 / self.cycles as f64
        }
    }

    fn save_fields(&self, w: &mut SnapWriter) {
        w.put_u32(self.sys);
        w.put_u64(self.epoch);
        w.put_u64(self.at_cycle);
        w.put_u64(self.cycles);
        w.put_u64(self.l1d_hits);
        w.put_u64(self.l1d_misses);
        w.put_u64(self.l2_hits);
        w.put_u64(self.l2_misses);
        w.put_u64(self.llc_hits);
        w.put_u64(self.llc_misses);
        w.put_u64(self.dram_reads);
        w.put_u64(self.dram_writes);
        w.put_u64(self.noc_flit_hops);
        w.put_u64(self.mshr_stalls);
        w.put_u64(self.callbacks);
        w.put_u64(self.cb_cycles);
        w.put_u64(self.engine_instrs);
        w.put_u64(self.instrs);
        w.put_f64(self.energy_pj);
        w.put_u64(self.dram_backlog);
    }

    fn load_fields(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(IntervalSample {
            sys: r.get_u32()?,
            epoch: r.get_u64()?,
            at_cycle: r.get_u64()?,
            cycles: r.get_u64()?,
            l1d_hits: r.get_u64()?,
            l1d_misses: r.get_u64()?,
            l2_hits: r.get_u64()?,
            l2_misses: r.get_u64()?,
            llc_hits: r.get_u64()?,
            llc_misses: r.get_u64()?,
            dram_reads: r.get_u64()?,
            dram_writes: r.get_u64()?,
            noc_flit_hops: r.get_u64()?,
            mshr_stalls: r.get_u64()?,
            callbacks: r.get_u64()?,
            cb_cycles: r.get_u64()?,
            engine_instrs: r.get_u64()?,
            instrs: r.get_u64()?,
            energy_pj: r.get_f64()?,
            dram_backlog: r.get_u64()?,
        })
    }
}

/// Per-epoch interval metrics with log2-bucket latency histograms.
///
/// [`MetricsRecorder::sample`] runs at watchdog epochs (quiescent
/// points): it diffs the live [`Stats`] counters against the previous
/// epoch's values, derives the interval sample, and stores it in a
/// bounded ring — all slot writes, no allocation.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    prev: [u64; Counter::COUNT],
    prev_energy_pj: f64,
    prev_cb_cycles: u64,
    prev_cycle: Cycle,
    samples: Box<[Option<IntervalSample>]>,
    total_samples: u64,
    /// Issue-to-retire latency of L1-missing transactions.
    pub miss_latency: LatencyHistogram,
    /// Engine execution latency of completed callbacks.
    pub callback_latency: LatencyHistogram,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::with_capacity(DEFAULT_SAMPLE_CAPACITY)
    }
}

impl MetricsRecorder {
    /// An empty recorder retaining up to `capacity` interval samples.
    pub fn with_capacity(capacity: usize) -> Self {
        MetricsRecorder {
            prev: [0; Counter::COUNT],
            prev_energy_pj: 0.0,
            prev_cb_cycles: 0,
            prev_cycle: 0,
            samples: vec![None; capacity.max(1)].into_boxed_slice(),
            total_samples: 0,
            miss_latency: LatencyHistogram::new(),
            callback_latency: LatencyHistogram::new(),
        }
    }

    /// Total samples ever taken (not just the retained tail).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = IntervalSample> + '_ {
        let cap = self.samples.len();
        let n = (self.total_samples as usize).min(cap);
        let start = self.total_samples as usize - n;
        (start..self.total_samples as usize).filter_map(move |i| self.samples[i % cap])
    }

    /// Record one callback's engine latency.
    #[inline(always)]
    pub fn record_callback(&mut self, latency: Cycle) {
        self.callback_latency.record(latency);
    }

    /// Record one L1-missing transaction's issue-to-retire latency.
    #[inline(always)]
    pub fn record_miss(&mut self, latency: Cycle) {
        self.miss_latency.record(latency);
    }

    /// Close the interval ending at `now` (watchdog epoch `epoch`):
    /// diff `stats` against the previous sample point and retain the
    /// deltas plus the `energy_pj`/`dram_backlog` gauges.
    pub fn sample(
        &mut self,
        epoch: u64,
        now: Cycle,
        stats: &Stats,
        energy_pj: f64,
        dram_backlog: Cycle,
    ) {
        let d = |c: Counter| stats.get(c).saturating_sub(self.prev[c as usize]);
        let cb_cycles = self
            .callback_latency
            .sum()
            .saturating_sub(self.prev_cb_cycles);
        let sample = IntervalSample {
            sys: 0,
            epoch,
            at_cycle: now,
            cycles: now.saturating_sub(self.prev_cycle),
            l1d_hits: d(Counter::L1dHit),
            l1d_misses: d(Counter::L1dMiss),
            l2_hits: d(Counter::L2Hit),
            l2_misses: d(Counter::L2Miss),
            llc_hits: d(Counter::LlcHit),
            llc_misses: d(Counter::LlcMiss),
            dram_reads: d(Counter::DramRead),
            dram_writes: d(Counter::DramWrite),
            noc_flit_hops: d(Counter::NocFlitHops),
            mshr_stalls: d(Counter::MshrStall),
            callbacks: d(Counter::CbOnMiss) + d(Counter::CbOnEviction) + d(Counter::CbOnWriteback),
            cb_cycles,
            engine_instrs: d(Counter::EngineInstr),
            instrs: d(Counter::CoreInstr) + d(Counter::EngineInstr),
            energy_pj: (energy_pj - self.prev_energy_pj).max(0.0),
            dram_backlog,
        };
        for c in Counter::ALL {
            self.prev[c as usize] = stats.get(c);
        }
        self.prev_energy_pj = energy_pj;
        self.prev_cb_cycles = self.callback_latency.sum();
        self.prev_cycle = now;
        let cap = self.samples.len();
        self.samples[self.total_samples as usize % cap] = Some(sample);
        self.total_samples += 1;
    }
}

/// Sanity-bound a container capacity read from a snapshot before
/// allocating it. A bit flip in a length field would otherwise turn
/// into a multi-gigabyte `vec![None; cap]` — an OOM abort, which no
/// checksum downstream can catch. Real ring/sample capacities are
/// config-set and tiny; anything past this bound is corruption.
fn bounded_capacity(what: &str, cap: usize) -> Result<usize, SnapError> {
    const MAX_SNAPSHOT_CAPACITY: usize = 1 << 22;
    if cap > MAX_SNAPSHOT_CAPACITY {
        return Err(SnapError::StateMismatch(format!(
            "{what}: capacity {cap} exceeds the {MAX_SNAPSHOT_CAPACITY} sanity bound \
             (corrupt length field)"
        )));
    }
    Ok(cap)
}

impl Snapshot for MetricsRecorder {
    fn save(&self, w: &mut SnapWriter) {
        w.section("metrics");
        w.put_len(Counter::COUNT);
        for v in self.prev {
            w.put_u64(v);
        }
        w.put_f64(self.prev_energy_pj);
        w.put_u64(self.prev_cb_cycles);
        w.put_u64(self.prev_cycle);
        w.put_u64(self.total_samples);
        w.put_len(self.samples.len());
        for slot in self.samples.iter() {
            w.put_bool(slot.is_some());
            if let Some(s) = slot {
                s.save_fields(w);
            }
        }
        self.miss_latency.save(w);
        self.callback_latency.save(w);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("metrics")?;
        r.get_len_expect("metrics.prev", Counter::COUNT)?;
        for v in &mut self.prev {
            *v = r.get_u64()?;
        }
        self.prev_energy_pj = r.get_f64()?;
        self.prev_cb_cycles = r.get_u64()?;
        self.prev_cycle = r.get_u64()?;
        self.total_samples = r.get_u64()?;
        let cap = bounded_capacity("metrics.samples", r.get_len()?)?;
        let mut samples = vec![None; cap.max(1)].into_boxed_slice();
        for slot in samples.iter_mut() {
            if r.get_bool()? {
                *slot = Some(IntervalSample::load_fields(r)?);
            }
        }
        self.samples = samples;
        self.miss_latency.load(r)?;
        self.callback_latency.load(r)?;
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Observer: the SinkTap-attached recorder
// ----------------------------------------------------------------------

/// The bus-attached observability recorder: an event [`TraceRing`], a
/// [`MetricsRecorder`], and a [`StageProfile`], stamped by a
/// cycle/tile cursor the hierarchy advances with
/// `AccountingBus::observe_at`.
///
/// The cursor is clamped monotonically non-decreasing so ring stamps
/// are ordered by construction even when the hierarchy replays
/// out-of-order completion times.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    /// The bounded event trace.
    pub ring: TraceRing,
    /// Interval metrics and latency histograms.
    pub metrics: MetricsRecorder,
    /// Per-stage cycle attribution.
    pub profile: StageProfile,
    cursor_cycle: Cycle,
    cursor_tile: u32,
    seq: u64,
}

impl Observer {
    /// A fresh observer with default ring capacities.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the stamp cursor: subsequent events are attributed to
    /// `tile` at `cycle` (clamped non-decreasing).
    #[inline(always)]
    pub fn observe_at(&mut self, cycle: Cycle, tile: u32) {
        self.cursor_cycle = self.cursor_cycle.max(cycle);
        self.cursor_tile = tile;
    }

    /// Current cursor cycle.
    pub fn cursor_cycle(&self) -> Cycle {
        self.cursor_cycle
    }

    /// Current cursor tile.
    pub fn cursor_tile(&self) -> u32 {
        self.cursor_tile
    }

    /// Events recorded so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Attribute a stage span (see [`span!`](crate::span)).
    #[inline(always)]
    pub fn record_span(&mut self, stage: Stage, start: Cycle, done: Cycle) {
        self.profile.record_span(stage, start, done);
    }

    /// Record one completed callback's engine latency.
    #[inline(always)]
    pub fn record_callback(&mut self, latency: Cycle) {
        self.metrics.record_callback(latency);
    }

    /// Record one retired transaction: stage attribution from its
    /// observational stamps, plus miss latency when it left the L1.
    #[inline(always)]
    pub fn record_txn(
        &mut self,
        issued: Cycle,
        l1: Option<Cycle>,
        l2: Option<Cycle>,
        llc: Option<Cycle>,
        fill: Option<Cycle>,
        done: Cycle,
    ) {
        self.profile.record_txn(issued, l1, l2, llc, fill, done);
        if l2.is_some() {
            self.metrics.record_miss(done.saturating_sub(issued));
        }
    }

    /// Close the interval at a watchdog epoch (see
    /// [`MetricsRecorder::sample`]).
    pub fn sample_epoch(
        &mut self,
        epoch: u64,
        now: Cycle,
        stats: &Stats,
        energy_pj: f64,
        dram_backlog: Cycle,
    ) {
        self.metrics
            .sample(epoch, now, stats, energy_pj, dram_backlog);
    }
}

impl TxnSink for Observer {
    #[inline(always)]
    fn emit(&mut self, ev: TxnEvent) {
        self.ring.record(TraceRecord {
            seq: self.seq,
            cycle: self.cursor_cycle,
            tile: self.cursor_tile,
            sys: 0,
            event: ev,
        });
        self.seq += 1;
    }
}

fn save_event(ev: TxnEvent, w: &mut SnapWriter) {
    let level = |l: LevelId| match l {
        LevelId::L1d => 0u8,
        LevelId::L2 => 1,
        LevelId::Llc => 2,
    };
    let phase = |p: CbPhase| match p {
        CbPhase::OnMiss => 0u8,
        CbPhase::OnEviction => 1,
        CbPhase::OnWriteback => 2,
    };
    match ev {
        TxnEvent::Hit(l) => {
            w.put_u8(0);
            w.put_u8(level(l));
        }
        TxnEvent::Miss(l) => {
            w.put_u8(1);
            w.put_u8(level(l));
        }
        TxnEvent::Eviction(l) => {
            w.put_u8(2);
            w.put_u8(level(l));
        }
        TxnEvent::Writeback(l) => {
            w.put_u8(3);
            w.put_u8(level(l));
        }
        TxnEvent::CoherenceInval => w.put_u8(4),
        TxnEvent::PrefetchIssued => w.put_u8(5),
        TxnEvent::PrefetchUseful => w.put_u8(6),
        TxnEvent::NocHops { flits, hops } => {
            w.put_u8(7);
            w.put_u64(flits);
            w.put_u64(hops);
        }
        TxnEvent::DramRead => w.put_u8(8),
        TxnEvent::DramWrite => w.put_u8(9),
        TxnEvent::MshrStall => w.put_u8(10),
        TxnEvent::FlushedLine => w.put_u8(11),
        TxnEvent::FaultInjected => w.put_u8(12),
        TxnEvent::CallbackRun(p) => {
            w.put_u8(13);
            w.put_u8(phase(p));
        }
        TxnEvent::CallbackDegraded => w.put_u8(14),
        TxnEvent::MorphQuarantined => w.put_u8(15),
        TxnEvent::EngineWork { instrs, mem_ops } => {
            w.put_u8(16);
            w.put_u64(instrs);
            w.put_u64(mem_ops);
        }
        TxnEvent::StallDetected { latency } => {
            w.put_u8(17);
            w.put_u64(latency);
        }
        TxnEvent::InvariantViolations(n) => {
            w.put_u8(18);
            w.put_u64(n);
        }
    }
}

fn load_event(r: &mut SnapReader<'_>) -> Result<TxnEvent, SnapError> {
    let level = |b: u8| match b {
        0 => Ok(LevelId::L1d),
        1 => Ok(LevelId::L2),
        2 => Ok(LevelId::Llc),
        _ => Err(SnapError::StateMismatch(format!("bad level tag {b}"))),
    };
    let phase = |b: u8| match b {
        0 => Ok(CbPhase::OnMiss),
        1 => Ok(CbPhase::OnEviction),
        2 => Ok(CbPhase::OnWriteback),
        _ => Err(SnapError::StateMismatch(format!("bad phase tag {b}"))),
    };
    Ok(match r.get_u8()? {
        0 => TxnEvent::Hit(level(r.get_u8()?)?),
        1 => TxnEvent::Miss(level(r.get_u8()?)?),
        2 => TxnEvent::Eviction(level(r.get_u8()?)?),
        3 => TxnEvent::Writeback(level(r.get_u8()?)?),
        4 => TxnEvent::CoherenceInval,
        5 => TxnEvent::PrefetchIssued,
        6 => TxnEvent::PrefetchUseful,
        7 => TxnEvent::NocHops {
            flits: r.get_u64()?,
            hops: r.get_u64()?,
        },
        8 => TxnEvent::DramRead,
        9 => TxnEvent::DramWrite,
        10 => TxnEvent::MshrStall,
        11 => TxnEvent::FlushedLine,
        12 => TxnEvent::FaultInjected,
        13 => TxnEvent::CallbackRun(phase(r.get_u8()?)?),
        14 => TxnEvent::CallbackDegraded,
        15 => TxnEvent::MorphQuarantined,
        16 => TxnEvent::EngineWork {
            instrs: r.get_u64()?,
            mem_ops: r.get_u64()?,
        },
        17 => TxnEvent::StallDetected {
            latency: r.get_u64()?,
        },
        18 => TxnEvent::InvariantViolations(r.get_u64()?),
        b => {
            return Err(SnapError::StateMismatch(format!("bad event tag {b}")));
        }
    })
}

impl Snapshot for Observer {
    fn save(&self, w: &mut SnapWriter) {
        w.section("observer");
        w.put_len(self.ring.slots.len());
        for slot in self.ring.slots.iter() {
            w.put_bool(slot.is_some());
            if let Some(rec) = slot {
                w.put_u64(rec.seq);
                w.put_u64(rec.cycle);
                w.put_u32(rec.tile);
                w.put_u32(rec.sys);
                save_event(rec.event, w);
            }
        }
        w.put_u64(self.ring.total);
        self.metrics.save(w);
        self.profile.save(w);
        w.put_u64(self.cursor_cycle);
        w.put_u32(self.cursor_tile);
        w.put_u64(self.seq);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("observer")?;
        let cap = bounded_capacity("observer.ring", r.get_len()?)?;
        let mut slots = vec![None; cap.max(1)].into_boxed_slice();
        for slot in slots.iter_mut() {
            if r.get_bool()? {
                *slot = Some(TraceRecord {
                    seq: r.get_u64()?,
                    cycle: r.get_u64()?,
                    tile: r.get_u32()?,
                    sys: r.get_u32()?,
                    event: load_event(r)?,
                });
            }
        }
        self.ring.slots = slots;
        self.ring.total = r.get_u64()?;
        self.metrics.load(r)?;
        self.profile.load(r)?;
        self.cursor_cycle = r.get_u64()?;
        self.cursor_tile = r.get_u32()?;
        self.seq = r.get_u64()?;
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Process-wide arming and collection
// ----------------------------------------------------------------------

/// Process-global arming flag: when set, every newly constructed
/// hierarchy attaches a [`SinkTap::Observer`] and flushes it into the
/// collector on drop. Process-global (not thread-local) because
/// experiments fan out across worker threads.
///
/// [`SinkTap::Observer`]: crate::event::SinkTap
static ARMED: AtomicBool = AtomicBool::new(false);

#[derive(Debug, Default)]
struct Collector {
    events: Vec<TraceRecord>,
    events_dropped: u64,
    samples: Vec<IntervalSample>,
    samples_dropped: u64,
    profile: StageProfile,
    miss_latency: LatencyHistogram,
    callback_latency: LatencyHistogram,
    systems: u32,
}

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

/// Arm tracing process-wide and reset the collector. Hierarchies built
/// after this attach observers; call before running experiments.
pub fn arm() {
    let mut guard = COLLECTOR.lock().unwrap();
    *guard = Some(Collector::default());
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm tracing: hierarchies built after this run untapped. Already
/// collected data stays until [`drain`].
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// True while tracing is armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Flush one finished system's observer into the process-wide
/// collector, assigning it the next system id. Called by the hierarchy
/// on drop (and explicitly by tests).
pub fn collect(obs: Observer) {
    let mut guard = COLLECTOR.lock().unwrap();
    let c = guard.get_or_insert_with(Collector::default);
    let sys = c.systems;
    c.systems += 1;
    let retained = (obs.ring.total() as usize).min(obs.ring.capacity()) as u64;
    c.events_dropped += obs.ring.total() - retained;
    for mut rec in obs.ring.tail() {
        if c.events.len() < MAX_COLLECTED_EVENTS {
            rec.sys = sys;
            c.events.push(rec);
        } else {
            c.events_dropped += 1;
        }
    }
    let kept_samples = (obs.metrics.total_samples() as usize).min(obs.metrics.samples.len()) as u64;
    c.samples_dropped += obs.metrics.total_samples() - kept_samples;
    for mut s in obs.metrics.samples() {
        if c.samples.len() < MAX_COLLECTED_SAMPLES {
            s.sys = sys;
            c.samples.push(s);
        } else {
            c.samples_dropped += 1;
        }
    }
    c.profile.merge(&obs.profile);
    c.miss_latency.merge(&obs.metrics.miss_latency);
    c.callback_latency.merge(&obs.metrics.callback_latency);
}

/// Take everything collected since [`arm`] as a [`TraceReport`],
/// leaving the collector empty.
pub fn drain() -> TraceReport {
    let mut guard = COLLECTOR.lock().unwrap();
    let c = guard.take().unwrap_or_default();
    TraceReport {
        events: c.events,
        events_dropped: c.events_dropped,
        samples: c.samples,
        samples_dropped: c.samples_dropped,
        profile: c.profile,
        miss_latency: c.miss_latency,
        callback_latency: c.callback_latency,
        systems: c.systems,
    }
}

// ----------------------------------------------------------------------
// The drained report and its exporters
// ----------------------------------------------------------------------

/// Everything the observability layer gathered over a run: the merged
/// event trace, interval samples, stage profile, and latency
/// histograms across every collected system.
#[derive(Debug, Default)]
pub struct TraceReport {
    /// Retained trace events, grouped by system in collection order.
    pub events: Vec<TraceRecord>,
    /// Events lost to ring overwrite or the collector cap.
    pub events_dropped: u64,
    /// Retained interval samples.
    pub samples: Vec<IntervalSample>,
    /// Samples lost to ring overwrite or the collector cap.
    pub samples_dropped: u64,
    /// Merged per-stage cycle attribution.
    pub profile: StageProfile,
    /// Merged issue-to-retire latency of L1-missing transactions.
    pub miss_latency: LatencyHistogram,
    /// Merged callback engine latency.
    pub callback_latency: LatencyHistogram,
    /// Number of systems collected.
    pub systems: u32,
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push('0');
    }
}

impl TraceReport {
    /// Render the trace as Chrome `trace_event` JSON (the "JSON object
    /// format": a `traceEvents` array), loadable by `chrome://tracing`
    /// and Perfetto. Each trace event becomes an instant event (`"i"`)
    /// on pid=system / tid=tile at `cycle /` [`CYCLES_PER_US`] µs; each
    /// interval sample becomes counter events (`"C"`) for MPKI, DRAM
    /// backlog, and interval energy.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        for sys in 0..self.systems {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{sys},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"tako system {sys}\"}}}}"
            ));
        }
        for rec in &self.events {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"i\",\"pid\":{},\"tid\":{},\"ts\":",
                rec.sys, rec.tile
            ));
            push_json_f64(&mut out, rec.cycle as f64 / CYCLES_PER_US);
            // Debug-rendered event names contain no quotes/backslashes,
            // so they embed in JSON strings without escaping.
            out.push_str(&format!(
                ",\"s\":\"t\",\"name\":\"{:?}\",\"args\":{{\"seq\":{},\"cycle\":{}}}}}",
                rec.event, rec.seq, rec.cycle
            ));
        }
        for s in &self.samples {
            let ts = s.at_cycle as f64 / CYCLES_PER_US;
            for (name, value) in [
                ("mpki", s.mpki()),
                ("dram_backlog", s.dram_backlog as f64),
                ("energy_pj", s.energy_pj),
            ] {
                sep(&mut out);
                out.push_str(&format!(
                    "{{\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":",
                    s.sys
                ));
                push_json_f64(&mut out, ts);
                out.push_str(&format!(",\"name\":\"{name}\",\"args\":{{\"{name}\":"));
                push_json_f64(&mut out, value);
                out.push_str("}}");
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Render the `--profile` table plus latency histogram summary.
    pub fn profile_table(&self) -> String {
        let mut out = self.profile.render();
        out.push_str(&format!(
            "miss latency:     {} samples, mean {:.1} cyc, max {} cyc\n\
             callback latency: {} samples, mean {:.1} cyc, max {} cyc\n",
            self.miss_latency.count(),
            self.miss_latency.mean(),
            self.miss_latency.max(),
            self.callback_latency.count(),
            self.callback_latency.mean(),
            self.callback_latency.max(),
        ));
        out
    }

    /// A compact JSON summary for BENCH output and campaign journals:
    /// totals, per-stage cycles, and histogram statistics.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"systems\":{},\"events\":{},\"events_dropped\":{},\
             \"samples\":{},\"samples_dropped\":{}",
            self.systems,
            self.events.len(),
            self.events_dropped,
            self.samples.len(),
            self.samples_dropped
        ));
        out.push_str(",\"stages\":{");
        for (i, s) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"visits\":{},\"cycles\":{}}}",
                s.name(),
                self.profile.visits(*s),
                self.profile.cycles(*s)
            ));
        }
        out.push_str("},\"miss_latency\":{");
        out.push_str(&format!(
            "\"count\":{},\"mean\":",
            self.miss_latency.count()
        ));
        push_json_f64(&mut out, self.miss_latency.mean());
        out.push_str(&format!(",\"max\":{}}}", self.miss_latency.max()));
        out.push_str(",\"callback_latency\":{");
        out.push_str(&format!(
            "\"count\":{},\"mean\":",
            self.callback_latency.count()
        ));
        push_json_f64(&mut out, self.callback_latency.mean());
        out.push_str(&format!(",\"max\":{}}}", self.callback_latency.max()));
        if let Some(last) = self.samples.last() {
            out.push_str(&format!(
                ",\"last_interval\":{{\"epoch\":{},\"mpki\":",
                last.epoch
            ));
            push_json_f64(&mut out, last.mpki());
            out.push_str(",\"llc_miss_rate\":");
            push_json_f64(&mut out, last.miss_rate(LevelId::Llc));
            out.push_str(",\"callback_occupancy\":");
            push_json_f64(&mut out, last.callback_occupancy());
            out.push_str(",\"fabric_utilization\":");
            push_json_f64(&mut out, last.fabric_utilization());
            out.push_str(&format!(",\"dram_backlog\":{}}}", last.dram_backlog));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{decode, encode};

    /// Serializes tests that touch the process-global collector.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn ring_bounds_and_orders() {
        let mut ring = TraceRing::with_capacity(4);
        for i in 0..6u64 {
            ring.record(TraceRecord {
                seq: i,
                cycle: i * 10,
                tile: 0,
                sys: 0,
                event: TxnEvent::DramRead,
            });
        }
        assert_eq!(ring.total(), 6);
        let tail: Vec<_> = ring.tail().collect();
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].seq, 2);
        assert_eq!(tail[3].seq, 5);
        assert!(ring.render().contains("trace tail (4 of 6 total)"));
    }

    #[test]
    fn observer_stamps_with_monotonic_cursor() {
        let mut obs = Observer::new();
        obs.observe_at(100, 3);
        obs.emit(TxnEvent::Hit(LevelId::L1d));
        // A stale (earlier) cursor update must not move time backwards.
        obs.observe_at(50, 5);
        obs.emit(TxnEvent::Miss(LevelId::L2));
        obs.observe_at(200, 1);
        obs.emit(TxnEvent::DramRead);
        let tail: Vec<_> = obs.ring.tail().collect();
        assert_eq!(tail[0].cycle, 100);
        assert_eq!(tail[1].cycle, 100);
        assert_eq!(tail[1].tile, 5);
        assert_eq!(tail[2].cycle, 200);
        assert_eq!(tail[0].seq, 0);
        assert_eq!(tail[2].seq, 2);
    }

    #[test]
    fn profile_attributes_txn_windows() {
        let mut p = StageProfile::new();
        // L1 hit: only the L1 window.
        p.record_txn(10, Some(10), None, None, None, 14);
        assert_eq!(p.visits(Stage::L1), 1);
        assert_eq!(p.cycles(Stage::L1), 4);
        // Full miss: every stage gets its slice.
        p.record_txn(0, Some(0), Some(4), Some(20), Some(60), 200);
        assert_eq!(p.cycles(Stage::L1), 4 + 4);
        assert_eq!(p.cycles(Stage::L2), 16);
        assert_eq!(p.cycles(Stage::Llc), 40);
        assert_eq!(p.cycles(Stage::Fill), 140);
        assert_eq!(p.txns(), 2);
        assert_eq!(p.txn_cycles(), 4 + 200);
        let table = p.render();
        assert!(table.contains("Fill"));
        assert!(table.contains("2 txns profiled"));
    }

    #[test]
    fn span_macro_passes_through_and_records() {
        use crate::event::AccountingBus;
        use crate::fault::FaultInjector;
        let mut bus = AccountingBus::new(FaultInjector::new(None));
        bus.tap = crate::event::SinkTap::Observer(Box::default());
        let done = crate::span!(bus, Stage::Callback, 100, 100 + 40);
        assert_eq!(done, 140);
        let obs = bus.observer().unwrap();
        assert_eq!(obs.profile.visits(Stage::Callback), 1);
        assert_eq!(obs.profile.cycles(Stage::Callback), 40);
    }

    #[test]
    fn metrics_sample_diffs_counters() {
        let mut m = MetricsRecorder::with_capacity(8);
        let mut stats = Stats::new();
        stats.add(Counter::L1dHit, 90);
        stats.add(Counter::L1dMiss, 10);
        stats.add(Counter::LlcMiss, 4);
        stats.add(Counter::CoreInstr, 1000);
        m.record_callback(25);
        m.sample(0, 2_000, &stats, 50.0, 7);
        stats.add(Counter::L1dMiss, 30);
        stats.add(Counter::CoreInstr, 1000);
        m.record_callback(75);
        m.sample(1, 5_000, &stats, 80.0, 0);
        let samples: Vec<_> = m.samples().collect();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].l1d_misses, 10);
        assert_eq!(samples[0].cycles, 2_000);
        assert_eq!(samples[0].cb_cycles, 25);
        assert!((samples[0].mpki() - 4.0).abs() < 1e-9);
        assert!((samples[0].miss_rate(LevelId::L1d) - 0.1).abs() < 1e-9);
        assert_eq!(samples[1].l1d_misses, 30);
        assert_eq!(samples[1].cycles, 3_000);
        assert_eq!(samples[1].cb_cycles, 75);
        assert!((samples[1].energy_pj - 30.0).abs() < 1e-9);
        assert_eq!(samples[1].llc_misses, 0);
    }

    #[test]
    fn metrics_recorder_snapshot_roundtrip() {
        let mut m = MetricsRecorder::with_capacity(4);
        let mut stats = Stats::new();
        for epoch in 0..6u64 {
            stats.add(Counter::L1dHit, 11 + epoch);
            stats.add(Counter::DramRead, epoch);
            m.record_miss(100 << epoch);
            m.record_callback(3 * (epoch + 1));
            m.sample(epoch, (epoch + 1) * 1_000, &stats, epoch as f64, epoch);
        }
        let env = encode(&m);
        let mut out = MetricsRecorder::with_capacity(4);
        decode(&env, &mut out).unwrap();
        assert_eq!(out.total_samples(), m.total_samples());
        assert_eq!(
            out.samples().collect::<Vec<_>>(),
            m.samples().collect::<Vec<_>>()
        );
        assert_eq!(out.miss_latency, m.miss_latency);
        assert_eq!(out.callback_latency, m.callback_latency);
        // The restored recorder keeps diffing from where it left off.
        stats.add(Counter::L1dHit, 5);
        let mut a = m.clone();
        a.sample(6, 10_000, &stats, 10.0, 0);
        out.sample(6, 10_000, &stats, 10.0, 0);
        assert_eq!(
            a.samples().collect::<Vec<_>>(),
            out.samples().collect::<Vec<_>>()
        );
    }

    #[test]
    fn observer_snapshot_roundtrip() {
        let mut obs = Observer::new();
        obs.observe_at(500, 2);
        obs.emit(TxnEvent::Hit(LevelId::Llc));
        obs.emit(TxnEvent::NocHops { flits: 3, hops: 4 });
        obs.emit(TxnEvent::CallbackRun(CbPhase::OnWriteback));
        obs.record_span(Stage::Callback, 500, 600);
        obs.record_txn(0, Some(0), Some(10), None, None, 90);
        let stats = Stats::new();
        obs.sample_epoch(0, 1_000, &stats, 0.0, 3);
        let env = encode(&obs);
        let mut out = Observer::new();
        decode(&env, &mut out).unwrap();
        assert_eq!(out.seq(), obs.seq());
        assert_eq!(out.cursor_cycle(), 500);
        assert_eq!(out.cursor_tile(), 2);
        assert_eq!(
            out.ring.tail().collect::<Vec<_>>(),
            obs.ring.tail().collect::<Vec<_>>()
        );
        assert_eq!(out.profile, obs.profile);
        assert_eq!(out.metrics.total_samples(), 1);
    }

    #[test]
    fn collect_and_drain_assign_system_ids() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm();
        let mut a = Observer::new();
        a.observe_at(10, 0);
        a.emit(TxnEvent::DramRead);
        let mut b = Observer::new();
        b.observe_at(20, 1);
        b.emit(TxnEvent::DramWrite);
        b.record_callback(40);
        collect(a);
        collect(b);
        disarm();
        let report = drain();
        assert_eq!(report.systems, 2);
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].sys, 0);
        assert_eq!(report.events[1].sys, 1);
        assert_eq!(report.callback_latency.count(), 1);
        // Draining empties the collector.
        assert_eq!(drain().systems, 0);
    }

    #[test]
    fn chrome_json_is_wellformed() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm();
        let mut obs = Observer::new();
        obs.observe_at(2400, 7);
        obs.emit(TxnEvent::Miss(LevelId::Llc));
        let mut stats = Stats::new();
        stats.add(Counter::CoreInstr, 100);
        stats.add(Counter::LlcMiss, 1);
        obs.sample_epoch(0, 2400, &stats, 12.5, 9);
        collect(obs);
        disarm();
        let report = drain();
        let json = report.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"tid\":7"));
        assert!(json.contains("Miss(Llc)"));
        assert!(json.contains("\"ts\":1.000"));
        let metrics = report.metrics_json();
        assert!(metrics.contains("\"systems\":1"));
        assert!(metrics.contains("\"last_interval\""));
        let table = report.profile_table();
        assert!(table.contains("miss latency"));
    }
}
