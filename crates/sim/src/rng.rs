//! Deterministic pseudo-random number generation.
//!
//! All randomness in the workspace flows through [`Rng`], a xoshiro256**
//! generator seeded via SplitMix64. Keeping the generator in-tree (rather
//! than relying on `rand`'s stream, which may change across versions)
//! guarantees that every experiment is reproducible bit-for-bit.
//!
//! The module also provides [`Zipfian`], the skewed key distribution the
//! paper uses for the decompression study ("indices are randomly generated
//! following a Zipfian distribution over 16 K values", Sec 3.3).

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256** pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (expanded with SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

impl crate::checkpoint::Snapshot for Rng {
    fn save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.section("rng");
        for s in self.s {
            w.put_u64(s);
        }
    }

    fn load(
        &mut self,
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> Result<(), crate::checkpoint::SnapError> {
        r.section("rng")?;
        for s in &mut self.s {
            *s = r.get_u64()?;
        }
        Ok(())
    }
}

/// A Zipfian distribution over `[0, n)` with skew `theta`, using the
/// standard rejection-inversion-free method of Gray et al. (the
/// formulation popularized by YCSB).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// A Zipfian distribution over `n` items with exponent `theta`
    /// (commonly 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1) for this sampler"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw a sample in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let raw = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        raw.min(self.n - 1)
    }

    /// The number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_resumes_same_stream() {
        use crate::checkpoint::{decode, encode};
        let mut a = Rng::new(0x5EED);
        for _ in 0..37 {
            a.next_u64();
        }
        let snap = encode(&a);
        let tail: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let mut b = Rng::new(0); // different seed; load must overwrite
        decode(&snap, &mut b).unwrap();
        let resumed: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Rng::new(9);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_skew() {
        let z = Zipfian::new(16 * 1024, 0.99);
        let mut rng = Rng::new(0xC0FFEE);
        let mut head = 0u64;
        let samples = 100_000;
        for _ in 0..samples {
            if z.sample(&mut rng) < 16 {
                head += 1;
            }
        }
        // With theta=0.99 over 16 K items, the top-16 ranks draw a large
        // fraction of all samples (that is the locality täkō exploits).
        assert!(
            head > samples / 4,
            "expected heavy head, got {head}/{samples}"
        );
    }

    #[test]
    fn zipf_in_range() {
        let z = Zipfian::new(100, 0.5);
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zipf_zero_items() {
        Zipfian::new(0, 0.9);
    }
}
