//! A std-only fork-join worker pool for embarrassingly parallel
//! simulation fan-out.
//!
//! Every experiment harness in the workspace runs many *independent*
//! simulations (one per variant, per sweep point, per figure), each
//! building its own `Hierarchy`. [`parallel_map`] distributes such a
//! work-list over `std::thread::scope` workers and collects results in
//! **input order**, so parallel runs produce byte-identical output to
//! `jobs = 1` — parallelism never perturbs simulated cycles, energy, or
//! RNG streams, because each item's simulation is self-contained and the
//! only shared state is the slot its result is written to.
//!
//! The pool is deliberately dependency-free (the build environment is
//! offline; no rayon/crossbeam) and unstructured work-stealing is not
//! needed: items are claimed from a shared atomic cursor, which load-
//! balances uneven item costs (simulations vary by orders of magnitude)
//! without any queue allocation.
//!
//! Panics in workers propagate: `std::thread::scope` re-raises a child
//! panic on join, so a failing simulation fails the whole map, like the
//! serial loop it replaces. Harnesses that must survive a failing
//! experiment (`all_experiments --keep-going`) use
//! [`parallel_map_catch`], which isolates each item's panic into an
//! `Err` carrying the panic payload instead.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller does not specify:
/// the machine's available parallelism, or 1 if it cannot be queried.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order.
///
/// `f` receives `(index, item)` so callers can label work without
/// capturing per-item state. With `jobs <= 1` (or a single item) the map
/// degenerates to the plain serial loop on the calling thread — no
/// threads are spawned, which keeps single-job runs bit-for-bit
/// identical to pre-pool behavior and makes `--jobs 1` a meaningful
/// determinism baseline.
///
/// # Panics
///
/// Re-raises the panic of any `f` invocation that panicked (after all
/// workers have stopped).
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    // Items are handed out via an atomic cursor; each result lands in
    // the slot of its input index. Mutexes are uncontended (each slot is
    // touched by exactly one worker) — they only exist to make the
    // slot writes safe across threads without unsafe code.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("item claimed twice");
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Render a panic payload as text: the `&str`/`String` message when the
/// panic carried one (the overwhelmingly common case), a placeholder
/// otherwise.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Like [`parallel_map`], but a panicking `f` invocation yields
/// `Err(panic message)` for that item while every other item still
/// completes — the panic-isolating mode behind `--keep-going`.
///
/// The closure must not leave shared state half-mutated when it panics;
/// experiment harnesses satisfy this because each item's simulation is
/// self-contained (the `AssertUnwindSafe` below is sound for the same
/// reason `parallel_map`'s determinism argument holds).
pub fn parallel_map_catch<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map(jobs, items, |i, x| {
        catch_unwind(AssertUnwindSafe(|| f(i, x))).map_err(panic_message)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(8, items, |i, x| {
            // Stagger completion so late indices often finish first.
            std::thread::sleep(std::time::Duration::from_micros((100 - x) * 10));
            (i, x * 2)
        });
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, i as u64 * 2);
        }
    }

    #[test]
    fn jobs_one_runs_serially_on_caller_thread() {
        let caller = std::thread::current().id();
        let out = parallel_map(1, vec![1, 2, 3], |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = parallel_map(64, vec![10u64, 20], |i, x| x + i as u64);
        assert_eq!(out, vec![10, 21]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(4, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(16, items, |_, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(4, (0..32).collect::<Vec<u64>>(), |_, x| {
                if x == 17 {
                    panic!("boom in worker");
                }
                x
            })
        });
        assert!(result.is_err(), "panic in a worker must fail the map");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn catch_isolates_panics_and_keeps_order() {
        let out = parallel_map_catch(4, (0..32).collect::<Vec<u64>>(), |_, x| {
            if x == 17 {
                panic!("boom on {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i == 17 {
                assert_eq!(r.as_ref().unwrap_err(), "boom on 17");
            } else {
                assert_eq!(*r, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn catch_serial_path_also_isolates() {
        let out = parallel_map_catch(1, vec![1u32, 2, 3], |_, x| {
            if x == 2 {
                panic!("static str payload");
            }
            x
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1].as_ref().unwrap_err(), "static str payload");
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn catch_all_ok_matches_plain_map() {
        let out = parallel_map_catch(8, (0..64).collect::<Vec<u64>>(), |i, x| x + i as u64);
        assert!(out.iter().enumerate().all(|(i, r)| *r == Ok(2 * i as u64)));
    }
}
