//! System configuration (Table 3 of the paper).
//!
//! The full system is described by [`SystemConfig`]; substrate crates
//! consume the sub-configs ([`CacheConfig`], [`NocConfig`], [`MemConfig`],
//! [`EngineConfig`], [`CoreConfig`]). All defaults follow Table 3:
//! 16 out-of-order cores at 2.4 GHz in a 4×4 mesh, 32 KB L1s, 128 KB L2s,
//! an 8 MB inclusive LLC (512 KB/bank), 5×5 dataflow engines, and four
//! memory controllers at 100-cycle latency and 11.8 GB/s each.
//!
//! [`SystemConfig::validate`] rejects nonsense geometries with a typed
//! [`ConfigError`] before a simulation is built; the robustness knobs
//! live in [`WatchdogConfig`] and the optional
//! [`fault plan`](crate::fault::FaultPlan).

use crate::fault::FaultPlan;

/// Cache line size used throughout the hierarchy, in bytes.
pub const LINE_BYTES: u64 = 64;

/// Replacement policy selector for a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplPolicy {
    /// Classic least-recently-used.
    Lru,
    /// Static re-reference interval prediction (SRRIP) \[62\].
    Rrip,
    /// täkō's RRIP variant (Sec 5.2): engine-issued fills insert at distant
    /// RRPV, and victim selection guarantees at least one line per set with
    /// no Morph registered (deadlock avoidance).
    Trrip,
}

/// Geometry and timing of one cache array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Latency of a tag lookup, in cycles.
    pub tag_latency: u64,
    /// Latency of a data-array access, in cycles (charged on hits/fills).
    pub data_latency: u64,
    /// Replacement policy.
    pub repl: ReplPolicy,
    /// Miss-status holding registers: maximum outstanding misses this
    /// level tracks. One entry is reserved away from callback-waiting
    /// requests (Sec 5.2's deadlock-avoidance rule).
    pub mshrs: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not describe at least one set.
    pub fn sets(&self) -> u64 {
        let lines = self.size_bytes / LINE_BYTES;
        let sets = lines / u64::from(self.ways);
        assert!(sets > 0, "cache too small for its associativity");
        sets
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_BYTES
    }

    /// The paper's 32 KB, 8-way L1 data cache.
    pub fn l1d_default() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            tag_latency: 1,
            data_latency: 2,
            repl: ReplPolicy::Lru,
            mshrs: 8,
        }
    }

    /// The paper's 128 KB, 8-way private L2 (2-cycle tag, 4-cycle data).
    pub fn l2_default() -> Self {
        CacheConfig {
            size_bytes: 128 * 1024,
            ways: 8,
            tag_latency: 2,
            data_latency: 4,
            repl: ReplPolicy::Trrip,
            mshrs: 16,
        }
    }

    /// One 512 KB, 16-way bank of the paper's 8 MB inclusive LLC
    /// (3-cycle tag, 5-cycle data).
    pub fn llc_bank_default() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 16,
            tag_latency: 3,
            data_latency: 5,
            repl: ReplPolicy::Trrip,
            mshrs: 16,
        }
    }

    /// The engine's small coherent 8 KB L1d (Table 2).
    pub fn engine_l1d_default() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            ways: 4,
            tag_latency: 1,
            data_latency: 1,
            repl: ReplPolicy::Lru,
            mshrs: 4,
        }
    }
}

/// Kind of core pipeline to model (Fig 24 sweeps these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Stall-on-use in-order pipeline: one outstanding miss.
    InOrder,
    /// Out-of-order core with a bounded window of outstanding loads.
    OutOfOrder,
}

/// A core model's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Pipeline style.
    pub kind: CoreKind,
    /// Sustained issue width (instructions per cycle for non-memory work).
    pub width: u32,
    /// Maximum outstanding loads (memory-level parallelism window).
    /// Ignored for [`CoreKind::InOrder`], which behaves as window 1.
    pub mlp_window: u32,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
}

impl CoreConfig {
    /// Goldmont-like 3-wide out-of-order core (paper baseline).
    pub fn goldmont() -> Self {
        CoreConfig {
            kind: CoreKind::OutOfOrder,
            width: 3,
            mlp_window: 8,
            mispredict_penalty: 14,
        }
    }

    /// 2-wide out-of-order core (Fig 24 "small OOO").
    pub fn small_ooo() -> Self {
        CoreConfig {
            kind: CoreKind::OutOfOrder,
            width: 2,
            mlp_window: 4,
            mispredict_penalty: 12,
        }
    }

    /// Scalar in-order core (Fig 24 "in-order").
    pub fn in_order() -> Self {
        CoreConfig {
            kind: CoreKind::InOrder,
            width: 1,
            mlp_window: 1,
            mispredict_penalty: 8,
        }
    }
}

/// Mesh network-on-chip parameters (Table 3: 128-bit flits and links,
/// 2/1-cycle router/link delay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Flit width in bytes.
    pub flit_bytes: u64,
    /// Per-hop router traversal latency in cycles.
    pub router_latency: u64,
    /// Per-hop link traversal latency in cycles.
    pub link_latency: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            flit_bytes: 16,
            router_latency: 2,
            link_latency: 1,
        }
    }
}

/// Memory-system parameters (Table 3: 4 controllers, 100-cycle latency,
/// 11.8 GB/s per controller ≈ 4.9 bytes/cycle at 2.4 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of memory controllers, each serving an address slice.
    pub controllers: usize,
    /// Uncontended access latency in cycles.
    pub latency: u64,
    /// Sustained bandwidth per controller in bytes per cycle.
    pub bytes_per_cycle: f64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            controllers: 4,
            latency: 100,
            bytes_per_cycle: 4.9,
        }
    }
}

impl MemConfig {
    /// Cycles of controller occupancy for transferring one cache line.
    pub fn line_occupancy(&self) -> u64 {
        (LINE_BYTES as f64 / self.bytes_per_cycle).ceil() as u64
    }
}

/// Kind of near-cache engine to model (Figs 22/23 sweep these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The paper's spatial dataflow fabric with asynchronous firing.
    Dataflow,
    /// An in-order scalar core used as the engine (performs poorly, Sec 9).
    InOrderCore,
    /// Idealized engine: unlimited, zero-latency PEs; callbacks are bound
    /// only by memory latency and data dependences.
    Ideal,
}

/// Parameters of the per-tile täkō engine (Sec 5.3, Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Engine execution model.
    pub kind: EngineKind,
    /// Number of integer (ALU) processing elements.
    pub alu_pes: u32,
    /// Number of memory processing elements (ports into the engine L1d).
    pub mem_pes: u32,
    /// Latency of one PE operation in cycles (Fig 23 sweeps 1–8).
    pub pe_latency: u64,
    /// Entries in the hardware callback buffer (Sec 9: 8 is sufficient).
    pub callback_buffer: u32,
    /// Static instructions storable per PE (Table 2: 16).
    pub instrs_per_pe: u32,
    /// Token-store entries per PE (Table 2: 8).
    pub tokens_per_pe: u32,
    /// Reverse-TLB entries (Sec 9: 256 with 2 MB pages).
    pub rtlb_entries: u32,
    /// Maximum concurrently executing callbacks (dynamic tag matching).
    pub max_concurrent_callbacks: u32,
    /// trrîp (Sec 5.2): engine-issued fills insert at distant priority.
    /// Disable for the ablation study.
    pub trrip: bool,
    /// Dynamic instructions one callback may execute before the
    /// hierarchy declares it runaway and quarantines its Morph. Far
    /// above anything a well-behaved callback needs (they run tens to
    /// hundreds of instructions).
    pub callback_instr_budget: u64,
    /// The engine's coherent L1 data cache.
    pub l1d: CacheConfig,
}

impl EngineConfig {
    /// The paper's default 5×5 fabric: 15 integer PEs, 10 memory PEs,
    /// 1-cycle PE latency, 8-entry callback buffer.
    pub fn default_5x5() -> Self {
        EngineConfig {
            kind: EngineKind::Dataflow,
            alu_pes: 15,
            mem_pes: 10,
            pe_latency: 1,
            callback_buffer: 8,
            instrs_per_pe: 16,
            tokens_per_pe: 8,
            rtlb_entries: 256,
            max_concurrent_callbacks: 8,
            trrip: true,
            callback_instr_budget: 100_000,
            l1d: CacheConfig::engine_l1d_default(),
        }
    }

    /// A square fabric of `dim`×`dim` PEs, split 3:2 between ALU and
    /// memory PEs like the paper's 5×5 (15 ALU + 10 memory).
    pub fn square(dim: u32) -> Self {
        let total = dim * dim;
        let alu = (total * 3).div_ceil(5);
        EngineConfig {
            alu_pes: alu,
            mem_pes: total - alu,
            ..Self::default_5x5()
        }
    }

    /// Idealized engine (unbounded, instantaneous compute).
    pub fn ideal() -> Self {
        EngineConfig {
            kind: EngineKind::Ideal,
            alu_pes: u32::MAX,
            mem_pes: u32::MAX,
            pe_latency: 0,
            ..Self::default_5x5()
        }
    }

    /// In-order-core engine (prior NDC designs; Sec 9 shows this is slow).
    pub fn in_order_core() -> Self {
        EngineConfig {
            kind: EngineKind::InOrderCore,
            ..Self::default_5x5()
        }
    }

    /// Total PEs in the fabric.
    pub fn total_pes(&self) -> u32 {
        self.alu_pes.saturating_add(self.mem_pes)
    }

    /// Total static-instruction capacity of the fabric.
    pub fn instr_capacity(&self) -> u32 {
        self.total_pes().saturating_mul(self.instrs_per_pe)
    }
}

/// Whether the L2 includes a strided prefetcher (Table 3: yes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchConfig {
    /// Enable the stride prefetcher at the L2.
    pub enabled: bool,
    /// Prefetch degree: lines fetched ahead per detected stream.
    pub degree: u32,
    /// Accesses with a constant stride required before issuing prefetches.
    pub train_threshold: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: true,
            degree: 4,
            train_threshold: 2,
        }
    }
}

/// Knobs of the runtime invariant watchdog (`tako-core::watchdog`).
///
/// The watchdog is observational: it never alters timing, it only
/// samples invariants once per epoch and flags accesses whose latency
/// exceeds the stall bound, dumping a diagnostic snapshot instead of
/// letting the run hang silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch. Disabled, the watchdog never runs.
    pub enabled: bool,
    /// Cycles between sampled invariant sweeps (trrîp safe-line rule,
    /// MSHR accounting, counter monotonicity).
    pub epoch_cycles: u64,
    /// A single access whose end-to-end latency exceeds this bound is
    /// reported as a stall (`--watchdog-cycles`). Must comfortably
    /// exceed a worst-case legitimate miss (DRAM latency + queueing +
    /// a callback chain), which is a few thousand cycles.
    pub stall_cycles: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            epoch_cycles: 1 << 17,
            stall_cycles: 200_000,
        }
    }
}

/// Knobs of deterministic checkpointing (`tako-sim::checkpoint`).
///
/// Checkpointing piggybacks on watchdog epochs: when armed, the
/// hierarchy raises a checkpoint-due flag every `every_epochs` watchdog
/// epochs and the driver serializes the system at the next quiescent
/// point. Like the watchdog, it is observational — simulated timing and
/// counters are identical with checkpointing armed or disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Watchdog epochs between checkpoint-due flags. Must be nonzero;
    /// [`SystemConfig::validate`] rejects 0 (it would request a
    /// checkpoint at every epoch boundary and is always a typo for
    /// "disabled", which is spelled `checkpoint: None`).
    pub every_epochs: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig { every_epochs: 4 }
    }
}

/// A rejected configuration, from [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `tiles` is zero.
    NoTiles,
    /// `mesh.0 * mesh.1 != tiles`.
    MeshMismatch {
        /// Configured mesh dimensions.
        mesh: (usize, usize),
        /// Configured tile count.
        tiles: usize,
    },
    /// A cache level has zero ways.
    ZeroWays(&'static str),
    /// A cache level is smaller than one line per way.
    CacheTooSmall(&'static str),
    /// A cache level's set count is not a power of two (the index
    /// function is a shift/mask).
    SetsNotPowerOfTwo {
        /// Which cache level.
        level: &'static str,
        /// The offending set count.
        sets: u64,
    },
    /// A cache level has fewer than 2 MSHRs (one entry is reserved for
    /// callback-free requests, so 1 leaves nothing for callbacks).
    TooFewMshrs(&'static str),
    /// `mem.controllers` is zero.
    NoDramControllers,
    /// `mem.bytes_per_cycle` is not a positive finite number.
    NoDramBandwidth,
    /// The engine fabric has no PEs of some class.
    NoEnginePes(&'static str),
    /// The engine callback buffer has zero entries.
    NoCallbackBuffer,
    /// The per-callback instruction budget is zero.
    NoCallbackBudget,
    /// The engine admits more concurrent callbacks than its buffer has
    /// entries. The model checker proves this geometry unsafe at tiny
    /// bound: nested concurrent callbacks deeper than the buffer
    /// oversubscribe admission slots, the exact exhaustion the Sec 5.2
    /// writeback-buffer backpressure argument assumes cannot happen.
    CallbackBufferOversubscribed {
        /// Configured `engine.callback_buffer` entries.
        buffer: u32,
        /// Configured `engine.max_concurrent_callbacks`.
        concurrent: u32,
    },
    /// `checkpoint.every_epochs` is zero (disable checkpointing with
    /// `checkpoint: None` instead).
    ZeroCheckpointInterval,
    /// A fault-plan event is addressed to a site (tile/bank index)
    /// outside the configured mesh.
    FaultSiteOutOfRange {
        /// The offending site index.
        site: usize,
        /// Configured tile count (valid sites are `0..tiles`).
        tiles: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoTiles => write!(f, "system has zero tiles"),
            ConfigError::MeshMismatch { mesh, tiles } => {
                write!(f, "mesh {}x{} does not cover {tiles} tiles", mesh.0, mesh.1)
            }
            ConfigError::ZeroWays(level) => {
                write!(f, "{level} cache has zero ways")
            }
            ConfigError::CacheTooSmall(level) => {
                write!(f, "{level} cache too small for its associativity")
            }
            ConfigError::SetsNotPowerOfTwo { level, sets } => {
                write!(f, "{level} cache has {sets} sets (must be a power of two)")
            }
            ConfigError::TooFewMshrs(level) => {
                write!(f, "{level} cache needs at least 2 MSHRs")
            }
            ConfigError::NoDramControllers => {
                write!(f, "memory system has zero DRAM controllers")
            }
            ConfigError::NoDramBandwidth => {
                write!(f, "memory bandwidth must be positive and finite")
            }
            ConfigError::NoEnginePes(class) => {
                write!(f, "engine fabric has zero {class} PEs")
            }
            ConfigError::NoCallbackBuffer => {
                write!(f, "engine callback buffer has zero entries")
            }
            ConfigError::NoCallbackBudget => {
                write!(f, "callback instruction budget is zero")
            }
            ConfigError::CallbackBufferOversubscribed { buffer, concurrent } => {
                write!(
                    f,
                    "engine admits {concurrent} concurrent callbacks but the \
                     callback buffer has only {buffer} entries; nested \
                     callbacks would oversubscribe admission slots"
                )
            }
            ConfigError::ZeroCheckpointInterval => {
                write!(
                    f,
                    "checkpoint interval is zero epochs (use `checkpoint: None` to disable)"
                )
            }
            ConfigError::FaultSiteOutOfRange { site, tiles } => {
                write!(
                    f,
                    "fault event addressed to site {site}, but the mesh has only {tiles} tiles"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full system configuration (Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of tiles (each: core + L1s + L2 + LLC bank + engine).
    pub tiles: usize,
    /// Mesh dimensions; `mesh.0 * mesh.1 == tiles`.
    pub mesh: (usize, usize),
    /// Core model.
    pub core: CoreConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// One LLC bank (the LLC as a whole is `tiles` banks, inclusive).
    pub llc_bank: CacheConfig,
    /// L2 prefetcher.
    pub prefetch: PrefetchConfig,
    /// Mesh NoC.
    pub noc: NocConfig,
    /// Memory system.
    pub mem: MemConfig,
    /// Per-tile täkō engine.
    pub engine: EngineConfig,
    /// Runtime invariant watchdog.
    pub watchdog: WatchdogConfig,
    /// Optional deterministic checkpointing; `None` (the default) never
    /// raises a checkpoint-due flag and adds zero overhead.
    pub checkpoint: Option<CheckpointConfig>,
    /// Optional deterministic fault plan; `None` (the default) injects
    /// nothing and leaves the simulation byte-identical.
    pub faults: Option<FaultPlan>,
}

impl SystemConfig {
    /// The paper's default 16-core system (Table 3).
    pub fn default_16core() -> Self {
        SystemConfig {
            tiles: 16,
            mesh: (4, 4),
            core: CoreConfig::goldmont(),
            l1d: CacheConfig::l1d_default(),
            l2: CacheConfig::l2_default(),
            llc_bank: CacheConfig::llc_bank_default(),
            prefetch: PrefetchConfig::default(),
            noc: NocConfig::default(),
            mem: MemConfig::default(),
            engine: EngineConfig::default_5x5(),
            watchdog: WatchdogConfig::default(),
            checkpoint: None,
            faults: None,
        }
    }

    /// A system with `n` tiles arranged in the squarest possible mesh.
    /// Memory bandwidth scales proportionally with cores (Fig 25).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_tiles(n: usize) -> Self {
        assert!(n > 0, "system needs at least one tile");
        let mut cfg = Self::default_16core();
        cfg.tiles = n;
        cfg.mesh = squarest_mesh(n);
        // Paper (Fig 25): "memory bandwidth scales proportionally with
        // cores" — keep controllers at 1 per 4 tiles, min 1.
        cfg.mem.controllers = (n / 4).max(1);
        cfg
    }

    /// Total LLC capacity across banks.
    pub fn llc_total_bytes(&self) -> u64 {
        self.llc_bank.size_bytes * self.tiles as u64
    }

    /// Reject nonsense configurations with a typed error before any
    /// simulation state is built. Every bench binary calls this at
    /// startup.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tiles == 0 {
            return Err(ConfigError::NoTiles);
        }
        if self.mesh.0 * self.mesh.1 != self.tiles {
            return Err(ConfigError::MeshMismatch {
                mesh: self.mesh,
                tiles: self.tiles,
            });
        }
        for (level, c) in [
            ("L1d", &self.l1d),
            ("L2", &self.l2),
            ("LLC bank", &self.llc_bank),
            ("engine L1d", &self.engine.l1d),
        ] {
            if c.ways == 0 {
                return Err(ConfigError::ZeroWays(level));
            }
            let sets = (c.size_bytes / LINE_BYTES) / u64::from(c.ways);
            if sets == 0 {
                return Err(ConfigError::CacheTooSmall(level));
            }
            if !sets.is_power_of_two() {
                return Err(ConfigError::SetsNotPowerOfTwo { level, sets });
            }
            if c.mshrs < 2 {
                return Err(ConfigError::TooFewMshrs(level));
            }
        }
        if self.mem.controllers == 0 {
            return Err(ConfigError::NoDramControllers);
        }
        if !(self.mem.bytes_per_cycle > 0.0 && self.mem.bytes_per_cycle.is_finite()) {
            return Err(ConfigError::NoDramBandwidth);
        }
        if self.engine.alu_pes == 0 {
            return Err(ConfigError::NoEnginePes("ALU"));
        }
        if self.engine.mem_pes == 0 {
            return Err(ConfigError::NoEnginePes("memory"));
        }
        if self.engine.callback_buffer == 0 {
            return Err(ConfigError::NoCallbackBuffer);
        }
        if self.engine.callback_instr_budget == 0 {
            return Err(ConfigError::NoCallbackBudget);
        }
        if self.engine.max_concurrent_callbacks > self.engine.callback_buffer {
            return Err(ConfigError::CallbackBufferOversubscribed {
                buffer: self.engine.callback_buffer,
                concurrent: self.engine.max_concurrent_callbacks,
            });
        }
        if let Some(ckpt) = &self.checkpoint {
            if ckpt.every_epochs == 0 {
                return Err(ConfigError::ZeroCheckpointInterval);
            }
        }
        if let Some(plan) = &self.faults {
            for ev in &plan.events {
                if let Some(site) = ev.site {
                    if site >= self.tiles {
                        return Err(ConfigError::FaultSiteOutOfRange {
                            site,
                            tiles: self.tiles,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::default_16core()
    }
}

/// The most square `(rows, cols)` factorization of `n`.
fn squarest_mesh(n: usize) -> (usize, usize) {
    let mut best = (1, n);
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            best = (r, n / r);
        }
        r += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let cfg = SystemConfig::default_16core();
        assert_eq!(cfg.tiles, 16);
        assert_eq!(cfg.mesh, (4, 4));
        assert_eq!(cfg.l1d.size_bytes, 32 * 1024);
        assert_eq!(cfg.l2.size_bytes, 128 * 1024);
        assert_eq!(cfg.llc_bank.size_bytes, 512 * 1024);
        assert_eq!(cfg.llc_total_bytes(), 8 * 1024 * 1024);
        assert_eq!(cfg.mem.controllers, 4);
        assert_eq!(cfg.mem.latency, 100);
        assert_eq!(cfg.engine.alu_pes, 15);
        assert_eq!(cfg.engine.mem_pes, 10);
    }

    #[test]
    fn cache_geometry() {
        let l2 = CacheConfig::l2_default();
        assert_eq!(l2.lines(), 2048);
        assert_eq!(l2.sets(), 256);
        let llc = CacheConfig::llc_bank_default();
        assert_eq!(llc.sets(), 512);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_cache_panics() {
        CacheConfig {
            size_bytes: 64,
            ways: 8,
            tag_latency: 1,
            data_latency: 1,
            repl: ReplPolicy::Lru,
            mshrs: 4,
        }
        .sets();
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(SystemConfig::default_16core().validate(), Ok(()));
        assert_eq!(SystemConfig::with_tiles(7).validate(), Ok(()));
        assert_eq!(SystemConfig::with_tiles(64).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_nonsense() {
        let base = SystemConfig::default_16core;

        let mut cfg = base();
        cfg.tiles = 0;
        cfg.mesh = (0, 0);
        assert_eq!(cfg.validate(), Err(ConfigError::NoTiles));

        let mut cfg = base();
        cfg.mesh = (3, 4);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::MeshMismatch {
                mesh: (3, 4),
                tiles: 16
            })
        );

        let mut cfg = base();
        cfg.l2.ways = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroWays("L2")));

        let mut cfg = base();
        cfg.l1d.size_bytes = 64;
        assert_eq!(cfg.validate(), Err(ConfigError::CacheTooSmall("L1d")));

        let mut cfg = base();
        cfg.llc_bank.size_bytes = 3 * 64 * 16;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::SetsNotPowerOfTwo {
                level: "LLC bank",
                sets: 3
            })
        );

        let mut cfg = base();
        cfg.llc_bank.mshrs = 1;
        assert_eq!(cfg.validate(), Err(ConfigError::TooFewMshrs("LLC bank")));

        let mut cfg = base();
        cfg.mem.controllers = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoDramControllers));

        let mut cfg = base();
        cfg.mem.bytes_per_cycle = 0.0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoDramBandwidth));

        let mut cfg = base();
        cfg.engine.mem_pes = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoEnginePes("memory")));

        let mut cfg = base();
        cfg.engine.callback_buffer = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoCallbackBuffer));

        let mut cfg = base();
        cfg.engine.callback_instr_budget = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoCallbackBudget));

        let mut cfg = base();
        cfg.engine.callback_buffer = 2;
        cfg.engine.max_concurrent_callbacks = 4;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::CallbackBufferOversubscribed {
                buffer: 2,
                concurrent: 4
            })
        );

        let mut cfg = base();
        cfg.checkpoint = Some(CheckpointConfig { every_epochs: 0 });
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroCheckpointInterval));

        let mut cfg = base();
        let mut plan = FaultPlan::empty();
        plan.events.push(crate::fault::FaultEvent {
            at: 1,
            kind: crate::fault::FaultKind::DelayedDram,
            magnitude: 100,
            site: Some(16),
        });
        cfg.faults = Some(plan);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::FaultSiteOutOfRange {
                site: 16,
                tiles: 16
            })
        );
        // The same plan addressed inside the mesh is fine.
        let mut cfg = base();
        let mut plan = FaultPlan::empty();
        plan.events.push(crate::fault::FaultEvent {
            at: 1,
            kind: crate::fault::FaultKind::DelayedDram,
            magnitude: 100,
            site: Some(15),
        });
        cfg.faults = Some(plan);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn callback_buffer_admission_bound() {
        // The default geometry (buffer == concurrency == 8) is legal,
        // as is any buffer at least as deep as the admission bound.
        let mut cfg = SystemConfig::default_16core();
        assert_eq!(
            cfg.engine.callback_buffer,
            cfg.engine.max_concurrent_callbacks
        );
        assert_eq!(cfg.validate(), Ok(()));
        cfg.engine.callback_buffer = 16;
        assert_eq!(cfg.validate(), Ok(()));

        // One admission more than the buffer holds is the exhaustion
        // the checker exercises; the error must name both numbers.
        cfg.engine.callback_buffer = 8;
        cfg.engine.max_concurrent_callbacks = 9;
        let err = cfg.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::CallbackBufferOversubscribed {
                buffer: 8,
                concurrent: 9
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains('9') && msg.contains('8'),
            "undescriptive: {msg}"
        );
    }

    #[test]
    fn checkpoint_config_validates() {
        let mut cfg = SystemConfig::default_16core();
        assert_eq!(cfg.checkpoint, None);
        cfg.checkpoint = Some(CheckpointConfig::default());
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(CheckpointConfig::default().every_epochs, 4);
    }

    #[test]
    fn config_error_display() {
        assert_eq!(
            ConfigError::ZeroWays("L2").to_string(),
            "L2 cache has zero ways"
        );
        assert_eq!(
            ConfigError::SetsNotPowerOfTwo {
                level: "LLC bank",
                sets: 3
            }
            .to_string(),
            "LLC bank cache has 3 sets (must be a power of two)"
        );
        assert_eq!(
            ConfigError::NoDramControllers.to_string(),
            "memory system has zero DRAM controllers"
        );
        assert_eq!(
            ConfigError::ZeroCheckpointInterval.to_string(),
            "checkpoint interval is zero epochs (use `checkpoint: None` to disable)"
        );
        assert_eq!(
            ConfigError::FaultSiteOutOfRange {
                site: 99,
                tiles: 16
            }
            .to_string(),
            "fault event addressed to site 99, but the mesh has only 16 tiles"
        );
    }

    #[test]
    fn mesh_factorization() {
        assert_eq!(squarest_mesh(16), (4, 4));
        assert_eq!(squarest_mesh(36), (6, 6));
        assert_eq!(squarest_mesh(8), (2, 4));
        assert_eq!(squarest_mesh(7), (1, 7));
        assert_eq!(squarest_mesh(1), (1, 1));
    }

    #[test]
    fn scaled_system_scales_bandwidth() {
        let cfg = SystemConfig::with_tiles(36);
        assert_eq!(cfg.mesh, (6, 6));
        assert_eq!(cfg.mem.controllers, 9);
        let tiny = SystemConfig::with_tiles(2);
        assert_eq!(tiny.mem.controllers, 1);
    }

    #[test]
    fn engine_variants() {
        let sq = EngineConfig::square(5);
        assert_eq!(sq.alu_pes, 15);
        assert_eq!(sq.mem_pes, 10);
        let sq3 = EngineConfig::square(3);
        assert_eq!(sq3.total_pes(), 9);
        assert_eq!(EngineConfig::ideal().pe_latency, 0);
        assert_eq!(EngineConfig::default_5x5().instr_capacity(), 25 * 16);
    }

    #[test]
    fn mem_line_occupancy() {
        let mem = MemConfig::default();
        // 64 B at 4.9 B/cycle → 14 cycles.
        assert_eq!(mem.line_occupancy(), 14);
    }
}
