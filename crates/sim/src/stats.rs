//! Event counters, per-phase counters, and latency histograms.
//!
//! Every simulated event increments a [`Counter`] in a flat array, which
//! keeps the hot path to a single add. Workloads with distinct phases
//! (PageRank's edge/bin/vertex phases) switch the active phase with
//! [`Stats::set_phase`]; DRAM traffic, instructions, and cycles are also
//! attributed to the active phase for the per-phase breakdown figures
//! (Figs 14 and 17).

use crate::checkpoint::{Record, SnapError, SnapReader, SnapWriter, Snapshot};
use crate::Cycle;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident,)+) => {
        /// A simulator event category.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        #[non_exhaustive]
        pub enum Counter {
            $($(#[$doc])* $name,)+
        }

        impl Counter {
            /// Number of counter categories.
            pub const COUNT: usize = [$(Counter::$name,)+].len();

            /// All counters, in declaration order.
            pub const ALL: [Counter; Counter::COUNT] = [$(Counter::$name,)+];

            /// Stable display name of the counter.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$name => stringify!($name),)+
                }
            }
        }
    };
}

counters! {
    /// Instructions retired by cores (all kinds).
    CoreInstr,
    /// Loads issued by cores.
    CoreLoad,
    /// Stores issued by cores.
    CoreStore,
    /// Remote memory operations (relaxed atomics) issued by cores.
    CoreRmo,
    /// Conditional branches retired by cores.
    CoreBranch,
    /// Branch mispredictions suffered by cores.
    BranchMispredict,
    /// L1d hits.
    L1dHit,
    /// L1d misses.
    L1dMiss,
    /// L2 hits.
    L2Hit,
    /// L2 misses.
    L2Miss,
    /// LLC hits.
    LlcHit,
    /// LLC misses.
    LlcMiss,
    /// Lines evicted from the L2 (clean or dirty).
    L2Eviction,
    /// Dirty lines written back from the L2.
    L2Writeback,
    /// Lines evicted from the LLC.
    LlcEviction,
    /// Dirty lines written back from the LLC.
    LlcWriteback,
    /// Cache-line reads served by DRAM.
    DramRead,
    /// Cache-line writes absorbed by DRAM.
    DramWrite,
    /// Flit-hops traversed on the mesh.
    NocFlitHops,
    /// Prefetches issued by the L2 stride prefetcher.
    PrefetchIssued,
    /// Prefetched lines that were later demanded (useful prefetches).
    PrefetchUseful,
    /// Coherence invalidations delivered to private caches.
    CoherenceInval,
    /// onMiss callbacks executed.
    CbOnMiss,
    /// onEviction callbacks executed.
    CbOnEviction,
    /// onWriteback callbacks executed.
    CbOnWriteback,
    /// Operations executed on engine PEs (fabric instructions).
    EngineInstr,
    /// Memory operations issued by engines.
    EngineMemOp,
    /// Engine L1d hits.
    EngineL1Hit,
    /// Engine L1d misses.
    EngineL1Miss,
    /// Engine rTLB hits.
    RtlbHit,
    /// Engine rTLB misses.
    RtlbMiss,
    /// Cycles a callback waited for a callback-buffer slot.
    CbBufferStallCycles,
    /// Callbacks that found the callback buffer full on arrival.
    CbBufferFull,
    /// Lines flushed by flushData.
    FlushedLines,
    /// User-space interrupts raised by callbacks.
    UserInterrupt,
    /// Application-level: decompression operations performed.
    Decompression,
    /// Application-level: journal entries written (NVM study).
    JournalWrite,
    /// Application-level: updates applied in place (PHI study).
    PhiInPlace,
    /// Application-level: updates logged to bins (PHI study).
    PhiBinned,
    /// Application-level: edges logged as unprocessed (HATS study).
    HatsEdgeLogged,
    /// Application-level: edges emitted by the HATS traversal engine.
    HatsEdgeEmitted,
    /// Requests that found every usable MSHR entry busy and stalled.
    MshrStall,
    /// Faults fired by the deterministic fault injector.
    FaultInjected,
    /// Morphs quarantined after a callback fault or budget overrun.
    MorphQuarantined,
    /// Callbacks skipped because their Morph was quarantined (the range
    /// degrades to baseline SRRIP hardware behavior).
    CbDegraded,
    /// Illegal callback actions (Sec 4.3 restriction violations)
    /// detected and suppressed.
    CbIllegalOp,
    /// Accesses whose latency exceeded the watchdog stall bound.
    WatchdogStallEvents,
    /// Invariant violations found by the watchdog's epoch sweeps.
    InvariantViolation,
}

/// Number of workload phases tracked for per-phase breakdowns.
pub const MAX_PHASES: usize = 4;

/// Per-phase counters for the breakdown figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// DRAM accesses (reads + writes) attributed to the phase.
    pub dram_accesses: u64,
    /// Core instructions attributed to the phase.
    pub core_instrs: u64,
    /// L1d misses attributed to the phase.
    pub l1d_misses: u64,
    /// L2 misses attributed to the phase.
    pub l2_misses: u64,
    /// LLC misses attributed to the phase.
    pub llc_misses: u64,
    /// Coherence invalidations attributed to the phase.
    pub invals: u64,
}

/// A fixed-bucket latency histogram (powers of two) with exact mean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 16],
    sum: u64,
    count: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; 16],
            sum: 0,
            count: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, latency: Cycle) {
        let idx = (64 - latency.leading_zeros() as usize).min(15);
        self.buckets[idx] += 1;
        self.sum += latency;
        self.count += 1;
        self.max = self.max.max(latency);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples (e.g., cumulative load latency for Fig 17).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket counts; bucket `i` holds samples in `[2^(i-1), 2^i)`.
    pub fn buckets(&self) -> &[u64; 16] {
        &self.buckets
    }

    /// Fold `other`'s samples into `self` (bucket-wise; exact for
    /// count/sum/max, used when per-system histograms are merged into a
    /// process-wide trace report).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Fraction of samples at or below `latency` (approximate, by bucket).
    pub fn cdf_at(&self, latency: Cycle) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let idx = (64 - latency.leading_zeros() as usize).min(15);
        let below: u64 = self.buckets[..=idx].iter().sum();
        below as f64 / self.count as f64
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The central statistics registry threaded through the simulator.
#[derive(Debug, Clone)]
pub struct Stats {
    counters: [u64; Counter::COUNT],
    phases: [PhaseStats; MAX_PHASES],
    current_phase: usize,
    /// Core load-to-use latency (Fig 17, right).
    pub load_latency: LatencyHistogram,
    /// Callback execution latency on engines.
    pub callback_latency: LatencyHistogram,
    /// Live dataflow tokens sampled while engines are active (Sec 5.3).
    pub live_tokens: LatencyHistogram,
    /// How long past the stall bound each watchdog-flagged access ran
    /// (detection latency; empty unless stalls were detected).
    pub stall_detection: LatencyHistogram,
}

impl Stats {
    /// A zeroed registry with phase 0 active.
    pub fn new() -> Self {
        Stats {
            counters: [0; Counter::COUNT],
            phases: [PhaseStats::default(); MAX_PHASES],
            current_phase: 0,
            load_latency: LatencyHistogram::new(),
            callback_latency: LatencyHistogram::new(),
            live_tokens: LatencyHistogram::new(),
            stall_detection: LatencyHistogram::new(),
        }
    }

    /// Increment `c` by one.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment `c` by `n`, attributing phase-tracked categories to the
    /// active phase.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
        let phase = &mut self.phases[self.current_phase];
        match c {
            Counter::DramRead | Counter::DramWrite => phase.dram_accesses += n,
            Counter::CoreInstr => phase.core_instrs += n,
            Counter::L1dMiss => phase.l1d_misses += n,
            Counter::L2Miss => phase.l2_misses += n,
            Counter::LlcMiss => phase.llc_misses += n,
            Counter::CoherenceInval => phase.invals += n,
            _ => {}
        }
    }

    /// Current value of `c`.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Select the active phase for subsequent per-phase attribution.
    ///
    /// # Panics
    ///
    /// Panics if `phase >= MAX_PHASES`.
    pub fn set_phase(&mut self, phase: usize) {
        assert!(phase < MAX_PHASES, "phase out of range");
        self.current_phase = phase;
    }

    /// The active phase index.
    pub fn phase(&self) -> usize {
        self.current_phase
    }

    /// Per-phase breakdown counters.
    pub fn phases(&self) -> &[PhaseStats; MAX_PHASES] {
        &self.phases
    }

    /// Total DRAM accesses (reads + writes).
    pub fn dram_accesses(&self) -> u64 {
        self.get(Counter::DramRead) + self.get(Counter::DramWrite)
    }

    /// Total instructions across cores and engines.
    pub fn total_instrs(&self) -> u64 {
        self.get(Counter::CoreInstr) + self.get(Counter::EngineInstr)
    }

    /// Total simulated memory accesses: core L1d accesses plus memory
    /// operations issued by engines. This is the work metric the
    /// benchmark harness reports as accesses/sec.
    pub fn memory_accesses(&self) -> u64 {
        self.get(Counter::L1dHit) + self.get(Counter::L1dMiss) + self.get(Counter::EngineMemOp)
    }

    /// Pretty-print all non-zero counters, one per line.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            let v = self.get(c);
            if v != 0 {
                out.push_str(&format!("{:<22} {v}\n", c.name()));
            }
        }
        out
    }
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

impl Snapshot for LatencyHistogram {
    fn save(&self, w: &mut SnapWriter) {
        for b in self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.sum);
        w.put_u64(self.count);
        w.put_u64(self.max);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for b in &mut self.buckets {
            *b = r.get_u64()?;
        }
        self.sum = r.get_u64()?;
        self.count = r.get_u64()?;
        self.max = r.get_u64()?;
        Ok(())
    }
}

impl Record for Stats {
    /// Journaled as a campaign unit by delegating to the [`Snapshot`]
    /// encoding, so replayed stats are bit-identical to computed ones.
    fn record(&self, w: &mut SnapWriter) {
        self.save(w);
    }
    fn replay(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut s = Stats::new();
        s.load(r)?;
        Ok(s)
    }
}

impl Snapshot for Stats {
    fn save(&self, w: &mut SnapWriter) {
        w.section("stats");
        // Counter names key the values so a snapshot from a build with a
        // different counter set fails loudly instead of shearing.
        w.put_len(Counter::COUNT);
        for c in Counter::ALL {
            w.put_str(c.name());
            w.put_u64(self.get(c));
        }
        for p in &self.phases {
            w.put_u64(p.dram_accesses);
            w.put_u64(p.core_instrs);
            w.put_u64(p.l1d_misses);
            w.put_u64(p.l2_misses);
            w.put_u64(p.llc_misses);
            w.put_u64(p.invals);
        }
        w.put_usize(self.current_phase);
        self.load_latency.save(w);
        self.callback_latency.save(w);
        self.live_tokens.save(w);
        self.stall_detection.save(w);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("stats")?;
        r.get_len_expect("stats.counters", Counter::COUNT)?;
        for c in Counter::ALL {
            let name = r.get_str()?;
            if name != c.name() {
                return Err(SnapError::StateMismatch(format!(
                    "counter order: snapshot has `{name}` where this build has `{}`",
                    c.name()
                )));
            }
            self.counters[c as usize] = r.get_u64()?;
        }
        for p in &mut self.phases {
            p.dram_accesses = r.get_u64()?;
            p.core_instrs = r.get_u64()?;
            p.l1d_misses = r.get_u64()?;
            p.l2_misses = r.get_u64()?;
            p.llc_misses = r.get_u64()?;
            p.invals = r.get_u64()?;
        }
        self.current_phase = r.get_usize()?;
        self.load_latency.load(r)?;
        self.callback_latency.load(r)?;
        self.live_tokens.load(r)?;
        self.stall_detection.load(r)?;
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Process-wide throughput tally
// ----------------------------------------------------------------------

/// Simulated memory accesses recorded across every run in this process
/// (all worker threads). Fed by [`record_simulated_accesses`]; the
/// benchmark harness divides it by wall-clock time for its
/// accesses-per-second figure.
static SIMULATED_ACCESSES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Add `n` simulated accesses to the process-wide tally. Called once
/// per finished simulation run (not per access), so the atomic is off
/// the hot path.
pub fn record_simulated_accesses(n: u64) {
    SIMULATED_ACCESSES.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
}

/// The process-wide simulated-access tally.
pub fn simulated_accesses() -> u64 {
    SIMULATED_ACCESSES.load(std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut s = Stats::new();
        assert_eq!(s.get(Counter::L2Hit), 0);
        s.bump(Counter::L2Hit);
        s.add(Counter::L2Hit, 3);
        assert_eq!(s.get(Counter::L2Hit), 4);
    }

    #[test]
    fn phase_attribution() {
        let mut s = Stats::new();
        s.add(Counter::DramRead, 5);
        s.set_phase(2);
        s.add(Counter::DramWrite, 7);
        s.add(Counter::CoreInstr, 11);
        assert_eq!(s.phases()[0].dram_accesses, 5);
        assert_eq!(s.phases()[2].dram_accesses, 7);
        assert_eq!(s.phases()[2].core_instrs, 11);
        assert_eq!(s.dram_accesses(), 12);
    }

    #[test]
    #[should_panic(expected = "phase out of range")]
    fn phase_bounds() {
        Stats::new().set_phase(MAX_PHASES);
    }

    #[test]
    fn histogram_mean_and_cdf() {
        let mut h = LatencyHistogram::new();
        for lat in [1u64, 2, 4, 100, 200] {
            h.record(lat);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 61.4).abs() < 1e-9);
        assert_eq!(h.max(), 200);
        assert!(h.cdf_at(4) >= 0.6);
        assert!((h.cdf_at(1 << 20) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.cdf_at(10), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
        assert!(h.buckets().iter().all(|&b| b == 0));
    }

    #[test]
    fn histogram_zero_sample_lands_in_bottom_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert!((h.cdf_at(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_single_bucket_concentration() {
        let mut h = LatencyHistogram::new();
        // All of [8, 15] shares bucket index 4.
        for lat in 8u64..16 {
            h.record(lat);
        }
        assert_eq!(h.buckets()[4], 8);
        assert_eq!(h.buckets().iter().sum::<u64>(), 8);
        assert!((h.mean() - 11.5).abs() < 1e-9);
        assert_eq!(h.cdf_at(7), 0.0);
        assert!((h.cdf_at(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_saturates_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(1 << 20);
        h.record(1 << 40);
        h.record(1 << 62);
        assert_eq!(h.buckets()[15], 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1 << 62);
        assert!((h.cdf_at(u64::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for lat in [1u64, 5, 700] {
            a.record(lat);
        }
        for lat in [2u64, 9_000, 1 << 50] {
            b.record(lat);
        }
        let mut combined = LatencyHistogram::new();
        for lat in [1u64, 5, 700, 2, 9_000, 1 << 50] {
            combined.record(lat);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        // Merging an empty histogram is the identity.
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, combined);
    }

    #[test]
    fn counter_names_unique() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn stats_snapshot_roundtrip() {
        let mut s = Stats::new();
        s.add(Counter::DramRead, 17);
        s.set_phase(1);
        s.add(Counter::CoreInstr, 5);
        s.load_latency.record(9);
        s.stall_detection.record(123_456);
        let env = crate::checkpoint::encode(&s);
        let mut out = Stats::new();
        crate::checkpoint::decode(&env, &mut out).unwrap();
        assert_eq!(out.get(Counter::DramRead), 17);
        assert_eq!(out.phase(), 1);
        assert_eq!(out.phases()[1].core_instrs, 5);
        assert_eq!(out.load_latency, s.load_latency);
        assert_eq!(out.stall_detection.max(), 123_456);
        for c in Counter::ALL {
            assert_eq!(out.get(c), s.get(c));
        }
    }

    #[test]
    fn report_lists_nonzero() {
        let mut s = Stats::new();
        s.bump(Counter::Decompression);
        let r = s.report();
        assert!(r.contains("Decompression"));
        assert!(!r.contains("JournalWrite"));
    }
}
