//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, pre-computed list of misbehaving-Morph
//! scenarios to inject at configured cycle points: callback overruns past
//! the engine instruction budget, callbacks that issue illegal actions
//! (Sec 4.3 restriction violations), fabric-capacity exhaustion, MSHR
//! pressure spikes, and delayed DRAM responses. Plans are built from a
//! seed via the in-tree [`crate::rng`] so a campaign is reproducible
//! bit-for-bit, and are carried in
//! [`SystemConfig::faults`](crate::config::SystemConfig) so every
//! workload inherits them without signature changes.
//!
//! At run time the hierarchy holds a [`FaultInjector`] and polls it at
//! the few sites where each fault kind is meaningful. Polling an
//! injector built from `None`/an empty plan is a branch on an empty
//! vector — the hot path is unchanged and disabled runs stay
//! byte-identical.

use crate::rng::Rng;
use crate::Cycle;

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The callback body runs `magnitude` extra engine instructions,
    /// blowing through the configured per-callback budget.
    CallbackOverrun,
    /// The callback issues an action the Sec 4.3 restriction forbids
    /// (an access to data covered by a Morph at the same level).
    IllegalAction,
    /// The dataflow fabric reports no capacity for a scheduled
    /// callback, as if every PE were wedged.
    FabricExhaustion,
    /// `magnitude` phantom MSHR entries appear at an LLC bank,
    /// squeezing real misses against the callback reservation.
    MshrPressure,
    /// A DRAM response is delayed by `magnitude` cycles, emulating a
    /// stalled memory controller.
    DelayedDram,
}

impl FaultKind {
    /// All kinds, in a fixed order (used by `mix` plans).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::CallbackOverrun,
        FaultKind::IllegalAction,
        FaultKind::FabricExhaustion,
        FaultKind::MshrPressure,
        FaultKind::DelayedDram,
    ];

    /// Short name used by the `--faults seed:kind[:count]` flag.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::CallbackOverrun => "overrun",
            FaultKind::IllegalAction => "illegal",
            FaultKind::FabricExhaustion => "fabric",
            FaultKind::MshrPressure => "mshr",
            FaultKind::DelayedDram => "dram",
        }
    }

    fn from_name(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// The default magnitude for this kind: extra instructions for
    /// overruns, phantom entries for MSHR pressure, extra cycles for
    /// DRAM delays, unused otherwise.
    pub fn default_magnitude(self) -> u64 {
        match self {
            FaultKind::CallbackOverrun => 150_000,
            FaultKind::IllegalAction => 0,
            FaultKind::FabricExhaustion => 0,
            FaultKind::MshrPressure => 12,
            FaultKind::DelayedDram => 400_000,
        }
    }
}

/// One scheduled fault: at or after cycle `at`, the next poll for
/// `kind` fires with `magnitude`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Earliest cycle at which the fault may fire.
    pub at: Cycle,
    /// What goes wrong.
    pub kind: FaultKind,
    /// Kind-specific severity (see [`FaultKind::default_magnitude`]).
    pub magnitude: u64,
    /// The tile/LLC-bank the fault is addressed to, or `None` for
    /// "wherever the next poll happens". Plans naming a site outside
    /// the configured mesh are rejected by
    /// [`SystemConfig::validate`](crate::config::SystemConfig::validate)
    /// instead of silently never firing.
    pub site: Option<usize>,
}

/// A seeded, deterministic schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful to prove the armed-but-empty
    /// path is inert).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single hand-placed fault.
    pub fn single(at: Cycle, kind: FaultKind, magnitude: u64) -> Self {
        FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                at,
                kind,
                magnitude,
                site: None,
            }],
        }
    }

    /// A seeded plan of `count` faults drawn from `kinds` (round-robin)
    /// with injection cycles uniform in `[lo, hi)` and default
    /// magnitudes. Identical arguments always produce an identical
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty or `lo >= hi`.
    pub fn seeded(seed: u64, kinds: &[FaultKind], count: usize, lo: Cycle, hi: Cycle) -> Self {
        assert!(!kinds.is_empty(), "kinds must be non-empty");
        assert!(lo < hi, "cycle window must be non-empty");
        let mut rng = Rng::new(seed);
        let events = (0..count)
            .map(|i| {
                let kind = kinds[i % kinds.len()];
                FaultEvent {
                    at: lo + rng.below(hi - lo),
                    kind,
                    magnitude: kind.default_magnitude(),
                    site: None,
                }
            })
            .collect();
        FaultPlan { seed, events }
    }

    /// Parse the `--faults seed:kind[:count]` flag syntax, e.g.
    /// `7:dram`, `3:overrun:4`, or `11:mix:10` (`mix`/`all` cycles
    /// through every kind). Injection cycles are spread over the first
    /// million cycles; campaigns that know the run horizon should use
    /// [`FaultPlan::seeded`] directly.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!("--faults wants seed:kind[:count], got `{s}`"));
        }
        let seed: u64 = parts[0]
            .parse()
            .map_err(|_| format!("bad fault seed `{}`", parts[0]))?;
        let kinds: Vec<FaultKind> = match parts[1] {
            "mix" | "all" => FaultKind::ALL.to_vec(),
            other => vec![FaultKind::from_name(other).ok_or(format!(
                "unknown fault kind `{other}` (want overrun, illegal, \
                 fabric, mshr, dram, or mix)"
            ))?],
        };
        let count: usize = match parts.get(2) {
            Some(c) => c.parse().map_err(|_| format!("bad fault count `{c}`"))?,
            None => kinds.len(),
        };
        Ok(FaultPlan::seeded(seed, &kinds, count, 1_000, 1_000_000))
    }
}

/// Runtime state for one run: which scheduled faults have fired.
///
/// The hierarchy polls the injector at each site where a fault kind is
/// meaningful; a poll fires the first due, untaken event of that kind
/// and returns its magnitude. With no events the poll is a single
/// `is_empty` branch, so disabled runs are byte-identical.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    taken: Vec<bool>,
    fired: u64,
}

impl FaultInjector {
    /// An injector for a plan (or an inert one for `None`).
    pub fn new(plan: Option<&FaultPlan>) -> Self {
        let events = plan.map(|p| p.events.clone()).unwrap_or_default();
        let taken = vec![false; events.len()];
        FaultInjector {
            events,
            taken,
            fired: 0,
        }
    }

    /// True if this injector can never fire.
    pub fn is_inert(&self) -> bool {
        self.events.is_empty()
    }

    /// Fire the first due, untaken, un-addressed event of `kind` at
    /// cycle `now`, returning its magnitude. Events addressed to a
    /// specific site only fire through [`FaultInjector::poll_at`].
    pub fn poll(&mut self, now: Cycle, kind: FaultKind) -> Option<u64> {
        self.poll_where(now, kind, None)
    }

    /// Fire the first due, untaken event of `kind` at cycle `now` that
    /// is either un-addressed or addressed to `site` (a tile/LLC-bank
    /// index), returning its magnitude.
    pub fn poll_at(&mut self, now: Cycle, kind: FaultKind, site: usize) -> Option<u64> {
        self.poll_where(now, kind, Some(site))
    }

    fn poll_where(&mut self, now: Cycle, kind: FaultKind, site: Option<usize>) -> Option<u64> {
        if self.events.is_empty() {
            return None;
        }
        for (i, ev) in self.events.iter().enumerate() {
            let addressed_here = match ev.site {
                None => true,
                Some(s) => site == Some(s),
            };
            if !self.taken[i] && ev.kind == kind && ev.at <= now && addressed_here {
                self.taken[i] = true;
                self.fired += 1;
                return Some(ev.magnitude);
            }
        }
        None
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// How many scheduled faults have not fired yet.
    pub fn pending(&self) -> usize {
        self.taken.iter().filter(|t| !**t).count()
    }

    /// One-line cursor summary (`fired/scheduled`) for triage bundles.
    pub fn cursor(&self) -> String {
        format!(
            "{} fired, {} pending of {}",
            self.fired,
            self.pending(),
            self.events.len()
        )
    }
}

impl crate::checkpoint::Snapshot for FaultInjector {
    /// The injector's *cursor* — which scheduled events have fired — is
    /// the mutable state; the events themselves are rebuilt from the
    /// plan in `SystemConfig::faults`, and `load` verifies the count
    /// matches.
    fn save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.section("fault");
        w.put_len(self.taken.len());
        for t in &self.taken {
            w.put_bool(*t);
        }
        w.put_u64(self.fired);
    }

    fn load(
        &mut self,
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> Result<(), crate::checkpoint::SnapError> {
        r.section("fault")?;
        let n = r.get_len_expect("fault.taken", self.taken.len())?;
        for i in 0..n {
            self.taken[i] = r.get_bool()?;
        }
        self.fired = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let mut inj = FaultInjector::new(None);
        assert!(inj.is_inert());
        assert_eq!(inj.poll(u64::MAX, FaultKind::DelayedDram), None);
        let mut inj = FaultInjector::new(Some(&FaultPlan::empty()));
        assert!(inj.is_inert());
        assert_eq!(inj.poll(u64::MAX, FaultKind::CallbackOverrun), None);
    }

    #[test]
    fn single_fires_once_when_due() {
        let plan = FaultPlan::single(100, FaultKind::DelayedDram, 7);
        let mut inj = FaultInjector::new(Some(&plan));
        assert_eq!(inj.poll(99, FaultKind::DelayedDram), None);
        assert_eq!(inj.poll(50, FaultKind::MshrPressure), None);
        assert_eq!(inj.poll(100, FaultKind::DelayedDram), Some(7));
        assert_eq!(inj.poll(200, FaultKind::DelayedDram), None);
        assert_eq!(inj.fired(), 1);
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn kind_filter_respected() {
        let plan = FaultPlan::single(0, FaultKind::IllegalAction, 0);
        let mut inj = FaultInjector::new(Some(&plan));
        assert_eq!(inj.poll(1_000, FaultKind::CallbackOverrun), None);
        assert_eq!(inj.poll(1_000, FaultKind::IllegalAction), Some(0));
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = FaultPlan::seeded(9, &FaultKind::ALL, 20, 100, 10_000);
        let b = FaultPlan::seeded(9, &FaultKind::ALL, 20, 100, 10_000);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 20);
        for ev in &a.events {
            assert!((100..10_000).contains(&ev.at));
        }
        let c = FaultPlan::seeded(10, &FaultKind::ALL, 20, 100, 10_000);
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_round_robins_kinds() {
        let p = FaultPlan::seeded(1, &FaultKind::ALL, 10, 0, 100);
        for (i, ev) in p.events.iter().enumerate() {
            assert_eq!(ev.kind, FaultKind::ALL[i % FaultKind::ALL.len()]);
        }
    }

    #[test]
    fn parse_forms() {
        let p = FaultPlan::parse("7:dram").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].kind, FaultKind::DelayedDram);

        let p = FaultPlan::parse("3:overrun:4").unwrap();
        assert_eq!(p.events.len(), 4);
        assert!(p
            .events
            .iter()
            .all(|e| e.kind == FaultKind::CallbackOverrun));

        let p = FaultPlan::parse("11:mix:10").unwrap();
        assert_eq!(p.events.len(), 10);

        assert!(FaultPlan::parse("x:dram").is_err());
        assert!(FaultPlan::parse("1:bogus").is_err());
        assert!(FaultPlan::parse("1:dram:zzz").is_err());
        assert!(FaultPlan::parse("1").is_err());
        assert!(FaultPlan::parse("1:dram:2:3").is_err());
    }

    #[test]
    fn site_addressed_events_fire_only_at_their_site() {
        let mut plan = FaultPlan::single(10, FaultKind::MshrPressure, 4);
        plan.events[0].site = Some(3);
        let mut inj = FaultInjector::new(Some(&plan));
        assert_eq!(inj.poll(100, FaultKind::MshrPressure), None);
        assert_eq!(inj.poll_at(100, FaultKind::MshrPressure, 2), None);
        assert_eq!(inj.poll_at(100, FaultKind::MshrPressure, 3), Some(4));
        assert_eq!(inj.poll_at(200, FaultKind::MshrPressure, 3), None);
    }

    #[test]
    fn unaddressed_events_fire_at_any_site() {
        let plan = FaultPlan::single(10, FaultKind::DelayedDram, 7);
        let mut inj = FaultInjector::new(Some(&plan));
        assert_eq!(inj.poll_at(100, FaultKind::DelayedDram, 5), Some(7));
    }

    #[test]
    fn cursor_snapshot_roundtrip() {
        let plan = FaultPlan::seeded(4, &FaultKind::ALL, 10, 1, 1_000);
        let mut inj = FaultInjector::new(Some(&plan));
        inj.poll(2_000, FaultKind::DelayedDram);
        inj.poll(2_000, FaultKind::MshrPressure);
        let env = crate::checkpoint::encode(&inj);
        let mut fresh = FaultInjector::new(Some(&plan));
        crate::checkpoint::decode(&env, &mut fresh).unwrap();
        assert_eq!(fresh.fired(), inj.fired());
        assert_eq!(fresh.pending(), inj.pending());
        assert_eq!(fresh.taken, inj.taken);
        // A cursor from a differently sized plan is rejected.
        let other = FaultPlan::seeded(4, &FaultKind::ALL, 3, 1, 1_000);
        let mut wrong = FaultInjector::new(Some(&other));
        assert!(crate::checkpoint::decode(&env, &mut wrong).is_err());
    }

    #[test]
    fn round_trip_kind_names() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
    }
}
