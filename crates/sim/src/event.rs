//! The unified accounting bus of the memory-transaction pipeline.
//!
//! Every side effect of a hierarchy walk that is *not* the walk itself —
//! counter bumps, energy-relevant event tallies, NoC hop charges, DRAM
//! traffic, fault-injector polls, watchdog stall reports — flows through
//! this module as a [`TxnEvent`] emitted into a [`TxnSink`]. The walk
//! bodies in `tako-core` contain **no** inline `stats.bump` calls; they
//! describe *what happened* and the subscribers decide *what to count*.
//!
//! ```text
//!   pipeline stage ──emit(TxnEvent)──▶ AccountingBus ──▶ Stats   (counters)
//!                  ◀─poll_fault()────        │      └──▶ SinkTap (optional:
//!                                     FaultInjector           energy meter,
//!                                                             future tracer)
//! ```
//!
//! [`AccountingBus`] is the assembled bus: it owns the [`Stats`]
//! registry and the [`FaultInjector`] and forwards every event to an
//! optional extra subscriber ([`SinkTap`], an enum so dispatch is static
//! and the hot path stays allocation- and vtable-free). Consumers that
//! only need counting can use a bare [`Stats`] as the sink — it
//! implements [`TxnSink`] directly, which is what `tako-noc` and
//! `tako-mem` unit tests do.
//!
//! Events are small `Copy` values; emitting one compiles down to the
//! same flat-array increment the old inline bumps performed, so routing
//! accounting through the bus costs nothing on the hot path (guarded by
//! the `no_alloc` test suite) and gives later work — live tracing,
//! per-interval metrics, cache inspection à la "Observing the
//! Invisible" — a single attach point instead of ~45 scattered call
//! sites.

use crate::energy::EnergyAccumulator;
use crate::fault::{FaultInjector, FaultKind};
use crate::stats::{Counter, Stats};
use crate::Cycle;

/// A level of the cache hierarchy, as tagged on [`TxnEvent`]s.
///
/// The DRAM edge is not a `LevelId`: memory traffic has its own event
/// variants ([`TxnEvent::DramRead`]/[`TxnEvent::DramWrite`]) because it
/// is charged per line transfer, not per tag access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelId {
    /// A tile's private L1 data cache.
    L1d,
    /// A tile's private L2.
    L2,
    /// A bank of the shared, inclusive LLC.
    Llc,
}

/// Which callback a Morph ran (mirrors `tako_core::CallbackKind`
/// without the dependency inversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CbPhase {
    /// `onMiss` — a miss on the Morph's range.
    OnMiss,
    /// `onEviction` — a clean line of the range was evicted.
    OnEviction,
    /// `onWriteback` — a dirty line of the range was evicted.
    OnWriteback,
}

/// One accounting event emitted by a pipeline stage.
///
/// Variants are semantic ("an L2 eviction happened"), not counter names;
/// the mapping to [`Counter`]s lives in the [`Stats`] sink so other
/// subscribers (energy meters, tracers) can interpret the same stream
/// differently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxnEvent {
    /// A tag lookup hit at `LevelId`.
    Hit(LevelId),
    /// A tag lookup missed at `LevelId`.
    Miss(LevelId),
    /// A valid line was displaced from `LevelId` (L2/LLC only).
    Eviction(LevelId),
    /// A dirty line was written back out of `LevelId` (L2/LLC only).
    Writeback(LevelId),
    /// A coherence invalidation was delivered to a private cache.
    CoherenceInval,
    /// The L2 stride prefetcher issued a prefetch.
    PrefetchIssued,
    /// A previously prefetched line was demanded.
    PrefetchUseful,
    /// `flits * hops` flit-hops crossed the mesh.
    NocHops {
        /// Flits in the message.
        flits: u64,
        /// Hops the message traversed.
        hops: u64,
    },
    /// DRAM served a line read.
    DramRead,
    /// DRAM absorbed a line write.
    DramWrite,
    /// A request found every usable MSHR entry busy and stalled.
    MshrStall,
    /// One line was flushed by a flushData tag walk.
    FlushedLine,
    /// A scheduled fault fired (emitted by the bus itself on a
    /// successful [`AccountingBus::poll_fault`]).
    FaultInjected,
    /// A callback of the given phase was dispatched to an engine.
    CallbackRun(CbPhase),
    /// A callback was skipped because its Morph is quarantined.
    CallbackDegraded,
    /// A Morph was quarantined.
    MorphQuarantined,
    /// A callback finished, having executed `instrs` fabric
    /// instructions and `mem_ops` memory operations.
    EngineWork {
        /// Fabric instructions executed.
        instrs: u64,
        /// Memory operations issued.
        mem_ops: u64,
    },
    /// The watchdog flagged an access `latency` cycles past its bound.
    StallDetected {
        /// Cycles past the stall bound.
        latency: Cycle,
    },
    /// The watchdog's epoch sweep found `0` new invariant violations.
    InvariantViolations(u64),
}

/// A subscriber to the transaction event stream.
///
/// `emit` must be cheap and allocation-free: it runs on every simulated
/// cache access. `poll_fault` exists because fault injection is the one
/// piece of accounting that feeds *back* into the walk (a fired fault
/// perturbs timing); sinks without an injector keep the default no-op.
pub trait TxnSink {
    /// Deliver one event.
    fn emit(&mut self, ev: TxnEvent);

    /// Fire the first due, untaken fault of `kind` at `now`, returning
    /// its magnitude. The default sink has no faults to fire.
    fn poll_fault(&mut self, _now: Cycle, _kind: FaultKind) -> Option<u64> {
        None
    }
}

impl TxnSink for Stats {
    // always: call sites pass literal variants, so once inlined the
    // match constant-folds to the single counter increment the
    // pre-bus code performed — left to its own devices LLVM keeps
    // this many-armed match outlined and every bump pays a call.
    #[inline(always)]
    fn emit(&mut self, ev: TxnEvent) {
        match ev {
            TxnEvent::Hit(LevelId::L1d) => self.bump(Counter::L1dHit),
            TxnEvent::Hit(LevelId::L2) => self.bump(Counter::L2Hit),
            TxnEvent::Hit(LevelId::Llc) => self.bump(Counter::LlcHit),
            TxnEvent::Miss(LevelId::L1d) => self.bump(Counter::L1dMiss),
            TxnEvent::Miss(LevelId::L2) => self.bump(Counter::L2Miss),
            TxnEvent::Miss(LevelId::Llc) => self.bump(Counter::LlcMiss),
            TxnEvent::Eviction(LevelId::L2) => self.bump(Counter::L2Eviction),
            TxnEvent::Eviction(LevelId::Llc) => self.bump(Counter::LlcEviction),
            TxnEvent::Eviction(LevelId::L1d) => {}
            TxnEvent::Writeback(LevelId::L2) => self.bump(Counter::L2Writeback),
            TxnEvent::Writeback(LevelId::Llc) => self.bump(Counter::LlcWriteback),
            TxnEvent::Writeback(LevelId::L1d) => {}
            TxnEvent::CoherenceInval => self.bump(Counter::CoherenceInval),
            TxnEvent::PrefetchIssued => self.bump(Counter::PrefetchIssued),
            TxnEvent::PrefetchUseful => self.bump(Counter::PrefetchUseful),
            TxnEvent::NocHops { flits, hops } => self.add(Counter::NocFlitHops, flits * hops),
            TxnEvent::DramRead => self.bump(Counter::DramRead),
            TxnEvent::DramWrite => self.bump(Counter::DramWrite),
            TxnEvent::MshrStall => self.bump(Counter::MshrStall),
            TxnEvent::FlushedLine => self.bump(Counter::FlushedLines),
            TxnEvent::FaultInjected => self.bump(Counter::FaultInjected),
            TxnEvent::CallbackRun(CbPhase::OnMiss) => self.bump(Counter::CbOnMiss),
            TxnEvent::CallbackRun(CbPhase::OnEviction) => self.bump(Counter::CbOnEviction),
            TxnEvent::CallbackRun(CbPhase::OnWriteback) => self.bump(Counter::CbOnWriteback),
            TxnEvent::CallbackDegraded => self.bump(Counter::CbDegraded),
            TxnEvent::MorphQuarantined => self.bump(Counter::MorphQuarantined),
            TxnEvent::EngineWork { instrs, mem_ops } => {
                self.add(Counter::EngineInstr, instrs);
                self.add(Counter::EngineMemOp, mem_ops);
            }
            TxnEvent::StallDetected { latency } => {
                self.bump(Counter::WatchdogStallEvents);
                self.stall_detection.record(latency);
            }
            TxnEvent::InvariantViolations(n) => self.add(Counter::InvariantViolation, n),
        }
    }
}

/// Capacity of the [`EventTrace`] ring buffer.
pub const TRACE_CAPACITY: usize = 64;

/// A fixed-capacity ring buffer over the last [`TRACE_CAPACITY`]
/// [`TxnEvent`]s, for crash triage: when a supervised experiment is
/// killed (panic, deadline, watchdog stall), the tail of the event
/// stream shows what the pipeline was doing per stage right before
/// death. Recording is allocation-free (a slot write and two adds);
/// rendering only happens on the triage path.
#[derive(Debug, Clone)]
pub struct EventTrace {
    ring: [Option<TxnEvent>; TRACE_CAPACITY],
    total: u64,
}

impl Default for EventTrace {
    fn default() -> Self {
        EventTrace {
            ring: [None; TRACE_CAPACITY],
            total: 0,
        }
    }
}

impl EventTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events observed (not just the retained tail).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> impl Iterator<Item = TxnEvent> + '_ {
        let n = (self.total as usize).min(TRACE_CAPACITY);
        let start = self.total as usize - n;
        (start..self.total as usize).filter_map(move |i| self.ring[i % TRACE_CAPACITY])
    }

    /// Render the tail for a triage bundle, one event per line with its
    /// stream position.
    pub fn render(&self) -> String {
        let n = (self.total as usize).min(TRACE_CAPACITY);
        let start = self.total as usize - n;
        let mut out = format!("event tail ({n} of {} total):\n", self.total);
        for (pos, ev) in (start..).zip(self.tail()) {
            out.push_str(&format!("  [{pos}] {ev:?}\n"));
        }
        out
    }
}

impl TxnSink for EventTrace {
    #[inline(always)]
    fn emit(&mut self, ev: TxnEvent) {
        self.ring[self.total as usize % TRACE_CAPACITY] = Some(ev);
        self.total += 1;
    }
}

/// An optional extra subscriber slot on the bus.
///
/// An enum (not a `Box<dyn TxnSink>`) so the common case — no tap —
/// costs one discriminant test and the bus stays `Clone`-free of heap
/// indirection. New subscriber kinds (a per-interval metrics
/// aggregator) are added as variants.
#[derive(Debug, Clone, Default)]
pub enum SinkTap {
    /// No extra subscriber (the default; the hot path's only cost is
    /// the discriminant test).
    #[default]
    None,
    /// Live energy metering (see [`EnergyAccumulator`]).
    Energy(EnergyAccumulator),
    /// Ring-buffer event tracer for crash triage (see [`EventTrace`]);
    /// attached while a supervised campaign runs.
    Trace(Box<EventTrace>),
    /// Full observability recorder (see [`crate::trace::Observer`]):
    /// stamped event trace, interval metrics, and stage profile;
    /// attached while `trace::armed()` experiments run.
    Observer(Box<crate::trace::Observer>),
}

impl TxnSink for SinkTap {
    #[inline(always)]
    fn emit(&mut self, ev: TxnEvent) {
        match self {
            SinkTap::None => {}
            SinkTap::Energy(acc) => acc.emit(ev),
            SinkTap::Trace(trace) => trace.emit(ev),
            SinkTap::Observer(obs) => obs.emit(ev),
        }
    }
}

/// The assembled accounting bus: the [`Stats`] subscriber, the
/// [`FaultInjector`], and an optional [`SinkTap`].
///
/// The hierarchy owns one bus and passes `&mut self.bus` (a disjoint
/// field borrow) into components like the mesh and DRAM model, so a
/// stage can charge accounting while holding other parts of the
/// hierarchy mutably.
#[derive(Debug, Clone, Default)]
pub struct AccountingBus {
    /// Event counters and histograms (the primary subscriber).
    pub stats: Stats,
    /// Deterministic fault injector (inert unless armed).
    pub faults: FaultInjector,
    /// Optional extra subscriber.
    pub tap: SinkTap,
}

impl AccountingBus {
    /// A bus with zeroed stats, faults from `plan`, and no tap.
    pub fn new(faults: FaultInjector) -> Self {
        AccountingBus {
            stats: Stats::new(),
            faults,
            tap: SinkTap::None,
        }
    }

    /// True if the fault injector can never fire (the byte-identical
    /// fast path: stall modeling that only exists for fault campaigns
    /// is skipped).
    pub fn faults_inert(&self) -> bool {
        self.faults.is_inert()
    }

    /// Like [`TxnSink::poll_fault`], but at a specific site (tile or
    /// LLC-bank index): fires un-addressed events *and* events
    /// addressed to `site`. Pipeline stages that know where they are
    /// use this so site-addressed fault plans land where they say.
    #[inline]
    pub fn poll_fault_at(&mut self, now: Cycle, kind: FaultKind, site: usize) -> Option<u64> {
        let hit = self.faults.poll_at(now, kind, site);
        if hit.is_some() {
            self.emit(TxnEvent::FaultInjected);
        }
        hit
    }

    /// The triage tail of the event stream, when a [`SinkTap::Trace`]
    /// is attached.
    pub fn trace(&self) -> Option<&EventTrace> {
        match &self.tap {
            SinkTap::Trace(t) => Some(t.as_ref()),
            _ => None,
        }
    }

    /// Advance the observer's cycle/tile stamp cursor (no-op without an
    /// observer tap): subsequent events are attributed to `tile` at
    /// `cycle`.
    #[inline(always)]
    pub fn observe_at(&mut self, cycle: Cycle, tile: usize) {
        if let SinkTap::Observer(obs) = &mut self.tap {
            obs.observe_at(cycle, tile as u32);
        }
    }

    /// Attribute a pipeline-stage span to the observer's profile (no-op
    /// without an observer tap); call sites use the
    /// [`span!`](crate::span!) macro.
    #[inline(always)]
    pub fn span_record(&mut self, stage: crate::trace::Stage, start: Cycle, done: Cycle) {
        if let SinkTap::Observer(obs) = &mut self.tap {
            obs.record_span(stage, start, done);
        }
    }

    /// The attached observer, if any.
    #[inline]
    pub fn observer(&self) -> Option<&crate::trace::Observer> {
        match &self.tap {
            SinkTap::Observer(obs) => Some(obs.as_ref()),
            _ => None,
        }
    }

    /// The attached observer, mutably, if any.
    #[inline(always)]
    pub fn observer_mut(&mut self) -> Option<&mut crate::trace::Observer> {
        match &mut self.tap {
            SinkTap::Observer(obs) => Some(obs.as_mut()),
            _ => None,
        }
    }

    /// Detach and return the observer tap, leaving [`SinkTap::None`];
    /// `None` (tap untouched) when no observer is attached.
    pub fn take_observer(&mut self) -> Option<Box<crate::trace::Observer>> {
        if matches!(self.tap, SinkTap::Observer(_)) {
            match std::mem::take(&mut self.tap) {
                SinkTap::Observer(obs) => Some(obs),
                _ => unreachable!(),
            }
        } else {
            None
        }
    }
}

impl TxnSink for AccountingBus {
    #[inline(always)]
    fn emit(&mut self, ev: TxnEvent) {
        self.stats.emit(ev);
        self.tap.emit(ev);
    }

    /// Polls the injector; a fired fault is counted as
    /// [`TxnEvent::FaultInjected`] before the magnitude is returned, so
    /// call sites never pair a poll with a manual bump.
    #[inline]
    fn poll_fault(&mut self, now: Cycle, kind: FaultKind) -> Option<u64> {
        let hit = self.faults.poll(now, kind);
        if hit.is_some() {
            self.emit(TxnEvent::FaultInjected);
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn stats_sink_maps_levels() {
        let mut s = Stats::new();
        s.emit(TxnEvent::Hit(LevelId::L1d));
        s.emit(TxnEvent::Miss(LevelId::L2));
        s.emit(TxnEvent::Eviction(LevelId::Llc));
        s.emit(TxnEvent::Writeback(LevelId::L2));
        s.emit(TxnEvent::NocHops { flits: 5, hops: 3 });
        s.emit(TxnEvent::EngineWork {
            instrs: 7,
            mem_ops: 2,
        });
        assert_eq!(s.get(Counter::L1dHit), 1);
        assert_eq!(s.get(Counter::L2Miss), 1);
        assert_eq!(s.get(Counter::LlcEviction), 1);
        assert_eq!(s.get(Counter::L2Writeback), 1);
        assert_eq!(s.get(Counter::NocFlitHops), 15);
        assert_eq!(s.get(Counter::EngineInstr), 7);
        assert_eq!(s.get(Counter::EngineMemOp), 2);
    }

    #[test]
    fn stall_event_records_histogram() {
        let mut s = Stats::new();
        s.emit(TxnEvent::StallDetected { latency: 640 });
        assert_eq!(s.get(Counter::WatchdogStallEvents), 1);
        assert_eq!(s.stall_detection.count(), 1);
        assert_eq!(s.stall_detection.max(), 640);
    }

    #[test]
    fn bus_counts_fired_faults() {
        let plan = FaultPlan::single(100, FaultKind::DelayedDram, 9);
        let mut bus = AccountingBus::new(FaultInjector::new(Some(&plan)));
        assert!(!bus.faults_inert());
        assert_eq!(bus.poll_fault(50, FaultKind::DelayedDram), None);
        assert_eq!(bus.stats.get(Counter::FaultInjected), 0);
        assert_eq!(bus.poll_fault(200, FaultKind::DelayedDram), Some(9));
        assert_eq!(bus.stats.get(Counter::FaultInjected), 1);
    }

    #[test]
    fn inert_bus_polls_are_free() {
        let mut bus = AccountingBus::new(FaultInjector::new(None));
        assert!(bus.faults_inert());
        assert_eq!(bus.poll_fault(u64::MAX, FaultKind::MshrPressure), None);
        assert_eq!(bus.stats.get(Counter::FaultInjected), 0);
    }

    #[test]
    fn trace_tap_keeps_a_bounded_tail() {
        let mut bus = AccountingBus::new(FaultInjector::new(None));
        bus.tap = SinkTap::Trace(Box::new(EventTrace::new()));
        for i in 0..(TRACE_CAPACITY as u64 + 10) {
            bus.emit(TxnEvent::NocHops { flits: i, hops: 1 });
        }
        let trace = bus.trace().expect("trace tap attached");
        assert_eq!(trace.total(), TRACE_CAPACITY as u64 + 10);
        let tail: Vec<TxnEvent> = trace.tail().collect();
        assert_eq!(tail.len(), TRACE_CAPACITY);
        assert_eq!(tail[0], TxnEvent::NocHops { flits: 10, hops: 1 });
        let rendered = trace.render();
        assert!(rendered.contains("event tail"));
        assert!(rendered.contains("NocHops"));
        // Tracing must not perturb counting.
        assert_eq!(
            bus.stats.get(Counter::NocFlitHops),
            (0..(TRACE_CAPACITY as u64 + 10)).sum::<u64>()
        );
    }

    #[test]
    fn site_aware_poll_respects_addressing() {
        let mut plan = FaultPlan::single(0, FaultKind::MshrPressure, 5);
        plan.events[0].site = Some(7);
        let mut bus = AccountingBus::new(FaultInjector::new(Some(&plan)));
        assert_eq!(bus.poll_fault(1_000, FaultKind::MshrPressure), None);
        assert_eq!(bus.poll_fault_at(1_000, FaultKind::MshrPressure, 0), None);
        assert_eq!(
            bus.poll_fault_at(1_000, FaultKind::MshrPressure, 7),
            Some(5)
        );
        assert_eq!(bus.stats.get(Counter::FaultInjected), 1);
    }

    #[test]
    fn energy_tap_sees_events() {
        let mut bus = AccountingBus::new(FaultInjector::new(None));
        bus.tap = SinkTap::Energy(EnergyAccumulator::default());
        bus.emit(TxnEvent::DramRead);
        let SinkTap::Energy(acc) = &bus.tap else {
            panic!("tap replaced");
        };
        assert!(acc.total_pj() > 0.0);
    }
}
